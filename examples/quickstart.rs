//! Quickstart: assemble a small multithreaded program, run it on a
//! Named-State Register File, and read the measurements.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nsf::isa::asm::assemble;
use nsf::sim::{Machine, RegFileSpec, SimConfig};

fn main() {
    // Two threads hand a value back and forth over channels; the parent
    // doubles it, the child adds one, for ten rounds.
    let program = assemble(
        "main:
            chnew r0            ; parent -> child
            chnew r1            ; child -> parent
            li r2, 4000
            sw r0, (r2)         ; publish channel ids for the child
            sw r1, 1(r2)
            spawn child, r2
            li r3, 1            ; the token
            li r4, 0            ; round counter
            li r5, 10
        round:
            bge r4, r5, finish
            add r3, r3, r3      ; double
            chsend r0, r3
            chrecv r3, r1
            addi r4, r4, 1
            jmp round
        finish:
            li r6, 5000
            sw r3, (r6)         ; publish the result
            halt
        child:
            mv r0, g1
            lw r1, (r0)         ; parent -> child channel
            lw r2, 1(r0)        ; child -> parent channel
            li r3, 0
            li r4, 10
        loop:
            bge r3, r4, done
            chrecv r5, r1
            addi r5, r5, 1      ; add one
            chsend r2, r5
            addi r3, r3, 1
            jmp loop
        done:
            halt",
    )
    .expect("assembles");

    // The paper's headline configuration: a 128-register NSF with
    // single-register lines, LRU replacement and demand reloading.
    let cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(128));
    let mut machine = Machine::new(program, cfg).expect("valid configuration");
    let report = machine.run_and_keep().expect("runs to completion");

    println!("result             : {}", machine.mem.peek(5000));
    println!("instructions       : {}", report.instructions);
    println!("cycles             : {}", report.cycles);
    println!("context switches   : {}", report.context_switches);
    println!("instrs per switch  : {:.1}", report.instrs_per_switch());
    println!("registers reloaded : {}", report.regfile.regs_reloaded);
    println!(
        "spill overhead     : {:.2}%",
        report.spill_overhead() * 100.0
    );
    println!("file utilization   : {:.1}%", report.utilization() * 100.0);
    println!("register file      : {}", report.regfile_desc);
}
