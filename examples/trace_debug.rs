//! Post-mortem debugging with the execution trace: run a program that
//! dies on a read-before-write bug and show how the trace ring pinpoints
//! the path that led there.
//!
//! ```sh
//! cargo run --example trace_debug
//! ```

use nsf::isa::asm::assemble;
use nsf::sim::{Machine, SimConfig};

fn main() {
    // A buggy program: the `scale` procedure reads r1, but the caller
    // passed its argument in memory and `scale` only loaded r0.
    let program = assemble(
        "main:
            li r0, 21
            sw r0, -1(g0)
            call scale
            halt
        scale:
            addi g0, g0, -1
            lw r0, (g0)
            add g1, r0, r1   ; BUG: r1 was never written in this context
            addi g0, g0, 1
            ret",
    )
    .expect("assembles");

    let cfg = SimConfig {
        trace_depth: 8,
        ..Default::default()
    };
    let mut machine = Machine::new(program, cfg).expect("valid config");

    match machine.run_and_keep() {
        Ok(_) => println!("unexpectedly succeeded"),
        Err(e) => {
            println!("simulation failed: {e}\n");
            println!(
                "last {} instructions before the fault:",
                machine.trace().len()
            );
            print!("{}", machine.trace());
            println!("\nThe trace shows the fresh context (its CID) entering `scale`");
            println!("and faulting on the first use of r1 — a register this");
            println!("activation never wrote. The Named-State Register File detects");
            println!("read-before-write architecturally: undefined registers simply");
            println!("do not exist in the CAM decoder or the backing store.");
        }
    }
}
