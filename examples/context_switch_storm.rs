//! The paper's motivating scenario, end to end: a fine-grain parallel
//! workload (Monte-Carlo particle transport, context switch every ~20
//! instructions) run on four register file organizations.
//!
//! ```sh
//! cargo run --release --example context_switch_storm
//! ```
//!
//! Expected shape (paper §7, §8): the NSF approaches the infinite
//! oracle; the segmented file pays whole-frame transfers on every switch
//! and software trap handlers nearly double that cost again.

use nsf::core::{SegmentedConfig, SpillEngine};
use nsf::sim::{RegFileSpec, SimConfig};
use nsf::workloads::{gamteb, run};

fn main() {
    let workload = gamteb::build(1);

    let mut software = SegmentedConfig::paper_default(4, 32);
    software.engine = SpillEngine::software();

    let configs: Vec<(&str, SimConfig)> = vec![
        (
            "Oracle (infinite file)",
            SimConfig::with_regfile(RegFileSpec::Oracle),
        ),
        (
            "NSF 128x1",
            SimConfig::with_regfile(RegFileSpec::paper_nsf(128)),
        ),
        (
            "Segmented 4x32, hardware",
            SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 32)),
        ),
        (
            "Segmented 4x32, sw traps",
            SimConfig::with_regfile(RegFileSpec::Segmented(software)),
        ),
    ];

    println!("Gamteb (fine-grain particle transport), {} particles\n", 96);
    println!(
        "{:<26} {:>10} {:>8} {:>12} {:>10}",
        "Register file", "Cycles", "CPI", "Regs moved", "Overhead"
    );
    println!("{}", "-".repeat(70));
    let mut baseline = None;
    for (name, cfg) in configs {
        let r = run(&workload, cfg).expect("workload validates");
        let moved = r.regfile.regs_reloaded + r.regfile.regs_spilled;
        let base = *baseline.get_or_insert(r.cycles);
        println!(
            "{:<26} {:>10} {:>8.2} {:>12} {:>9.1}%  ({:+.0}% vs oracle)",
            name,
            r.cycles,
            r.cpi(),
            moved,
            r.spill_overhead() * 100.0,
            (r.cycles as f64 / base as f64 - 1.0) * 100.0,
        );
    }
    println!("{}", "-".repeat(70));
    println!("Every run checks the tally against the same Rust reference — the");
    println!("organizations differ only in time, never in results.");
}
