//! Joint performance/cost design-space exploration: sweep NSF file sizes
//! on a real workload and pair each point with the VLSI area model —
//! the trade the paper's conclusion argues (big behavioural win, 5% of a
//! processor die).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use nsf::core::NsfConfig;
use nsf::sim::{RegFileSpec, SimConfig};
use nsf::vlsi::{AreaModel, Geometry, Ports, Tech};
use nsf::workloads::{gatesim, run};

fn main() {
    let workload = gatesim::build(1);
    let area = AreaModel::new(Tech::cmos_1p2um());

    println!("GateSim on NSF files of growing size (1.2um area alongside):\n");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "Regs", "Reloads", "Util %", "Contexts", "CPI", "Area mm^2"
    );
    println!("{}", "-".repeat(70));
    for regs in [40u32, 60, 80, 120, 160, 240] {
        let cfg = SimConfig::with_regfile(RegFileSpec::Nsf(NsfConfig::paper_default(regs)));
        let r = run(&workload, cfg).expect("validates");
        // Approximate the layout as single-register rows of 32 bits.
        let geom = Geometry {
            rows: regs,
            bits_per_row: 32,
            regs_per_row: 1,
            tag_bits: 11,
            addr_bits: 32 - regs.leading_zeros(),
        };
        let a = area.nsf(geom, Ports::three()).total_um2() / 1e6;
        println!(
            "{:<8} {:>12} {:>10.1} {:>12.2} {:>12.2} {:>12.2}",
            regs,
            r.regfile.regs_reloaded,
            r.utilization() * 100.0,
            r.occupancy.avg_contexts(),
            r.cpi(),
            a,
        );
    }
    println!("{}", "-".repeat(70));
    println!("Past the call-chain working set, more registers buy nothing — the");
    println!("paper sizes the NSF at 80-128 registers for exactly this reason.");
}
