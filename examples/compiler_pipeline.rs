//! Walk through the sequential tool chain: build a function in the IR,
//! register-allocate it by graph coloring, inspect the generated
//! assembly, and run it on the simulator.
//!
//! ```sh
//! cargo run --example compiler_pipeline
//! ```

use nsf::compiler::{color, compile, BinOp, CompileOpts, Cond, FuncBuilder, Module, Operand};
use nsf::sim::{Machine, SimConfig};

fn main() {
    // fn triangle(n) = if n == 0 { 0 } else { n + triangle(n - 1) }
    let mut f = FuncBuilder::new("triangle", 1);
    let n = f.param(0);
    let base = f.new_block();
    let rec = f.new_block();
    f.br(Cond::Eq, n, 0, base, rec);
    f.switch_to(base);
    f.ret(Some(Operand::Const(0)));
    f.switch_to(rec);
    let nm1 = f.bin(BinOp::Sub, n, 1);
    let sub = f.call("triangle", vec![Operand::Reg(nm1)], true).unwrap();
    let total = f.bin(BinOp::Add, n, sub);
    f.ret(Some(total.into()));
    let triangle = f.finish();

    // main: store triangle(100) at a known address.
    let result_addr = 0x0020_0000u32;
    let mut m = FuncBuilder::new("main", 0);
    let v = m.call("triangle", vec![Operand::Const(100)], true).unwrap();
    m.store(v, result_addr as i32, 0);
    m.ret(None);
    let module = Module::default().with(m.finish()).with(triangle);

    // Step 1: register allocation in isolation.
    let alloc = color::allocate(module.func("triangle").unwrap(), 18).unwrap();
    println!(
        "triangle: {} colors, {} rounds, {} spill slots",
        alloc.colors_used, alloc.rounds, alloc.frame_slots
    );

    // Step 2: full compilation to the ISA.
    let program = compile(&module, "main", CompileOpts::default()).unwrap();
    println!("\ngenerated assembly ({} instructions):", program.len());
    for line in program.to_string().lines().take(24) {
        println!("  {line}");
    }
    println!("  ...");

    // Step 3: execute. A recursive chain of 100 activations — each call
    // allocates a fresh register context; on the NSF nothing is saved.
    let mut machine = Machine::new(program, SimConfig::default()).unwrap();
    let report = machine.run_and_keep().unwrap();
    println!("\ntriangle(100)     = {}", machine.mem.peek(result_addr));
    println!("expected          = {}", 100 * 101 / 2);
    println!("procedure calls   = {}", report.calls);
    println!("registers spilled = {}", report.regfile.regs_spilled);
    println!("max contexts held = {}", report.occupancy.max_contexts);
}
