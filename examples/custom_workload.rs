//! Write your own benchmark and measure it across register file
//! organizations — the downstream-user workflow.
//!
//! The program is a small producer/consumer ring computing a polynomial
//! hash of a stream: the producer generates values, three stage threads
//! transform them, and a sink folds the result. Fine-grain messaging,
//! exactly the territory the NSF was designed for.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use nsf::core::Word;
use nsf::isa::{Inst, ProgramBuilder, Reg};
use nsf::mem::MemSystem;
use nsf::sim::{RegFileSpec, SimConfig};
use nsf::workloads::{run, Workload};

const STREAM: u32 = 64;
const RESULT: u32 = 0x0020_0000;

/// The same computation in Rust, for the output check.
fn reference() -> Word {
    let mut acc: Word = 0;
    for i in 0..STREAM {
        let v = i.wrapping_mul(2654435761) >> 8; // producer
        let v = v.wrapping_add(17); // stage 1
        let v = v ^ (v >> 3); // stage 2
        let v = v.wrapping_mul(3); // stage 3
        acc = acc.wrapping_mul(31).wrapping_add(v); // sink
    }
    acc
}

/// Build the four-stage pipeline as an ISA program.
fn build() -> Workload {
    let r = Reg::R;
    let chans = 4096i32; // channel-id table
    let join = 4100i32;
    let mut b = ProgramBuilder::new();
    let stage1 = b.new_label();
    let stage2 = b.new_label();
    let stage3 = b.new_label();
    let sink = b.new_label();

    // main: wire four channels, spawn the stages, produce, wait.
    b.export("main");
    b.load_const(r(0), chans);
    for k in 0..4 {
        b.emit(Inst::ChNew { rd: r(1) });
        b.emit(Inst::Sw {
            base: r(0),
            src: r(1),
            imm: k,
        });
    }
    b.load_const(r(2), join);
    b.emit(Inst::Li { rd: r(3), imm: 1 });
    b.emit(Inst::Sw {
        base: r(2),
        src: r(3),
        imm: 0,
    });
    for (label, k) in [(stage1, 0i32), (stage2, 1), (stage3, 2), (sink, 3)] {
        b.load_const(r(4), chans + k);
        b.spawn(label, r(4));
    }
    // Producer loop: v = (i * 2654435761) >> 8 into channel 0.
    b.emit(Inst::Lw {
        rd: r(5),
        base: r(0),
        imm: 0,
    });
    b.emit(Inst::Li { rd: r(6), imm: 0 });
    b.load_const(r(7), STREAM as i32);
    b.load_const(r(8), 2654435761u32 as i32);
    let produce = b.new_label();
    let fin = b.new_label();
    b.bind(produce);
    b.bge(r(6), r(7), fin);
    b.emit(Inst::Mul {
        rd: r(9),
        rs1: r(6),
        rs2: r(8),
    });
    b.emit(Inst::Srli {
        rd: r(9),
        rs1: r(9),
        imm: 8,
    });
    b.emit(Inst::ChSend {
        chan: r(5),
        src: r(9),
    });
    b.emit(Inst::Addi {
        rd: r(6),
        rs1: r(6),
        imm: 1,
    });
    b.jmp(produce);
    b.bind(fin);
    b.emit(Inst::SyncWait { base: r(2), imm: 0 });
    b.emit(Inst::Halt);

    // A stage: read my input channel (arg points at its id), transform,
    // forward to the next channel.
    let stage = |b: &mut ProgramBuilder, label, f: &dyn Fn(&mut ProgramBuilder)| {
        b.bind(label);
        b.emit(Inst::Mv {
            rd: r(0),
            rs1: nsf::isa::RV,
        });
        b.emit(Inst::Lw {
            rd: r(1),
            base: r(0),
            imm: 0,
        }); // in
        b.emit(Inst::Lw {
            rd: r(2),
            base: r(0),
            imm: 1,
        }); // out (sink: unused)
        b.emit(Inst::Li { rd: r(3), imm: 0 });
        b.load_const(r(4), STREAM as i32);
        let lp = b.new_label();
        let done = b.new_label();
        b.bind(lp);
        b.bge(r(3), r(4), done);
        b.emit(Inst::ChRecv {
            rd: r(5),
            chan: r(1),
        });
        f(b); // transform r5 (may use r6+)
        b.emit(Inst::Addi {
            rd: r(3),
            rs1: r(3),
            imm: 1,
        });
        b.jmp(lp);
        b.bind(done);
        b.emit(Inst::Halt);
        (lp, done)
    };

    stage(&mut b, stage1, &|b| {
        b.emit(Inst::Addi {
            rd: r(5),
            rs1: r(5),
            imm: 17,
        });
        b.emit(Inst::ChSend {
            chan: r(2),
            src: r(5),
        });
    });
    stage(&mut b, stage2, &|b| {
        b.emit(Inst::Srli {
            rd: r(6),
            rs1: r(5),
            imm: 3,
        });
        b.emit(Inst::Xor {
            rd: r(5),
            rs1: r(5),
            rs2: r(6),
        });
        b.emit(Inst::ChSend {
            chan: r(2),
            src: r(5),
        });
    });
    stage(&mut b, stage3, &|b| {
        b.emit(Inst::Li { rd: r(6), imm: 3 });
        b.emit(Inst::Mul {
            rd: r(5),
            rs1: r(5),
            rs2: r(6),
        });
        b.emit(Inst::ChSend {
            chan: r(2),
            src: r(5),
        });
    });
    // Sink: fold, publish, release the join.
    b.bind(sink);
    b.emit(Inst::Mv {
        rd: r(0),
        rs1: nsf::isa::RV,
    });
    b.emit(Inst::Lw {
        rd: r(1),
        base: r(0),
        imm: 0,
    });
    b.emit(Inst::Li { rd: r(2), imm: 0 }); // acc
    b.emit(Inst::Li { rd: r(3), imm: 0 });
    b.load_const(r(4), STREAM as i32);
    b.emit(Inst::Li { rd: r(7), imm: 31 });
    let lp = b.new_label();
    let done = b.new_label();
    b.bind(lp);
    b.bge(r(3), r(4), done);
    b.emit(Inst::ChRecv {
        rd: r(5),
        chan: r(1),
    });
    b.emit(Inst::Mul {
        rd: r(2),
        rs1: r(2),
        rs2: r(7),
    });
    b.emit(Inst::Add {
        rd: r(2),
        rs1: r(2),
        rs2: r(5),
    });
    b.emit(Inst::Addi {
        rd: r(3),
        rs1: r(3),
        imm: 1,
    });
    b.jmp(lp);
    b.bind(done);
    b.load_const(r(8), RESULT as i32);
    b.emit(Inst::Sw {
        base: r(8),
        src: r(2),
        imm: 0,
    });
    b.load_const(r(9), join);
    b.emit(Inst::Li { rd: r(10), imm: 0 });
    b.emit(Inst::Sw {
        base: r(9),
        src: r(10),
        imm: 0,
    });
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("builds");
    let expected = reference();
    Workload {
        name: "HashPipeline",
        parallel: true,
        program,
        source_lines: 0,
        mem_init: vec![],
        check: Box::new(move |mem: &MemSystem| {
            let got = mem.peek(RESULT);
            if got == expected {
                Ok(())
            } else {
                Err(format!("expected {expected}, got {got}"))
            }
        }),
    }
}

fn main() {
    let w = build();
    println!("Custom 5-thread hash pipeline, {STREAM} messages per stage\n");
    println!(
        "{:<28} {:>9} {:>8} {:>11} {:>10}",
        "Register file", "Cycles", "CPI", "Regs moved", "Overhead"
    );
    println!("{}", "-".repeat(70));
    // 2-deep hardware message queues: the pipeline's five threads rotate
    // every couple of messages, which is where the organizations differ.
    let with_backpressure = |spec| SimConfig {
        channel_capacity: Some(2),
        ..SimConfig::with_regfile(spec)
    };
    for (name, cfg) in [
        ("NSF 128x1", with_backpressure(RegFileSpec::paper_nsf(128))),
        (
            "Segmented 4x32 (HW)",
            with_backpressure(RegFileSpec::paper_segmented(4, 32)),
        ),
        (
            "SPARC windows 8x32",
            with_backpressure(RegFileSpec::sparc_windows(32)),
        ),
        ("Oracle", with_backpressure(RegFileSpec::Oracle)),
    ] {
        let r = run(&w, cfg).expect("pipeline validates");
        println!(
            "{:<28} {:>9} {:>8.2} {:>11} {:>9.1}%",
            name,
            r.cycles,
            r.cpi(),
            r.regfile.regs_reloaded + r.regfile.regs_spilled,
            r.spill_overhead() * 100.0,
        );
    }
    println!("{}", "-".repeat(70));
    println!(
        "Every row validated the same checksum ({:#x}).",
        reference()
    );
    println!("Channels are bounded to 2 messages (hardware queues with sender");
    println!("backpressure), so the five threads rotate constantly — remove");
    println!("`channel_capacity` and the contrast collapses to zero.");
}
