//! Offline stand-in for the slice of the `proptest` crate this workspace
//! uses. The workspace runs in environments with no crates.io access, so
//! the real `proptest` cannot be fetched; this shim keeps the property
//! tests' *sources* unchanged and their spirit intact:
//!
//! - [`proptest!`] runs each property over `ProptestConfig::cases`
//!   deterministically seeded random inputs (seed = test path + case
//!   index, so failures reproduce run-to-run and machine-to-machine).
//! - Strategies ([`strategy::Strategy`]) are plain samplers: integer
//!   ranges, [`strategy::Just`], tuples, `prop_map`, weighted
//!   [`prop_oneof!`], [`collection::vec`], [`sample::select`],
//!   [`option::of`], [`arbitrary::any`], and `".{lo,hi}"` string
//!   patterns.
//! - On failure the harness prints the offending inputs (`Debug`) and
//!   the case number, then re-panics. There is **no shrinking** — the
//!   printed inputs are the raw counterexample.
//!
//! Anything outside this surface is intentionally unimplemented.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// What the tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                    let inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "[proptest] {} failed at case {}/{} with inputs: {}",
                            stringify!($name), case, config.cases, inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

/// Asserts inside a property body (panics; the harness reports inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
