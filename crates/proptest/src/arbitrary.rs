//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// One uniform sample over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_sign_and_parity() {
        let mut rng = TestRng::for_case("arbitrary::cover", 0);
        let mut neg = false;
        let mut pos = false;
        let mut t = false;
        let mut f = false;
        for _ in 0..200 {
            let v: i32 = any::<i32>().pick(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
            let b: bool = any::<bool>().pick(&mut rng);
            t |= b;
            f |= !b;
        }
        assert!(neg && pos && t && f);
    }
}
