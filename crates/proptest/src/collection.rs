//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// A `Vec` of `len`-range length with elements from `elem`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range in collection::vec");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.pick(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range_and_cover_it() {
        let mut rng = TestRng::for_case("collection::len", 0);
        let s = vec(0u8..10, 2..6);
        let mut seen = [false; 6];
        for _ in 0..300 {
            let v = s.pick(&mut rng);
            assert!((2..6).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }
}
