//! The shim's runner state: configuration and the per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of proptest's configuration: how many random cases to run.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the debug-mode suite
        // in the repo's "everything runs in seconds" budget.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator: seeded from the test's module path
/// and the case index, so every failure is reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        use rand::Rng;
        self.inner.gen_range(0..n)
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// The raw generator, for `rand`-style range sampling.
    pub fn core(&mut self) -> &mut dyn RngCore {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
