//! Optional-value strategies (`option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` with probability ½, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Option<S::Value> {
        rng.coin().then(|| self.inner.pick(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::for_case("option::of", 0);
        let s = of(0u8..4);
        let mut some = false;
        let mut none = false;
        for _ in 0..100 {
            match s.pick(&mut rng) {
                Some(v) => {
                    assert!(v < 4);
                    some = true;
                }
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
