//! Sampling from explicit value lists (`sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

/// Picks uniformly from `items` (non-empty).
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "sample::select needs at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_every_item_eventually() {
        let mut rng = TestRng::for_case("sample::select", 0);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.pick(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
