//! Strategies: deterministic samplers with `prop_map`, tuples, ranges,
//! unions and boxing. No shrinking — `pick` returns a raw sample.

use crate::test_runner::TestRng;
use rand::SampleRange;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy generates.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.pick(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// Weighted choice among type-erased strategies
/// (what [`crate::prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if ticket < w {
                return arm.pick(rng);
            }
            ticket -= w;
        }
        unreachable!("ticket below total weight")
    }
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        SampleRange::sample(self, rng.core())
    }
}

impl<T: Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        SampleRange::sample(self, rng.core())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// `&str` patterns of the form `".{lo,hi}"` generate random strings of
/// `lo..=hi` characters (mostly printable ASCII, salted with newlines,
/// tabs and multibyte chars). Any other pattern yields itself literally
/// — the shim does not implement general regex generation.
impl Strategy for &str {
    type Value = String;
    fn pick(&self, rng: &mut TestRng) -> String {
        match parse_dot_repeat(self) {
            Some((lo, hi)) => {
                let len = lo + rng.below(hi - lo as u64 + 1) as usize;
                (0..len).map(|_| random_char(rng)).collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `".{lo,hi}"`, the one regex shape the workspace uses.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, u64)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: u64 = hi.trim().parse().ok()?;
    (lo as u64 <= hi).then_some((lo, hi))
}

fn random_char(rng: &mut TestRng) -> char {
    match rng.below(16) {
        0 => '\n',
        1 => ['\t', '\r', ' ', ';', ':', ','][rng.below(6) as usize],
        2 => char::from_u32(rng.below(0xD7FF) as u32 + 1).unwrap_or('x'),
        _ => (0x20 + rng.below(0x5F) as u8) as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = TestRng::for_case("strategy::test", 0);
        let s = (0u8..4, 10i32..=20).prop_map(|(a, b)| (b, a));
        for _ in 0..500 {
            let (b, a) = s.pick(&mut rng);
            assert!(a < 4 && (10..=20).contains(&b));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms_never() {
        let mut rng = TestRng::for_case("strategy::union", 0);
        let u = Union::new(vec![(0u32, Just(1u8).boxed()), (3, Just(2u8).boxed())]);
        for _ in 0..200 {
            assert_eq!(u.pick(&mut rng), 2);
        }
    }

    #[test]
    fn dot_repeat_patterns_bound_length() {
        let mut rng = TestRng::for_case("strategy::str", 0);
        for _ in 0..100 {
            let s = ".{0,40}".pick(&mut rng);
            assert!(s.chars().count() <= 40);
        }
        assert_eq!("literal".pick(&mut rng), "literal");
    }
}
