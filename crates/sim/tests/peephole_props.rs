//! Property test: the peephole pass never changes what a program
//! computes — random programs salted with removable junk produce the
//! same memory image before and after compaction.

use nsf_isa::peephole::peephole;
use nsf_isa::{Inst, ProgramBuilder, Reg};
use nsf_sim::{Machine, SimConfig};
use proptest::prelude::*;

const OUT: i32 = 0x0004_0000;

/// One step of a random program; junk variants are peephole targets.
#[derive(Clone, Debug)]
enum Step {
    Add(u8, u8, u8),
    Xori(u8, i16),
    Store(u8, u8),
    JunkNop,
    JunkSelfMove(u8),
    JunkAddiZero(u8),
    JunkJumpNext,
    SkipOne(u8), // beq r, r -> skips the next junk instruction
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(a, b, c)| Step::Add(a, b, c)),
        (0u8..6, any::<i16>()).prop_map(|(r, i)| Step::Xori(r, i / 4)),
        (0u8..6, 0u8..16).prop_map(|(r, s)| Step::Store(r, s)),
        Just(Step::JunkNop),
        (0u8..6).prop_map(Step::JunkSelfMove),
        (0u8..6).prop_map(Step::JunkAddiZero),
        Just(Step::JunkJumpNext),
        (0u8..6).prop_map(Step::SkipOne),
    ]
}

fn build(steps: &[Step]) -> nsf_isa::Program {
    let r = Reg::R;
    let mut b = ProgramBuilder::new();
    b.export("main");
    for i in 0..6u8 {
        b.emit(Inst::Li {
            rd: r(i),
            imm: i32::from(i) * 3 + 1,
        });
    }
    b.load_const(r(7), OUT);
    for step in steps {
        match *step {
            Step::Add(d, a, c) => {
                b.emit(Inst::Add {
                    rd: r(d),
                    rs1: r(a),
                    rs2: r(c),
                });
            }
            Step::Xori(d, i) => {
                b.emit(Inst::Xori {
                    rd: r(d),
                    rs1: r(d),
                    imm: i32::from(i),
                });
            }
            Step::Store(src, slot) => {
                b.emit(Inst::Sw {
                    base: r(7),
                    src: r(src),
                    imm: i32::from(slot),
                });
            }
            Step::JunkNop => {
                b.emit(Inst::Nop);
            }
            Step::JunkSelfMove(d) => {
                b.emit(Inst::Mv {
                    rd: r(d),
                    rs1: r(d),
                });
            }
            Step::JunkAddiZero(d) => {
                b.emit(Inst::Addi {
                    rd: r(d),
                    rs1: r(d),
                    imm: 0,
                });
            }
            Step::JunkJumpNext => {
                let l = b.new_label();
                b.jmp(l);
                b.bind(l);
            }
            Step::SkipOne(x) => {
                let l = b.new_label();
                b.beq(r(x), r(x), l);
                b.emit(Inst::Xori {
                    rd: r(x),
                    rs1: r(x),
                    imm: 0x55,
                }); // skipped
                b.bind(l);
            }
        }
    }
    // Final dump of all six registers.
    for i in 0..6u8 {
        b.emit(Inst::Sw {
            base: r(7),
            src: r(i),
            imm: 20 + i32::from(i),
        });
    }
    b.emit(Inst::Halt);
    b.finish("main").expect("builds")
}

fn memory_image(p: nsf_isa::Program) -> Vec<u32> {
    let mut m = Machine::new(p, SimConfig::default()).unwrap();
    m.run_and_keep().expect("runs");
    (0..26).map(|i| m.mem.peek(OUT as u32 + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn peephole_preserves_program_semantics(
        steps in proptest::collection::vec(arb_step(), 0..40)
    ) {
        let original = build(&steps);
        let (compact, removed) = peephole(&original).expect("peephole");
        prop_assert!(compact.len() + removed == original.len());
        prop_assert_eq!(memory_image(original), memory_image(compact));
    }
}
