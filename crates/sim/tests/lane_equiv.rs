//! The lane-batching equivalence wall, property-tested: random engine
//! specs from every family × seeded generated programs must produce
//! **bit-identical** results through [`LaneSet`] and through one serial
//! [`Machine`] per configuration — the full [`RunReport`] (cycles,
//! register-file statistics, occupancy samples) and the end-of-run
//! memory residue. Register-file organizations may only change timing;
//! any value divergence is a bug the lane engine must surface, never
//! absorb.

use nsf_core::SpillEngine;
use nsf_isa::{Inst, ProgramBuilder, Reg};
use nsf_sim::{batchable, LaneSet, Machine, RegFileSpec, RunReport, SimConfig};
use proptest::prelude::*;

/// Result area the generated programs write their residue into.
const OUT: u32 = 0x0005_0000;

/// One loop-body step of a generated program. Register budget: `r0`/`r1`
/// operands, `r2` accumulator, `r4` loop limit, `r5` loop counter,
/// `r6` = [`OUT`], `r7` scratch (always rewritten before `rfree`),
/// `g1` subroutine result — 8 context registers, under every family's
/// context size.
#[derive(Clone, Copy, Debug)]
enum Action {
    /// `r2 = r2 <op> c` through a loaded constant.
    Alu(AluOp, i32),
    /// Store the accumulator at `OUT + k`.
    Store(u32),
    /// Load `OUT + k` back and fold it into the accumulator.
    LoadAdd(u32),
    /// Atomic fetch-add at `OUT + k`; old value lands in `r7`.
    Amo(u32, i32),
    /// Write then deallocate the scratch register (`rfree` hint).
    Free,
    /// Call the generated subroutine chain and fold `g1` into `r2`.
    CallSub,
}

#[derive(Clone, Copy, Debug)]
enum AluOp {
    Add,
    Sub,
    Mul,
    Xor,
    Sll,
    Slt,
}

impl AluOp {
    fn inst(self, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        match self {
            AluOp::Add => Inst::Add { rd, rs1, rs2 },
            AluOp::Sub => Inst::Sub { rd, rs1, rs2 },
            AluOp::Mul => Inst::Mul { rd, rs1, rs2 },
            AluOp::Xor => Inst::Xor { rd, rs1, rs2 },
            AluOp::Sll => Inst::Sll { rd, rs1, rs2 },
            AluOp::Slt => Inst::Slt { rd, rs1, rs2 },
        }
    }
}

/// Shape of one generated workload: a counted loop over `actions`, plus
/// an optional depth-1/depth-2 subroutine chain reached via `CallSub`.
#[derive(Clone, Debug)]
struct ProgSpec {
    actions: Vec<Action>,
    iters: i32,
    call_depth: u32,
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Slt,
    ])
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (arb_alu(), any::<i32>()).prop_map(|(op, c)| Action::Alu(op, c)),
        2 => (1u32..24).prop_map(Action::Store),
        2 => (1u32..24).prop_map(Action::LoadAdd),
        1 => ((1u32..24), -3i32..4).prop_map(|(k, d)| Action::Amo(k, d)),
        1 => Just(Action::Free),
        2 => Just(Action::CallSub),
    ]
}

fn arb_prog() -> impl Strategy<Value = ProgSpec> {
    (
        proptest::collection::vec(arb_action(), 1..10),
        1i32..5,
        0u32..3,
    )
        .prop_map(|(actions, iters, call_depth)| ProgSpec {
            actions,
            iters,
            call_depth,
        })
}

/// Materializes a [`ProgSpec`] as a real program (always batchable:
/// single-threaded, no channels, no remote operations).
fn build_program(spec: &ProgSpec) -> nsf_isa::Program {
    let r = Reg::R;
    let g = Reg::G;
    let mut b = ProgramBuilder::new();
    let subs: Vec<_> = (0..spec.call_depth).map(|_| b.new_label()).collect();
    b.load_const(r(6), OUT as i32);
    b.load_const(r(2), 0);
    b.load_const(r(5), 0);
    b.load_const(r(4), spec.iters);
    let top = b.new_label();
    b.bind(top);
    for &a in &spec.actions {
        match a {
            Action::Alu(op, c) => {
                b.load_const(r(0), c);
                b.emit(op.inst(r(2), r(2), r(0)));
            }
            Action::Store(k) => {
                b.emit(Inst::Sw {
                    base: r(6),
                    src: r(2),
                    imm: k as i32,
                });
            }
            Action::LoadAdd(k) => {
                b.emit(Inst::Lw {
                    rd: r(1),
                    base: r(6),
                    imm: k as i32,
                });
                b.emit(Inst::Add {
                    rd: r(2),
                    rs1: r(2),
                    rs2: r(1),
                });
            }
            Action::Amo(k, d) => {
                b.emit(Inst::AmoAdd {
                    rd: r(7),
                    base: r(6),
                    imm: d,
                });
                b.emit(Inst::Sw {
                    base: r(6),
                    src: r(7),
                    imm: k as i32,
                });
            }
            Action::Free => {
                b.load_const(r(7), 1);
                b.emit(Inst::RFree { reg: r(7) });
            }
            Action::CallSub => {
                if let Some(&first) = subs.first() {
                    b.call(first);
                    b.emit(Inst::Add {
                        rd: r(2),
                        rs1: r(2),
                        rs2: g(1),
                    });
                }
            }
        }
    }
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    });
    b.bne(r(5), r(4), top);
    b.emit(Inst::Sw {
        base: r(6),
        src: r(2),
        imm: 0,
    });
    b.emit(Inst::Halt);
    // Subroutine chain: sub[i] calls sub[i+1], each folds a constant into
    // g1 in its own context (exercising allocation/spill across calls).
    for (i, &label) in subs.iter().enumerate() {
        b.bind(label);
        if let Some(&next) = subs.get(i + 1) {
            b.call(next);
        }
        b.load_const(r(0), 3 + i as i32);
        b.emit(Inst::Add {
            rd: g(1),
            rs1: g(1),
            rs2: r(0),
        });
        b.emit(Inst::Ret);
    }
    b.finish("main").unwrap()
}

/// A random engine spec drawn from all five families (two spill-engine
/// flavours where the organization supports both).
fn arb_spec() -> impl Strategy<Value = RegFileSpec> {
    prop_oneof![
        (16u32..=128).prop_map(RegFileSpec::paper_nsf),
        ((2u32..=8), (12u8..=32)).prop_map(|(f, r)| RegFileSpec::paper_segmented(f, r)),
        ((2u32..=8), (12u8..=32)).prop_map(|(f, r)| RegFileSpec::segmented_valid_only(f, r)),
        (12u8..=32).prop_map(|regs| RegFileSpec::Conventional {
            regs,
            engine: SpillEngine::hardware(),
        }),
        (12u8..=32).prop_map(|regs| RegFileSpec::Conventional {
            regs,
            engine: SpillEngine::software(),
        }),
        (12u8..=32).prop_map(RegFileSpec::sparc_windows),
        Just(RegFileSpec::Oracle),
    ]
}

/// Serial reference: one fresh [`Machine`] per configuration, with the
/// end-of-run residue of the result area appended.
fn run_serial(program: &nsf_isa::Program, cfgs: &[SimConfig]) -> Vec<(RunReport, Vec<u32>)> {
    cfgs.iter()
        .map(|&cfg| {
            let mut m = Machine::new(program.clone(), cfg).unwrap();
            let report = m.run_and_keep().unwrap();
            let residue = (0..24).map(|k| m.mem.peek(OUT + k)).collect();
            (report, residue)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random engine specs × random programs: the lane-batched pass must
    /// reproduce every serial run bit-for-bit — reports (including
    /// register-file statistics and occupancy) and memory residue.
    #[test]
    fn lane_batched_runs_are_bit_identical_to_serial(
        spec in arb_prog(),
        engines in proptest::collection::vec(arb_spec(), 2..6),
    ) {
        let program = build_program(&spec);
        let cfgs: Vec<SimConfig> = engines.into_iter().map(SimConfig::with_regfile).collect();
        prop_assert!(batchable(&program, &cfgs));

        let serial = run_serial(&program, &cfgs);
        let mut lanes = LaneSet::new(program, &cfgs).unwrap();
        let batched = lanes.run_and_keep().unwrap();

        prop_assert_eq!(batched.len(), serial.len());
        for (i, ((want_report, want_residue), got)) in serial.iter().zip(&batched).enumerate() {
            prop_assert_eq!(want_report, got, "lane {} report", i);
            let got_residue: Vec<u32> = (0..24).map(|k| lanes.lane_mem(i).peek(OUT + k)).collect();
            prop_assert_eq!(want_residue, &got_residue, "lane {} residue", i);
        }
    }

    /// One lane from each of the five families side by side, with random
    /// sizes: the mixed set stays batchable and exact.
    #[test]
    fn all_five_families_agree_in_one_lane_set(
        spec in arb_prog(),
        nsf_total in 16u32..=128,
        frames in 2u32..=6,
        frame_regs in 12u8..=32,
        conv_regs in 12u8..=32,
        win_regs in 12u8..=32,
    ) {
        let program = build_program(&spec);
        let cfgs: Vec<SimConfig> = [
            RegFileSpec::paper_nsf(nsf_total),
            RegFileSpec::paper_segmented(frames, frame_regs),
            RegFileSpec::Conventional { regs: conv_regs, engine: SpillEngine::hardware() },
            RegFileSpec::sparc_windows(win_regs),
            RegFileSpec::Oracle,
        ]
        .into_iter()
        .map(SimConfig::with_regfile)
        .collect();

        let serial = run_serial(&program, &cfgs);
        let mut lanes = LaneSet::new(program, &cfgs).unwrap();
        let batched = lanes.run_and_keep().unwrap();
        for (i, ((want_report, want_residue), got)) in serial.iter().zip(&batched).enumerate() {
            prop_assert_eq!(want_report, got, "family lane {}", i);
            let got_residue: Vec<u32> = (0..24).map(|k| lanes.lane_mem(i).peek(OUT + k)).collect();
            prop_assert_eq!(want_residue, &got_residue, "family lane {} residue", i);
        }
    }
}
