//! Concurrency-semantics tests: channel contention, remote memory
//! visibility, scheduling fairness.

use nsf_isa::asm::assemble;
use nsf_mem::{Addr, Word};
use nsf_sim::{Machine, RunReport, SimConfig};

fn run_and_peek(src: &str, addrs: &[Addr]) -> (RunReport, Vec<Word>) {
    let p = assemble(src).expect("assembles");
    let mut m = Machine::new(p, SimConfig::default()).unwrap();
    let r = m.run_and_keep().expect("runs");
    let vals = addrs.iter().map(|&a| m.mem.peek(a)).collect();
    (r, vals)
}

#[test]
fn two_receivers_share_one_channel_without_losing_messages() {
    // Producer sends 6 messages; two consumers each take what they can
    // and add it to a shared total. Every message must be consumed
    // exactly once regardless of wake order (blocked receives
    // re-execute).
    let (_, vals) = run_and_peek(
        "main:
            chnew r0
            li r1, 4000
            sw r0, (r1)           ; publish channel
            li r2, 7000
            li r3, 6
            sw r3, (r2)           ; remaining-messages counter
            li r9, 2
            li r10, 7002
            sw r9, (r10)          ; consumer join
            spawn consumer, r1
            spawn consumer, r1
            li r4, 0
        produce:
            bge r4, r3, wait
            addi r5, r4, 10       ; message payload: 10..15
            chsend r0, r5
            addi r4, r4, 1
            jmp produce
        wait:
            syncwait (r10)
            halt
        consumer:
            mv r0, g1
            lw r1, (r0)           ; channel id
            li r2, 7000
            li r3, 7001
            li r8, 7002
        take:
            lw r4, (r2)
            li r5, 0
            beq r4, r5, done      ; nothing left to take
            chrecv r6, r1
            amoadd r7, -1(r2)     ; claim one message
            lw r7, (r3)
            add r7, r7, r6
            sw r7, (r3)           ; total += payload
            jmp take
        done:
            amoadd r9, -1(r8)
            halt",
        &[7001, 7000],
    );
    assert_eq!(
        vals[0],
        (10..16).sum::<u32>(),
        "all six payloads consumed once"
    );
    assert_eq!(vals[1], 0);
}

#[test]
fn remote_store_is_visible_to_later_local_loads() {
    let (_, vals) = run_and_peek(
        "main:
            li r0, 5000
            li r1, 77
            swr r1, (r0)
            lw r2, (r0)
            li r3, 5001
            sw r2, (r3)
            halt",
        &[5001],
    );
    assert_eq!(vals[0], 77);
}

#[test]
fn remote_load_returns_value_at_issue_time() {
    // Documented memory model: a remote load snapshots the value when it
    // issues, not when it completes. Another thread overwrites the word
    // while the round trip is in flight.
    let (_, vals) = run_and_peek(
        "main:
            li r0, 5000
            li r1, 111
            sw r1, (r0)
            li r2, 0
            spawn overwriter, r2
            lwr r3, (r0)          ; issues with value 111; blocks ~100cy
            li r4, 5002
            sw r3, (r4)
            halt
        overwriter:
            li r0, 5000
            li r1, 222
            sw r1, (r0)
            halt",
        &[5002],
    );
    assert_eq!(vals[0], 111, "issue-time snapshot semantics");
}

#[test]
fn round_robin_is_fair_across_yielding_threads() {
    // Three yielding threads append their ids to a log; the log must
    // interleave strictly 1,2,3,1,2,3,... under round-robin.
    let (_, vals) = run_and_peek(
        "main:
            li r9, 3
            li r8, 7100
            sw r9, (r8)
            li r0, 1
            spawn worker, r0
            li r0, 2
            spawn worker, r0
            li r0, 3
            spawn worker, r0
            syncwait (r8)
            halt
        worker:
            mv r0, g1             ; my id
            li r1, 7200           ; log cursor cell
            li r2, 0              ; round
            li r3, 4
        loop:
            bge r2, r3, done
            amoadd r4, 1(r1)      ; claim a log slot (returns old cursor)
            li r5, 7300
            add r5, r5, r4
            sw r0, (r5)           ; log[slot] = id
            addi r2, r2, 1
            yield
            jmp loop
        done:
            li r6, 7100
            amoadd r7, -1(r6)
            halt",
        &[7300, 7301, 7302, 7303, 7304, 7305, 7306, 7307, 7308],
    );
    // First three slots are the first round in spawn order; afterwards
    // the rotation must stay stable.
    assert_eq!(&vals[..3], &[1, 2, 3], "first round follows spawn order");
    assert_eq!(&vals[3..6], &[1, 2, 3], "round-robin keeps the rotation");
    assert_eq!(&vals[6..9], &[1, 2, 3]);
}

#[test]
fn message_latency_is_charged() {
    // One message round trip must include two one-way delivery delays.
    let src = "main:
            chnew r0
            li r1, 4000
            sw r0, (r1)
            chnew r2
            sw r2, 1(r1)
            spawn echo, r1
            li r3, 5
            chsend r0, r3
            chrecv r4, r2
            halt
        echo:
            mv r0, g1
            lw r1, (r0)
            lw r2, 1(r0)
            chrecv r3, r1
            chsend r2, r3
            halt";
    let p = assemble(src).unwrap();
    let cfg = SimConfig::default(); // msg_latency = 50
    let r = Machine::new(p, cfg).unwrap().run().unwrap();
    assert!(
        r.cycles >= 100,
        "two 50-cycle deliveries must appear in the runtime: {}",
        r.cycles
    );
    assert!(r.idle_cycles > 0, "someone waited on the network");
}
