//! Property tests of instruction semantics: random ALU expressions are
//! executed by the machine and compared against their Rust meaning, and
//! random small thread systems must terminate deterministically.

use nsf_isa::{Inst, ProgramBuilder, Reg};
use nsf_sim::{Machine, SimConfig};
use proptest::prelude::*;

const OUT: u32 = 0x0003_0000;

#[derive(Clone, Copy, Debug)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Seq,
}

impl Op {
    fn all() -> [Op; 14] {
        use Op::*;
        [
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Seq,
        ]
    }

    fn inst(self, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        match self {
            Op::Add => Inst::Add { rd, rs1, rs2 },
            Op::Sub => Inst::Sub { rd, rs1, rs2 },
            Op::Mul => Inst::Mul { rd, rs1, rs2 },
            Op::Div => Inst::Div { rd, rs1, rs2 },
            Op::Rem => Inst::Rem { rd, rs1, rs2 },
            Op::And => Inst::And { rd, rs1, rs2 },
            Op::Or => Inst::Or { rd, rs1, rs2 },
            Op::Xor => Inst::Xor { rd, rs1, rs2 },
            Op::Sll => Inst::Sll { rd, rs1, rs2 },
            Op::Srl => Inst::Srl { rd, rs1, rs2 },
            Op::Sra => Inst::Sra { rd, rs1, rs2 },
            Op::Slt => Inst::Slt { rd, rs1, rs2 },
            Op::Sltu => Inst::Sltu { rd, rs1, rs2 },
            Op::Seq => Inst::Seq { rd, rs1, rs2 },
        }
    }

    /// The architectural meaning (matches `machine.rs` and the compiler's
    /// constant folder).
    fn eval(self, x: u32, y: u32) -> u32 {
        let (xs, ys) = (x as i32, y as i32);
        match self {
            Op::Add => x.wrapping_add(y),
            Op::Sub => x.wrapping_sub(y),
            Op::Mul => x.wrapping_mul(y),
            Op::Div => {
                if ys == 0 {
                    0
                } else {
                    xs.wrapping_div(ys) as u32
                }
            }
            Op::Rem => {
                if ys == 0 {
                    0
                } else {
                    xs.wrapping_rem(ys) as u32
                }
            }
            Op::And => x & y,
            Op::Or => x | y,
            Op::Xor => x ^ y,
            Op::Sll => x << (y & 31),
            Op::Srl => x >> (y & 31),
            Op::Sra => (xs >> (y & 31)) as u32,
            Op::Slt => u32::from(xs < ys),
            Op::Sltu => u32::from(x < y),
            Op::Seq => u32::from(x == y),
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    proptest::sample::select(Op::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every ALU op computes its architectural meaning for arbitrary
    /// operands, all the way through the register file and pipeline.
    #[test]
    fn alu_ops_match_reference(
        cases in proptest::collection::vec((arb_op(), any::<i32>(), any::<i32>()), 1..12)
    ) {
        let mut b = ProgramBuilder::new();
        let out = Reg::R(3);
        b.load_const(out, OUT as i32);
        for (i, &(op, x, y)) in cases.iter().enumerate() {
            b.load_const(Reg::R(0), x);
            b.load_const(Reg::R(1), y);
            b.emit(op.inst(Reg::R(2), Reg::R(0), Reg::R(1)));
            b.emit(Inst::Sw { base: out, src: Reg::R(2), imm: i as i32 });
        }
        b.emit(Inst::Halt);
        let p = b.finish("main").unwrap();
        let mut m = Machine::new(p, SimConfig::default()).unwrap();
        m.run_and_keep().unwrap();
        for (i, &(op, x, y)) in cases.iter().enumerate() {
            let got = m.mem.peek(OUT + i as u32);
            let want = op.eval(x as u32, y as u32);
            prop_assert_eq!(got, want, "{:?}({}, {}) case {}", op, x, y, i);
        }
    }

    /// Fork/join over arbitrary worker counts: the sum of per-thread
    /// contributions always arrives, regardless of register file size
    /// (tiny files force heavy spilling mid-computation).
    #[test]
    fn fork_join_sums(workers in 1u32..24, file_regs in 8u32..64) {
        let join = OUT as i32 + 100;
        let acc = OUT as i32 + 101;
        let r = Reg::R;
        let mut b = ProgramBuilder::new();
        let worker = b.new_label();
        b.load_const(r(0), workers as i32);
        b.load_const(r(1), join);
        b.emit(Inst::Sw { base: r(1), src: r(0), imm: 0 });
        for k in 0..workers {
            b.load_const(r(2), k as i32 + 1);
            b.spawn(worker, r(2));
        }
        b.emit(Inst::SyncWait { base: r(1), imm: 0 });
        b.emit(Inst::Halt);
        b.bind(worker);
        // Contribute g1 (= k+1) to the accumulator, then join.
        b.emit(Inst::Mv { rd: r(0), rs1: nsf_isa::RV });
        b.load_const(r(1), acc);
        b.emit(Inst::Lw { rd: r(2), base: r(1), imm: 0 });
        b.emit(Inst::Add { rd: r(3), rs1: r(2), rs2: r(0) });
        b.emit(Inst::Sw { base: r(1), src: r(3), imm: 0 });
        b.load_const(r(4), join);
        b.emit(Inst::AmoAdd { rd: r(5), base: r(4), imm: -1 });
        b.emit(Inst::Halt);
        let p = b.finish("main").unwrap();

        let cfg = SimConfig::with_regfile(nsf_sim::RegFileSpec::Nsf(
            nsf_core::NsfConfig::paper_default(file_regs),
        ));
        let mut m = Machine::new(p, cfg).unwrap();
        m.run_and_keep().unwrap();
        prop_assert_eq!(m.mem.peek(acc as u32), workers * (workers + 1) / 2);
    }
}
