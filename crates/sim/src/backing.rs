//! The register backing store: Ctable translation over the data cache.
//!
//! Paper Figure 4: spilled registers live in per-context save areas in
//! virtual memory; the Ctable translates a Context ID to the save area's
//! base, and the transfers go **through the data cache**, so register
//! traffic and program data contend for the same lines.
//!
//! The hardware keeps one presence bit per backed register (the valid bits
//! of the save frame); [`BackingMap`] holds them, since raw memory cannot
//! distinguish "spilled zero" from "never spilled".

use nsf_core::{BackingStore, Cid, StoreFault, Word};
use nsf_mem::MemSystem;
use std::collections::HashMap;

/// Per-context presence bits for backed registers (up to 64 per context).
#[derive(Debug, Default)]
pub struct BackingMap {
    present: HashMap<Cid, u64>,
}

impl BackingMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of contexts with any backed register (diagnostics).
    pub fn contexts(&self) -> usize {
        self.present.len()
    }
}

/// A [`BackingStore`] view combining the memory system and presence bits.
/// Construct one per register file operation; it borrows both halves.
pub struct CtableBacking<'a> {
    /// The memory hierarchy (provides the Ctable and the data cache).
    pub mem: &'a mut MemSystem,
    /// Presence bits.
    pub map: &'a mut BackingMap,
}

impl BackingStore for CtableBacking<'_> {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        let addr = self
            .mem
            .ctable()
            .reg_addr(cid, offset)
            .map_err(|_| StoreFault::Unmapped(cid))?;
        let cycles = self.mem.store(addr, value);
        *self.map.present.entry(cid).or_insert(0) |= 1 << offset;
        Ok(cycles)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        let addr = self
            .mem
            .ctable()
            .reg_addr(cid, offset)
            .map_err(|_| StoreFault::Unmapped(cid))?;
        // The transfer happens regardless of presence — hardware reads the
        // save slot either way — but only present registers carry data.
        let (value, cycles) = self.mem.load(addr);
        let present = self
            .map
            .present
            .get(&cid)
            .is_some_and(|bits| bits & (1 << offset) != 0);
        Ok((present.then_some(value), cycles))
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.map
            .present
            .get(&cid)
            .is_some_and(|bits| bits & (1 << offset) != 0)
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.map.present.get(&cid).is_some_and(|&bits| bits != 0)
    }

    fn discard_context(&mut self, cid: Cid) {
        self.map.present.remove(&cid);
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        if let Some(bits) = self.map.present.get_mut(&cid) {
            *bits &= !(1 << offset);
            if *bits == 0 {
                self.map.present.remove(&cid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_mem::MemConfig;

    fn setup() -> (MemSystem, BackingMap) {
        let mut mem = MemSystem::new(MemConfig::default());
        mem.ctable_mut().map(3, 0x9000);
        (mem, BackingMap::new())
    }

    #[test]
    fn spill_reload_through_cache() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        let c1 = b.spill(3, 2, 77).unwrap();
        assert!(c1 >= 1);
        assert!(b.is_present(3, 2));
        let (v, _) = b.reload(3, 2).unwrap();
        assert_eq!(v, Some(77));
        // The data physically lives at ctable(3) + 2.
        assert_eq!(mem.peek(0x9002), 77);
        assert!(
            mem.dcache_stats().accesses >= 2,
            "traffic goes through the cache"
        );
    }

    #[test]
    fn absent_register_reloads_no_data() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        let (v, cycles) = b.reload(3, 5).unwrap();
        assert_eq!(v, None);
        assert!(cycles >= 1, "the transfer still costs memory cycles");
    }

    #[test]
    fn unmapped_context_faults() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        assert_eq!(b.spill(9, 0, 1), Err(StoreFault::Unmapped(9)));
        assert!(matches!(b.reload(9, 0), Err(StoreFault::Unmapped(9))));
    }

    #[test]
    fn discards_clear_presence() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        b.spill(3, 0, 1).unwrap();
        b.spill(3, 1, 2).unwrap();
        b.discard_reg(3, 0);
        assert!(!b.is_present(3, 0));
        assert!(b.any_present(3));
        b.discard_context(3);
        assert!(!b.any_present(3));
        assert_eq!(map.contexts(), 0);
    }
}
