//! The register backing store: Ctable translation over the data cache.
//!
//! Paper Figure 4: spilled registers live in per-context save areas in
//! virtual memory; the Ctable translates a Context ID to the save area's
//! base, and the transfers go **through the data cache**, so register
//! traffic and program data contend for the same lines.
//!
//! The hardware keeps one presence bit per backed register (the valid bits
//! of the save frame); [`BackingMap`] holds them, since raw memory cannot
//! distinguish "spilled zero" from "never spilled".

use crate::config::BACKING_STRIDE_WORDS;
use nsf_core::{BackingStore, Cid, StoreFault, Word};
use nsf_mem::MemSystem;

/// Per-context presence bits for backed registers (up to 64 per context).
///
/// Stored as a dense table indexed by Context ID — CIDs are small and
/// reused by the scheduler, so this stays compact while keeping the
/// per-spill/per-reload presence check hash-free (these sit on every
/// register-file miss the simulator executes).
#[derive(Debug, Default)]
pub struct BackingMap {
    /// `present[cid]` is the context's presence bitmask; zero (or out of
    /// range) means nothing is backed.
    present: Vec<u64>,
}

impl BackingMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of contexts with any backed register (diagnostics).
    pub fn contexts(&self) -> usize {
        self.present.iter().filter(|&&bits| bits != 0).count()
    }

    #[inline]
    fn bits(&self, cid: Cid) -> u64 {
        self.present.get(usize::from(cid)).copied().unwrap_or(0)
    }

    #[inline]
    fn bits_mut(&mut self, cid: Cid) -> &mut u64 {
        let i = usize::from(cid);
        if i >= self.present.len() {
            self.present.resize(i + 1, 0);
        }
        &mut self.present[i]
    }
}

/// A [`BackingStore`] view combining the memory system and presence bits.
/// Construct one per register file operation; it borrows both halves.
pub struct CtableBacking<'a> {
    /// The memory hierarchy (provides the Ctable and the data cache).
    pub mem: &'a mut MemSystem,
    /// Presence bits.
    pub map: &'a mut BackingMap,
}

impl CtableBacking<'_> {
    /// Reads a context's whole save area (the full backing stride) into
    /// `buf` in one page-chunked pass — no per-word translation, no
    /// hashing, no allocation. A bulk inspection path for diagnostics
    /// and tests; it bypasses the cache timing model (engine-driven
    /// transfers charge latencies through [`BackingStore`] instead).
    pub fn frame_image(
        &mut self,
        cid: Cid,
        buf: &mut [Word; BACKING_STRIDE_WORDS as usize],
    ) -> Result<(), StoreFault> {
        let base = self
            .mem
            .ctable()
            .reg_addr(cid, 0)
            .map_err(|_| StoreFault::Unmapped(cid))?;
        self.mem.read_into(base, buf);
        Ok(())
    }
}

/// The owning form of [`CtableBacking`]: one lane's memory system and
/// presence bits held by value. [`crate::LaneSet`] keeps a `LaneStore`
/// per lane so register traffic, spill frames and program data stay
/// private to the lane while the instruction stream is shared. Every
/// operation delegates to the borrowed view, so the two are
/// semantically identical by construction.
pub struct LaneStore {
    /// The lane's private memory hierarchy (Ctable + data cache).
    pub mem: MemSystem,
    /// The lane's presence bits.
    pub map: BackingMap,
}

impl LaneStore {
    /// Wraps a memory system with empty presence bits.
    pub fn new(mem: MemSystem) -> Self {
        LaneStore {
            mem,
            map: BackingMap::new(),
        }
    }

    /// The borrowed [`CtableBacking`] view over this lane's halves.
    pub fn view(&mut self) -> CtableBacking<'_> {
        CtableBacking {
            mem: &mut self.mem,
            map: &mut self.map,
        }
    }
}

impl BackingStore for LaneStore {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        self.view().spill(cid, offset, value)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        self.view().reload(cid, offset)
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.map.bits(cid) & (1 << offset) != 0
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.map.bits(cid) != 0
    }

    fn discard_context(&mut self, cid: Cid) {
        self.view().discard_context(cid);
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        self.view().discard_reg(cid, offset);
    }
}

impl BackingStore for CtableBacking<'_> {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        let addr = self
            .mem
            .ctable()
            .reg_addr(cid, offset)
            .map_err(|_| StoreFault::Unmapped(cid))?;
        let cycles = self.mem.store(addr, value);
        *self.map.bits_mut(cid) |= 1 << offset;
        Ok(cycles)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        let addr = self
            .mem
            .ctable()
            .reg_addr(cid, offset)
            .map_err(|_| StoreFault::Unmapped(cid))?;
        // The transfer happens regardless of presence — hardware reads the
        // save slot either way — but only present registers carry data.
        let (value, cycles) = self.mem.load(addr);
        let present = self.map.bits(cid) & (1 << offset) != 0;
        Ok((present.then_some(value), cycles))
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.map.bits(cid) & (1 << offset) != 0
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.map.bits(cid) != 0
    }

    fn discard_context(&mut self, cid: Cid) {
        if let Some(bits) = self.map.present.get_mut(usize::from(cid)) {
            *bits = 0;
        }
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        if let Some(bits) = self.map.present.get_mut(usize::from(cid)) {
            *bits &= !(1 << offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_mem::MemConfig;

    fn setup() -> (MemSystem, BackingMap) {
        let mut mem = MemSystem::new(MemConfig::default());
        mem.ctable_mut().map(3, 0x9000);
        (mem, BackingMap::new())
    }

    #[test]
    fn spill_reload_through_cache() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        let c1 = b.spill(3, 2, 77).unwrap();
        assert!(c1 >= 1);
        assert!(b.is_present(3, 2));
        let (v, _) = b.reload(3, 2).unwrap();
        assert_eq!(v, Some(77));
        // The data physically lives at ctable(3) + 2.
        assert_eq!(mem.peek(0x9002), 77);
        assert!(
            mem.dcache_stats().accesses >= 2,
            "traffic goes through the cache"
        );
    }

    #[test]
    fn absent_register_reloads_no_data() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        let (v, cycles) = b.reload(3, 5).unwrap();
        assert_eq!(v, None);
        assert!(cycles >= 1, "the transfer still costs memory cycles");
    }

    #[test]
    fn unmapped_context_faults() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        assert_eq!(b.spill(9, 0, 1), Err(StoreFault::Unmapped(9)));
        assert!(matches!(b.reload(9, 0), Err(StoreFault::Unmapped(9))));
    }

    #[test]
    fn discards_clear_presence() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        b.spill(3, 0, 1).unwrap();
        b.spill(3, 1, 2).unwrap();
        b.discard_reg(3, 0);
        assert!(!b.is_present(3, 0));
        assert!(b.any_present(3));
        b.discard_context(3);
        assert!(!b.any_present(3));
        assert_eq!(map.contexts(), 0);
    }

    #[test]
    fn frame_image_reads_whole_save_area() {
        let (mut mem, mut map) = setup();
        let mut b = CtableBacking {
            mem: &mut mem,
            map: &mut map,
        };
        b.spill(3, 0, 11).unwrap();
        b.spill(3, 2, 33).unwrap();
        b.spill(3, 63, 99).unwrap();
        let mut frame = [0; BACKING_STRIDE_WORDS as usize];
        b.frame_image(3, &mut frame).unwrap();
        assert_eq!(frame[0], 11);
        assert_eq!(frame[1], 0);
        assert_eq!(frame[2], 33);
        assert_eq!(frame[63], 99);
        let mut other = [0; BACKING_STRIDE_WORDS as usize];
        assert_eq!(b.frame_image(9, &mut other), Err(StoreFault::Unmapped(9)));
    }
}
