//! Simulator configuration.

use nsf_core::{
    segmented::FramePolicy, ConventionalFile, EngineDispatch, NamedStateFile, NsfConfig,
    OracleFile, SegmentedConfig, SpillEngine, WindowedConfig, WindowedFile,
};
use nsf_mem::{Addr, MemConfig};
use nsf_runtime::SchedulerConfig;

/// Words of backing store reserved per context: context `c`'s save area
/// is `[backing_base + c * STRIDE, backing_base + (c + 1) * STRIDE)`.
/// 64 matches the register files' per-context valid bitmasks (`u64`);
/// `Machine::new` rejects any organization that could spill past it.
pub const BACKING_STRIDE_WORDS: Addr = 64;

/// Which register file organization the processor uses.
#[derive(Clone, Copy, Debug)]
pub enum RegFileSpec {
    /// The Named-State Register File.
    Nsf(NsfConfig),
    /// A segmented (multithreaded baseline) file.
    Segmented(SegmentedConfig),
    /// A conventional single-context file.
    Conventional {
        /// Registers in the file.
        regs: u8,
        /// Spill machinery for context switches.
        engine: SpillEngine,
    },
    /// A SPARC-style windowed file (overflow/underflow traps, full flush
    /// on thread switch) — the related-work baseline of paper §5.
    Windowed(WindowedConfig),
    /// The infinite oracle (differential testing).
    Oracle,
}

impl RegFileSpec {
    /// Instantiates the organization, statically dispatched: the machine
    /// holds the engine by value so per-instruction register operations
    /// resolve through a `match` instead of a vtable.
    pub fn build(&self) -> EngineDispatch {
        match *self {
            RegFileSpec::Nsf(cfg) => NamedStateFile::new(cfg).into(),
            RegFileSpec::Segmented(cfg) => SegmentedFile::new(cfg).into(),
            RegFileSpec::Conventional { regs, engine } => {
                ConventionalFile::with_engine(regs, engine).into()
            }
            RegFileSpec::Windowed(cfg) => WindowedFile::new(cfg).into(),
            RegFileSpec::Oracle => OracleFile::new().into(),
        }
    }

    /// The most backing-store words one context of this organization can
    /// ever spill — register offsets stay below the architectural
    /// context size, so this bounds the per-context save area.
    pub fn max_spill_regs(&self) -> u32 {
        match *self {
            RegFileSpec::Nsf(cfg) => u32::from(cfg.ctx_regs),
            RegFileSpec::Segmented(cfg) => u32::from(cfg.frame_regs),
            RegFileSpec::Conventional { regs, .. } => u32::from(regs),
            RegFileSpec::Windowed(cfg) => u32::from(cfg.window_regs),
            // The oracle holds everything and never spills.
            RegFileSpec::Oracle => 0,
        }
    }

    /// The paper's NSF reference point: `total` registers, 1-register
    /// lines, LRU, demand reload.
    pub fn paper_nsf(total: u32) -> Self {
        RegFileSpec::Nsf(NsfConfig::paper_default(total))
    }

    /// The paper's segmented reference point: `frames` frames of
    /// `frame_regs`, full-frame transfers, hardware assist.
    pub fn paper_segmented(frames: u32, frame_regs: u8) -> Self {
        RegFileSpec::Segmented(SegmentedConfig::paper_default(frames, frame_regs))
    }

    /// A SPARC-like windowed file: 8 windows, software trap handlers.
    pub fn sparc_windows(window_regs: u8) -> Self {
        RegFileSpec::Windowed(WindowedConfig::sparc_like(window_regs))
    }

    /// Segmented with per-register valid bits (the "live registers only"
    /// variant of §7.3).
    pub fn segmented_valid_only(frames: u32, frame_regs: u8) -> Self {
        let mut cfg = SegmentedConfig::paper_default(frames, frame_regs);
        cfg.policy = FramePolicy::ValidOnly;
        RegFileSpec::Segmented(cfg)
    }
}

use nsf_core::SegmentedFile;

/// Per-class instruction latencies, in cycles. Calibrated to the Sparc-2
/// class timings the paper used ("The instruction and memory access times
/// were taken from a Sparc2 processor emulator").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleTable {
    /// ALU / register-move instructions.
    pub alu: u32,
    /// Branches and jumps.
    pub control: u32,
    /// Extra cycle when a branch is taken (pipeline refill).
    pub taken_extra: u32,
    /// Base cost of a memory instruction (the cache adds its latency).
    pub mem_base: u32,
    /// Thread management / channel instructions.
    pub thread_op: u32,
    /// `call`/`ret` base cost (context allocation bookkeeping).
    pub proc_op: u32,
    /// Hints and no-ops.
    pub misc: u32,
    /// Pipeline drain/refill cost of switching between threads.
    pub switch_overhead: u32,
}

impl Default for CycleTable {
    fn default() -> Self {
        CycleTable {
            alu: 1,
            control: 1,
            taken_extra: 1,
            mem_base: 1,
            thread_op: 2,
            proc_op: 2,
            misc: 1,
            switch_overhead: 2,
        }
    }
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Register file organization.
    pub regfile: RegFileSpec,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Scheduler limits.
    pub sched: SchedulerConfig,
    /// Instruction latencies.
    pub cycles: CycleTable,
    /// Round-trip latency of a remote load, in cycles (paper: "more than
    /// 100 instruction cycles").
    pub remote_latency: u32,
    /// One-way message delivery latency, in cycles.
    pub msg_latency: u32,
    /// Occupancy sampling period, in instructions.
    pub sample_interval: u64,
    /// Hard instruction budget (guards against runaway programs).
    pub max_instructions: u64,
    /// Optional scheduling quantum in instructions. `None` (the paper's
    /// model) is pure block multithreading: a thread runs until it
    /// blocks. `Some(n)` additionally preempts after `n` instructions
    /// when another thread is ready, approximating the interleaved
    /// multithreading of HEP/Tera-class machines (paper §3: "processors
    /// may interleave successive instructions from different threads").
    pub quantum: Option<u64>,
    /// Base virtual address of the register backing-store arena; context
    /// `c`'s save area starts at `backing_base + c * 64`.
    pub backing_base: Addr,
    /// Depth of the post-mortem execution trace ring (0 = disabled).
    pub trace_depth: usize,
    /// Capacity applied to every channel created by `chnew`: `None`
    /// (default) gives unbounded software queues; `Some(n)` models
    /// hardware message queues of `n` entries with sender backpressure.
    pub channel_capacity: Option<u32>,
    /// Optional instruction cache. `None` (the paper's model) assumes
    /// ideal fetch; `Some(cfg)` charges the miss penalty of a fetch
    /// through this cache on top of the pipelined hit path.
    pub icache: Option<nsf_mem::CacheConfig>,
    /// Frontend issue width. `1` (the paper's model, and the default) is
    /// the plain single-issue machine — bit-identical to every release
    /// before the pipeline existed. `>1` enables the scoreboarded
    /// in-order multi-issue frontend ([`crate::pipeline`]), which
    /// arbitrates register-file ports per cycle and charges port
    /// conflicts to `RegFileStats::port_conflict_cycles`.
    pub issue_width: u32,
    /// Register-file read ports arbitrated per issue cycle (only
    /// consulted when `issue_width > 1`). The paper's files are
    /// 3-ported: 2 reads, 1 write.
    pub read_ports: u32,
    /// Register-file write ports arbitrated per issue cycle (only
    /// consulted when `issue_width > 1`).
    pub write_ports: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            regfile: RegFileSpec::paper_nsf(128),
            mem: MemConfig::default(),
            sched: SchedulerConfig::default(),
            cycles: CycleTable::default(),
            remote_latency: 100,
            msg_latency: 50,
            sample_interval: 16,
            max_instructions: 500_000_000,
            quantum: None,
            backing_base: 0x4000_0000,
            trace_depth: 0,
            channel_capacity: None,
            icache: None,
            issue_width: 1,
            read_ports: 2,
            write_ports: 1,
        }
    }
}

/// Version of the frontend-fingerprint field encoding
/// ([`SimConfig::frontend_fingerprint_fields`]). Bump whenever the
/// [`SimConfig::frontend_eq`] field set, a field's semantics, or the
/// push order changes: persistent stores key captured event streams by
/// a hash over these fields, and a stale key definition must invalidate
/// every old entry rather than silently match one.
pub const FRONTEND_FINGERPRINT_VERSION: u32 = 1;

impl SimConfig {
    /// A config with everything default except the register file.
    pub fn with_regfile(regfile: RegFileSpec) -> Self {
        SimConfig {
            regfile,
            ..Default::default()
        }
    }

    /// Feeds every frontend-relevant field — exactly the set
    /// [`SimConfig::frontend_eq`] compares, and nothing else — into
    /// `push` as a fixed-order word sequence. Two configurations push
    /// identical sequences **iff** they are `frontend_eq` (options are
    /// presence-tagged so `None` can never alias a value), which makes
    /// the sequence a sound content-address for captured frontend event
    /// streams: a hash over it (plus the workload's content) keys the
    /// persistent stream store in `nsf_trace::store`.
    pub fn frontend_fingerprint_fields(&self, push: &mut impl FnMut(u64)) {
        let opt = |v: Option<u64>, push: &mut dyn FnMut(u64)| match v {
            None => push(0),
            Some(v) => {
                push(1);
                push(v);
            }
        };
        push(u64::from(FRONTEND_FINGERPRINT_VERSION));
        // mem: data-cache geometry/latency and Ctable capacity.
        push(u64::from(self.mem.dcache.capacity_words));
        push(u64::from(self.mem.dcache.line_words));
        push(u64::from(self.mem.dcache.ways));
        push(u64::from(self.mem.dcache.hit_cycles));
        push(u64::from(self.mem.dcache.miss_penalty));
        push(self.mem.ctable_slots as u64);
        // sched
        push(u64::from(self.sched.max_threads));
        push(u64::from(self.sched.cid_capacity));
        push(u64::from(self.sched.stack_words));
        push(u64::from(self.sched.stack_base));
        // cycles
        push(u64::from(self.cycles.alu));
        push(u64::from(self.cycles.control));
        push(u64::from(self.cycles.taken_extra));
        push(u64::from(self.cycles.mem_base));
        push(u64::from(self.cycles.thread_op));
        push(u64::from(self.cycles.proc_op));
        push(u64::from(self.cycles.misc));
        push(u64::from(self.cycles.switch_overhead));
        // scalar frontend parameters
        push(u64::from(self.remote_latency));
        push(u64::from(self.msg_latency));
        push(self.sample_interval);
        push(self.max_instructions);
        opt(self.quantum, push);
        push(u64::from(self.backing_base));
        push(self.trace_depth as u64);
        opt(self.channel_capacity.map(u64::from), push);
        match &self.icache {
            None => push(0),
            Some(c) => {
                push(1);
                push(u64::from(c.capacity_words));
                push(u64::from(c.line_words));
                push(u64::from(c.ways));
                push(u64::from(c.hit_cycles));
                push(u64::from(c.miss_penalty));
            }
        }
        push(u64::from(self.issue_width));
        push(u64::from(self.read_ports));
        push(u64::from(self.write_ports));
    }

    /// `true` when `self` and `other` agree on everything *except* the
    /// register file organization — the machine frontend (memory
    /// geometry, scheduler limits, cycle table, latencies, sampling,
    /// budgets) is identical, so two runs of the same program differ
    /// only in register-file behaviour. This is the compatibility
    /// predicate lane batching ([`crate::LaneSet`]) requires: lanes
    /// share one fetch/decode/schedule stream and must therefore share
    /// every frontend parameter.
    pub fn frontend_eq(&self, other: &SimConfig) -> bool {
        self.mem == other.mem
            && self.sched == other.sched
            && self.cycles == other.cycles
            && self.remote_latency == other.remote_latency
            && self.msg_latency == other.msg_latency
            && self.sample_interval == other.sample_interval
            && self.max_instructions == other.max_instructions
            && self.quantum == other.quantum
            && self.backing_base == other.backing_base
            && self.trace_depth == other.trace_depth
            && self.channel_capacity == other.channel_capacity
            && self.icache == other.icache
            && self.issue_width == other.issue_width
            && self.read_ports == other.read_ports
            && self.write_ports == other.write_ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_core::RegisterFile;

    #[test]
    fn specs_build_the_right_organization() {
        assert!(RegFileSpec::paper_nsf(128)
            .build()
            .describe()
            .contains("NSF"));
        assert!(RegFileSpec::paper_segmented(4, 32)
            .build()
            .describe()
            .contains("Segmented"));
        let conv = RegFileSpec::Conventional {
            regs: 32,
            engine: SpillEngine::hardware(),
        };
        assert!(conv.build().describe().contains("Conventional"));
        assert!(RegFileSpec::Oracle.build().describe().contains("Oracle"));
    }

    #[test]
    fn default_matches_paper_parallel_setup() {
        let c = SimConfig::default();
        assert_eq!(c.remote_latency, 100);
        assert!(matches!(c.regfile, RegFileSpec::Nsf(n) if n.total_regs == 128));
    }
}
