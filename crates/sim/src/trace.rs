//! Post-mortem execution tracing.
//!
//! When enabled (`SimConfig::trace_depth > 0`), the machine records the
//! last N executed instructions in a ring buffer. When a run ends in a
//! [`crate::SimError`], the trace shows exactly how the program got
//! there — which thread, which context, which instructions — without the
//! cost of full logging.

use nsf_core::Cid;
use nsf_isa::Inst;
use nsf_runtime::ThreadId;
use std::collections::VecDeque;
use std::fmt;

/// One executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the instruction issued.
    pub cycle: u64,
    /// Thread that issued it.
    pub tid: ThreadId,
    /// Register context it ran under.
    pub cid: Cid,
    /// Program counter.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cycle {:>8}] t{:<3} <cid {:>3}> pc {:>5}: {}",
            self.cycle, self.tid, self.cid, self.pc, self.inst
        )
    }
}

/// A bounded ring of recent [`TraceEntry`] records.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    depth: usize,
    ring: VecDeque<TraceEntry>,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `depth` entries (0 disables it).
    pub fn new(depth: usize) -> Self {
        TraceBuffer {
            depth,
            ring: VecDeque::with_capacity(depth.min(4096)),
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Records one entry, evicting the oldest when full.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.depth == 0 {
            return;
        }
        if self.ring.len() == self.depth {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.ring {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cycle: u64) -> TraceEntry {
        TraceEntry {
            cycle,
            tid: 0,
            cid: 1,
            pc: cycle as u32,
            inst: Inst::Nop,
        }
    }

    #[test]
    fn ring_keeps_the_newest() {
        let mut t = TraceBuffer::new(3);
        for c in 0..5 {
            t.record(entry(c));
        }
        let cycles: Vec<u64> = t.entries().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn zero_depth_records_nothing() {
        let mut t = TraceBuffer::new(0);
        t.record(entry(1));
        assert!(t.is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn display_is_line_oriented() {
        let mut t = TraceBuffer::new(2);
        t.record(entry(7));
        let s = t.to_string();
        assert!(s.contains("cycle"));
        assert!(s.contains("nop"));
    }
}
