//! The scoreboarded multi-issue frontend.
//!
//! The paper's evaluation is single-issue, so its register files never
//! face port pressure: a 3-ported file always has a port for the one
//! instruction in flight. This module adds the scenario ROADMAP item 4
//! calls for — an in-order frontend with a configurable issue width
//! ([`SimConfig::issue_width`](crate::SimConfig)), a register
//! scoreboard with result forwarding, and per-cycle arbitration of the
//! file's read/write ports — so organizations are measured in the
//! regime where read ports become the bottleneck.
//!
//! ## Timing overlay, not reordering
//!
//! Functional execution stays exactly the serial machine's: one
//! instruction at a time, in program order, against the same engines
//! and memory. The pipeline only replaces the *clock accounting* of the
//! base issue charge. Each instruction either
//!
//! * **co-issues** into the current cycle's group — free — when a slot
//!   is open, it is single-cycle, none of its sources were written by
//!   the group (results forward between *cycles*, not within one), and
//!   the group still has read/write ports for its register-file
//!   accesses; or
//! * **opens a new cycle**, paying its base cycles. If ports were the
//!   *only* reason it could not co-issue, that cycle is charged to
//!   [`RegFileStats::port_conflict_cycles`]
//!   (`nsf_core::RegFileStats`).
//!
//! Any cycles charged outside issue — engine reload/spill stalls,
//! cache latencies, taken branches, context switches, idle — break the
//! current group: the frontend cannot issue past a stall. The pipeline
//! detects these as clock movement between issues, so every stall site
//! flushes without being instrumented.
//!
//! ## The CAM decoder's ported-access penalty
//!
//! A single-issue base cycle hides the register file's access time.
//! In a multi-issue cycle the file really performs several ported
//! accesses back-to-back, so the *slower* CAM-decoded access of the
//! NSF stretches the cycle where an indexed decode would not. Each
//! co-issued register-file access therefore accrues the NSF's ported
//! access-time overhead from the calibrated `nsf-vlsi` timing model
//! ([`TimingModel::nsf_ported_overhead`]) as a fixed-point fraction of
//! a cycle; whole cycles are charged to the clock as they accumulate.
//! Indexed organizations (segmented, windowed, conventional) accrue
//! nothing — this is the first place the paper's Figure 6 latency gap
//! becomes visible in *cycles*, not just nanoseconds.
//!
//! Because the functional stream is width-invariant, co-issuing an
//! instruction always saves exactly one cycle and costs at most its
//! (clamped, sub-cycle) access penalty, so CPI is non-increasing in
//! issue width for every organization.

use crate::config::{RegFileSpec, SimConfig};
use nsf_isa::{Inst, Reg};
use nsf_vlsi::{Geometry, Ports, Tech, TimingModel};

/// Context-ID width assumed for the swept NSF decoders — the paper's
/// 64-context tag (6 bits), matching `nsf-explore`'s cost mapping.
const CID_BITS: u32 = 6;

/// Fixed-point scale for sub-cycle penalties: `1 << 32` = one cycle.
const FP_ONE: u64 = 1 << 32;

/// The registers one instruction touches: up to two sources and one
/// destination. Global (`Reg::G`) registers live in the scheduler, not
/// the register file, so they participate in hazard tracking but never
/// consume file ports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegUses {
    /// Source registers (read before execute).
    pub reads: [Option<Reg>; 2],
    /// Destination register (written by execute).
    pub write: Option<Reg>,
}

impl RegUses {
    fn new(reads: [Option<Reg>; 2], write: Option<Reg>) -> Self {
        RegUses { reads, write }
    }

    /// Register-*file* port demand: `(read ports, write ports)` — `R`
    /// registers only.
    pub fn port_demand(&self) -> (u32, u32) {
        let reads = self
            .reads
            .iter()
            .filter(|r| matches!(r, Some(Reg::R(_))))
            .count() as u32;
        let writes = u32::from(matches!(self.write, Some(Reg::R(_))));
        (reads, writes)
    }
}

/// The architectural registers instruction `inst` reads and writes, as
/// decoded by the serial machine's execute loop. `rfree` counts as a
/// write (it mutates file state through a write port); remote loads
/// count only their address read (the value arrives via the pending-
/// write path after the thread blocks).
pub fn reg_uses(inst: &Inst) -> RegUses {
    use Inst::*;
    let r = |reg: Reg| Some(reg);
    match *inst {
        Add { rd, rs1, rs2 }
        | Sub { rd, rs1, rs2 }
        | Mul { rd, rs1, rs2 }
        | Div { rd, rs1, rs2 }
        | Rem { rd, rs1, rs2 }
        | And { rd, rs1, rs2 }
        | Or { rd, rs1, rs2 }
        | Xor { rd, rs1, rs2 }
        | Sll { rd, rs1, rs2 }
        | Srl { rd, rs1, rs2 }
        | Sra { rd, rs1, rs2 }
        | Slt { rd, rs1, rs2 }
        | Sltu { rd, rs1, rs2 }
        | Seq { rd, rs1, rs2 } => RegUses::new([r(rs1), r(rs2)], r(rd)),
        Addi { rd, rs1, .. }
        | Andi { rd, rs1, .. }
        | Ori { rd, rs1, .. }
        | Xori { rd, rs1, .. }
        | Slli { rd, rs1, .. }
        | Srli { rd, rs1, .. }
        | Srai { rd, rs1, .. }
        | Slti { rd, rs1, .. }
        | Mv { rd, rs1 } => RegUses::new([r(rs1), None], r(rd)),
        Li { rd, .. } | ChNew { rd } => RegUses::new([None, None], r(rd)),
        Lw { rd, base, .. } | AmoAdd { rd, base, .. } => RegUses::new([r(base), None], r(rd)),
        Sw { base, src, .. } | SwRemote { base, src, .. } => RegUses::new([r(base), r(src)], None),
        LwRemote { base, .. } | SyncWait { base, .. } => RegUses::new([r(base), None], None),
        Beq { rs1, rs2, .. }
        | Bne { rs1, rs2, .. }
        | Blt { rs1, rs2, .. }
        | Bge { rs1, rs2, .. } => RegUses::new([r(rs1), r(rs2)], None),
        Spawn { arg, .. } => RegUses::new([r(arg), None], None),
        ChSend { chan, src } => RegUses::new([r(chan), r(src)], None),
        ChRecv { rd, chan } => RegUses::new([r(chan), None], r(rd)),
        RFree { reg } => RegUses::new([None, None], r(reg)),
        Jmp { .. } | Call { .. } | Ret | Halt | Yield | Nop => RegUses::default(),
    }
}

/// Registers written by the current issue group: a 256-bit set over `R`
/// offsets plus a 64-bit set over `G` indices. Context IDs are ignored
/// — co-issue never spans a context switch (switches charge cycles,
/// which flush the group).
#[derive(Clone, Copy, Debug, Default)]
struct WriteSet {
    r: [u64; 4],
    g: u64,
}

impl WriteSet {
    fn clear(&mut self) {
        *self = WriteSet::default();
    }

    fn insert(&mut self, reg: Reg) {
        match reg {
            Reg::R(off) => self.r[usize::from(off >> 6)] |= 1 << (off & 63),
            Reg::G(i) => self.g |= 1 << (i & 63),
        }
    }

    fn contains(&self, reg: Reg) -> bool {
        match reg {
            Reg::R(off) => self.r[usize::from(off >> 6)] & (1 << (off & 63)) != 0,
            Reg::G(i) => self.g & (1 << (i & 63)) != 0,
        }
    }

    /// RAW or WAW between `uses` and this group's writes. (Forwarding
    /// covers *prior* cycles; same-cycle producers cannot feed
    /// consumers, and two same-cycle writers would race.)
    fn hazard(&self, uses: &RegUses) -> bool {
        uses.reads.iter().flatten().any(|&reg| self.contains(reg))
            || uses.write.is_some_and(|reg| self.contains(reg))
    }
}

/// The per-ported-access penalty (fraction of a cycle, fixed-point) a
/// CAM-decoded organization pays in multi-access cycles, from the
/// calibrated `nsf-vlsi` ported timing model. Indexed decoders pay
/// nothing. Clamped to a quarter cycle so one instruction's accesses
/// (at most three) can never cost more than the cycle co-issuing saves.
fn cam_penalty_fp(spec: &RegFileSpec, read_ports: u32, write_ports: u32) -> u64 {
    let RegFileSpec::Nsf(cfg) = spec else {
        return 0;
    };
    let line = u32::from(cfg.regs_per_line).max(1);
    // Round both capacities up to whole lines: swept configs need not
    // divide evenly, and the penalty is a smooth function of rows.
    let total = cfg.total_regs.max(1).div_ceil(line) * line;
    let ctx = u32::from(cfg.ctx_regs).max(1).div_ceil(line) * line;
    let geom = Geometry::associative(total, line, ctx, CID_BITS);
    let ports = Ports {
        reads: read_ports,
        writes: write_ports,
    };
    let overhead = TimingModel::new(Tech::cmos_1p2um())
        .nsf_ported_overhead(geom, ports)
        .clamp(0.0, 0.25);
    (overhead * FP_ONE as f64) as u64
}

/// Issue-group state of the scoreboarded frontend. Owned by the
/// [`Machine`](crate::Machine) only when `issue_width > 1`; the
/// single-issue clock path never constructs one.
#[derive(Debug)]
pub struct Pipeline {
    width: u32,
    read_ports: u32,
    write_ports: u32,
    /// Instructions issued into the current cycle (`0` = no open group).
    slots: u32,
    reads_used: u32,
    writes_used: u32,
    writes: WriteSet,
    /// Clock value immediately after our last issue charge; any drift
    /// means stall/latency cycles elapsed and the group must flush.
    expected_clock: u64,
    /// Per-ported-access CAM penalty (fixed point; 0 for indexed files).
    penalty_fp: u64,
    /// Accrued sub-cycle CAM penalty.
    acc_fp: u64,
    /// Cycles charged because an instruction could not get a file port.
    pub port_conflict_cycles: u64,
    /// Whole cycles charged for CAM ported-access overhead.
    pub cam_penalty_cycles: u64,
}

impl Pipeline {
    /// Builds the frontend for `cfg` (`cfg.issue_width` must be > 1;
    /// the caller keeps width 1 on the legacy path).
    pub fn new(cfg: &SimConfig) -> Self {
        Pipeline {
            width: cfg.issue_width,
            read_ports: cfg.read_ports,
            write_ports: cfg.write_ports,
            slots: 0,
            reads_used: 0,
            writes_used: 0,
            writes: WriteSet::default(),
            expected_clock: 0,
            penalty_fp: cam_penalty_fp(&cfg.regfile, cfg.read_ports, cfg.write_ports),
            acc_fp: 0,
            port_conflict_cycles: 0,
            cam_penalty_cycles: 0,
        }
    }

    /// Closes the current group: the next instruction opens a new cycle.
    fn close(&mut self) {
        self.slots = 0;
        self.reads_used = 0;
        self.writes_used = 0;
        self.writes.clear();
    }

    /// Accounts one instruction's issue, advancing `clock` by the cycles
    /// it costs (0 when it co-issues). Replaces the serial machine's
    /// `clock += base_cycles` charge; everything downstream of issue
    /// (engine stalls, memory latency, branch/switch penalties) still
    /// charges the clock directly and flushes the group via
    /// `expected_clock` drift.
    pub fn issue(&mut self, inst: &Inst, base: u32, clock: &mut u64) {
        if *clock != self.expected_clock {
            // Stall or latency cycles elapsed since the last issue: the
            // frontend drained; start a fresh group.
            self.close();
        }
        let uses = reg_uses(inst);
        let (nreads, nwrites) = uses.port_demand();
        let single_cycle = base == 1;
        let fits_slots = self.slots < self.width;
        let fits_ports = self.reads_used + nreads <= self.read_ports
            && self.writes_used + nwrites <= self.write_ports;
        let hazard = self.writes.hazard(&uses);

        if self.slots > 0 && fits_slots && single_cycle && !hazard && fits_ports {
            // Co-issue: a free slot this cycle. Its ported accesses run
            // alongside the group's — a CAM decode stretches the cycle.
            self.slots += 1;
            self.reads_used += nreads;
            self.writes_used += nwrites;
            if let Some(w) = uses.write {
                self.writes.insert(w);
            }
            self.charge_cam_penalty(nreads + nwrites, clock);
        } else {
            if self.slots > 0 && fits_slots && single_cycle && !hazard {
                // A slot was open and no hazard blocked it: the file's
                // port count alone forced the new cycle.
                self.port_conflict_cycles += 1;
            }
            *clock += u64::from(base);
            // An instruction demanding more ports than the file has
            // serializes its own accesses over extra cycles.
            let shortfall = Self::serialize_cycles(nreads, self.read_ports)
                .max(Self::serialize_cycles(nwrites, self.write_ports));
            if shortfall > 0 {
                *clock += u64::from(shortfall);
                self.port_conflict_cycles += u64::from(shortfall);
            }
            self.slots = 1;
            self.reads_used = nreads.min(self.read_ports);
            self.writes_used = nwrites.min(self.write_ports);
            self.writes.clear();
            if let Some(w) = uses.write {
                self.writes.insert(w);
            }
            if !single_cycle {
                // Multi-cycle classes own their cycles; nothing rides.
                self.close();
            }
        }
        self.expected_clock = *clock;
    }

    /// Extra cycles needed to push `demand` accesses through `ports`
    /// ports (0 when they fit in one cycle).
    fn serialize_cycles(demand: u32, ports: u32) -> u32 {
        if demand <= ports {
            0
        } else {
            demand.div_ceil(ports.max(1)) - 1
        }
    }

    /// Accrues the CAM ported-access penalty for `accesses` file
    /// accesses in a shared (multi-access) cycle, charging whole cycles
    /// as they accumulate. The stretch breaks the group.
    fn charge_cam_penalty(&mut self, accesses: u32, clock: &mut u64) {
        if self.penalty_fp == 0 || accesses == 0 {
            return;
        }
        self.acc_fp += u64::from(accesses) * self.penalty_fp;
        let whole = self.acc_fp >> 32;
        if whole > 0 {
            self.acc_fp &= FP_ONE - 1;
            *clock += whole;
            self.cam_penalty_cycles += whole;
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_core::NsfConfig;

    fn wide(width: u32, reads: u32, writes: u32) -> Pipeline {
        let cfg = SimConfig {
            issue_width: width,
            read_ports: reads,
            write_ports: writes,
            regfile: RegFileSpec::paper_segmented(4, 32), // no CAM penalty
            ..SimConfig::default()
        };
        Pipeline::new(&cfg)
    }

    fn r(off: u8) -> Reg {
        Reg::R(off)
    }

    #[test]
    fn reg_uses_match_the_execute_loop() {
        let add = Inst::Add {
            rd: r(2),
            rs1: r(0),
            rs2: r(1),
        };
        assert_eq!(reg_uses(&add).port_demand(), (2, 1));
        let sw = Inst::Sw {
            base: r(3),
            src: r(4),
            imm: 0,
        };
        assert_eq!(reg_uses(&sw).port_demand(), (2, 0));
        let li = Inst::Li { rd: r(5), imm: 1 };
        assert_eq!(reg_uses(&li).port_demand(), (0, 1));
        // Globals never demand file ports but do carry hazards.
        let gadd = Inst::Add {
            rd: Reg::G(1),
            rs1: Reg::G(2),
            rs2: r(0),
        };
        assert_eq!(reg_uses(&gadd).port_demand(), (1, 0));
        assert_eq!(reg_uses(&Inst::Halt), RegUses::default());
    }

    #[test]
    fn independent_ops_co_issue_for_free() {
        let mut p = wide(2, 4, 2);
        let mut clock = 0;
        let a = Inst::Add {
            rd: r(2),
            rs1: r(0),
            rs2: r(1),
        };
        let b = Inst::Add {
            rd: r(5),
            rs1: r(3),
            rs2: r(4),
        };
        p.issue(&a, 1, &mut clock);
        assert_eq!(clock, 1, "group opener pays its base cycle");
        p.issue(&b, 1, &mut clock);
        assert_eq!(clock, 1, "independent op co-issues for free");
        assert_eq!(p.port_conflict_cycles, 0);
    }

    #[test]
    fn raw_hazard_blocks_co_issue_without_blaming_ports() {
        let mut p = wide(2, 8, 4);
        let mut clock = 0;
        let a = Inst::Add {
            rd: r(2),
            rs1: r(0),
            rs2: r(1),
        };
        let b = Inst::Add {
            rd: r(3),
            rs1: r(2), // reads a's result: same-cycle RAW
            rs2: r(1),
        };
        p.issue(&a, 1, &mut clock);
        p.issue(&b, 1, &mut clock);
        assert_eq!(clock, 2, "dependent op waits a cycle for forwarding");
        assert_eq!(p.port_conflict_cycles, 0, "hazard, not a port conflict");
    }

    #[test]
    fn port_exhaustion_is_charged_to_the_conflict_counter() {
        let mut p = wide(2, 2, 1);
        let mut clock = 0;
        let a = Inst::Add {
            rd: r(2),
            rs1: r(0),
            rs2: r(1),
        };
        let b = Inst::Add {
            rd: r(5),
            rs1: r(3),
            rs2: r(4),
        };
        p.issue(&a, 1, &mut clock); // uses both read ports
        p.issue(&b, 1, &mut clock); // independent, but no ports left
        assert_eq!(clock, 2);
        assert_eq!(p.port_conflict_cycles, 1);
    }

    #[test]
    fn width_limits_the_group_without_blaming_ports() {
        let mut p = wide(2, 16, 8);
        let mut clock = 0;
        let li = |rd| Inst::Li { rd: r(rd), imm: 0 };
        p.issue(&li(0), 1, &mut clock);
        p.issue(&li(1), 1, &mut clock);
        p.issue(&li(2), 1, &mut clock); // third of a 2-wide group
        assert_eq!(clock, 2);
        assert_eq!(p.port_conflict_cycles, 0);
    }

    #[test]
    fn external_stall_cycles_flush_the_group() {
        let mut p = wide(4, 16, 8);
        let mut clock = 0;
        let li = |rd| Inst::Li { rd: r(rd), imm: 0 };
        p.issue(&li(0), 1, &mut clock);
        clock += 7; // engine stall / memory latency outside issue
        p.issue(&li(1), 1, &mut clock);
        assert_eq!(clock, 9, "post-stall instruction opens a new cycle");
    }

    #[test]
    fn multi_cycle_classes_own_their_cycles() {
        let mut p = wide(4, 16, 8);
        let mut clock = 0;
        p.issue(&Inst::Call { target: 0 }, 2, &mut clock);
        assert_eq!(clock, 2);
        let li = Inst::Li { rd: r(0), imm: 0 };
        p.issue(&li, 1, &mut clock);
        assert_eq!(clock, 3, "nothing co-issues with a multi-cycle op");
    }

    #[test]
    fn single_instruction_port_shortfall_serializes() {
        let mut p = wide(2, 1, 1);
        let mut clock = 0;
        let a = Inst::Add {
            rd: r(2),
            rs1: r(0),
            rs2: r(1), // 2 reads through a 1-read-port file
        };
        p.issue(&a, 1, &mut clock);
        assert_eq!(clock, 2, "second read port cycle");
        assert_eq!(p.port_conflict_cycles, 1);
    }

    #[test]
    fn nsf_accrues_cam_penalty_only_when_co_issuing() {
        let cfg = SimConfig {
            issue_width: 4,
            read_ports: 8,
            write_ports: 4,
            regfile: RegFileSpec::Nsf(NsfConfig::paper_default(128)),
            ..SimConfig::default()
        };
        let mut p = Pipeline::new(&cfg);
        assert!(p.penalty_fp > 0, "NSF has a ported-access penalty");
        assert!(
            p.penalty_fp <= FP_ONE / 4,
            "penalty clamped below a quarter cycle"
        );
        let mut clock = 0;
        let li = |rd| Inst::Li { rd: r(rd), imm: 0 };
        // Enough co-issued accesses to roll over a whole cycle.
        let mut issued = 0u64;
        while p.cam_penalty_cycles == 0 && issued < 1000 {
            p.issue(&li((issued % 200) as u8), 1, &mut clock);
            issued += 1;
        }
        assert!(p.cam_penalty_cycles > 0, "accrual reaches whole cycles");
        assert!(
            clock < issued,
            "co-issue savings dominate the CAM penalty ({clock} vs {issued})"
        );
    }

    #[test]
    fn indexed_files_pay_no_cam_penalty() {
        for spec in [
            RegFileSpec::paper_segmented(4, 32),
            RegFileSpec::sparc_windows(16),
            RegFileSpec::Oracle,
        ] {
            assert_eq!(cam_penalty_fp(&spec, 2, 1), 0, "{spec:?}");
        }
    }

    #[test]
    fn cam_penalty_handles_undivisible_sweep_configs() {
        let mut cfg = NsfConfig::paper_default(80);
        cfg.regs_per_line = 3; // 80 % 3 != 0: must not panic
        let fp = cam_penalty_fp(&RegFileSpec::Nsf(cfg), 2, 1);
        assert!(fp > 0);
    }
}
