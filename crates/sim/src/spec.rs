//! Engine spec strings: a compact, human-typeable naming of the
//! register file organizations. This is the **one** grammar shared by
//! every tool that names an engine on a command line or in a file
//! header: `trace_tool` flags and `.nsftrace` headers (`nsf-trace`),
//! the differential checker's lane lists (`nsf-check`), and the
//! design-space explorer's enumerated points (`nsf-explore`). It lives
//! in `nsf-sim` because a spec parses into a buildable
//! [`RegFileSpec`], which is defined here.
//!
//! Grammar:
//!
//! | spec | organization |
//! |------|--------------|
//! | `nsf:<total>` | paper-default NSF, `<total>` registers |
//! | `nsf:<total>x<line>` | NSF with `<line>`-register lines |
//! | `segmented:<frames>x<regs>` | segmented file, hardware assist |
//! | `segmented-sw:<frames>x<regs>` | segmented file, software traps |
//! | `segmented-valid:<frames>x<regs>` | segmented, per-register valid bits |
//! | `windowed:<regs>` | SPARC-like 8-window file |
//! | `conventional:<regs>` | single-context file, hardware assist |
//! | `oracle` | the infinite differential-testing oracle |

use crate::RegFileSpec;
use nsf_core::{NsfConfig, SpillEngine};
use std::fmt;

/// Failure to parse an engine spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// The offending spec.
    pub spec: String,
    /// Why it did not parse.
    pub reason: &'static str,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad engine spec {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn err(spec: &str, reason: &'static str) -> SpecError {
    SpecError {
        spec: spec.to_string(),
        reason,
    }
}

fn num<T: std::str::FromStr>(spec: &str, s: &str) -> Result<T, SpecError> {
    s.parse().map_err(|_| err(spec, "expected a number"))
}

/// Splits `NxM`, both halves numeric.
fn pair(spec: &str, s: &str) -> Result<(u32, u8), SpecError> {
    let (a, b) = s
        .split_once('x')
        .ok_or_else(|| err(spec, "expected <frames>x<regs>"))?;
    Ok((num(spec, a)?, num(spec, b)?))
}

/// Parses an engine spec string (see the module grammar) into a
/// buildable [`RegFileSpec`].
pub fn parse_engine(spec: &str) -> Result<RegFileSpec, SpecError> {
    if spec == "oracle" {
        return Ok(RegFileSpec::Oracle);
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| err(spec, "expected <kind>:<params>"))?;
    match kind {
        "nsf" => {
            let (total, line) = match rest.split_once('x') {
                Some((t, l)) => (num(spec, t)?, num::<u8>(spec, l)?),
                None => (num(spec, rest)?, 1),
            };
            if total == 0 || line == 0 {
                return Err(err(spec, "sizes must be nonzero"));
            }
            let mut cfg = NsfConfig::paper_default(total);
            cfg.regs_per_line = line;
            Ok(RegFileSpec::Nsf(cfg))
        }
        "segmented" => {
            let (frames, regs) = pair(spec, rest)?;
            Ok(RegFileSpec::paper_segmented(frames, regs))
        }
        "segmented-sw" => {
            let (frames, regs) = pair(spec, rest)?;
            let RegFileSpec::Segmented(mut cfg) = RegFileSpec::paper_segmented(frames, regs) else {
                unreachable!("paper_segmented builds Segmented")
            };
            cfg.engine = SpillEngine::software();
            Ok(RegFileSpec::Segmented(cfg))
        }
        "segmented-valid" => {
            let (frames, regs) = pair(spec, rest)?;
            Ok(RegFileSpec::segmented_valid_only(frames, regs))
        }
        "windowed" => Ok(RegFileSpec::sparc_windows(num(spec, rest)?)),
        "conventional" => Ok(RegFileSpec::Conventional {
            regs: num(spec, rest)?,
            engine: SpillEngine::hardware(),
        }),
        _ => Err(err(spec, "unknown engine kind")),
    }
}

/// The default engine spec a workload records under: the paper's NSF
/// reference points (80 registers sequential, 128 parallel).
pub fn default_engine_spec(parallel: bool) -> &'static str {
    if parallel {
        "nsf:128"
    } else {
        "nsf:80"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_core::RegisterFile;

    #[test]
    fn all_kinds_parse_and_build() {
        for spec in [
            "nsf:80",
            "nsf:128x4",
            "segmented:4x32",
            "segmented-sw:4x32",
            "segmented-valid:4x32",
            "windowed:16",
            "conventional:32",
            "oracle",
        ] {
            let built = parse_engine(spec).unwrap_or_else(|e| panic!("{e}")).build();
            assert!(!built.describe().is_empty(), "{spec}");
        }
    }

    #[test]
    fn parsed_sizes_land_in_the_config() {
        match parse_engine("nsf:96x2").unwrap() {
            RegFileSpec::Nsf(cfg) => {
                assert_eq!(cfg.total_regs, 96);
                assert_eq!(cfg.regs_per_line, 2);
            }
            other => panic!("wrong spec {other:?}"),
        }
        match parse_engine("segmented:6x20").unwrap() {
            RegFileSpec::Segmented(cfg) => {
                assert_eq!(cfg.frames, 6);
                assert_eq!(cfg.frame_regs, 20);
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    fn software_variant_gets_trap_engine() {
        match parse_engine("segmented-sw:4x32").unwrap() {
            RegFileSpec::Segmented(cfg) => {
                assert!(matches!(cfg.engine, SpillEngine::SoftwareTrap { .. }))
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for spec in [
            "",
            "nsf",
            "nsf:",
            "nsf:0",
            "nsf:80x0",
            "seg:4x32",
            "segmented:4",
            "windowed:x",
        ] {
            let e = parse_engine(spec).unwrap_err();
            assert_eq!(e.spec, spec);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn defaults_match_the_paper_reference_points() {
        assert_eq!(default_engine_spec(false), "nsf:80");
        assert_eq!(default_engine_spec(true), "nsf:128");
    }
}
