//! Measurement collection and the end-of-run report.

use nsf_core::{Occupancy, RegFileStats};
use nsf_isa::InstClass;
use nsf_mem::CacheStats;

/// Occupancy averages accumulated by periodic sampling (the paper samples
/// "active registers" and "resident contexts" over the whole run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancySummary {
    /// Number of samples taken.
    pub samples: u64,
    /// Sum of valid-register counts over samples.
    pub sum_valid_regs: u64,
    /// Sum of resident-context counts over samples.
    pub sum_contexts: u64,
    /// Maximum valid registers ever observed.
    pub max_valid_regs: u32,
    /// Maximum resident contexts ever observed.
    pub max_contexts: u32,
}

impl OccupancySummary {
    /// Records one sample.
    pub fn record(&mut self, o: Occupancy) {
        self.samples += 1;
        self.sum_valid_regs += u64::from(o.valid_regs);
        self.sum_contexts += u64::from(o.resident_contexts);
        self.max_valid_regs = self.max_valid_regs.max(o.valid_regs);
        self.max_contexts = self.max_contexts.max(o.resident_contexts);
    }

    /// Mean valid registers.
    pub fn avg_valid_regs(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_valid_regs as f64 / self.samples as f64
        }
    }

    /// Mean resident contexts.
    pub fn avg_contexts(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_contexts as f64 / self.samples as f64
        }
    }
}

/// Everything measured over one program run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Which register file ran (human readable).
    pub regfile_desc: String,
    /// Register slots in the file.
    pub regfile_capacity: u32,
    /// Instructions executed.
    pub instructions: u64,
    /// Total cycles (busy + idle).
    pub cycles: u64,
    /// Cycles with no ready thread.
    pub idle_cycles: u64,
    /// Instruction counts per class.
    pub class_counts: [u64; 7],
    /// Times the running Context ID changed (calls, returns, thread
    /// switches) — the paper's "context switch".
    pub context_switches: u64,
    /// Thread-to-thread switches only.
    pub thread_switches: u64,
    /// Procedure calls executed.
    pub calls: u64,
    /// Procedure returns executed.
    pub returns: u64,
    /// Threads spawned.
    pub spawns: u64,
    /// Static program size (instructions).
    pub static_instructions: usize,
    /// Register file counters.
    pub regfile: RegFileStats,
    /// Data cache counters.
    pub dcache: CacheStats,
    /// Occupancy averages.
    pub occupancy: OccupancySummary,
    /// Instructions executed by each thread, indexed by thread id
    /// (thread 0 is the initial thread).
    pub thread_instructions: Vec<u64>,
    /// Instruction-cache counters, when an icache was configured.
    pub icache: Option<CacheStats>,
}

impl RunReport {
    /// Index of `class` in [`RunReport::class_counts`].
    pub fn class_index(class: InstClass) -> usize {
        match class {
            InstClass::Alu => 0,
            InstClass::Mem => 1,
            InstClass::RemoteMem => 2,
            InstClass::Control => 3,
            InstClass::Proc => 4,
            InstClass::Thread => 5,
            InstClass::Misc => 6,
        }
    }

    /// Instructions per context switch (Table 1, last column).
    pub fn instrs_per_switch(&self) -> f64 {
        if self.context_switches == 0 {
            self.instructions as f64
        } else {
            self.instructions as f64 / self.context_switches as f64
        }
    }

    /// Registers reloaded as a fraction of instructions (Figs. 10/12/13).
    pub fn reloads_per_instr(&self) -> f64 {
        self.regfile.reloads_per_instruction(self.instructions)
    }

    /// Live registers reloaded as a fraction of instructions.
    pub fn live_reloads_per_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.regfile.live_regs_reloaded as f64 / self.instructions as f64
        }
    }

    /// Mean fraction of the file holding active data (Fig. 9).
    pub fn utilization(&self) -> f64 {
        if self.regfile_capacity == 0 {
            0.0
        } else {
            self.occupancy.avg_valid_regs() / f64::from(self.regfile_capacity)
        }
    }

    /// Peak fraction of the file holding active data (Fig. 9 "max").
    pub fn max_utilization(&self) -> f64 {
        if self.regfile_capacity == 0 {
            0.0
        } else {
            f64::from(self.occupancy.max_valid_regs) / f64::from(self.regfile_capacity)
        }
    }

    /// Spill/reload cycles as a fraction of execution time (Fig. 14).
    pub fn spill_overhead(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.regfile.spill_reload_cycles as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_averaging() {
        let mut s = OccupancySummary::default();
        s.record(Occupancy {
            valid_regs: 10,
            resident_contexts: 2,
        });
        s.record(Occupancy {
            valid_regs: 20,
            resident_contexts: 4,
        });
        assert_eq!(s.avg_valid_regs(), 15.0);
        assert_eq!(s.avg_contexts(), 3.0);
        assert_eq!(s.max_valid_regs, 20);
        assert_eq!(s.max_contexts, 4);
    }

    #[test]
    fn derived_rates() {
        let mut r = RunReport {
            instructions: 1000,
            cycles: 2000,
            context_switches: 50,
            regfile_capacity: 100,
            ..Default::default()
        };
        r.regfile.regs_reloaded = 10;
        r.regfile.spill_reload_cycles = 200;
        r.occupancy.record(Occupancy {
            valid_regs: 70,
            resident_contexts: 5,
        });
        assert_eq!(r.instrs_per_switch(), 20.0);
        assert_eq!(r.reloads_per_instr(), 0.01);
        assert_eq!(r.utilization(), 0.7);
        assert_eq!(r.spill_overhead(), 0.1);
        assert_eq!(r.cpi(), 2.0);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = RunReport::default();
        assert_eq!(r.instrs_per_switch(), 0.0);
        assert_eq!(r.reloads_per_instr(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.spill_overhead(), 0.0);
        assert_eq!(r.cpi(), 0.0);
    }
}
