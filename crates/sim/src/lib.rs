//! # nsf-sim — the block-multithreaded processor simulator
//!
//! This is the reproduction of the paper's "flexible register file
//! simulator" (§7), extended into a full execution-driven model: it runs
//! real programs on the `nsf-isa` instruction set, against any register
//! file organization from `nsf-core`, over the `nsf-mem` hierarchy, with
//! `nsf-runtime` threads — and measures exactly the quantities the paper
//! reports:
//!
//! * register utilization (% of the file holding active data, Fig. 9);
//! * registers spilled/reloaded per instruction (Figs. 10, 12, 13);
//! * resident contexts (Fig. 11);
//! * spill/reload cycle overhead as a fraction of execution time (Fig. 14);
//! * instruction/context-switch profiles (Table 1).
//!
//! ## Model
//!
//! A single-issue processor with a cycle table calibrated to the Sparc-2
//! class emulator the paper took its timings from: ALU ops are 1 cycle,
//! memory ops pay the data-cache latency, procedure `call`/`ret` allocate
//! and free register contexts, and long-latency events (remote loads,
//! empty receives, unsatisfied joins) block the thread and switch to the
//! next ready one. Register-file misses stall the pipeline for the
//! reload/spill cycles reported by the organization's spill engine.
//!
//! Register spills travel through the **Ctable** into the **data cache**
//! (paper Figure 4): the backing store adapter translates
//! `<CID : offset>` to a virtual address and performs ordinary cached
//! memory accesses, so register traffic and data traffic contend for the
//! same cache — observable in the reported cache statistics.

pub mod backing;
pub mod config;
pub mod lanes;
pub mod machine;
pub mod metrics;
pub mod pipeline;
pub mod spec;
pub mod trace;

pub use backing::{BackingMap, CtableBacking, LaneStore};
pub use config::{
    CycleTable, RegFileSpec, SimConfig, BACKING_STRIDE_WORDS, FRONTEND_FINGERPRINT_VERSION,
};
pub use lanes::{batchable, batchable_program, FrontendProbe, LaneSet, NoProbe};
pub use machine::{Machine, SimError};
pub use metrics::{OccupancySummary, RunReport};
pub use pipeline::{reg_uses, Pipeline, RegUses};
pub use spec::{default_engine_spec, parse_engine, SpecError};
pub use trace::{TraceBuffer, TraceEntry};
