//! The processor model: fetch/execute over a register file organization,
//! the memory hierarchy and the thread scheduler.

use crate::backing::{BackingMap, CtableBacking};
use crate::config::{SimConfig, BACKING_STRIDE_WORDS};
use crate::metrics::RunReport;
use crate::pipeline::Pipeline;
use crate::trace::{TraceBuffer, TraceEntry};
use nsf_core::{
    Cid, EngineDispatch, RecordingFile, RegAddr, RegFileError, RegisterFile, SharedSink,
};
use nsf_isa::{Inst, InstClass, Program, Reg};
use nsf_mem::{Addr, Cache, MemSystem, Word};
use nsf_runtime::{BlockReason, SchedDecision, Scheduler, SchedulerError, ThreadId};
use std::fmt;

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// A register file operation failed (read-before-write, bad offset,
    /// backing fault).
    RegFile {
        /// The failing operation's program counter.
        pc: u32,
        /// The underlying error.
        source: RegFileError,
    },
    /// Scheduler resource exhaustion.
    Sched(SchedulerError),
    /// Program counter left the program.
    PcOutOfRange {
        /// The bad program counter.
        pc: u32,
    },
    /// All remaining threads are blocked with nothing in flight.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// An operation named an unallocated channel.
    BadChannel {
        /// The invalid channel id.
        id: u32,
    },
    /// The configured instruction budget was exceeded.
    MaxInstructions {
        /// The configured limit.
        limit: u64,
    },
    /// The configuration is internally inconsistent.
    BadConfig(String),
    /// Lane-batched execution observed different architectural values
    /// across lanes ([`crate::LaneSet`]). Register-file organizations
    /// may only change *timing*; a value divergence is a simulator or
    /// engine bug and must never be reported as a data point.
    LaneDivergence {
        /// The diverging instruction's program counter.
        pc: u32,
        /// Index of the first lane that disagreed with lane 0.
        lane: usize,
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegFile { pc, source } => {
                write!(f, "register file error at pc {pc}: {source}")
            }
            SimError::Sched(e) => write!(f, "scheduler error: {e}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            SimError::Deadlock { cycle } => write!(f, "deadlock at cycle {cycle}"),
            SimError::BadChannel { id } => write!(f, "invalid channel {id}"),
            SimError::MaxInstructions { limit } => {
                write!(f, "instruction budget of {limit} exceeded")
            }
            SimError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            SimError::LaneDivergence { pc, lane, detail } => {
                write!(f, "lane {lane} diverged from lane 0 at pc {pc}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::RegFile { source, .. } => Some(source),
            SimError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedulerError> for SimError {
    fn from(e: SchedulerError) -> Self {
        SimError::Sched(e)
    }
}

/// Notional virtual base of the program image (icache address space).
pub(crate) const ICACHE_BASE: u32 = 0x7000_0000;

pub(crate) enum Status {
    /// Keep issuing from the same thread.
    Continue,
    /// The thread blocked, yielded or finished; back to the scheduler.
    Suspended,
}

/// How a context became current (see `RegisterFile::call_push` /
/// `thread_switch`).
#[derive(Clone, Copy)]
enum SwitchKind {
    Plain,
    CallPush,
    Thread,
}

/// The machine: program + memory + register file + threads.
///
/// # Examples
///
/// ```
/// use nsf_isa::asm::assemble;
/// use nsf_sim::{Machine, SimConfig};
///
/// let program = assemble(
///     "main: li r0, 6
///            li r1, 7
///            mul r2, r0, r1
///            li r3, 4096
///            sw r2, (r3)
///            halt",
/// )
/// .unwrap();
/// let mut machine = Machine::new(program, SimConfig::default())?;
/// let report = machine.run_and_keep()?;
/// assert_eq!(machine.mem.peek(4096), 42);
/// assert_eq!(report.instructions, 6);
/// # Ok::<(), nsf_sim::SimError>(())
/// ```
pub struct Machine {
    cfg: SimConfig,
    program: Program,
    /// The memory system (public so harnesses can stage inputs with
    /// `poke`/`peek` and read results back).
    pub mem: MemSystem,
    /// The register file, held by value: per-instruction operations
    /// dispatch through [`EngineDispatch`]'s `match` and inline into
    /// `step()` instead of paying a vtable call.
    regfile: EngineDispatch,
    sched: Scheduler,
    backing: BackingMap,
    clock: u64,
    report: RunReport,
    last_thread: Option<ThreadId>,
    active_cid: Option<Cid>,
    trace: TraceBuffer,
    icache: Option<Cache>,
    sink: Option<SharedSink>,
    /// The scoreboarded multi-issue frontend; `None` at `issue_width
    /// == 1`, where the clock path is bit-identical to the pre-pipeline
    /// machine.
    pipeline: Option<Pipeline>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("clock", &self.clock)
            .field("instructions", &self.report.instructions)
            .field("regfile", &self.regfile.describe())
            .field("active_cid", &self.active_cid)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine and spawns the initial thread at the program's
    /// entry point with `g1 = 0`.
    pub fn new(program: Program, cfg: SimConfig) -> Result<Self, SimError> {
        if (cfg.sched.cid_capacity as usize) > cfg.mem.ctable_slots {
            return Err(SimError::BadConfig(format!(
                "cid_capacity {} exceeds ctable_slots {}: contexts could not \
                 be mapped to backing store",
                cfg.sched.cid_capacity, cfg.mem.ctable_slots
            )));
        }
        let spill_regs = cfg.regfile.max_spill_regs();
        if spill_regs > BACKING_STRIDE_WORDS {
            return Err(SimError::BadConfig(format!(
                "organization can spill {spill_regs} words per context, \
                 overflowing the {BACKING_STRIDE_WORDS}-word backing stride: \
                 context save areas would overlap"
            )));
        }
        if cfg.issue_width == 0 {
            return Err(SimError::BadConfig(
                "issue_width 0: the frontend must issue something".into(),
            ));
        }
        if cfg.issue_width > 1 && (cfg.read_ports == 0 || cfg.write_ports == 0) {
            return Err(SimError::BadConfig(format!(
                "a multi-issue frontend needs at least one read and one \
                 write port (got {}R/{}W)",
                cfg.read_ports, cfg.write_ports
            )));
        }
        let mut m = Machine {
            program,
            mem: MemSystem::new(cfg.mem),
            regfile: cfg.regfile.build(),
            sched: Scheduler::new(cfg.sched),
            backing: BackingMap::new(),
            clock: 0,
            report: RunReport::default(),
            last_thread: None,
            active_cid: None,
            trace: TraceBuffer::new(cfg.trace_depth),
            icache: cfg.icache.map(Cache::new),
            sink: None,
            pipeline: (cfg.issue_width > 1).then(|| Pipeline::new(&cfg)),
            cfg,
        };
        let entry = m.program.entry();
        let tid = m.sched.spawn(entry, 0)?;
        let cid = m.sched.thread(tid).cid;
        m.map_ctable(cid);
        Ok(m)
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle count.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The post-mortem execution trace (empty unless
    /// `SimConfig::trace_depth > 0`).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Attaches an event sink that observes the register-file operation
    /// stream (via a [`RecordingFile`] wrapper around the configured
    /// organization), the program's data-cache traffic, and per
    /// instruction clock stamps. Call before [`Machine::run_and_keep`];
    /// recording is observational and never changes results or timing.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        let inner = std::mem::replace(
            &mut self.regfile,
            EngineDispatch::Oracle(nsf_core::OracleFile::new()), // placeholder, swapped below
        );
        self.regfile =
            EngineDispatch::boxed(Box::new(RecordingFile::new(Box::new(inner), sink.clone())));
        self.sink = Some(sink);
    }

    /// Runs to completion and returns the measurement report.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        self.run_and_keep()
    }

    /// Runs to completion but keeps the machine alive, so callers can
    /// inspect memory (`self.mem.peek(..)`) after the program finishes.
    pub fn run_and_keep(&mut self) -> Result<RunReport, SimError> {
        loop {
            let decision = {
                let (sched, mem) = (&mut self.sched, &self.mem);
                sched.next(self.clock, |addr| mem.peek(addr) == 0)
            };
            match decision {
                SchedDecision::Run(tid) => {
                    if self.last_thread != Some(tid) {
                        if self.last_thread.is_some() {
                            self.report.thread_switches += 1;
                            self.clock += u64::from(self.cfg.cycles.switch_overhead);
                        }
                        self.last_thread = Some(tid);
                    }
                    let cid = self.sched.thread(tid).cid;
                    self.switch_context_kind(cid, SwitchKind::Thread)?;
                    self.run_current()?;
                }
                SchedDecision::AdvanceTo(t) => {
                    self.report.idle_cycles += t - self.clock;
                    self.clock = t;
                }
                SchedDecision::AllDone => break,
                SchedDecision::Deadlock => return Err(SimError::Deadlock { cycle: self.clock }),
            }
        }
        self.finish_report();
        Ok(self.report.clone())
    }

    fn finish_report(&mut self) {
        self.report.cycles = self.clock;
        self.report.regfile = *self.regfile.stats();
        if let Some(p) = &self.pipeline {
            // Engines never see port arbitration; the frontend owns the
            // counter and folds it into the run's register-file stats.
            self.report.regfile.port_conflict_cycles = p.port_conflict_cycles;
        }
        self.report.regfile_desc = self.regfile.describe();
        self.report.regfile_capacity = self.regfile.capacity();
        self.report.dcache = self.mem.dcache_stats();
        self.report.static_instructions = self.program.len();
        self.report.thread_instructions = self
            .sched
            .threads()
            .iter()
            .map(|t| t.instructions)
            .collect();
        self.report.icache = self.icache.as_ref().map(|c| c.stats());
    }

    fn map_ctable(&mut self, cid: Cid) {
        self.mem.ctable_mut().map(
            cid,
            self.cfg.backing_base + Addr::from(cid) * BACKING_STRIDE_WORDS,
        );
    }

    /// Notifies the register file that `cid` is now running (no-op when it
    /// already is). Charges switch cycles. `kind` routes the notification
    /// to the organization's call-push / thread-switch / plain handler.
    fn switch_context_kind(&mut self, cid: Cid, kind: SwitchKind) -> Result<(), SimError> {
        if self.active_cid == Some(cid) {
            return Ok(());
        }
        let mut store = CtableBacking {
            mem: &mut self.mem,
            map: &mut self.backing,
        };
        let result = match kind {
            SwitchKind::Plain => self.regfile.switch_to(cid, &mut store),
            SwitchKind::CallPush => self.regfile.call_push(cid, &mut store),
            SwitchKind::Thread => self.regfile.thread_switch(cid, &mut store),
        };
        let cycles = result.map_err(|source| SimError::RegFile { pc: 0, source })?;
        self.clock += u64::from(cycles);
        self.report.context_switches += 1;
        self.active_cid = Some(cid);
        Ok(())
    }

    fn switch_context(&mut self, cid: Cid) -> Result<(), SimError> {
        self.switch_context_kind(cid, SwitchKind::Plain)
    }

    fn read_reg(&mut self, cid: Cid, r: Reg, pc: u32) -> Result<Word, SimError> {
        match r {
            Reg::G(i) => Ok(self.sched.current_mut().globals[i as usize]),
            Reg::R(off) => {
                let mut store = CtableBacking {
                    mem: &mut self.mem,
                    map: &mut self.backing,
                };
                let acc = self
                    .regfile
                    .read(RegAddr::new(cid, off), &mut store)
                    .map_err(|source| SimError::RegFile { pc, source })?;
                self.clock += u64::from(acc.stall_cycles);
                Ok(acc.value)
            }
        }
    }

    fn write_reg(&mut self, cid: Cid, r: Reg, value: Word, pc: u32) -> Result<(), SimError> {
        match r {
            Reg::G(i) => {
                self.sched.current_mut().globals[i as usize] = value;
                Ok(())
            }
            Reg::R(off) => {
                let mut store = CtableBacking {
                    mem: &mut self.mem,
                    map: &mut self.backing,
                };
                let acc = self
                    .regfile
                    .write(RegAddr::new(cid, off), value, &mut store)
                    .map_err(|source| SimError::RegFile { pc, source })?;
                self.clock += u64::from(acc.stall_cycles);
                Ok(())
            }
        }
    }

    fn run_current(&mut self) -> Result<(), SimError> {
        let mut issued: u64 = 0;
        loop {
            if self.report.instructions >= self.cfg.max_instructions {
                return Err(SimError::MaxInstructions {
                    limit: self.cfg.max_instructions,
                });
            }
            match self.step()? {
                Status::Continue => {}
                Status::Suspended => return Ok(()),
            }
            issued += 1;
            if let Some(q) = self.cfg.quantum {
                // Interleaved multithreading: preempt at the quantum if
                // anyone else is ready (never idle the pipeline for it).
                if issued >= q && self.sched.ready_count() > 0 {
                    self.sched.yield_current();
                    return Ok(());
                }
            }
        }
    }

    /// Stamps the sink (if any) with the current clock.
    fn note_clock(&self) {
        if let Some(s) = &self.sink {
            s.borrow_mut().clock(self.clock);
        }
    }

    /// Reports a cached program load to the sink (if any).
    fn note_mem_read(&self, addr: Addr) {
        if let Some(s) = &self.sink {
            s.borrow_mut().mem_read(addr);
        }
    }

    /// Reports a cached program store to the sink (if any).
    fn note_mem_write(&self, addr: Addr) {
        if let Some(s) = &self.sink {
            s.borrow_mut().mem_write(addr);
        }
    }

    /// Executes one instruction of the running thread.
    fn step(&mut self) -> Result<Status, SimError> {
        self.note_clock();
        // Deliver a pending remote-load/receive value first.
        let (pc, cid) = {
            let t = self.sched.current_mut();
            (t.pc, t.cid)
        };
        if let Some((r, v)) = self.sched.current_mut().pending_write.take() {
            self.write_reg(cid, r, v, pc)?;
        }

        let inst = *self
            .program
            .fetch(pc)
            .ok_or(SimError::PcOutOfRange { pc })?;

        self.report.instructions += 1;
        self.report.class_counts[RunReport::class_index(inst.class())] += 1;
        self.sched.current_mut().instructions += 1;
        let base = self.base_cycles(inst.class());
        match &mut self.pipeline {
            // The multi-issue frontend arbitrates slots and file ports;
            // co-issued instructions ride the open cycle for free.
            Some(p) => p.issue(&inst, base, &mut self.clock),
            None => self.clock += u64::from(base),
        }

        if let Some(icache) = &mut self.icache {
            // Fetch through the icache: hits overlap the pipeline, so
            // only the penalty beyond the hit path stalls.
            let cycles = icache.access(ICACHE_BASE + pc, false);
            self.clock += u64::from(cycles - icache.config().hit_cycles);
        }

        if self.trace.enabled() {
            let tid = self.sched.current().expect("running").id;
            self.trace.record(TraceEntry {
                cycle: self.clock,
                tid,
                cid,
                pc,
                inst,
            });
        }

        if self
            .report
            .instructions
            .is_multiple_of(self.cfg.sample_interval)
        {
            self.report.occupancy.record(self.regfile.occupancy());
        }

        let status = self.execute(inst, pc, cid)?;
        Ok(status)
    }

    fn base_cycles(&self, class: InstClass) -> u32 {
        let c = &self.cfg.cycles;
        match class {
            InstClass::Alu => c.alu,
            InstClass::Mem | InstClass::RemoteMem => c.mem_base,
            InstClass::Control => c.control,
            InstClass::Proc => c.proc_op,
            InstClass::Thread => c.thread_op,
            InstClass::Misc => c.misc,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, inst: Inst, pc: u32, cid: Cid) -> Result<Status, SimError> {
        use Inst::*;

        macro_rules! alu3 {
            ($rd:expr, $a:expr, $b:expr, $f:expr) => {{
                let x = self.read_reg(cid, $a, pc)?;
                let y = self.read_reg(cid, $b, pc)?;
                #[allow(clippy::redundant_closure_call)]
                let v = ($f)(x, y);
                self.write_reg(cid, $rd, v, pc)?;
                self.advance(1);
            }};
        }
        macro_rules! alui {
            ($rd:expr, $a:expr, $imm:expr, $f:expr) => {{
                let x = self.read_reg(cid, $a, pc)?;
                #[allow(clippy::redundant_closure_call)]
                let v = ($f)(x, $imm as Word);
                self.write_reg(cid, $rd, v, pc)?;
                self.advance(1);
            }};
        }
        macro_rules! branch {
            ($a:expr, $b:expr, $t:expr, $cmp:expr) => {{
                let x = self.read_reg(cid, $a, pc)?;
                let y = self.read_reg(cid, $b, pc)?;
                #[allow(clippy::redundant_closure_call)]
                if ($cmp)(x, y) {
                    self.clock += u64::from(self.cfg.cycles.taken_extra);
                    self.sched.current_mut().pc = $t;
                } else {
                    self.advance(1);
                }
            }};
        }

        match inst {
            Add { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x.wrapping_add(y)),
            Sub { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x.wrapping_sub(y)),
            Mul { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x.wrapping_mul(y)),
            Div { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| div_s(x, y)),
            Rem { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| rem_s(x, y)),
            And { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x & y),
            Or { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x | y),
            Xor { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x ^ y),
            Sll { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x << (y & 31)),
            Srl { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x >> (y & 31)),
            Sra { rd, rs1, rs2 } => {
                alu3!(rd, rs1, rs2, |x: Word, y: Word| ((x as i32) >> (y & 31))
                    as Word)
            }
            Slt { rd, rs1, rs2 } => {
                alu3!(rd, rs1, rs2, |x: Word, y: Word| Word::from(
                    (x as i32) < (y as i32)
                ))
            }
            Sltu { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| Word::from(x < y)),
            Seq { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| Word::from(x == y)),

            Addi { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x.wrapping_add(y)),
            Andi { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x & y),
            Ori { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x | y),
            Xori { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x ^ y),
            Slli { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x << (y & 31)),
            Srli { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x >> (y & 31)),
            Srai { rd, rs1, imm } => {
                alui!(rd, rs1, imm, |x: Word, y: Word| ((x as i32) >> (y & 31))
                    as Word)
            }
            Slti { rd, rs1, imm } => {
                alui!(rd, rs1, imm, |x: Word, y: Word| Word::from(
                    (x as i32) < (y as i32)
                ))
            }
            Li { rd, imm } => {
                self.write_reg(cid, rd, imm as Word, pc)?;
                self.advance(1);
            }
            Mv { rd, rs1 } => {
                let v = self.read_reg(cid, rs1, pc)?;
                self.write_reg(cid, rd, v, pc)?;
                self.advance(1);
            }

            Lw { rd, base, imm } => {
                let addr = self.read_reg(cid, base, pc)?.wrapping_add(imm as Word);
                self.note_mem_read(addr);
                let (v, cycles) = self.mem.load(addr);
                self.clock += u64::from(cycles);
                self.write_reg(cid, rd, v, pc)?;
                self.advance(1);
            }
            Sw { base, src, imm } => {
                let addr = self.read_reg(cid, base, pc)?.wrapping_add(imm as Word);
                let v = self.read_reg(cid, src, pc)?;
                self.note_mem_write(addr);
                let cycles = self.mem.store(addr, v);
                self.clock += u64::from(cycles);
                self.advance(1);
            }
            LwRemote { rd, base, imm } => {
                let addr = self.read_reg(cid, base, pc)?.wrapping_add(imm as Word);
                // Remote data bypasses the local data cache; the cost is
                // the network round trip, overlapped with other threads.
                let value = self.mem.peek(addr);
                let ready_at = self.clock + u64::from(self.cfg.remote_latency);
                let t = self.sched.current_mut();
                t.pending_write = Some((rd, value));
                t.pc = pc + 1;
                self.sched
                    .block_current(BlockReason::RemoteLoad { ready_at });
                return Ok(Status::Suspended);
            }
            SwRemote { base, src, imm } => {
                let addr = self.read_reg(cid, base, pc)?.wrapping_add(imm as Word);
                let v = self.read_reg(cid, src, pc)?;
                // Fire and forget; completes remotely after the delay.
                self.mem.poke(addr, v);
                self.advance(1);
            }

            Beq { rs1, rs2, target } => branch!(rs1, rs2, target, |x, y| x == y),
            Bne { rs1, rs2, target } => branch!(rs1, rs2, target, |x, y| x != y),
            Blt { rs1, rs2, target } => {
                branch!(rs1, rs2, target, |x: Word, y: Word| (x as i32) < (y as i32))
            }
            Bge { rs1, rs2, target } => {
                branch!(rs1, rs2, target, |x: Word, y: Word| (x as i32)
                    >= (y as i32))
            }
            Jmp { target } => {
                self.sched.current_mut().pc = target;
            }

            Call { target } => {
                let new_cid = self.sched.alloc_cid()?;
                self.map_ctable(new_cid);
                {
                    let t = self.sched.current_mut();
                    t.call_stack.push((pc + 1, t.cid));
                    t.cid = new_cid;
                    t.pc = target;
                }
                self.report.calls += 1;
                self.switch_context_kind(new_cid, SwitchKind::CallPush)?;
            }
            Ret => {
                let popped = self.sched.current_mut().call_stack.pop();
                match popped {
                    Some((ret_pc, caller)) => {
                        let dead = {
                            let t = self.sched.current_mut();
                            let dead = t.cid;
                            t.cid = caller;
                            t.pc = ret_pc;
                            dead
                        };
                        self.release_context(dead);
                        self.report.returns += 1;
                        self.switch_context(caller)?;
                    }
                    None => {
                        // Returning from the top level ends the thread.
                        return self.halt_thread();
                    }
                }
            }

            Spawn { target, arg } => {
                let value = self.read_reg(cid, arg, pc)?;
                let tid = self.sched.spawn(target, value)?;
                let child_cid = self.sched.thread(tid).cid;
                self.map_ctable(child_cid);
                self.report.spawns += 1;
                self.advance(1);
            }
            Halt => return self.halt_thread(),
            Yield => {
                self.advance(1);
                self.sched.yield_current();
                return Ok(Status::Suspended);
            }

            ChNew { rd } => {
                let id = self
                    .sched
                    .channels
                    .create_with_capacity(self.cfg.channel_capacity);
                self.write_reg(cid, rd, id, pc)?;
                self.advance(1);
            }
            ChSend { chan, src } => {
                let id = self.read_reg(cid, chan, pc)?;
                if !self.sched.channels.is_valid(id) {
                    return Err(SimError::BadChannel { id });
                }
                let v = self.read_reg(cid, src, pc)?;
                let at = self.clock + u64::from(self.cfg.msg_latency);
                if !self.sched.channels.try_send(id, v, at) {
                    // Bounded channel full: wait for space and re-execute.
                    self.sched.block_current(BlockReason::Send { chan: id });
                    return Ok(Status::Suspended);
                }
                self.advance(1);
            }
            ChRecv { rd, chan } => {
                let id = self.read_reg(cid, chan, pc)?;
                if !self.sched.channels.is_valid(id) {
                    return Err(SimError::BadChannel { id });
                }
                match self.sched.channels.try_recv(id, self.clock) {
                    Some(v) => {
                        self.write_reg(cid, rd, v, pc)?;
                        self.advance(1);
                    }
                    None => {
                        // Re-execute on wake (pc unchanged).
                        self.sched.block_current(BlockReason::Recv { chan: id });
                        return Ok(Status::Suspended);
                    }
                }
            }
            AmoAdd { rd, base, imm } => {
                let addr = self.read_reg(cid, base, pc)?;
                self.note_mem_write(addr);
                let (old, cycles) = self.mem.fetch_add(addr, imm);
                self.clock += u64::from(cycles);
                self.write_reg(cid, rd, old, pc)?;
                self.advance(1);
            }
            SyncWait { base, imm } => {
                let addr = self.read_reg(cid, base, pc)?.wrapping_add(imm as Word);
                self.note_mem_read(addr);
                let (v, cycles) = self.mem.load(addr);
                self.clock += u64::from(cycles);
                if v == 0 {
                    self.advance(1);
                } else {
                    self.sched.block_current(BlockReason::Sync { addr });
                    return Ok(Status::Suspended);
                }
            }

            RFree { reg } => {
                if let Reg::R(off) = reg {
                    let mut store = CtableBacking {
                        mem: &mut self.mem,
                        map: &mut self.backing,
                    };
                    self.regfile.free_reg(RegAddr::new(cid, off), &mut store);
                }
                self.advance(1);
            }
            Nop => self.advance(1),
        }
        Ok(Status::Continue)
    }

    fn advance(&mut self, by: u32) {
        self.sched.current_mut().pc += by;
    }

    /// Frees a dead context everywhere: register file, Ctable, CID pool.
    fn release_context(&mut self, cid: Cid) {
        let mut store = CtableBacking {
            mem: &mut self.mem,
            map: &mut self.backing,
        };
        self.regfile.free_context(cid, &mut store);
        self.mem.ctable_mut().unmap(cid);
        self.sched.free_cid(cid);
        if self.active_cid == Some(cid) {
            self.active_cid = None;
        }
    }

    fn halt_thread(&mut self) -> Result<Status, SimError> {
        // Release the whole activation chain of the dying thread.
        let mut cids: Vec<Cid> = {
            let t = self.sched.current_mut();
            t.call_stack.drain(..).map(|(_, c)| c).collect()
        };
        cids.push(self.sched.current_mut().cid);
        for c in cids {
            self.release_context(c);
        }
        self.sched.finish_current();
        Ok(Status::Suspended)
    }
}

/// Signed division matching the ISA contract (x/0 = 0, MIN/-1 wraps).
pub(crate) fn div_s(x: Word, y: Word) -> Word {
    let (x, y) = (x as i32, y as i32);
    if y == 0 {
        0
    } else {
        x.wrapping_div(y) as Word
    }
}

/// Signed remainder matching the ISA contract (x%0 = 0, MIN%-1 = 0).
pub(crate) fn rem_s(x: Word, y: Word) -> Word {
    let (x, y) = (x as i32, y as i32);
    if y == 0 {
        0
    } else {
        x.wrapping_rem(y) as Word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_isa::asm::assemble;

    fn run_asm(src: &str) -> RunReport {
        let p = assemble(src).expect("assembles");
        Machine::new(p, SimConfig::default())
            .unwrap()
            .run()
            .unwrap()
    }

    fn run_asm_peek(src: &str, addr: Addr) -> (RunReport, Word) {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::new(p, SimConfig::default()).unwrap();
        let r = m.run_and_keep().unwrap();
        let v = m.mem.peek(addr);
        (r, v)
    }

    #[test]
    fn arithmetic_and_memory() {
        let (_, v) = run_asm_peek(
            "main:
                li r0, 21
                add r1, r0, r0
                li r2, 4096
                sw r1, (r2)
                halt",
            4096,
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn loop_counts_cycles_and_instructions() {
        let r = run_asm(
            "main:
                li r0, 10
                li r1, 0
            top:
                addi r0, r0, -1
                bne r0, r1, top
                halt",
        );
        assert_eq!(r.instructions, 3 + 10 * 2);
        assert!(r.cycles >= r.instructions);
    }

    #[test]
    fn call_ret_passes_args_and_returns() {
        // main computes f(5) where f(x) = x + 7, via the convention:
        // arg at sp-1, result in g1.
        let (r, v) = run_asm_peek(
            "main:
                li r0, 5
                sw r0, -1(g0)
                call f
                li r2, 8192
                sw g1, (r2)
                halt
            f:
                addi g0, g0, -1
                lw r0, (g0)
                addi g1, r0, 7
                addi g0, g0, 1
                ret",
            8192,
        );
        assert_eq!(v, 12);
        assert_eq!(r.calls, 1);
        assert_eq!(r.returns, 1);
        // Context switches: initial + call + ret.
        assert!(r.context_switches >= 3);
    }

    #[test]
    fn spawn_and_channels_communicate() {
        // Parent creates a channel, sends its id via memory, child doubles
        // a value and sends it back... simplified: parent sends 21 to
        // child through channel stored in memory; child doubles into a
        // second channel.
        let (_, v) = run_asm_peek(
            "main:
                chnew r0          ; c0: parent -> child
                chnew r1          ; c1: child -> parent
                li r2, 4000
                sw r0, (r2)
                sw r1, 1(r2)
                spawn child, r2
                li r3, 21
                chsend r0, r3
                chrecv r4, r1
                li r5, 5000
                sw r4, (r5)
                halt
            child:
                mv r0, g1         ; base address of channel ids
                lw r1, (r0)
                lw r2, 1(r0)
                chrecv r3, r1
                add r3, r3, r3
                chsend r2, r3
                halt",
            5000,
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn remote_load_blocks_and_delivers() {
        let (r, v) = run_asm_peek(
            "main:
                li r0, 6000
                li r1, 99
                sw r1, (r0)
                lwr r2, (r0)
                li r3, 6001
                sw r2, (r3)
                halt",
            6001,
        );
        assert_eq!(v, 99);
        // The remote round trip must show up in execution time.
        assert!(
            r.cycles >= 100,
            "cycles {} must include remote latency",
            r.cycles
        );
        assert!(r.idle_cycles > 0, "single thread idles while waiting");
    }

    #[test]
    fn syncwait_and_amoadd_join() {
        // Parent initializes a join counter to 2, spawns two children that
        // decrement it, and waits for zero.
        let (r, v) = run_asm_peek(
            "main:
                li r0, 7000
                li r1, 2
                sw r1, (r0)
                spawn child, r0
                spawn child, r0
                syncwait (r0)
                li r2, 7001
                li r3, 1
                sw r3, (r2)
                halt
            child:
                mv r0, g1
                amoadd r1, -1(r0)  ; wrong operand form? amoadd rd, imm(base)
                halt",
            7001,
        );
        assert_eq!(v, 1, "parent proceeded after join");
        assert_eq!(r.spawns, 2);
    }

    #[test]
    fn deadlock_detected() {
        let p = assemble("main: chnew r0\n chrecv r1, r0\n halt").unwrap();
        let err = Machine::new(p, SimConfig::default())
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn read_undefined_register_reported() {
        let p = assemble("main: add r0, r1, r2\n halt").unwrap();
        let err = Machine::new(p, SimConfig::default())
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::RegFile {
                source: RegFileError::ReadUndefined(_),
                ..
            }
        ));
    }

    #[test]
    fn bad_channel_reported() {
        let p = assemble("main: li r0, 77\n chsend r0, r0\n halt").unwrap();
        let err = Machine::new(p, SimConfig::default())
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BadChannel { id: 77 }));
    }

    #[test]
    fn instruction_budget_enforced() {
        let p = assemble("main: jmp main").unwrap();
        let cfg = SimConfig {
            max_instructions: 1000,
            ..Default::default()
        };
        let err = Machine::new(p, cfg).unwrap().run().unwrap_err();
        assert!(matches!(err, SimError::MaxInstructions { limit: 1000 }));
    }

    #[test]
    fn icache_charges_misses_but_not_hot_loops() {
        let src = "main:
                li r0, 2000
                li r1, 0
            top:
                addi r0, r0, -1
                bne r0, r1, top
                halt";
        let p = assemble(src).unwrap();
        let base = Machine::new(p.clone(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let cfg = SimConfig {
            icache: Some(nsf_mem::CacheConfig {
                capacity_words: 64,
                line_words: 4,
                ways: 2,
                hit_cycles: 1,
                miss_penalty: 20,
            }),
            ..Default::default()
        };
        let cached = Machine::new(p, cfg).unwrap().run().unwrap();
        let st = cached.icache.expect("icache stats present");
        assert_eq!(st.accesses, cached.instructions);
        assert!(st.miss_ratio() < 0.01, "a 5-instruction loop must hit");
        // Only the cold misses cost extra cycles.
        assert!(cached.cycles >= base.cycles);
        assert!(cached.cycles <= base.cycles + 100);
        assert!(base.icache.is_none());
    }

    #[test]
    fn bounded_channels_block_fast_producers() {
        // Producer fires 8 sends at a 1-slot channel; consumer drains
        // slowly. Backpressure must not lose or reorder anything.
        let src = "main:
                chnew r0
                li r1, 4000
                sw r0, (r1)
                li r9, 1
                li r10, 4001
                sw r9, (r10)          ; done flag (1 = running)
                spawn consumer, r1
                li r2, 0
                li r3, 8
            produce:
                bge r2, r3, fin
                chsend r0, r2
                addi r2, r2, 1
                jmp produce
            fin:
                syncwait (r10)
                halt
            consumer:
                mv r0, g1
                lw r1, (r0)
                li r2, 0
                li r3, 8
                li r4, 5000
            drain:
                bge r2, r3, done
                chrecv r5, r1
                add r6, r4, r2
                sw r5, (r6)
                addi r2, r2, 1
                jmp drain
            done:
                li r7, 4001
                li r8, 0
                sw r8, (r7)
                halt";
        let p = assemble(src).unwrap();
        let cfg = SimConfig {
            channel_capacity: Some(1),
            ..Default::default()
        };
        let mut m = Machine::new(p, cfg).unwrap();
        let r = m.run_and_keep().unwrap();
        for i in 0..8u32 {
            assert_eq!(m.mem.peek(5000 + i), i, "message {i} in order");
        }
        assert!(
            r.thread_switches >= 8,
            "backpressure must bounce between producer and consumer: {}",
            r.thread_switches
        );
    }

    #[test]
    fn quantum_interleaves_threads() {
        // Two compute-only threads that never block: under pure block
        // multithreading the first runs to completion; with a quantum
        // they interleave.
        let src = "main:
                li r2, 12000
                li r1, 2
                sw r1, (r2)
                li r0, 0
                spawn worker, r0
                spawn worker, r0
                syncwait (r2)
                halt
            worker:
                li r0, 0
                li r1, 200
            spin:
                addi r0, r0, 1
                blt r0, r1, spin
                li r4, 12000
                amoadd r5, -1(r4)
                halt";
        let p = assemble(src).unwrap();
        let blocked = Machine::new(p.clone(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let cfg = SimConfig {
            quantum: Some(16),
            ..Default::default()
        };
        let interleaved = Machine::new(p, cfg).unwrap().run().unwrap();
        assert!(
            interleaved.thread_switches > blocked.thread_switches + 10,
            "quantum must force interleaving: {} vs {}",
            interleaved.thread_switches,
            blocked.thread_switches
        );
        // Functional result unchanged (both workers complete).
        assert_eq!(interleaved.spawns, 2);
    }

    #[test]
    fn per_thread_instruction_counts_sum_to_total() {
        let p = assemble(
            "main:
                li r0, 0
                spawn child, r0
                spawn child, r0
                li r1, 9000
                li r2, 2
                sw r2, (r1)
                syncwait (r1)
                halt
            child:
                li r0, 9000
                li r1, 0
                li r2, 40
            spin:
                addi r1, r1, 1
                blt r1, r2, spin
                amoadd r3, -1(r0)
                halt",
        )
        .unwrap();
        let r = Machine::new(p, SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.thread_instructions.len(), 3, "main + two children");
        assert_eq!(
            r.thread_instructions.iter().sum::<u64>(),
            r.instructions,
            "per-thread counts partition the total"
        );
        assert!(r.thread_instructions[1] > 40, "children did their spins");
    }

    #[test]
    fn trace_records_recent_instructions() {
        let p = assemble("main: li r0, 1\n addi r0, r0, 1\n addi r0, r0, 2\n halt").unwrap();
        let cfg = SimConfig {
            trace_depth: 2,
            ..Default::default()
        };
        let mut m = Machine::new(p, cfg).unwrap();
        m.run_and_keep().unwrap();
        let entries: Vec<_> = m.trace().entries().copied().collect();
        assert_eq!(entries.len(), 2, "ring keeps only the last two");
        assert!(matches!(entries[0].inst, Inst::Addi { imm: 2, .. }));
        assert!(matches!(entries[1].inst, Inst::Halt));
        assert_eq!(entries[1].pc, 3);
    }

    #[test]
    fn trace_disabled_by_default() {
        let p = assemble("main: halt").unwrap();
        let mut m = Machine::new(p, SimConfig::default()).unwrap();
        m.run_and_keep().unwrap();
        assert!(m.trace().is_empty());
    }

    #[test]
    fn oversized_spill_footprint_rejected() {
        // 65 registers per frame cannot fit the 64-word backing stride:
        // context save areas would overlap silently. Must fail at build.
        let p = assemble("main: halt").unwrap();
        let cfg = SimConfig::with_regfile(crate::RegFileSpec::paper_segmented(2, 65));
        let err = Machine::new(p, cfg).unwrap_err();
        assert!(
            matches!(err, SimError::BadConfig(ref m) if m.contains("backing stride")),
            "expected a backing-stride rejection, got: {err}"
        );
    }

    #[test]
    fn zero_issue_width_rejected() {
        let p = assemble("main: halt").unwrap();
        let cfg = SimConfig {
            issue_width: 0,
            ..Default::default()
        };
        assert!(matches!(
            Machine::new(p.clone(), cfg).unwrap_err(),
            SimError::BadConfig(_)
        ));
        let cfg = SimConfig {
            issue_width: 2,
            read_ports: 0,
            ..Default::default()
        };
        assert!(matches!(
            Machine::new(p, cfg).unwrap_err(),
            SimError::BadConfig(_)
        ));
    }

    /// A straight-line block with exploitable ILP inside a loop.
    const ILP_LOOP: &str = "main:
            li r0, 0
            li r1, 300
            li r2, 1
            li r3, 2
        top:
            add r4, r2, r3
            add r5, r2, r2
            add r6, r3, r3
            add r7, r4, r5
            addi r0, r0, 1
            blt r0, r1, top
            halt";

    #[test]
    fn multi_issue_only_changes_timing() {
        let p = assemble(ILP_LOOP).unwrap();
        let serial = Machine::new(p.clone(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        for width in [2, 4] {
            let cfg = SimConfig {
                issue_width: width,
                read_ports: 3,
                write_ports: 2,
                ..Default::default()
            };
            let wide = Machine::new(p.clone(), cfg).unwrap().run().unwrap();
            assert_eq!(wide.instructions, serial.instructions, "width {width}");
            assert_eq!(wide.class_counts, serial.class_counts, "width {width}");
            assert_eq!(
                (wide.regfile.reads, wide.regfile.writes),
                (serial.regfile.reads, serial.regfile.writes),
                "width {width}: engine traffic is width-invariant"
            );
            assert!(
                wide.cycles < serial.cycles,
                "width {width}: ILP must shorten the run ({} vs {})",
                wide.cycles,
                serial.cycles
            );
        }
    }

    #[test]
    fn cpi_non_increasing_in_issue_width() {
        let p = assemble(ILP_LOOP).unwrap();
        let mut last = f64::INFINITY;
        for width in [1, 2, 4, 8] {
            let cfg = SimConfig {
                issue_width: width,
                read_ports: 3,
                write_ports: 2,
                ..Default::default()
            };
            let r = Machine::new(p.clone(), cfg).unwrap().run().unwrap();
            let cpi = r.cpi();
            assert!(cpi <= last, "width {width}: CPI rose from {last} to {cpi}");
            last = cpi;
        }
    }

    #[test]
    fn port_conflicts_surface_in_the_report() {
        let p = assemble(ILP_LOOP).unwrap();
        let serial = Machine::new(p.clone(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            serial.regfile.port_conflict_cycles, 0,
            "single issue never arbitrates ports"
        );
        let cfg = SimConfig {
            issue_width: 2,
            read_ports: 2,
            write_ports: 1,
            ..Default::default()
        };
        let r = Machine::new(p, cfg).unwrap().run().unwrap();
        assert!(
            r.regfile.port_conflict_cycles > 0,
            "a 2-wide frontend on a 2R/1W file must hit port limits"
        );
    }

    #[test]
    fn wider_ports_relieve_conflicts() {
        let p = assemble(ILP_LOOP).unwrap();
        let narrow = SimConfig {
            issue_width: 4,
            read_ports: 2,
            write_ports: 1,
            ..Default::default()
        };
        let wide = SimConfig {
            issue_width: 4,
            read_ports: 8,
            write_ports: 4,
            ..Default::default()
        };
        let n = Machine::new(p.clone(), narrow).unwrap().run().unwrap();
        let w = Machine::new(p, wide).unwrap().run().unwrap();
        assert!(n.regfile.port_conflict_cycles > w.regfile.port_conflict_cycles);
        assert!(w.cycles <= n.cycles);
    }

    #[test]
    fn globals_survive_calls() {
        let (_, v) = run_asm_peek(
            "main:
                li g2, 1234
                call f
                li r0, 9000
                sw g2, (r0)
                halt
            f:
                ret",
            9000,
        );
        assert_eq!(v, 1234, "g registers are thread state, not context state");
    }
}
