//! Lane-batched execution: one instruction stream, N register files.
//!
//! Every figure in the paper sweeps *register file organizations* over a
//! fixed workload, so consecutive sweep points re-fetch, re-decode and
//! re-schedule an identical instruction stream and differ only in
//! register-file behaviour. [`LaneSet`] exploits that: it holds N
//! independent [`EngineDispatch`] lanes in structure-of-arrays form and
//! steps them interleaved through a single shared frontend — one fetch,
//! one decode, one scheduler decision and one branch resolution per
//! instruction, regardless of lane count.
//!
//! ## Why this is exact, not approximate
//!
//! For the programs lane batching accepts (single-threaded, no channel,
//! remote or synchronization operations — see [`batchable_program`]),
//! the clock is *write-only* during execution: scheduler decisions,
//! branch outcomes and memory addresses depend only on architectural
//! register values, and a register file organization may change only
//! *when* a value arrives, never *what* it is. So the lanes agree on
//! every architectural value at every step, the shared frontend replays
//! each serial run's control flow bit-for-bit, and each lane's private
//! clock, memory hierarchy and spill frames accumulate exactly the
//! timing its serial [`Machine`](crate::Machine) run would have.
//!
//! That claim is *enforced*, not assumed: every register read and every
//! memory access compares all lanes' values against lane 0 and fails
//! with [`SimError::LaneDivergence`] on the first disagreement — a
//! built-in equivalence wall in front of every batched data point, on
//! top of the serial-vs-lanes proptests in `tests/lane_equiv.rs`.

use crate::backing::LaneStore;
use crate::config::{SimConfig, BACKING_STRIDE_WORDS};
use crate::machine::{div_s, rem_s, SimError, Status, ICACHE_BASE};
use crate::metrics::{OccupancySummary, RunReport};
use nsf_core::{Cid, EngineDispatch, LaneOp, RegAddr, RegFileError, RegisterFile};
use nsf_isa::{Inst, InstClass, Program, Reg};
use nsf_mem::{Addr, Cache, MemSystem, Word};
use nsf_runtime::{SchedDecision, Scheduler, ThreadId};

/// `true` when `program` contains none of the operations that block a
/// thread or touch scheduler-visible state beyond one thread: spawns,
/// yields, channels, remote memory and synchronizing loads. Only such
/// single-threaded streams are lane-batchable — anything else wakes the
/// scheduler at clock-dependent times, and the clock is per-lane.
pub fn batchable_program(program: &Program) -> bool {
    use Inst::*;
    program.insts().iter().all(|i| {
        !matches!(
            i,
            Spawn { .. }
                | Yield
                | ChNew { .. }
                | ChSend { .. }
                | ChRecv { .. }
                | LwRemote { .. }
                | SwRemote { .. }
                | SyncWait { .. }
        )
    })
}

/// `true` when this (program, configurations) pair can execute as one
/// lane-batched pass: at least two lanes worth batching, identical
/// frontends (everything but the register file —
/// [`SimConfig::frontend_eq`]), tracing off, a single-issue frontend
/// (the multi-issue pipeline groups instructions by dynamic port
/// pressure, which is engine-dependent — such streams are not
/// lane-invariant and must run serial), and a batchable program.
pub fn batchable(program: &Program, cfgs: &[SimConfig]) -> bool {
    cfgs.len() > 1
        && cfgs[0].trace_depth == 0
        && cfgs[0].issue_width == 1
        && cfgs.iter().all(|c| cfgs[0].frontend_eq(c))
        && batchable_program(program)
}

/// Observer of a lane set's *shared frontend*: every architectural
/// event the fetch/decode/schedule/memory frontend produces, in
/// execution order, plus the lane-invariant cycle charges. All values
/// handed to a probe are lane-invariant (the equivalence wall enforces
/// that before the probe sees them), so a recording of one run drives a
/// replay of any frontend-equal configuration — the frontend event-
/// stream cache in `nsf-trace` is the intended consumer.
///
/// Methods default to no-ops; [`NoProbe`] (the plain [`LaneSet::
/// run_and_keep`] path) monomorphizes to nothing, so probing is free
/// when unused.
pub trait FrontendProbe {
    /// One register-file operation completed; `value` is the (lane-
    /// invariant) architectural result — `Some` for reads, else `None`.
    fn reg_op(&mut self, op: LaneOp, value: Option<Word>) {
        let _ = (op, value);
    }
    /// The program loaded `value` from `addr`.
    fn mem_load(&mut self, addr: Addr, value: Word) {
        let _ = (addr, value);
    }
    /// The program stored `value` at `addr`.
    fn mem_store(&mut self, addr: Addr, value: Word) {
        let _ = (addr, value);
    }
    /// The program atomically added `delta` at `addr`; `old` is the
    /// value read back.
    fn mem_amo(&mut self, addr: Addr, delta: i32, old: Word) {
        let _ = (addr, delta, old);
    }
    /// Every lane's clock advanced by `cycles` (base, fetch-penalty,
    /// taken-branch and switch-overhead charges — the lane-invariant
    /// part of the clock; per-lane stall and cache cycles are not
    /// reported, a replay regenerates them).
    fn shared_charge(&mut self, cycles: u32) {
        let _ = cycles;
    }
    /// The occupancy sampling interval elapsed (each lane records a
    /// sample at this point).
    fn occupancy_sample(&mut self) {}
}

/// The do-nothing probe behind [`LaneSet::run_and_keep`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl FrontendProbe for NoProbe {}

/// N independent register-file lanes stepped through one shared
/// fetch/decode/schedule frontend.
///
/// Shared across lanes: the program, the scheduler (pc, globals, call
/// stack, CID pool), instruction/class/call/switch counters, and the
/// instruction cache (the pc stream is identical, so every lane sees the
/// same fetch penalties). Private per lane: the register file engine,
/// the memory hierarchy with its Ctable and spill frames, the clock,
/// and occupancy samples.
///
/// # Examples
///
/// ```
/// use nsf_isa::asm::assemble;
/// use nsf_sim::{LaneSet, RegFileSpec, SimConfig};
///
/// let program = assemble(
///     "main: li r0, 6
///            li r1, 7
///            mul r2, r0, r1
///            li r3, 4096
///            sw r2, (r3)
///            halt",
/// )
/// .unwrap();
/// let cfgs = [
///     SimConfig::with_regfile(RegFileSpec::paper_nsf(128)),
///     SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 32)),
/// ];
/// let mut lanes = LaneSet::new(program, &cfgs)?;
/// let reports = lanes.run_and_keep()?;
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].instructions, reports[1].instructions);
/// assert_eq!(lanes.lane_mem(0).peek(4096), 42);
/// assert_eq!(lanes.lane_mem(1).peek(4096), 42);
/// # Ok::<(), nsf_sim::SimError>(())
/// ```
pub struct LaneSet {
    cfg: SimConfig,
    program: Program,
    sched: Scheduler,
    regfiles: Vec<EngineDispatch>,
    stores: Vec<LaneStore>,
    clocks: Vec<u64>,
    occupancy: Vec<OccupancySummary>,
    /// Frontend counters shared by every lane; per-lane fields (cycles,
    /// regfile, dcache, occupancy, icache) are filled in per report.
    shared: RunReport,
    last_thread: Option<ThreadId>,
    active_cid: Option<Cid>,
    icache: Option<Cache>,
}

impl std::fmt::Debug for LaneSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneSet")
            .field("lanes", &self.lanes())
            .field("clocks", &self.clocks)
            .field("instructions", &self.shared.instructions)
            .field("active_cid", &self.active_cid)
            .finish_non_exhaustive()
    }
}

impl LaneSet {
    /// Builds a lane set and spawns the initial thread, mirroring
    /// [`Machine::new`](crate::Machine::new) in every lane. Rejects
    /// incompatible configurations and unbatchable programs with
    /// [`SimError::BadConfig`].
    pub fn new(program: Program, cfgs: &[SimConfig]) -> Result<Self, SimError> {
        let first = cfgs.first().ok_or_else(|| {
            SimError::BadConfig("a lane set needs at least one configuration".into())
        })?;
        if !cfgs.iter().all(|c| first.frontend_eq(c)) {
            return Err(SimError::BadConfig(
                "lane configurations must agree on everything except the \
                 register file"
                    .into(),
            ));
        }
        if first.trace_depth != 0 {
            return Err(SimError::BadConfig(
                "lane batching does not support execution tracing".into(),
            ));
        }
        if first.issue_width > 1 {
            return Err(SimError::BadConfig(
                "lane batching supports only single-issue frontends; route \
                 multi-issue points through serial Machine runs"
                    .into(),
            ));
        }
        if !batchable_program(&program) {
            return Err(SimError::BadConfig(
                "program uses thread, channel or remote operations; lane \
                 batching needs a single-threaded stream"
                    .into(),
            ));
        }
        if (first.sched.cid_capacity as usize) > first.mem.ctable_slots {
            return Err(SimError::BadConfig(format!(
                "cid_capacity {} exceeds ctable_slots {}: contexts could not \
                 be mapped to backing store",
                first.sched.cid_capacity, first.mem.ctable_slots
            )));
        }
        for cfg in cfgs {
            let spill_regs = cfg.regfile.max_spill_regs();
            if spill_regs > BACKING_STRIDE_WORDS {
                return Err(SimError::BadConfig(format!(
                    "organization can spill {spill_regs} words per context, \
                     overflowing the {BACKING_STRIDE_WORDS}-word backing stride: \
                     context save areas would overlap"
                )));
            }
        }
        let mut set = LaneSet {
            cfg: *first,
            program,
            sched: Scheduler::new(first.sched),
            regfiles: cfgs.iter().map(|c| c.regfile.build()).collect(),
            stores: cfgs
                .iter()
                .map(|c| LaneStore::new(MemSystem::new(c.mem)))
                .collect(),
            clocks: vec![0; cfgs.len()],
            occupancy: vec![OccupancySummary::default(); cfgs.len()],
            shared: RunReport::default(),
            last_thread: None,
            active_cid: None,
            icache: first.icache.map(Cache::new),
        };
        let entry = set.program.entry();
        let tid = set.sched.spawn(entry, 0)?;
        let cid = set.sched.thread(tid).cid;
        set.map_ctable_all(cid);
        Ok(set)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.regfiles.len()
    }

    /// One lane's memory system, for staging inputs and checking outputs.
    pub fn lane_mem(&self, lane: usize) -> &MemSystem {
        &self.stores[lane].mem
    }

    /// Writes `words` at `addr` in every lane's memory (input staging —
    /// lanes must start from identical data).
    pub fn poke_block(&mut self, addr: Addr, words: &[Word]) {
        for s in &mut self.stores {
            s.mem.poke_block(addr, words);
        }
    }

    /// Runs to completion and returns one report per lane, in lane
    /// order. Each report is bit-identical to what the corresponding
    /// serial [`Machine`](crate::Machine) run would produce.
    pub fn run_and_keep(&mut self) -> Result<Vec<RunReport>, SimError> {
        self.run_probed(&mut NoProbe)
    }

    /// [`LaneSet::run_and_keep`] with a [`FrontendProbe`] observing the
    /// shared frontend. Probing never perturbs the run: the reports (and
    /// every lane's memory) are identical to an unprobed run's.
    pub fn run_probed<P: FrontendProbe>(
        &mut self,
        probe: &mut P,
    ) -> Result<Vec<RunReport>, SimError> {
        loop {
            let decision = {
                let now = self.clocks[0];
                let (sched, mem) = (&mut self.sched, &self.stores[0].mem);
                sched.next(now, |addr| mem.peek(addr) == 0)
            };
            match decision {
                SchedDecision::Run(tid) => {
                    if self.last_thread != Some(tid) {
                        if self.last_thread.is_some() {
                            self.shared.thread_switches += 1;
                            self.charge_all(self.cfg.cycles.switch_overhead, probe);
                        }
                        self.last_thread = Some(tid);
                    }
                    let cid = self.sched.thread(tid).cid;
                    self.switch_all(cid, LaneOp::ThreadSwitch, probe)?;
                    self.run_current(probe)?;
                }
                SchedDecision::AllDone => break,
                SchedDecision::AdvanceTo(_) | SchedDecision::Deadlock => {
                    unreachable!("batchable programs never block")
                }
            }
        }
        Ok(self.reports())
    }

    fn reports(&mut self) -> Vec<RunReport> {
        self.shared.static_instructions = self.program.len();
        self.shared.thread_instructions = self
            .sched
            .threads()
            .iter()
            .map(|t| t.instructions)
            .collect();
        let icache_stats = self.icache.as_ref().map(|c| c.stats());
        (0..self.lanes())
            .map(|i| {
                let mut r = self.shared.clone();
                r.cycles = self.clocks[i];
                r.regfile = *self.regfiles[i].stats();
                r.regfile_desc = self.regfiles[i].describe();
                r.regfile_capacity = self.regfiles[i].capacity();
                r.dcache = self.stores[i].mem.dcache_stats();
                r.occupancy = self.occupancy[i];
                r.icache = icache_stats;
                r
            })
            .collect()
    }

    fn map_ctable_all(&mut self, cid: Cid) {
        let base = self.cfg.backing_base + Addr::from(cid) * BACKING_STRIDE_WORDS;
        for s in &mut self.stores {
            s.mem.ctable_mut().map(cid, base);
        }
    }

    /// Adds `cycles` to every lane's clock (frontend costs are identical
    /// across lanes by construction).
    fn charge_all<P: FrontendProbe>(&mut self, cycles: u32, probe: &mut P) {
        let c = u64::from(cycles);
        for clock in &mut self.clocks {
            *clock += c;
        }
        probe.shared_charge(cycles);
    }

    /// Applies one register-file operation to every lane, charging each
    /// lane's private stall cycles, and returns the (lane-invariant)
    /// architectural value. The first cross-lane disagreement fails with
    /// [`SimError::LaneDivergence`] — this is the equivalence wall.
    fn reg_op_all<P: FrontendProbe>(
        &mut self,
        op: LaneOp,
        pc: u32,
        probe: &mut P,
    ) -> Result<Option<Word>, SimError> {
        let LaneSet {
            regfiles,
            stores,
            clocks,
            ..
        } = self;
        let mut head: Option<Option<Word>> = None;
        let mut diverged: Option<(usize, Option<Word>, Option<Word>)> = None;
        let mut failed: Option<RegFileError> = None;
        EngineDispatch::step_lanes(regfiles, stores, op, |i, r| match r {
            Ok(step) => {
                clocks[i] += u64::from(step.stall_cycles);
                match head {
                    None => head = Some(step.value),
                    Some(h) => {
                        if h != step.value && diverged.is_none() {
                            diverged = Some((i, h, step.value));
                        }
                    }
                }
            }
            Err(e) => {
                if failed.is_none() {
                    failed = Some(e);
                }
            }
        });
        if let Some(source) = failed {
            return Err(SimError::RegFile { pc, source });
        }
        if let Some((lane, expect, got)) = diverged {
            return Err(SimError::LaneDivergence {
                pc,
                lane,
                detail: format!("{op:?} returned {got:?}, lane 0 returned {expect:?}"),
            });
        }
        let value = head.expect("lane sets are non-empty");
        probe.reg_op(op, value);
        Ok(value)
    }

    fn read_reg_all<P: FrontendProbe>(
        &mut self,
        cid: Cid,
        r: Reg,
        pc: u32,
        probe: &mut P,
    ) -> Result<Word, SimError> {
        match r {
            Reg::G(i) => Ok(self.sched.current_mut().globals[i as usize]),
            Reg::R(off) => Ok(self
                .reg_op_all(LaneOp::Read(RegAddr::new(cid, off)), pc, probe)?
                .expect("reads return a value")),
        }
    }

    fn write_reg_all<P: FrontendProbe>(
        &mut self,
        cid: Cid,
        r: Reg,
        value: Word,
        pc: u32,
        probe: &mut P,
    ) -> Result<(), SimError> {
        match r {
            Reg::G(i) => {
                self.sched.current_mut().globals[i as usize] = value;
                Ok(())
            }
            Reg::R(off) => {
                self.reg_op_all(LaneOp::Write(RegAddr::new(cid, off), value), pc, probe)?;
                Ok(())
            }
        }
    }

    /// Notifies every lane's register file that `cid` is now running
    /// (no-op when it already is), charging each lane's switch cycles.
    /// `op` routes to the organization's call-push / thread-switch /
    /// plain handler, mirroring the serial machine's `SwitchKind`.
    fn switch_all<P: FrontendProbe>(
        &mut self,
        cid: Cid,
        op: fn(Cid) -> LaneOp,
        probe: &mut P,
    ) -> Result<(), SimError> {
        if self.active_cid == Some(cid) {
            return Ok(());
        }
        self.reg_op_all(op(cid), 0, probe)?;
        self.shared.context_switches += 1;
        self.active_cid = Some(cid);
        Ok(())
    }

    /// Frees a dead context in every lane: register file, Ctable, and
    /// the shared CID pool.
    fn release_all<P: FrontendProbe>(&mut self, cid: Cid, probe: &mut P) -> Result<(), SimError> {
        self.reg_op_all(LaneOp::FreeContext(cid), 0, probe)?;
        for s in &mut self.stores {
            s.mem.ctable_mut().unmap(cid);
        }
        self.sched.free_cid(cid);
        if self.active_cid == Some(cid) {
            self.active_cid = None;
        }
        Ok(())
    }

    fn halt_all<P: FrontendProbe>(&mut self, probe: &mut P) -> Result<Status, SimError> {
        let mut cids: Vec<Cid> = {
            let t = self.sched.current_mut();
            t.call_stack.drain(..).map(|(_, c)| c).collect()
        };
        cids.push(self.sched.current_mut().cid);
        for c in cids {
            self.release_all(c, probe)?;
        }
        self.sched.finish_current();
        Ok(Status::Suspended)
    }

    fn run_current<P: FrontendProbe>(&mut self, probe: &mut P) -> Result<(), SimError> {
        let mut issued: u64 = 0;
        loop {
            if self.shared.instructions >= self.cfg.max_instructions {
                return Err(SimError::MaxInstructions {
                    limit: self.cfg.max_instructions,
                });
            }
            match self.step(probe)? {
                Status::Continue => {}
                Status::Suspended => return Ok(()),
            }
            issued += 1;
            if let Some(q) = self.cfg.quantum {
                if issued >= q && self.sched.ready_count() > 0 {
                    self.sched.yield_current();
                    return Ok(());
                }
            }
        }
    }

    /// Executes one instruction of the running thread across all lanes.
    fn step<P: FrontendProbe>(&mut self, probe: &mut P) -> Result<Status, SimError> {
        let (pc, cid) = {
            let t = self.sched.current_mut();
            (t.pc, t.cid)
        };

        let inst = *self
            .program
            .fetch(pc)
            .ok_or(SimError::PcOutOfRange { pc })?;

        self.shared.instructions += 1;
        self.shared.class_counts[RunReport::class_index(inst.class())] += 1;
        self.sched.current_mut().instructions += 1;
        let base = self.base_cycles(inst.class());
        self.charge_all(base, probe);

        // One shared fetch: the pc stream is lane-invariant, so a single
        // icache access yields the penalty every serial run would pay.
        let fetch_penalty = self
            .icache
            .as_mut()
            .map(|ic| ic.access(ICACHE_BASE + pc, false) - ic.config().hit_cycles);
        if let Some(p) = fetch_penalty {
            self.charge_all(p, probe);
        }

        if self
            .shared
            .instructions
            .is_multiple_of(self.cfg.sample_interval)
        {
            for (o, rf) in self.occupancy.iter_mut().zip(&self.regfiles) {
                o.record(rf.occupancy());
            }
            probe.occupancy_sample();
        }

        self.execute(inst, pc, cid, probe)
    }

    fn base_cycles(&self, class: InstClass) -> u32 {
        let c = &self.cfg.cycles;
        match class {
            InstClass::Alu => c.alu,
            InstClass::Mem | InstClass::RemoteMem => c.mem_base,
            InstClass::Control => c.control,
            InstClass::Proc => c.proc_op,
            InstClass::Thread => c.thread_op,
            InstClass::Misc => c.misc,
        }
    }

    /// Loads `addr` in every lane, charging per-lane cache cycles; the
    /// loaded values must agree (lanes start from identical data and
    /// only spill frames — which programs never read — differ).
    fn load_all<P: FrontendProbe>(
        &mut self,
        addr: Addr,
        pc: u32,
        probe: &mut P,
    ) -> Result<Word, SimError> {
        let mut head: Option<Word> = None;
        for (i, s) in self.stores.iter_mut().enumerate() {
            let (v, cycles) = s.mem.load(addr);
            self.clocks[i] += u64::from(cycles);
            match head {
                None => head = Some(v),
                Some(h) => {
                    if h != v {
                        return Err(SimError::LaneDivergence {
                            pc,
                            lane: i,
                            detail: format!("load {addr:#x} read {v}, lane 0 read {h}"),
                        });
                    }
                }
            }
        }
        let v = head.expect("lane sets are non-empty");
        probe.mem_load(addr, v);
        Ok(v)
    }

    #[allow(clippy::too_many_lines)]
    fn execute<P: FrontendProbe>(
        &mut self,
        inst: Inst,
        pc: u32,
        cid: Cid,
        probe: &mut P,
    ) -> Result<Status, SimError> {
        use Inst::*;

        macro_rules! alu3 {
            ($rd:expr, $a:expr, $b:expr, $f:expr) => {{
                let x = self.read_reg_all(cid, $a, pc, probe)?;
                let y = self.read_reg_all(cid, $b, pc, probe)?;
                #[allow(clippy::redundant_closure_call)]
                let v = ($f)(x, y);
                self.write_reg_all(cid, $rd, v, pc, probe)?;
                self.advance(1);
            }};
        }
        macro_rules! alui {
            ($rd:expr, $a:expr, $imm:expr, $f:expr) => {{
                let x = self.read_reg_all(cid, $a, pc, probe)?;
                #[allow(clippy::redundant_closure_call)]
                let v = ($f)(x, $imm as Word);
                self.write_reg_all(cid, $rd, v, pc, probe)?;
                self.advance(1);
            }};
        }
        macro_rules! branch {
            ($a:expr, $b:expr, $t:expr, $cmp:expr) => {{
                let x = self.read_reg_all(cid, $a, pc, probe)?;
                let y = self.read_reg_all(cid, $b, pc, probe)?;
                #[allow(clippy::redundant_closure_call)]
                if ($cmp)(x, y) {
                    self.charge_all(self.cfg.cycles.taken_extra, probe);
                    self.sched.current_mut().pc = $t;
                } else {
                    self.advance(1);
                }
            }};
        }

        match inst {
            Add { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x.wrapping_add(y)),
            Sub { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x.wrapping_sub(y)),
            Mul { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x.wrapping_mul(y)),
            Div { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| div_s(x, y)),
            Rem { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| rem_s(x, y)),
            And { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x & y),
            Or { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x | y),
            Xor { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x ^ y),
            Sll { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x << (y & 31)),
            Srl { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| x >> (y & 31)),
            Sra { rd, rs1, rs2 } => {
                alu3!(rd, rs1, rs2, |x: Word, y: Word| ((x as i32) >> (y & 31))
                    as Word)
            }
            Slt { rd, rs1, rs2 } => {
                alu3!(rd, rs1, rs2, |x: Word, y: Word| Word::from(
                    (x as i32) < (y as i32)
                ))
            }
            Sltu { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| Word::from(x < y)),
            Seq { rd, rs1, rs2 } => alu3!(rd, rs1, rs2, |x: Word, y: Word| Word::from(x == y)),

            Addi { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x.wrapping_add(y)),
            Andi { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x & y),
            Ori { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x | y),
            Xori { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x ^ y),
            Slli { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x << (y & 31)),
            Srli { rd, rs1, imm } => alui!(rd, rs1, imm, |x: Word, y: Word| x >> (y & 31)),
            Srai { rd, rs1, imm } => {
                alui!(rd, rs1, imm, |x: Word, y: Word| ((x as i32) >> (y & 31))
                    as Word)
            }
            Slti { rd, rs1, imm } => {
                alui!(rd, rs1, imm, |x: Word, y: Word| Word::from(
                    (x as i32) < (y as i32)
                ))
            }
            Li { rd, imm } => {
                self.write_reg_all(cid, rd, imm as Word, pc, probe)?;
                self.advance(1);
            }
            Mv { rd, rs1 } => {
                let v = self.read_reg_all(cid, rs1, pc, probe)?;
                self.write_reg_all(cid, rd, v, pc, probe)?;
                self.advance(1);
            }

            Lw { rd, base, imm } => {
                let addr = self
                    .read_reg_all(cid, base, pc, probe)?
                    .wrapping_add(imm as Word);
                let v = self.load_all(addr, pc, probe)?;
                self.write_reg_all(cid, rd, v, pc, probe)?;
                self.advance(1);
            }
            Sw { base, src, imm } => {
                let addr = self
                    .read_reg_all(cid, base, pc, probe)?
                    .wrapping_add(imm as Word);
                let v = self.read_reg_all(cid, src, pc, probe)?;
                for (i, s) in self.stores.iter_mut().enumerate() {
                    let cycles = s.mem.store(addr, v);
                    self.clocks[i] += u64::from(cycles);
                }
                probe.mem_store(addr, v);
                self.advance(1);
            }
            AmoAdd { rd, base, imm } => {
                let addr = self.read_reg_all(cid, base, pc, probe)?;
                let mut head: Option<Word> = None;
                for (i, s) in self.stores.iter_mut().enumerate() {
                    let (old, cycles) = s.mem.fetch_add(addr, imm);
                    self.clocks[i] += u64::from(cycles);
                    match head {
                        None => head = Some(old),
                        Some(h) => {
                            if h != old {
                                return Err(SimError::LaneDivergence {
                                    pc,
                                    lane: i,
                                    detail: format!("amoadd {addr:#x} read {old}, lane 0 read {h}"),
                                });
                            }
                        }
                    }
                }
                let old = head.expect("lane sets are non-empty");
                probe.mem_amo(addr, imm, old);
                self.write_reg_all(cid, rd, old, pc, probe)?;
                self.advance(1);
            }

            Beq { rs1, rs2, target } => branch!(rs1, rs2, target, |x, y| x == y),
            Bne { rs1, rs2, target } => branch!(rs1, rs2, target, |x, y| x != y),
            Blt { rs1, rs2, target } => {
                branch!(rs1, rs2, target, |x: Word, y: Word| (x as i32) < (y as i32))
            }
            Bge { rs1, rs2, target } => {
                branch!(rs1, rs2, target, |x: Word, y: Word| (x as i32)
                    >= (y as i32))
            }
            Jmp { target } => {
                self.sched.current_mut().pc = target;
            }

            Call { target } => {
                let new_cid = self.sched.alloc_cid()?;
                self.map_ctable_all(new_cid);
                {
                    let t = self.sched.current_mut();
                    t.call_stack.push((pc + 1, t.cid));
                    t.cid = new_cid;
                    t.pc = target;
                }
                self.shared.calls += 1;
                self.switch_all(new_cid, LaneOp::CallPush, probe)?;
            }
            Ret => {
                let popped = self.sched.current_mut().call_stack.pop();
                match popped {
                    Some((ret_pc, caller)) => {
                        let dead = {
                            let t = self.sched.current_mut();
                            let dead = t.cid;
                            t.cid = caller;
                            t.pc = ret_pc;
                            dead
                        };
                        self.release_all(dead, probe)?;
                        self.shared.returns += 1;
                        self.switch_all(caller, LaneOp::SwitchTo, probe)?;
                    }
                    None => return self.halt_all(probe),
                }
            }

            Halt => return self.halt_all(probe),

            RFree { reg } => {
                if let Reg::R(off) = reg {
                    self.reg_op_all(LaneOp::FreeReg(RegAddr::new(cid, off)), pc, probe)?;
                }
                self.advance(1);
            }
            Nop => self.advance(1),

            Spawn { .. }
            | Yield
            | ChNew { .. }
            | ChSend { .. }
            | ChRecv { .. }
            | LwRemote { .. }
            | SwRemote { .. }
            | SyncWait { .. } => {
                unreachable!("statically rejected by batchable_program")
            }
        }
        Ok(Status::Continue)
    }

    fn advance(&mut self, by: u32) {
        self.sched.current_mut().pc += by;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegFileSpec;
    use crate::machine::Machine;
    use nsf_core::SpillEngine;
    use nsf_isa::asm::assemble;

    /// A program exercising ALU ops, branches, memory, nested calls,
    /// register frees and an atomic — everything batchable.
    const DEEP: &str = "main:
            li r0, 0
            li r1, 12
            li r9, 4096
        loop:
            sw r0, -1(g0)
            call square
            lw r2, (r9)
            add r2, r2, g1
            sw r2, (r9)
            amoadd r3, 1(r9)
            addi r0, r0, 1
            rfree r3
            bne r0, r1, loop
            halt
        square:
            addi g0, g0, -1
            lw r0, (g0)
            call bias
            mul r1, r0, r0
            add g1, r1, g1
            addi g0, g0, 1
            ret
        bias:
            li r0, 3
            mv g1, r0
            ret";

    fn five_specs() -> Vec<SimConfig> {
        [
            RegFileSpec::paper_nsf(64),
            RegFileSpec::paper_segmented(4, 16),
            RegFileSpec::Conventional {
                regs: 16,
                engine: SpillEngine::hardware(),
            },
            RegFileSpec::sparc_windows(16),
            RegFileSpec::Oracle,
        ]
        .into_iter()
        .map(SimConfig::with_regfile)
        .collect()
    }

    #[test]
    fn lanes_match_serial_machines_across_families() {
        let program = assemble(DEEP).unwrap();
        let cfgs = five_specs();
        let serial: Vec<_> = cfgs
            .iter()
            .map(|c| Machine::new(program.clone(), *c).unwrap().run().unwrap())
            .collect();
        let mut lanes = LaneSet::new(program, &cfgs).unwrap();
        let batched = lanes.run_and_keep().unwrap();
        assert_eq!(serial, batched, "lane batching must be bit-identical");
    }

    #[test]
    fn lane_memory_matches_serial_memory() {
        let program = assemble(DEEP).unwrap();
        let cfgs = five_specs();
        let mut lanes = LaneSet::new(program.clone(), &cfgs).unwrap();
        lanes.run_and_keep().unwrap();
        for (i, cfg) in cfgs.iter().enumerate() {
            let mut m = Machine::new(program.clone(), *cfg).unwrap();
            m.run_and_keep().unwrap();
            for addr in [4096, 4097] {
                assert_eq!(
                    lanes.lane_mem(i).peek(addr),
                    m.mem.peek(addr),
                    "lane {i} memory at {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn icache_penalties_shared_across_lanes() {
        let program = assemble(DEEP).unwrap();
        let icache = Some(nsf_mem::CacheConfig {
            capacity_words: 16,
            line_words: 4,
            ways: 1,
            hit_cycles: 1,
            miss_penalty: 20,
        });
        let cfgs: Vec<SimConfig> = five_specs()
            .into_iter()
            .map(|mut c| {
                c.icache = icache;
                c
            })
            .collect();
        let serial: Vec<_> = cfgs
            .iter()
            .map(|c| Machine::new(program.clone(), *c).unwrap().run().unwrap())
            .collect();
        let batched = LaneSet::new(program, &cfgs)
            .unwrap()
            .run_and_keep()
            .unwrap();
        assert_eq!(serial, batched, "icache penalties must match serially");
    }

    #[test]
    fn unbatchable_program_rejected() {
        let p = assemble("main: li r0, 0\n spawn main, r0\n halt").unwrap();
        let err = LaneSet::new(p.clone(), &[SimConfig::default()]).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
        assert!(!batchable_program(&p));
        assert!(!batchable(
            &p,
            &[SimConfig::default(), SimConfig::default()]
        ));
    }

    #[test]
    fn mismatched_frontends_rejected() {
        let p = assemble("main: halt").unwrap();
        let a = SimConfig::default();
        let b = SimConfig {
            sample_interval: 32,
            ..SimConfig::default()
        };
        let err = LaneSet::new(p.clone(), &[a, b]).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
        assert!(!batchable(&p, &[a, b]));
        assert!(batchable(&p, &[a, a]));
    }

    #[test]
    fn multi_issue_configs_route_serial() {
        let p = assemble("main: li r0, 0\n halt").unwrap();
        let cfg = SimConfig {
            issue_width: 2,
            read_ports: 3,
            write_ports: 2,
            ..SimConfig::default()
        };
        assert!(!batchable(&p, &[cfg, cfg]));
        let err = LaneSet::new(p, &[cfg, cfg]).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn single_lane_not_worth_batching() {
        let p = assemble("main: halt").unwrap();
        assert!(!batchable(&p, &[SimConfig::default()]));
        assert!(!batchable(&p, &[]));
    }
}
