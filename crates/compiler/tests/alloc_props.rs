//! Property tests of the register allocator and code generator over
//! randomly generated IR functions.

use nsf_compiler::{
    color::allocate, compile, BinOp, CompileOpts, Cond, FuncBuilder, Function, Module, Operand,
    VReg,
};
use proptest::prelude::*;

/// A recipe for one random function: straight-line segments with
/// branches and a configurable number of long-lived accumulators.
#[derive(Clone, Debug)]
struct Recipe {
    /// Long-lived values folded at the end (register pressure knob).
    accumulators: usize,
    /// (op selector, use accumulator i, constant) per instruction.
    ops: Vec<(u8, usize, i8)>,
    /// Insert a diamond branch after this many instructions.
    branch_at: Option<usize>,
}

#[test]
fn optimizer_shrinks_static_code_without_changing_results() {
    use nsf_sim::{Machine, SimConfig};
    let (f, expected) = build(&Recipe {
        accumulators: 4,
        ops: (0..24).map(|i| (i as u8, i as usize, 3)).collect(),
        branch_at: Some(12),
    });
    let mut main = FuncBuilder::new("main", 0);
    let v = main.call("f", vec![Operand::Const(7)], true).unwrap();
    main.store(v, 0x0020_0000, 0);
    main.ret(None);
    let module = Module::default().with(main.finish()).with(f);

    let run = |optimize: bool| {
        let opts = CompileOpts {
            optimize,
            ..Default::default()
        };
        let program = compile(&module, "main", opts).expect("compiles");
        let len = program.len();
        let mut m = Machine::new(program, SimConfig::default()).unwrap();
        m.run_and_keep().expect("runs");
        (len, m.mem.peek(0x0020_0000))
    };
    let (plain_len, plain_val) = run(false);
    let (opt_len, opt_val) = run(true);
    assert_eq!(plain_val, expected);
    assert_eq!(opt_val, expected);
    assert!(
        opt_len <= plain_len,
        "optimizer must not grow code: {opt_len} vs {plain_len}"
    );
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        1usize..10,
        proptest::collection::vec((any::<u8>(), 0usize..10, any::<i8>()), 1..40),
        proptest::option::of(0usize..40),
    )
        .prop_map(|(accumulators, ops, branch_at)| Recipe {
            accumulators,
            ops,
            branch_at,
        })
}

/// Builds the function and mirrors its computation in Rust.
fn build(recipe: &Recipe) -> (Function, u32) {
    let mut f = FuncBuilder::new("f", 1);
    let p = f.param(0);
    let p_val: u32 = 7;

    let mut accs: Vec<(VReg, u32)> = (0..recipe.accumulators)
        .map(|i| {
            let v = f.bin(BinOp::Add, p, i as i32);
            (v, p_val.wrapping_add(i as u32))
        })
        .collect();

    let mut cur = f.copy(1);
    let mut cur_val: u32 = 1;
    for (pos, &(op, which, c)) in recipe.ops.iter().enumerate() {
        if recipe.branch_at == Some(pos) {
            // Diamond on a statically-known condition; both arms built.
            let t = f.new_block();
            let e = f.new_block();
            let j = f.new_block();
            f.br(Cond::Lt, cur, 0, t, e);
            f.switch_to(t);
            let tv = f.bin(BinOp::Add, cur, 1);
            f.copy_to(cur, tv);
            f.jmp(j);
            f.switch_to(e);
            let ev = f.bin(BinOp::Xor, cur, 1);
            f.copy_to(cur, ev);
            f.jmp(j);
            f.switch_to(j);
            cur_val = if (cur_val as i32) < 0 {
                cur_val.wrapping_add(1)
            } else {
                cur_val ^ 1
            };
        }
        let idx = which % accs.len();
        let (acc, acc_val) = accs[idx];
        let c = i32::from(c);
        let (next, next_val) = match op % 4 {
            0 => (f.bin(BinOp::Add, cur, acc), cur_val.wrapping_add(acc_val)),
            1 => (f.bin(BinOp::Xor, cur, acc), cur_val ^ acc_val),
            2 => (f.bin(BinOp::Add, cur, c), cur_val.wrapping_add(c as u32)),
            _ => {
                let m = f.bin(BinOp::Mul, acc, 3);
                let mv = acc_val.wrapping_mul(3);
                accs[idx] = (m, mv);
                (f.bin(BinOp::Add, cur, m), cur_val.wrapping_add(mv))
            }
        };
        cur = next;
        cur_val = next_val;
    }
    // Fold every accumulator so they all stay live to the end.
    for &(acc, acc_val) in &accs {
        cur = f.bin(BinOp::Add, cur, acc);
        cur_val = cur_val.wrapping_add(acc_val);
    }
    f.ret(Some(cur.into()));
    (f.finish(), cur_val)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated function colors validly at any feasible K: no two
    /// interfering vregs share a register.
    #[test]
    fn random_functions_color_validly(recipe in arb_recipe(), k in 4u8..18) {
        let (f, _) = build(&recipe);
        let alloc = allocate(&f, k).expect("allocates");
        prop_assert!(alloc.colors_used <= k);
        // Re-derive interference on the (possibly rewritten) function and
        // check the coloring against it.
        let cfg = nsf_compiler::cfg::Cfg::build(&alloc.func);
        let lv = nsf_compiler::liveness::Liveness::compute(&alloc.func, &cfg);
        let g = nsf_compiler::interference::InterferenceGraph::build(&alloc.func, &cfg, &lv);
        for v in g.nodes() {
            for w in g.neighbors(v) {
                prop_assert_ne!(
                    alloc.colors[&v], alloc.colors[&w],
                    "{:?} and {:?} interfere but share a color", v, w
                );
            }
        }
    }

    /// Compiled execution matches the Rust mirror for arbitrary
    /// functions, at both generous and starved register counts, with and
    /// without deallocation hints, with and without the optimizer.
    #[test]
    fn random_functions_compute_correctly(
        recipe in arb_recipe(),
        tight in any::<bool>(),
        hints in any::<bool>(),
        optimize in any::<bool>(),
    ) {
        use nsf_sim::{Machine, SimConfig};
        let (f, expected) = build(&recipe);

        let mut main = FuncBuilder::new("main", 0);
        let v = main.call("f", vec![Operand::Const(7)], true).unwrap();
        main.store(v, 0x0020_0000, 0);
        main.ret(None);
        let module = Module::default().with(main.finish()).with(f);

        let opts = CompileOpts {
            ctx_regs: if tight { 8 } else { 20 },
            free_hints: hints,
            optimize,
            ..Default::default()
        };
        let program = compile(&module, "main", opts).expect("compiles");
        let mut m = Machine::new(program, SimConfig::default()).unwrap();
        m.run_and_keep().expect("runs");
        prop_assert_eq!(m.mem.peek(0x0020_0000), expected);
    }
}
