//! Lowering allocated IR to `nsf-isa` programs.
//!
//! ## Calling convention (shared with the simulator and hand-written code)
//!
//! * `g0` is the stack pointer (grows downward, word addressed), `g1`
//!   carries return values; both are thread-global, so they survive the
//!   context switch that `call` performs.
//! * The **caller** stores argument `i` at `sp - 1 - i`, then executes
//!   `call`, which allocates a fresh register context for the callee.
//! * The **callee** prologue drops `sp` by `args + frame_slots`; parameter
//!   `i` then lives at `sp + frame_slots + args - 1 - i` and spill slot
//!   `j` at `sp + j`. The epilogue restores `sp`, writes the return value
//!   to `g1` and executes `ret`, which frees the context.
//!
//! ## Register use
//!
//! Colors map to `r0..r{K-1}`; the top two context registers are reserved
//! as codegen scratch for materialised constants and address bases. With
//! the paper's 20-register sequential contexts this leaves K = 18 colors —
//! comfortably above the 8–10 registers a typical procedure actually
//! touches after coloring.

use crate::cfg::Cfg;
use crate::color::{allocate, Allocation, ColorError};
use crate::ir::{BinOp, Cond, Function, IrInst, Module, Operand, Term, VReg};
use crate::liveness::Liveness;
use nsf_isa::builder::{BuildError, Label, ProgramBuilder};
use nsf_isa::{Inst, Program, Reg};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOpts {
    /// Context registers available per procedure activation (paper: 20
    /// for sequential code).
    pub ctx_regs: u8,
    /// Registers reserved for codegen scratch (constants, address bases).
    pub scratch_regs: u8,
    /// Run copy propagation and dead-code elimination before register
    /// allocation. Off by default so the reproduction's published
    /// measurements stay pinned to the unoptimized translation.
    pub optimize: bool,
    /// Emit an `rfree` hint after a register's last use (paper §4.2:
    /// "The NSF can explicitly deallocate a single register after it is
    /// no longer needed"). Dead registers are dropped from the file
    /// without writeback, shrinking spill traffic on small NSFs; other
    /// organizations ignore the hint. Off by default — it costs one
    /// (1-cycle) instruction per death.
    pub free_hints: bool,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts {
            ctx_regs: 20,
            scratch_regs: 2,
            optimize: false,
            free_hints: false,
        }
    }
}

impl CompileOpts {
    /// Colors available to the register allocator.
    pub fn colors(&self) -> u8 {
        self.ctx_regs - self.scratch_regs
    }
}

/// Compilation failure.
#[derive(Debug)]
pub enum CodegenError {
    /// Register allocation failed.
    Alloc(ColorError),
    /// A call references an unknown function.
    UnknownFunction(String),
    /// Argument count exceeds what a call site can address.
    TooManyArgs {
        /// The function with the oversized call.
        func: String,
    },
    /// The final program failed to build (label or validation errors).
    Build(BuildError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Alloc(e) => write!(f, "register allocation failed: {e}"),
            CodegenError::UnknownFunction(n) => write!(f, "call to unknown function `{n}`"),
            CodegenError::TooManyArgs { func } => write!(f, "too many arguments in `{func}`"),
            CodegenError::Build(e) => write!(f, "program construction failed: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<ColorError> for CodegenError {
    fn from(e: ColorError) -> Self {
        CodegenError::Alloc(e)
    }
}

impl From<BuildError> for CodegenError {
    fn from(e: BuildError) -> Self {
        CodegenError::Build(e)
    }
}

/// Compiles a module into an executable program whose entry point is the
/// function named `entry`.
pub fn compile(module: &Module, entry: &str, opts: CompileOpts) -> Result<Program, CodegenError> {
    if module.func(entry).is_none() {
        return Err(CodegenError::UnknownFunction(entry.to_owned()));
    }
    // Validate call targets up front.
    for f in &module.funcs {
        for b in &f.blocks {
            for i in &b.insts {
                if let IrInst::Call { func, args, .. } = i {
                    if module.func(func).is_none() {
                        return Err(CodegenError::UnknownFunction(func.clone()));
                    }
                    if args.len() > 64 {
                        return Err(CodegenError::TooManyArgs {
                            func: f.name.clone(),
                        });
                    }
                }
            }
        }
    }

    let mut b = ProgramBuilder::new();
    let mut fn_labels: HashMap<String, Label> = HashMap::new();
    for f in &module.funcs {
        let l = b.new_label();
        fn_labels.insert(f.name.clone(), l);
    }

    // A tiny startup shim: call the entry function, then halt, so the
    // entry function gets its own context like any other procedure.
    b.call(fn_labels[entry]);
    b.emit(Inst::Halt);

    for f in &module.funcs {
        let optimized;
        let f = if opts.optimize {
            optimized = crate::opt::optimize(f);
            &optimized
        } else {
            f
        };
        let alloc = allocate(f, opts.colors())?;
        emit_function(&mut b, &alloc, &fn_labels, opts)?;
    }

    let program = b.finish("main")?;
    if opts.optimize {
        // Post-codegen cleanup: self-moves, identity arithmetic and
        // jump-to-next fall out of block-local lowering.
        let (compact, _removed) =
            nsf_isa::peephole::peephole(&program).map_err(BuildError::Invalid)?;
        return Ok(compact);
    }
    Ok(program)
}

struct FnCtx<'a> {
    alloc: &'a Allocation,
    /// Frame drop: args + spill slots.
    frame: i32,
    args: i32,
    scratch0: Reg,
    scratch1: Reg,
    block_labels: Vec<Label>,
}

impl FnCtx<'_> {
    fn reg(&self, v: VReg) -> Reg {
        Reg::R(self.alloc.colors[&v])
    }

    /// Materialises an operand into a register, using `scratch` for
    /// constants.
    fn operand(&self, b: &mut ProgramBuilder, o: Operand, scratch: Reg) -> Reg {
        match o {
            Operand::Reg(v) => self.reg(v),
            Operand::Const(c) => {
                b.load_const(scratch, c);
                scratch
            }
        }
    }
}

fn emit_function(
    b: &mut ProgramBuilder,
    alloc: &Allocation,
    fn_labels: &HashMap<String, Label>,
    opts: CompileOpts,
) -> Result<(), CodegenError> {
    let f: &Function = &alloc.func;
    let args = f.params as i32;
    let frame = args + alloc.frame_slots as i32;
    let ctx = FnCtx {
        alloc,
        frame,
        args,
        scratch0: Reg::R(opts.ctx_regs - 2),
        scratch1: Reg::R(opts.ctx_regs - 1),
        block_labels: (0..f.blocks.len()).map(|_| b.new_label()).collect(),
    };

    // Entry: bind the function symbol, drop sp, load parameters.
    let fl = fn_labels[&f.name];
    b.bind(fl);
    b.export(&f.name);
    if frame != 0 {
        b.emit(Inst::Addi {
            rd: nsf_isa::SP,
            rs1: nsf_isa::SP,
            imm: -frame,
        });
    }
    for p in 0..f.params {
        // Parameter p at sp + frame_slots + args - 1 - p.
        let off = alloc.frame_slots as i32 + args - 1 - p as i32;
        if let Some(&(_, slot)) = alloc.spilled_params.iter().find(|&&(sp, _)| sp == p) {
            // Spilled parameter: move it straight to its frame slot via
            // scratch, leaving no register occupied.
            b.emit(Inst::Lw {
                rd: ctx.scratch0,
                base: nsf_isa::SP,
                imm: off,
            });
            b.emit(Inst::Sw {
                base: nsf_isa::SP,
                src: ctx.scratch0,
                imm: slot as i32,
            });
        } else if alloc.colors.contains_key(&VReg(p)) {
            b.emit(Inst::Lw {
                rd: ctx.reg(VReg(p)),
                base: nsf_isa::SP,
                imm: off,
            });
        }
        // Dead parameters are not loaded at all.
    }

    // Death points for `rfree` hints: per (block, instruction), which
    // *colors* become dead there.
    let deaths = if opts.free_hints {
        Some(death_sets(f, &alloc.colors))
    } else {
        None
    };

    // Blocks in index order; entry is block 0 by construction.
    for (i, block) in f.blocks.iter().enumerate() {
        b.bind(ctx.block_labels[i]);
        for (j, inst) in block.insts.iter().enumerate() {
            emit_inst(b, inst, &ctx, fn_labels)?;
            if let Some(deaths) = &deaths {
                for &color in &deaths[i][j] {
                    b.emit(Inst::RFree { reg: Reg::R(color) });
                }
            }
        }
        emit_term(b, block.term.as_ref().expect("terminated"), &ctx);
    }
    Ok(())
}

/// For each instruction of each block, the physical register colors that
/// become dead there (computed by a backward walk from the block's
/// live-out). A color is only reported dead when *no* vreg mapped to it
/// remains live — copy-coalesced vregs share colors, so vreg death alone
/// is not enough. Deaths at terminators are deliberately excluded: the
/// terminator still reads its operands, and a hint emitted before it
/// would kill them.
fn death_sets(f: &Function, colors: &BTreeMap<VReg, u8>) -> Vec<Vec<Vec<u8>>> {
    let cfg = Cfg::build(f);
    let lv = Liveness::compute(f, &cfg);
    let mut out = Vec::with_capacity(f.blocks.len());
    for (i, block) in f.blocks.iter().enumerate() {
        let mut live = lv.live_out[i].clone();
        for u in Function::term_uses(block.term.as_ref().expect("terminated")) {
            live.insert(u);
        }
        let mut deaths = vec![Vec::new(); block.insts.len()];
        for (j, inst) in block.insts.iter().enumerate().rev() {
            // Everything still live after instruction j executes.
            let live_after = live.clone();
            let mut dying: Vec<VReg> = Vec::new();
            if let Some(d) = Function::def_of(inst) {
                if !live.contains(&d) {
                    // Dead definition: the value dies immediately.
                    dying.push(d);
                }
                live.remove(&d);
            }
            for u in Function::uses_of(inst) {
                if live.insert(u) {
                    dying.push(u);
                }
            }
            for v in dying {
                let Some(&color) = colors.get(&v) else {
                    continue;
                };
                // The color is only dead if nothing live after this
                // instruction maps to it — including `v` itself, which
                // is live-after when the instruction redefines it (the
                // `i = i + 1` pattern), and copy-coalesced siblings.
                let color_still_live = live_after.iter().any(|w| colors.get(w) == Some(&color));
                if !color_still_live {
                    deaths[j].push(color);
                }
            }
        }
        out.push(deaths);
    }
    out
}

fn emit_inst(
    b: &mut ProgramBuilder,
    inst: &IrInst,
    ctx: &FnCtx<'_>,
    fn_labels: &HashMap<String, Label>,
) -> Result<(), CodegenError> {
    match inst {
        IrInst::Bin { op, dst, a, b: rhs } => emit_bin(b, *op, *dst, *a, *rhs, ctx),
        IrInst::Copy { dst, src } => {
            let rd = ctx.reg(*dst);
            match *src {
                Operand::Reg(v) => {
                    let rs = ctx.reg(v);
                    if rs != rd {
                        b.emit(Inst::Mv { rd, rs1: rs });
                    }
                }
                Operand::Const(c) => b.load_const(rd, c),
            }
        }
        IrInst::Load { dst, base, offset } => {
            let rb = ctx.operand(b, *base, ctx.scratch0);
            b.emit(Inst::Lw {
                rd: ctx.reg(*dst),
                base: rb,
                imm: *offset,
            });
        }
        IrInst::Store { src, base, offset } => {
            let rb = ctx.operand(b, *base, ctx.scratch0);
            let rs = ctx.operand(b, *src, ctx.scratch1);
            b.emit(Inst::Sw {
                base: rb,
                src: rs,
                imm: *offset,
            });
        }
        IrInst::SpillLoad { dst, slot } => {
            b.emit(Inst::Lw {
                rd: ctx.reg(*dst),
                base: nsf_isa::SP,
                imm: *slot as i32,
            });
        }
        IrInst::SpillStore { src, slot } => {
            b.emit(Inst::Sw {
                base: nsf_isa::SP,
                src: ctx.reg(*src),
                imm: *slot as i32,
            });
        }
        IrInst::Call { func, args, ret } => {
            // Store arguments below sp.
            for (i, a) in args.iter().enumerate() {
                let rs = ctx.operand(b, *a, ctx.scratch1);
                b.emit(Inst::Sw {
                    base: nsf_isa::SP,
                    src: rs,
                    imm: -1 - i as i32,
                });
            }
            let label = *fn_labels
                .get(func)
                .ok_or_else(|| CodegenError::UnknownFunction(func.clone()))?;
            b.call(label);
            if let Some(r) = ret {
                b.emit(Inst::Mv {
                    rd: ctx.reg(*r),
                    rs1: nsf_isa::RV,
                });
            }
        }
    }
    Ok(())
}

fn emit_bin(
    b: &mut ProgramBuilder,
    op: BinOp,
    dst: VReg,
    a: Operand,
    rhs: Operand,
    ctx: &FnCtx<'_>,
) {
    let rd = ctx.reg(dst);

    // Fold constant expressions outright.
    if let (Operand::Const(x), Operand::Const(y)) = (a, rhs) {
        b.load_const(rd, fold(op, x, y));
        return;
    }

    // Use immediate forms where the ISA has them and the constant fits.
    if let (Operand::Reg(va), Operand::Const(c)) = (a, rhs) {
        if let Some(imm_inst) = imm_form(op, rd, ctx.reg(va), c) {
            b.emit(imm_inst);
            return;
        }
    }
    // Commutative ops with a constant on the left: swap.
    if let (Operand::Const(c), Operand::Reg(vb)) = (a, rhs) {
        if matches!(op, BinOp::Add | BinOp::And | BinOp::Or | BinOp::Xor) {
            if let Some(imm_inst) = imm_form(op, rd, ctx.reg(vb), c) {
                b.emit(imm_inst);
                return;
            }
        }
    }

    let ra = ctx.operand(b, a, ctx.scratch0);
    let rb = ctx.operand(b, rhs, ctx.scratch1);
    let inst = match op {
        BinOp::Add => Inst::Add {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Sub => Inst::Sub {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Mul => Inst::Mul {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Div => Inst::Div {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Rem => Inst::Rem {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::And => Inst::And {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Or => Inst::Or {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Xor => Inst::Xor {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Sll => Inst::Sll {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Srl => Inst::Srl {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Sra => Inst::Sra {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Slt => Inst::Slt {
            rd,
            rs1: ra,
            rs2: rb,
        },
        BinOp::Seq => Inst::Seq {
            rd,
            rs1: ra,
            rs2: rb,
        },
    };
    b.emit(inst);
}

/// Constant folding matching the CPU's wrapping semantics.
fn fold(op: BinOp, x: i32, y: i32) -> i32 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => x.checked_div(y).unwrap_or(0),
        BinOp::Rem => x.checked_rem(y).unwrap_or(0),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Sll => ((x as u32) << (y as u32 & 31)) as i32,
        BinOp::Srl => ((x as u32) >> (y as u32 & 31)) as i32,
        BinOp::Sra => x >> (y as u32 & 31),
        BinOp::Slt => i32::from(x < y),
        BinOp::Seq => i32::from(x == y),
    }
}

/// The immediate instruction for `op` if one exists and `c` fits.
fn imm_form(op: BinOp, rd: Reg, rs1: Reg, c: i32) -> Option<Inst> {
    let fits = (nsf_isa::encode::IMM14_MIN..=nsf_isa::encode::IMM14_MAX).contains(&c);
    if !fits {
        return None;
    }
    Some(match op {
        BinOp::Add => Inst::Addi { rd, rs1, imm: c },
        BinOp::Sub if c != nsf_isa::encode::IMM14_MIN => Inst::Addi { rd, rs1, imm: -c },
        BinOp::And => Inst::Andi { rd, rs1, imm: c },
        BinOp::Or => Inst::Ori { rd, rs1, imm: c },
        BinOp::Xor => Inst::Xori { rd, rs1, imm: c },
        BinOp::Sll => Inst::Slli { rd, rs1, imm: c },
        BinOp::Srl => Inst::Srli { rd, rs1, imm: c },
        BinOp::Sra => Inst::Srai { rd, rs1, imm: c },
        BinOp::Slt => Inst::Slti { rd, rs1, imm: c },
        _ => return None,
    })
}

fn emit_term(b: &mut ProgramBuilder, term: &Term, ctx: &FnCtx<'_>) {
    match term {
        Term::Jmp(t) => b.jmp(ctx.block_labels[t.0 as usize]),
        Term::Br {
            cond,
            a,
            b: rhs,
            t,
            e,
        } => {
            let ra = ctx.operand(b, *a, ctx.scratch0);
            let rb = ctx.operand(b, *rhs, ctx.scratch1);
            let tl = ctx.block_labels[t.0 as usize];
            match cond {
                Cond::Eq => b.beq(ra, rb, tl),
                Cond::Ne => b.bne(ra, rb, tl),
                Cond::Lt => b.blt(ra, rb, tl),
                Cond::Ge => b.bge(ra, rb, tl),
            }
            b.jmp(ctx.block_labels[e.0 as usize]);
        }
        Term::Ret(val) => {
            if let Some(v) = val {
                match *v {
                    Operand::Reg(r) => {
                        b.emit(Inst::Mv {
                            rd: nsf_isa::RV,
                            rs1: ctx.reg(r),
                        });
                    }
                    Operand::Const(c) => b.load_const(nsf_isa::RV, c),
                }
            }
            if ctx.frame != 0 {
                b.emit(Inst::Addi {
                    rd: nsf_isa::SP,
                    rs1: nsf_isa::SP,
                    imm: ctx.frame,
                });
            }
            let _ = ctx.args;
            b.emit(Inst::Ret);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FuncBuilder;

    fn add_module() -> Module {
        let mut b = FuncBuilder::new("main", 0);
        let r = b
            .call("add3", vec![Operand::Const(1), Operand::Const(2)], true)
            .unwrap();
        b.ret(Some(r.into()));
        let main = b.finish();

        let mut b = FuncBuilder::new("add3", 2);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, x, y);
        let s3 = b.bin(BinOp::Add, s, 3);
        b.ret(Some(s3.into()));
        Module::default().with(main).with(b.finish())
    }

    #[test]
    fn compiles_valid_program() {
        let p = compile(&add_module(), "main", CompileOpts::default()).unwrap();
        assert!(p.validate().is_ok());
        assert!(p.symbol("add3").is_some());
        assert!(p.symbol("main").is_some());
        // Startup shim: call main, halt.
        assert!(matches!(p.insts()[0], Inst::Call { .. }));
        assert_eq!(p.insts()[1], Inst::Halt);
    }

    #[test]
    fn unknown_function_rejected() {
        let mut b = FuncBuilder::new("main", 0);
        b.call("nope", vec![], false);
        b.ret(None);
        let m = Module::default().with(b.finish());
        assert!(matches!(
            compile(&m, "main", CompileOpts::default()),
            Err(CodegenError::UnknownFunction(_))
        ));
    }

    #[test]
    fn unknown_entry_rejected() {
        let m = add_module();
        assert!(matches!(
            compile(&m, "absent", CompileOpts::default()),
            Err(CodegenError::UnknownFunction(_))
        ));
    }

    #[test]
    fn immediate_forms_used() {
        let mut b = FuncBuilder::new("main", 0);
        let x = b.copy(5);
        let y = b.bin(BinOp::Add, x, 7);
        b.ret(Some(y.into()));
        let m = Module::default().with(b.finish());
        let p = compile(&m, "main", CompileOpts::default()).unwrap();
        assert!(
            p.insts()
                .iter()
                .any(|i| matches!(i, Inst::Addi { imm: 7, .. })),
            "addi should be used for small constants:\n{p}"
        );
    }

    #[test]
    fn constant_folding() {
        let mut b = FuncBuilder::new("main", 0);
        let x = b.bin(BinOp::Mul, 6, 7);
        b.ret(Some(x.into()));
        let m = Module::default().with(b.finish());
        let p = compile(&m, "main", CompileOpts::default()).unwrap();
        assert!(
            p.insts()
                .iter()
                .any(|i| matches!(i, Inst::Li { imm: 42, .. })),
            "6*7 should fold:\n{p}"
        );
        assert!(!p.insts().iter().any(|i| matches!(i, Inst::Mul { .. })));
    }

    #[test]
    fn free_hints_emit_rfree_and_preserve_code() {
        let m = add_module();
        let plain = compile(&m, "main", CompileOpts::default()).unwrap();
        let hinted = compile(
            &m,
            "main",
            CompileOpts {
                free_hints: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!plain
            .insts()
            .iter()
            .any(|i| matches!(i, Inst::RFree { .. })));
        assert!(hinted
            .insts()
            .iter()
            .any(|i| matches!(i, Inst::RFree { .. })));
        // Stripping the hints recovers the plain instruction stream.
        let stripped: Vec<_> = hinted
            .insts()
            .iter()
            .filter(|i| !matches!(i, Inst::RFree { .. }))
            .cloned()
            .collect();
        // Branch targets shift, so compare lengths and non-control mix.
        assert_eq!(
            stripped.len(),
            plain.insts().len(),
            "hints must only add rfree instructions"
        );
    }

    #[test]
    fn fold_matches_cpu_semantics() {
        assert_eq!(fold(BinOp::Div, 5, 0), 0);
        assert_eq!(fold(BinOp::Rem, 5, 0), 0);
        assert_eq!(fold(BinOp::Add, i32::MAX, 1), i32::MIN);
        assert_eq!(fold(BinOp::Sll, 1, 33), 2, "shift amounts mask to 5 bits");
        assert_eq!(fold(BinOp::Slt, -1, 0), 1);
    }
}
