//! The three-address intermediate representation.
//!
//! Functions are graphs of basic blocks over unlimited virtual registers
//! ([`VReg`]); the register allocator later maps virtual registers onto
//! the 20-register sequential context.

use std::fmt;

/// A virtual register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic block id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// An instruction operand: a virtual register or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// A 32-bit constant.
    Const(i32),
}

impl From<VReg> for Operand {
    fn from(v: VReg) -> Self {
        Operand::Reg(v)
    }
}

impl From<i32> for Operand {
    fn from(c: i32) -> Self {
        Operand::Const(c)
    }
}

/// Binary ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set if less-than (signed).
    Slt,
    /// Set if equal.
    Seq,
}

/// Branch conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

/// A non-terminator IR instruction.
#[derive(Clone, Debug)]
pub enum IrInst {
    /// `dst = a <op> b`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination.
        dst: VReg,
        /// Source.
        src: Operand,
    },
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination.
        dst: VReg,
        /// Base address register.
        base: Operand,
        /// Word offset.
        offset: i32,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Base address register.
        base: Operand,
        /// Word offset.
        offset: i32,
    },
    /// Call `func` with `args`; optional return value.
    Call {
        /// Callee name (resolved at link time by codegen).
        func: String,
        /// Arguments, pushed to the stack per the calling convention.
        args: Vec<Operand>,
        /// Where the return value (from `g1`) lands.
        ret: Option<VReg>,
    },
    /// `dst = frame[slot]` — reload of a spilled value. Produced only by
    /// the register allocator's spill rewriting, never by front ends.
    SpillLoad {
        /// Destination temporary.
        dst: VReg,
        /// Frame slot index.
        slot: u32,
    },
    /// `frame[slot] = src` — writeback of a spilled value. Produced only
    /// by the register allocator's spill rewriting.
    SpillStore {
        /// Source temporary.
        src: VReg,
        /// Frame slot index.
        slot: u32,
    },
}

/// A block terminator.
#[derive(Clone, Debug)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch: `if a <cond> b then t else e`.
    Br {
        /// Condition.
        cond: Cond,
        /// Left comparand.
        a: Operand,
        /// Right comparand.
        b: Operand,
        /// Taken target.
        t: BlockId,
        /// Fall-through target.
        e: BlockId,
    },
    /// Return, with optional value (goes to `g1`).
    Ret(Option<Operand>),
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Instructions in order.
    pub insts: Vec<IrInst>,
    /// The terminator (`None` only while under construction).
    pub term: Option<Term>,
}

/// A function: parameters arrive as the first `params` virtual registers.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Number of parameters; parameter `i` is `VReg(i)`.
    pub params: u32,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Total virtual registers used.
    pub vregs: u32,
}

impl Function {
    /// All instruction operands read by `inst`.
    pub fn uses_of(inst: &IrInst) -> Vec<VReg> {
        let mut out = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Reg(v) = o {
                out.push(*v);
            }
        };
        match inst {
            IrInst::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            IrInst::Copy { src, .. } => push(src),
            IrInst::Load { base, .. } => push(base),
            IrInst::Store { src, base, .. } => {
                push(src);
                push(base);
            }
            IrInst::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            IrInst::SpillLoad { .. } => {}
            IrInst::SpillStore { src, .. } => out.push(*src),
        }
        out
    }

    /// The virtual register defined by `inst`, if any.
    pub fn def_of(inst: &IrInst) -> Option<VReg> {
        match inst {
            IrInst::Bin { dst, .. }
            | IrInst::Copy { dst, .. }
            | IrInst::Load { dst, .. }
            | IrInst::SpillLoad { dst, .. } => Some(*dst),
            IrInst::Store { .. } | IrInst::SpillStore { .. } => None,
            IrInst::Call { ret, .. } => *ret,
        }
    }

    /// Registers read by a terminator.
    pub fn term_uses(term: &Term) -> Vec<VReg> {
        match term {
            Term::Br { a, b, .. } => {
                let mut out = Vec::new();
                for o in [a, b] {
                    if let Operand::Reg(v) = o {
                        out.push(*v);
                    }
                }
                out
            }
            Term::Ret(Some(Operand::Reg(v))) => vec![*v],
            _ => Vec::new(),
        }
    }
}

/// A module: a set of functions, one of which is the entry point.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Functions by definition order.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Adds a function and returns `self` for chaining.
    pub fn with(mut self, f: Function) -> Self {
        self.funcs.push(f);
        self
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// Incremental builder for a [`Function`].
///
/// ```
/// use nsf_compiler::{BinOp, Cond, FuncBuilder, Operand};
///
/// // fn double_abs(x) { if x < 0 { x = 0 - x }; return x + x }
/// let mut b = FuncBuilder::new("double_abs", 1);
/// let x = b.param(0);
/// let neg = b.new_block();
/// let join = b.new_block();
/// b.br(Cond::Lt, x, 0, neg, join);
/// b.switch_to(neg);
/// let nx = b.bin(BinOp::Sub, 0, x);
/// b.copy_to(x, nx);
/// b.jmp(join);
/// b.switch_to(join);
/// let sum = b.bin(BinOp::Add, x, x);
/// b.ret(Some(sum.into()));
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 3);
/// ```
pub struct FuncBuilder {
    name: String,
    params: u32,
    blocks: Vec<Block>,
    current: BlockId,
    next_vreg: u32,
}

impl FuncBuilder {
    /// Starts a function with `params` parameters. Parameter `i` is
    /// available as `VReg(i)` (see [`FuncBuilder::param`]).
    pub fn new(name: &str, params: u32) -> Self {
        FuncBuilder {
            name: name.to_owned(),
            params,
            blocks: vec![Block {
                insts: Vec::new(),
                term: None,
            }],
            current: BlockId(0),
            next_vreg: params,
        }
    }

    /// The virtual register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (a construction bug).
    pub fn param(&self, i: u32) -> VReg {
        assert!(i < self.params, "parameter {i} out of range");
        VReg(i)
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Creates a new (empty) block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            insts: Vec::new(),
            term: None,
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Makes `b` the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, inst: IrInst) {
        let blk = &mut self.blocks[self.current.0 as usize];
        assert!(blk.term.is_none(), "emitting into a terminated block");
        blk.insts.push(inst);
    }

    /// Emits `dst = a <op> b` into a fresh register and returns it.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.push(IrInst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emits `dst = a <op> b` into an existing register.
    pub fn bin_to(&mut self, dst: VReg, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(IrInst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Emits a copy into a fresh register.
    pub fn copy(&mut self, src: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.push(IrInst::Copy {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Emits a copy into an existing register.
    pub fn copy_to(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.push(IrInst::Copy {
            dst,
            src: src.into(),
        });
    }

    /// Emits a load into a fresh register.
    pub fn load(&mut self, base: impl Into<Operand>, offset: i32) -> VReg {
        let dst = self.vreg();
        self.push(IrInst::Load {
            dst,
            base: base.into(),
            offset,
        });
        dst
    }

    /// Emits a store.
    pub fn store(&mut self, src: impl Into<Operand>, base: impl Into<Operand>, offset: i32) {
        self.push(IrInst::Store {
            src: src.into(),
            base: base.into(),
            offset,
        });
    }

    /// Emits a call whose result (if any) lands in a fresh register.
    pub fn call(&mut self, func: &str, args: Vec<Operand>, want_ret: bool) -> Option<VReg> {
        let ret = want_ret.then(|| self.vreg());
        self.push(IrInst::Call {
            func: func.to_owned(),
            args,
            ret,
        });
        ret
    }

    fn terminate(&mut self, term: Term) {
        let blk = &mut self.blocks[self.current.0 as usize];
        assert!(blk.term.is_none(), "block terminated twice");
        blk.term = Some(term);
    }

    /// Terminates the current block with a jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Term::Jmp(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(
        &mut self,
        cond: Cond,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        t: BlockId,
        e: BlockId,
    ) {
        self.terminate(Term::Br {
            cond,
            a: a.into(),
            b: b.into(),
            t,
            e,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Term::Ret(value));
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator (a construction bug).
    pub fn finish(self) -> Function {
        for (i, b) in self.blocks.iter().enumerate() {
            assert!(b.term.is_some(), "block b{i} has no terminator");
        }
        Function {
            name: self.name,
            params: self.params,
            blocks: self.blocks,
            entry: BlockId(0),
            vregs: self.next_vreg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_diamond() {
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.br(Cond::Eq, x, 0, t, e);
        b.switch_to(t);
        let a = b.copy(1);
        b.jmp(j);
        b.switch_to(e);
        let c = b.copy(2);
        b.jmp(j);
        b.switch_to(j);
        let s = b.bin(BinOp::Add, a, c);
        b.ret(Some(s.into()));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.vregs, 4); // x, a, c, s
    }

    #[test]
    fn uses_and_defs() {
        let i = IrInst::Bin {
            op: BinOp::Add,
            dst: VReg(3),
            a: Operand::Reg(VReg(1)),
            b: Operand::Const(5),
        };
        assert_eq!(Function::uses_of(&i), vec![VReg(1)]);
        assert_eq!(Function::def_of(&i), Some(VReg(3)));
        let s = IrInst::Store {
            src: Operand::Reg(VReg(0)),
            base: Operand::Reg(VReg(1)),
            offset: 2,
        };
        assert_eq!(Function::uses_of(&s).len(), 2);
        assert_eq!(Function::def_of(&s), None);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_panics() {
        let b = FuncBuilder::new("f", 0);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = FuncBuilder::new("f", 0);
        b.ret(None);
        b.ret(None);
    }
}
