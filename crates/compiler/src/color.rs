//! Chaitin-style graph-coloring register allocation with iterative
//! spilling.
//!
//! Simplify/select with optimistic coloring: nodes of degree < K are
//! removed and stacked; when none qualifies, the highest-degree node is
//! stacked as a potential spill. During select, a node with no free color
//! becomes an *actual* spill; spilled virtual registers are rewritten to
//! short-lived temporaries around frame-slot loads/stores, and allocation
//! repeats — each round strictly shrinks live ranges, so the loop
//! terminates for any K large enough to hold one instruction's operands.

use crate::cfg::Cfg;
use crate::interference::InterferenceGraph;
use crate::ir::{Function, IrInst, Operand, Term, VReg};
use crate::liveness::Liveness;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Result of register allocation for one function.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Physical register index (color) per virtual register.
    pub colors: BTreeMap<VReg, u8>,
    /// Number of frame slots consumed by spilled values.
    pub frame_slots: u32,
    /// Distinct colors used.
    pub colors_used: u8,
    /// Allocation rounds needed (1 = no spilling).
    pub rounds: u32,
    /// Parameters that were spilled: `(param index, frame slot)`. The
    /// codegen prologue stores these straight from the argument area to
    /// the spill slot without occupying a register.
    pub spilled_params: Vec<(u32, u32)>,
    /// The rewritten function (identical to the input when `rounds == 1`).
    pub func: Function,
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColorError {
    /// K is too small to hold a single instruction's operands.
    TooFewRegisters {
        /// The K that was requested.
        k: u8,
    },
    /// The spill loop failed to converge (indicates an internal bug).
    DidNotConverge,
}

impl fmt::Display for ColorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColorError::TooFewRegisters { k } => {
                write!(f, "cannot allocate with only {k} registers")
            }
            ColorError::DidNotConverge => write!(f, "spill rewriting did not converge"),
        }
    }
}

impl std::error::Error for ColorError {}

/// Colors `f` with at most `k` registers, spilling as needed.
pub fn allocate(f: &Function, k: u8) -> Result<Allocation, ColorError> {
    if k < 3 {
        // A `Bin { dst, a, b }` can need three simultaneous registers.
        return Err(ColorError::TooFewRegisters { k });
    }
    let mut func = f.clone();
    let mut frame_slots = 0u32;
    // Slot assignment for spilled vregs persists across rounds.
    let mut slot_of: BTreeMap<VReg, u32> = BTreeMap::new();
    // Vregs below this index come from the source program; everything at
    // or above is a spill temporary with a minimal live range. Spilling
    // temporaries cannot reduce pressure, so originals go first.
    let first_temp = f.vregs;

    // Each round spills at least one more original vreg, so `vregs + K`
    // rounds always suffice; the +32 margin covers pathological selects.
    let max_rounds = f.vregs + 32;
    for round in 1..=max_rounds {
        let cfg = Cfg::build(&func);
        let lv = Liveness::compute(&func, &cfg);
        let graph = InterferenceGraph::build(&func, &cfg, &lv);

        match try_color(&graph, k, &slot_of, first_temp) {
            Ok(colors) => {
                let colors_used = colors.values().copied().max().map_or(0, |m| m + 1);
                let spilled_params = (0..func.params)
                    .filter_map(|p| slot_of.get(&VReg(p)).map(|&s| (p, s)))
                    .collect();
                return Ok(Allocation {
                    colors,
                    frame_slots,
                    colors_used,
                    rounds: round,
                    spilled_params,
                    func,
                });
            }
            Err(spills) => {
                for v in spills {
                    slot_of.insert(v, frame_slots);
                    frame_slots += 1;
                }
                func = rewrite_spills(&func, &slot_of);
            }
        }
    }
    Err(ColorError::DidNotConverge)
}

/// One simplify/select pass. On failure returns the set of actual spills.
fn try_color(
    graph: &InterferenceGraph,
    k: u8,
    already_spilled: &BTreeMap<VReg, u32>,
    first_temp: u32,
) -> Result<BTreeMap<VReg, u8>, Vec<VReg>> {
    let mut degrees: BTreeMap<VReg, usize> = graph.nodes().map(|v| (v, graph.degree(v))).collect();
    let mut removed: BTreeSet<VReg> = BTreeSet::new();
    let mut stack: Vec<VReg> = Vec::with_capacity(degrees.len());

    while removed.len() < degrees.len() {
        // Prefer a trivially colorable node.
        let pick = degrees
            .iter()
            .filter(|(v, _)| !removed.contains(v))
            .find(|(_, &d)| d < usize::from(k))
            .map(|(v, _)| *v)
            .or_else(|| {
                // Potential spill: prefer original (non-temporary)
                // vregs that have not been spilled yet, then highest
                // degree (Chaitin's heuristic without use counts).
                // Spill temporaries already have minimal live ranges, so
                // respilling them cannot make progress.
                degrees
                    .iter()
                    .filter(|(v, _)| !removed.contains(v))
                    .max_by_key(|(v, &d)| (v.0 < first_temp && !already_spilled.contains_key(v), d))
                    .map(|(v, _)| *v)
            })
            .expect("non-empty worklist");
        removed.insert(pick);
        stack.push(pick);
        for n in graph.neighbors(pick) {
            if let Some(d) = degrees.get_mut(&n) {
                *d = d.saturating_sub(1);
            }
        }
    }

    let mut colors: BTreeMap<VReg, u8> = BTreeMap::new();
    let mut spills = Vec::new();
    while let Some(v) = stack.pop() {
        let taken: BTreeSet<u8> = graph
            .neighbors(v)
            .filter_map(|n| colors.get(&n).copied())
            .collect();
        match (0..k).find(|c| !taken.contains(c)) {
            Some(c) => {
                colors.insert(v, c);
            }
            None => spills.push(v),
        }
    }
    if spills.is_empty() {
        Ok(colors)
    } else {
        Err(spills)
    }
}

/// Rewrites spilled vregs into fresh temporaries around frame accesses.
fn rewrite_spills(f: &Function, slot_of: &BTreeMap<VReg, u32>) -> Function {
    let mut out = f.clone();
    let mut next = f.vregs;
    let mut fresh = || {
        let v = VReg(next);
        next += 1;
        v
    };

    for block in &mut out.blocks {
        let mut insts = Vec::with_capacity(block.insts.len() * 2);
        for inst in block.insts.drain(..) {
            let mut inst = inst;
            // Replace spilled uses with loads into fresh temporaries.
            let uses: Vec<VReg> = Function::uses_of(&inst)
                .into_iter()
                .filter(|u| slot_of.contains_key(u))
                .collect();
            let mut replace: BTreeMap<VReg, VReg> = BTreeMap::new();
            for u in uses {
                let t = *replace.entry(u).or_insert_with(&mut fresh);
                insts.push(IrInst::SpillLoad {
                    dst: t,
                    slot: slot_of[&u],
                });
            }
            substitute_uses(&mut inst, &replace);
            // Replace a spilled def with a store from a fresh temporary.
            let spilled_def = Function::def_of(&inst).filter(|d| slot_of.contains_key(d));
            if let Some(d) = spilled_def {
                let t = fresh();
                substitute_def(&mut inst, t);
                insts.push(inst);
                insts.push(IrInst::SpillStore {
                    src: t,
                    slot: slot_of[&d],
                });
            } else {
                insts.push(inst);
            }
        }
        // Terminator uses.
        let term = block.term.as_mut().expect("terminated");
        let term_spills: Vec<VReg> = Function::term_uses(term)
            .into_iter()
            .filter(|u| slot_of.contains_key(u))
            .collect();
        let mut replace: BTreeMap<VReg, VReg> = BTreeMap::new();
        for u in term_spills {
            let t = *replace.entry(u).or_insert_with(&mut fresh);
            insts.push(IrInst::SpillLoad {
                dst: t,
                slot: slot_of[&u],
            });
        }
        substitute_term_uses(term, &replace);
        block.insts = insts;
    }

    // Spilled parameters need no IR: the codegen prologue copies them
    // from the argument area straight into their spill slot (see
    // `Allocation::spilled_params`), and all uses above were rewritten
    // into `SpillLoad`s.

    out.vregs = next;
    out
}

fn substitute_uses(inst: &mut IrInst, map: &BTreeMap<VReg, VReg>) {
    let sub = |o: &mut Operand| {
        if let Operand::Reg(v) = o {
            if let Some(&t) = map.get(v) {
                *v = t;
            }
        }
    };
    match inst {
        IrInst::Bin { a, b, .. } => {
            sub(a);
            sub(b);
        }
        IrInst::Copy { src, .. } => sub(src),
        IrInst::Load { base, .. } => sub(base),
        IrInst::Store { src, base, .. } => {
            sub(src);
            sub(base);
        }
        IrInst::Call { args, .. } => args.iter_mut().for_each(sub),
        IrInst::SpillLoad { .. } => {}
        IrInst::SpillStore { src, .. } => {
            if let Some(&t) = map.get(src) {
                *src = t;
            }
        }
    }
}

fn substitute_def(inst: &mut IrInst, new: VReg) {
    match inst {
        IrInst::Bin { dst, .. }
        | IrInst::Copy { dst, .. }
        | IrInst::Load { dst, .. }
        | IrInst::SpillLoad { dst, .. } => *dst = new,
        IrInst::Call { ret, .. } => *ret = Some(new),
        IrInst::Store { .. } | IrInst::SpillStore { .. } => {}
    }
}

fn substitute_term_uses(term: &mut Term, map: &BTreeMap<VReg, VReg>) {
    let sub = |o: &mut Operand| {
        if let Operand::Reg(v) = o {
            if let Some(&t) = map.get(v) {
                *v = t;
            }
        }
    };
    match term {
        Term::Br { a, b, .. } => {
            sub(a);
            sub(b);
        }
        Term::Ret(Some(o)) => sub(o),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FuncBuilder};

    /// Asserts the coloring is a valid solution of the (rebuilt)
    /// interference graph.
    fn assert_valid(alloc: &Allocation, k: u8) {
        let cfg = Cfg::build(&alloc.func);
        let lv = Liveness::compute(&alloc.func, &cfg);
        let g = InterferenceGraph::build(&alloc.func, &cfg, &lv);
        for v in g.nodes() {
            let cv = alloc.colors[&v];
            assert!(cv < k);
            for n in g.neighbors(v) {
                assert_ne!(cv, alloc.colors[&n], "{v:?} and {n:?} interfere");
            }
        }
    }

    #[test]
    fn small_function_needs_no_spill() {
        let mut b = FuncBuilder::new("f", 2);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s.into()));
        let f = b.finish();
        let a = allocate(&f, 8).unwrap();
        assert_eq!(a.rounds, 1);
        assert_eq!(a.frame_slots, 0);
        assert_valid(&a, 8);
    }

    #[test]
    fn high_pressure_forces_spill() {
        // 12 simultaneously live values, K = 4.
        let mut b = FuncBuilder::new("f", 0);
        let vals: Vec<_> = (0..12).map(|i| b.copy(i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.bin(BinOp::Add, acc, v);
        }
        b.ret(Some(acc.into()));
        let f = b.finish();
        let a = allocate(&f, 4).unwrap();
        assert!(a.rounds > 1, "must have spilled");
        assert!(a.frame_slots > 0);
        assert!(a.colors_used <= 4);
        assert_valid(&a, 4);
    }

    #[test]
    fn too_few_registers_is_an_error() {
        let mut b = FuncBuilder::new("f", 0);
        b.ret(None);
        let f = b.finish();
        assert_eq!(
            allocate(&f, 2).unwrap_err(),
            ColorError::TooFewRegisters { k: 2 }
        );
    }

    #[test]
    fn coloring_reuses_registers_for_disjoint_ranges() {
        // A long chain of short-lived temporaries should fit in few colors.
        let mut b = FuncBuilder::new("f", 0);
        let mut acc = b.copy(0);
        for i in 0..40 {
            acc = b.bin(BinOp::Add, acc, i);
        }
        b.ret(Some(acc.into()));
        let f = b.finish();
        let a = allocate(&f, 8).unwrap();
        assert_eq!(a.rounds, 1);
        assert!(
            a.colors_used <= 3,
            "chain should reuse registers, used {}",
            a.colors_used
        );
    }

    #[test]
    fn spilled_parameters_are_stored_on_entry() {
        // Force enormous pressure with params live to the end.
        let mut b = FuncBuilder::new("f", 6);
        let params: Vec<_> = (0..6).map(|i| b.param(i)).collect();
        let vals: Vec<_> = (0..6).map(|i| b.copy(100 + i)).collect();
        let mut acc = b.bin(BinOp::Add, params[0], vals[0]);
        for i in 1..6 {
            acc = b.bin(BinOp::Add, acc, params[i]);
            acc = b.bin(BinOp::Add, acc, vals[i]);
        }
        b.ret(Some(acc.into()));
        let f = b.finish();
        let a = allocate(&f, 4).unwrap();
        assert_valid(&a, 4);
    }
}
