//! Interference graph construction.
//!
//! Two virtual registers interfere when one is defined at a point where
//! the other is live (and they are not the two sides of a copy, the
//! classic Chaitin refinement that enables natural coalescing-like
//! assignments).

use crate::cfg::Cfg;
use crate::ir::{Function, IrInst, Operand, VReg};
use crate::liveness::Liveness;
use std::collections::{BTreeMap, BTreeSet};

/// An undirected interference graph over virtual registers.
#[derive(Clone, Debug, Default)]
pub struct InterferenceGraph {
    adj: BTreeMap<VReg, BTreeSet<VReg>>,
}

impl InterferenceGraph {
    /// Builds the interference graph of `f`.
    pub fn build(f: &Function, cfg: &Cfg, lv: &Liveness) -> Self {
        let mut g = InterferenceGraph::default();
        // Ensure every vreg has a node, even if isolated.
        for b in &f.blocks {
            for inst in &b.insts {
                for v in Function::uses_of(inst)
                    .into_iter()
                    .chain(Function::def_of(inst))
                {
                    g.adj.entry(v).or_default();
                }
            }
            for v in Function::term_uses(b.term.as_ref().expect("terminated")) {
                g.adj.entry(v).or_default();
            }
        }
        for v in 0..f.params {
            g.adj.entry(VReg(v)).or_default();
        }

        // Parameters are defined at function entry: every *live-in* param
        // interferes with the other live-in params and with everything
        // else live into the entry block. Without this, two parameters
        // that are never redefined would share a register. Dead params
        // (not in live-in) need no edges — codegen skips their load.
        let live_entry = lv.live_in[f.entry.0 as usize].clone();
        let live_params: Vec<VReg> = (0..f.params)
            .map(VReg)
            .filter(|p| live_entry.contains(p))
            .collect();
        for (i, &p1) in live_params.iter().enumerate() {
            for &p2 in &live_params[i + 1..] {
                g.add_edge(p1, p2);
            }
            for &l in &live_entry {
                g.add_edge(p1, l);
            }
        }

        for (i, b) in f.blocks.iter().enumerate() {
            let mut live = lv.live_out[i].clone();
            let _ = cfg; // CFG is implicit in the liveness sets.
                         // The terminator reads its operands after every instruction
                         // in the block: its uses are live across all of them.
            for u in Function::term_uses(b.term.as_ref().expect("terminated")) {
                live.insert(u);
            }
            for inst in b.insts.iter().rev() {
                if let Some(d) = Function::def_of(inst) {
                    // Copy refinement: `dst = src` does not make dst and
                    // src interfere by itself.
                    let copy_src = match inst {
                        IrInst::Copy {
                            src: Operand::Reg(s),
                            ..
                        } => Some(*s),
                        _ => None,
                    };
                    for &l in &live {
                        if l != d && Some(l) != copy_src {
                            g.add_edge(d, l);
                        }
                    }
                    live.remove(&d);
                }
                for u in Function::uses_of(inst) {
                    live.insert(u);
                }
            }
        }
        g
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: VReg, b: VReg) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: VReg, b: VReg) -> bool {
        self.adj.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// The neighbours of `v`.
    pub fn neighbors(&self, v: VReg) -> impl Iterator<Item = VReg> + '_ {
        self.adj.get(&v).into_iter().flatten().copied()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VReg) -> usize {
        self.adj.get(&v).map_or(0, |s| s.len())
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = VReg> + '_ {
        self.adj.keys().copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FuncBuilder};

    fn graph_of(f: &Function) -> InterferenceGraph {
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        InterferenceGraph::build(f, &cfg, &lv)
    }

    #[test]
    fn overlapping_lifetimes_interfere() {
        let mut b = FuncBuilder::new("f", 0);
        let a = b.copy(1);
        let c = b.copy(2);
        let s = b.bin(BinOp::Add, a, c);
        b.ret(Some(s.into()));
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(a, c));
    }

    #[test]
    fn sequential_lifetimes_do_not_interfere() {
        let mut b = FuncBuilder::new("f", 0);
        let a = b.copy(1);
        let d = b.bin(BinOp::Add, a, 1); // a dies here
        let e = b.bin(BinOp::Add, d, 1); // d dies here
        b.ret(Some(e.into()));
        let f = b.finish();
        let g = graph_of(&f);
        assert!(!g.interferes(a, e));
    }

    #[test]
    fn copy_sides_do_not_interfere() {
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let c = b.copy(p); // c = p; p unused afterwards
        b.ret(Some(c.into()));
        let f = b.finish();
        let g = graph_of(&f);
        assert!(
            !g.interferes(p, c),
            "copy-related vregs can share a register"
        );
    }

    #[test]
    fn terminator_operands_interfere() {
        // Regression: `cv = load ...; pv = load ...; br cv == pv` — the
        // branch reads both, so they must not share a register even when
        // neither is live into a successor.
        use crate::ir::Cond;
        let mut b = FuncBuilder::new("f", 1);
        let base = b.param(0);
        let cv = b.load(base, 0);
        let pv = b.load(base, 1);
        let t = b.new_block();
        let e = b.new_block();
        b.br(Cond::Eq, cv, pv, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(cv, pv));
    }

    #[test]
    fn parameters_interfere_with_each_other() {
        // Regression: two parameters never redefined must not share a
        // register.
        let mut b = FuncBuilder::new("f", 2);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Sub, x, y);
        b.ret(Some(s.into()));
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(x, y));
    }

    #[test]
    fn def_interferes_with_live_through() {
        // `a` is live across the definition of `d` → they interfere.
        let mut b = FuncBuilder::new("f", 0);
        let a = b.copy(1);
        let d = b.copy(2);
        let s = b.bin(BinOp::Add, a, d);
        b.ret(Some(s.into()));
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(a, d));
        assert!(!g.interferes(a, s));
    }
}
