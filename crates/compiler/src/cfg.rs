//! Control-flow graph utilities.

use crate::ir::{BlockId, Function, Term};

/// Successor and predecessor sets of every block.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successor blocks of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor blocks of each block.
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn build(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            let out: Vec<BlockId> = match b.term.as_ref().expect("terminated blocks") {
                Term::Jmp(t) => vec![*t],
                Term::Br { t, e, .. } => vec![*t, *e],
                Term::Ret(_) => vec![],
            };
            for s in &out {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
            succs[i] = out;
        }
        Cfg { succs, preds }
    }

    /// Blocks in reverse post-order from the entry (good for forward
    /// analyses; liveness iterates its reverse).
    pub fn reverse_postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let n = self.succs.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-child).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.0 as usize] = true;
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let succs = &self.succs[b.0 as usize];
            if *child < succs.len() {
                let s = succs[*child];
                *child += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cond, FuncBuilder};

    fn diamond() -> Function {
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.br(Cond::Eq, x, 0, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.succs[1], vec![BlockId(3)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(cfg.preds[0].is_empty());
        assert!(cfg.succs[3].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_postorder(f.entry);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn loop_edges() {
        // entry -> loop -> loop | exit
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        let l = b.new_block();
        let exit = b.new_block();
        b.jmp(l);
        b.switch_to(l);
        b.br(Cond::Ne, x, 0, l, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert!(cfg.succs[1].contains(&BlockId(1)), "self loop");
        assert_eq!(cfg.preds[1].len(), 2);
    }
}
