//! Backward dataflow liveness analysis.
//!
//! Classic worklist algorithm: `live_in(B) = use(B) ∪ (live_out(B) − def(B))`,
//! `live_out(B) = ∪ live_in(succ)`, iterated to a fixpoint.

use crate::cfg::Cfg;
use crate::ir::{Function, VReg};
use std::collections::BTreeSet;

/// Per-block live-in/live-out sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Virtual registers live on entry to each block.
    pub live_in: Vec<BTreeSet<VReg>>,
    /// Virtual registers live on exit of each block.
    pub live_out: Vec<BTreeSet<VReg>>,
}

impl Liveness {
    /// Computes liveness for `f` over `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
        let mut kill: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                for u in Function::uses_of(inst) {
                    if !kill[i].contains(&u) {
                        gen[i].insert(u);
                    }
                }
                if let Some(d) = Function::def_of(inst) {
                    kill[i].insert(d);
                }
            }
            for u in Function::term_uses(b.term.as_ref().expect("terminated")) {
                if !kill[i].contains(&u) {
                    gen[i].insert(u);
                }
            }
        }

        let mut live_in: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = BTreeSet::new();
                for s in &cfg.succs[i] {
                    out.extend(live_in[s.0 as usize].iter().copied());
                }
                let mut inn = gen[i].clone();
                for v in &out {
                    if !kill[i].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    changed = true;
                    live_out[i] = out;
                    live_in[i] = inn;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// The maximum number of simultaneously live registers anywhere in the
    /// function — a lower bound on colors needed without spilling.
    pub fn max_pressure(&self, f: &Function) -> usize {
        let mut max = 0;
        for (i, b) in f.blocks.iter().enumerate() {
            // Walk backwards from live-out through the block.
            let mut live = self.live_out[i].clone();
            max = max.max(live.len());
            for inst in b.insts.iter().rev() {
                if let Some(d) = Function::def_of(inst) {
                    live.remove(&d);
                }
                for u in Function::uses_of(inst) {
                    live.insert(u);
                }
                max = max.max(live.len());
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Cond, FuncBuilder};

    #[test]
    fn straight_line_liveness() {
        // v1 = p0 + 1; v2 = v1 + v1; ret v2
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let v1 = b.bin(BinOp::Add, p, 1);
        let v2 = b.bin(BinOp::Add, v1, v1);
        b.ret(Some(v2.into()));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in[0].contains(&p));
        assert!(lv.live_out[0].is_empty());
    }

    #[test]
    fn loop_keeps_induction_variable_live() {
        // i = p; loop: i = i - 1; if i != 0 goto loop; ret
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let i = b.copy(p);
        let l = b.new_block();
        let exit = b.new_block();
        b.jmp(l);
        b.switch_to(l);
        b.bin_to(i, BinOp::Sub, i, 1);
        b.br(Cond::Ne, i, 0, l, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        // `i` is live around the back edge.
        assert!(lv.live_in[1].contains(&i));
        assert!(lv.live_out[1].contains(&i));
        assert!(!lv.live_out[2].contains(&i));
    }

    #[test]
    fn branch_merges_liveness_from_both_arms() {
        let mut b = FuncBuilder::new("f", 2);
        let x = b.param(0);
        let y = b.param(1);
        let t = b.new_block();
        let e = b.new_block();
        b.br(Cond::Lt, x, y, t, e);
        b.switch_to(t);
        b.ret(Some(x.into()));
        b.switch_to(e);
        b.ret(Some(y.into()));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_in[0].contains(&x));
        assert!(lv.live_in[0].contains(&y));
        assert!(lv.live_out[0].contains(&x));
        assert!(lv.live_out[0].contains(&y));
    }

    #[test]
    fn max_pressure_counts_overlap() {
        let mut b = FuncBuilder::new("f", 0);
        let a = b.copy(1);
        let c = b.copy(2);
        let d = b.copy(3);
        let s1 = b.bin(BinOp::Add, a, c);
        let s2 = b.bin(BinOp::Add, s1, d);
        b.ret(Some(s2.into()));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.max_pressure(&f) >= 3, "a, c, d all live at once");
    }
}
