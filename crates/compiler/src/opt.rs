//! Optional IR optimization passes: local copy propagation and global
//! dead-code elimination.
//!
//! Run before register allocation (`CompileOpts::optimize`), they shrink
//! both the instruction stream and register pressure — fewer live
//! temporaries means fewer registers per activation, which is exactly the
//! quantity the paper's register files compete over. They are opt-in so
//! the reproduction's published measurements stay pinned to the
//! unoptimized translation.

use crate::cfg::Cfg;
use crate::ir::{BinOp, Function, IrInst, Operand, Term, VReg};
use crate::liveness::Liveness;
use std::collections::BTreeMap;

/// Runs constant folding, copy propagation and dead-code elimination to
/// a fixpoint.
pub fn optimize(f: &Function) -> Function {
    let mut cur = f.clone();
    loop {
        let folded = fold_constants(&cur);
        let propagated = copy_propagate(&folded);
        let cleaned = eliminate_dead_code(&propagated);
        let stable = count_insts(&cleaned) == count_insts(&cur)
            && count_copies(&cleaned) == count_copies(&cur);
        cur = cleaned;
        if stable {
            return cur;
        }
    }
}

fn count_copies(f: &Function) -> usize {
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, IrInst::Copy { .. }))
        .count()
}

/// Evaluates `op` on constants with the CPU's exact semantics.
pub fn fold_binop(op: BinOp, x: i32, y: i32) -> i32 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::Rem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Sll => ((x as u32) << (y as u32 & 31)) as i32,
        BinOp::Srl => ((x as u32) >> (y as u32 & 31)) as i32,
        BinOp::Sra => x >> (y as u32 & 31),
        BinOp::Slt => i32::from(x < y),
        BinOp::Seq => i32::from(x == y),
    }
}

/// Replaces `Bin` instructions whose operands are both constants with a
/// constant `Copy`, which copy propagation then dissolves.
pub fn fold_constants(f: &Function) -> Function {
    let mut out = f.clone();
    for block in &mut out.blocks {
        for inst in &mut block.insts {
            if let IrInst::Bin {
                op,
                dst,
                a: Operand::Const(x),
                b: Operand::Const(y),
            } = *inst
            {
                *inst = IrInst::Copy {
                    dst,
                    src: Operand::Const(fold_binop(op, x, y)),
                };
            }
        }
    }
    out
}

fn count_insts(f: &Function) -> usize {
    f.blocks.iter().map(|b| b.insts.len()).sum()
}

/// Local (per-block) forward copy propagation: after `dst = src`, uses of
/// `dst` become uses of `src` until either side is redefined. Constants
/// propagate too, feeding the code generator's immediate forms and
/// constant folding.
pub fn copy_propagate(f: &Function) -> Function {
    let mut out = f.clone();
    for block in &mut out.blocks {
        // vreg -> the operand it currently copies.
        let mut map: BTreeMap<VReg, Operand> = BTreeMap::new();
        let invalidate = |map: &mut BTreeMap<VReg, Operand>, v: VReg| {
            map.remove(&v);
            map.retain(|_, src| *src != Operand::Reg(v));
        };
        for inst in &mut block.insts {
            substitute(inst, &map);
            if let Some(d) = Function::def_of(inst) {
                invalidate(&mut map, d);
            }
            if let IrInst::Copy { dst, src } = inst {
                if *src != Operand::Reg(*dst) {
                    map.insert(*dst, *src);
                }
            }
        }
        substitute_term(block.term.as_mut().expect("terminated"), &map);
    }
    out
}

fn resolve(map: &BTreeMap<VReg, Operand>, o: &mut Operand) {
    if let Operand::Reg(v) = o {
        if let Some(&src) = map.get(v) {
            *o = src;
        }
    }
}

fn substitute(inst: &mut IrInst, map: &BTreeMap<VReg, Operand>) {
    match inst {
        IrInst::Bin { a, b, .. } => {
            resolve(map, a);
            resolve(map, b);
        }
        IrInst::Copy { src, .. } => resolve(map, src),
        IrInst::Load { base, .. } => resolve(map, base),
        IrInst::Store { src, base, .. } => {
            resolve(map, src);
            resolve(map, base);
        }
        IrInst::Call { args, .. } => {
            for a in args {
                resolve(map, a);
            }
        }
        // Spill pseudo-ops are introduced after allocation; the optimizer
        // never sees them, but handle the register-to-register case for
        // completeness.
        IrInst::SpillLoad { .. } => {}
        IrInst::SpillStore { src, .. } => {
            if let Some(Operand::Reg(new)) = map.get(src) {
                *src = *new;
            }
        }
    }
}

fn substitute_term(term: &mut Term, map: &BTreeMap<VReg, Operand>) {
    match term {
        Term::Br { a, b, .. } => {
            resolve(map, a);
            resolve(map, b);
        }
        Term::Ret(Some(o)) => resolve(map, o),
        _ => {}
    }
}

/// Removes side-effect-free instructions whose result is never used.
/// Stores, calls and spill stores always stay.
pub fn eliminate_dead_code(f: &Function) -> Function {
    let mut out = f.clone();
    let cfg = Cfg::build(&out);
    let lv = Liveness::compute(&out, &cfg);
    for (i, block) in out.blocks.iter_mut().enumerate() {
        // Backward walk: an instruction is dead if its def is not live
        // after it and it has no side effects.
        let mut live = lv.live_out[i].clone();
        for u in Function::term_uses(block.term.as_ref().expect("terminated")) {
            live.insert(u);
        }
        let mut keep = vec![true; block.insts.len()];
        for (j, inst) in block.insts.iter().enumerate().rev() {
            let side_effect = matches!(
                inst,
                IrInst::Store { .. } | IrInst::Call { .. } | IrInst::SpillStore { .. }
            );
            let dead = match Function::def_of(inst) {
                Some(d) => !side_effect && !live.contains(&d),
                None => false,
            };
            if dead {
                keep[j] = false;
                continue; // its uses stay dead too
            }
            if let Some(d) = Function::def_of(inst) {
                live.remove(&d);
            }
            for u in Function::uses_of(inst) {
                live.insert(u);
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().expect("parallel walk"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Cond, FuncBuilder};

    #[test]
    fn copies_are_propagated_and_removed() {
        // t = p; q = t + 1; ret q  →  q = p + 1; ret q
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let t = b.copy(p);
        let q = b.bin(BinOp::Add, t, 1);
        b.ret(Some(q.into()));
        let f = b.finish();
        let opt = optimize(&f);
        assert_eq!(count_insts(&opt), 1, "{:?}", opt.blocks[0].insts);
        match &opt.blocks[0].insts[0] {
            IrInst::Bin {
                a: Operand::Reg(v), ..
            } => assert_eq!(*v, p),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constants_propagate_and_fold_to_nothing() {
        let mut b = FuncBuilder::new("f", 0);
        let c = b.copy(41);
        let r = b.bin(BinOp::Add, c, 1);
        b.ret(Some(r.into()));
        let f = b.finish();
        let opt = optimize(&f);
        assert_eq!(count_insts(&opt), 0, "{:?}", opt.blocks[0].insts);
        assert!(matches!(
            opt.blocks[0].term,
            Some(Term::Ret(Some(Operand::Const(42))))
        ));
    }

    #[test]
    fn dead_loads_and_arithmetic_removed() {
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let _dead1 = b.bin(BinOp::Mul, p, 99);
        let _dead2 = b.load(p, 0);
        let live = b.bin(BinOp::Add, p, 1);
        b.ret(Some(live.into()));
        let f = b.finish();
        let opt = eliminate_dead_code(&f);
        assert_eq!(count_insts(&opt), 1);
    }

    #[test]
    fn stores_and_calls_survive_even_if_results_unused() {
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        b.store(p, p, 0);
        let _unused = b.call("g", vec![p.into()], true);
        b.ret(None);
        let f = b.finish();
        let opt = optimize(&f);
        assert_eq!(count_insts(&opt), 2);
    }

    #[test]
    fn redefinition_invalidates_copies() {
        // t = p; t = t + 1; q = t + 0; ret q — the copy must not leak the
        // stale `p` into q after t's redefinition.
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let t = b.copy(p);
        b.bin_to(t, BinOp::Add, t, 1);
        let q = b.bin(BinOp::Add, t, 0);
        b.ret(Some(q.into()));
        let f = b.finish();
        let opt = copy_propagate(&f);
        // The redefinition reads p (propagated), but q must read t.
        match &opt.blocks[0].insts[2] {
            IrInst::Bin {
                a: Operand::Reg(v), ..
            } => assert_eq!(*v, t),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn propagation_stops_at_block_boundaries() {
        // The copy is only valid on one path; a conservative local pass
        // must not propagate into the join block.
        let mut b = FuncBuilder::new("f", 1);
        let p = b.param(0);
        let t = b.vreg();
        let then_b = b.new_block();
        let else_b = b.new_block();
        let join = b.new_block();
        b.br(Cond::Eq, p, 0, then_b, else_b);
        b.switch_to(then_b);
        b.copy_to(t, 1);
        b.jmp(join);
        b.switch_to(else_b);
        b.copy_to(t, 2);
        b.jmp(join);
        b.switch_to(join);
        let r = b.bin(BinOp::Add, t, 0);
        b.ret(Some(r.into()));
        let f = b.finish();
        let opt = copy_propagate(&f);
        match &opt.blocks[3].insts[0] {
            IrInst::Bin {
                a: Operand::Reg(v), ..
            } => assert_eq!(*v, t),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_chains_fold_to_a_single_value() {
        // ((2 + 3) * 4) ^ 1 folds completely through fold + copy-prop.
        let mut b = FuncBuilder::new("f", 0);
        let s1 = b.bin(BinOp::Add, 2, 3);
        let s2 = b.bin(BinOp::Mul, s1, 4);
        let s3 = b.bin(BinOp::Xor, s2, 1);
        b.ret(Some(s3.into()));
        let f = b.finish();
        let opt = optimize(&f);
        assert_eq!(count_insts(&opt), 0, "{:?}", opt.blocks[0].insts);
        assert!(matches!(
            opt.blocks[0].term,
            Some(Term::Ret(Some(Operand::Const(21))))
        ));
    }

    #[test]
    fn fold_matches_machine_division_contract() {
        assert_eq!(fold_binop(BinOp::Div, 7, 0), 0);
        assert_eq!(fold_binop(BinOp::Div, i32::MIN, -1), i32::MIN);
        assert_eq!(fold_binop(BinOp::Rem, 7, 0), 0);
        assert_eq!(fold_binop(BinOp::Sll, 1, 33), 2);
    }

    #[test]
    fn optimize_reaches_fixpoint_on_chains() {
        // a = 1; b = a; c = b; d = c; ret d → ret-feeding copy collapses.
        let mut b = FuncBuilder::new("f", 0);
        let a = b.copy(1);
        let c1 = b.copy(a);
        let c2 = b.copy(c1);
        let c3 = b.copy(c2);
        b.ret(Some(c3.into()));
        let f = b.finish();
        let opt = optimize(&f);
        assert_eq!(count_insts(&opt), 0, "{:?}", opt.blocks[0].insts);
        assert!(matches!(
            opt.blocks[0].term,
            Some(Term::Ret(Some(Operand::Const(1))))
        ));
    }
}
