//! # nsf-compiler — a small optimizing compiler for the NSF ISA
//!
//! The paper's sequential benchmarks were "cross-compiled from Sparc
//! assembly code", produced by a compiler whose "register allocator
//! efficiently re-uses registers" (graph coloring, the paper cites Chaitin
//! et al.). That allocator is why sequential procedures touch only 8–10 of
//! their 20 context registers — a property the whole evaluation depends
//! on. This crate reproduces the pipeline:
//!
//! * [`ir`] — a three-address intermediate representation over unlimited
//!   virtual registers, with a convenient function builder;
//! * [`mod@cfg`] — control-flow analysis (successors/predecessors);
//! * [`liveness`] — backward dataflow liveness to a fixpoint;
//! * [`interference`] — the interference graph, with copy-aware edges;
//! * [`opt`] — optional copy propagation and dead-code elimination;
//! * [`color`] — Chaitin-style simplify/spill graph coloring onto the
//!   20-register sequential context, with iterative spill rewriting;
//! * [`codegen`] — lowering to `nsf-isa` programs under the stack calling
//!   convention shared with the simulator (arguments on the stack below
//!   `sp` = `g0`, return value in `g1`, a fresh register context per
//!   procedure activation).
//!
//! The paper's *parallel* benchmarks were translated from TAM dataflow
//! code by a translator that "simply folds hundreds of thread local
//! variables into a context's registers, without regard to variable
//! lifetime"; those programs are hand-written at ISA level in
//! `nsf-workloads` and do not pass through this allocator.

pub mod cfg;
pub mod codegen;
pub mod color;
pub mod interference;
pub mod ir;
pub mod liveness;
pub mod opt;

pub use codegen::{compile, CodegenError, CompileOpts};
pub use color::{Allocation, ColorError};
pub use ir::{BinOp, BlockId, Cond, FuncBuilder, Function, IrInst, Module, Operand, Term, VReg};
