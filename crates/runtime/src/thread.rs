//! Architectural thread state.

use nsf_core::Cid;
use nsf_isa::{Reg, NUM_GLOBAL_REGS};
use nsf_mem::{Addr, Word};

/// A thread identifier.
pub type ThreadId = u32;

/// Why a thread is blocked, and what wakes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// A remote load in flight; ready when the round trip completes.
    RemoteLoad {
        /// Cycle at which the reply arrives.
        ready_at: u64,
    },
    /// Waiting for a message on a channel.
    Recv {
        /// The channel being received from.
        chan: u32,
    },
    /// Waiting for space on a bounded channel (backpressure).
    Send {
        /// The channel being sent to.
        chan: u32,
    },
    /// Waiting for a join counter in memory to reach zero.
    Sync {
        /// Word address of the counter.
        addr: Addr,
    },
}

/// Run state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Ready,
    /// Currently issuing instructions.
    Running,
    /// Parked on a long-latency event.
    Blocked(BlockReason),
    /// Finished (halted).
    Done,
}

/// One thread's architectural state.
#[derive(Clone, Debug)]
pub struct Thread {
    /// Identifier.
    pub id: ThreadId,
    /// Next instruction index.
    pub pc: u32,
    /// Context ID of the current (innermost) procedure activation.
    pub cid: Cid,
    /// Procedure call stack: `(return pc, caller CID)`, innermost last.
    pub call_stack: Vec<(u32, Cid)>,
    /// Thread-global registers `g0..g3` (`g0` = stack pointer,
    /// `g1` = return value).
    pub globals: [Word; NUM_GLOBAL_REGS as usize],
    /// Run state.
    pub state: ThreadState,
    /// A register write to apply when the thread resumes (the delivered
    /// value of a remote load or channel receive).
    pub pending_write: Option<(Reg, Word)>,
    /// Instructions this thread has executed (for reporting).
    pub instructions: u64,
}

impl Thread {
    /// Creates a ready thread.
    pub fn new(id: ThreadId, pc: u32, cid: Cid, stack_top: Addr) -> Self {
        let mut globals = [0; NUM_GLOBAL_REGS as usize];
        globals[0] = stack_top; // g0 = sp
        Thread {
            id,
            pc,
            cid,
            call_stack: Vec::new(),
            globals,
            state: ThreadState::Ready,
            pending_write: None,
            instructions: 0,
        }
    }

    /// Current call depth (0 = top-level).
    pub fn depth(&self) -> usize {
        self.call_stack.len()
    }

    /// `true` when the thread can be scheduled.
    pub fn is_ready(&self) -> bool {
        self.state == ThreadState::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_thread_is_ready_with_sp_set() {
        let t = Thread::new(1, 100, 7, 0x8000);
        assert!(t.is_ready());
        assert_eq!(t.globals[0], 0x8000);
        assert_eq!(t.pc, 100);
        assert_eq!(t.cid, 7);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn blocked_thread_is_not_ready() {
        let mut t = Thread::new(1, 0, 0, 0);
        t.state = ThreadState::Blocked(BlockReason::Recv { chan: 3 });
        assert!(!t.is_ready());
    }
}
