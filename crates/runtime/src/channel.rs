//! Message channels with delivery latency.
//!
//! A channel is an unbounded FIFO of `(value, available_at)` pairs. Sends
//! are fire-and-forget; the message becomes receivable only after the
//! network delivery delay, modelling the inter-processor latency the paper
//! cites ("each of which may require a round trip latency of more than 100
//! instruction cycles").

use nsf_mem::Word;
use std::collections::VecDeque;

/// A channel identifier, as stored in a register.
pub type ChanId = u32;

/// All channels of a machine.
#[derive(Debug, Default)]
pub struct ChannelTable {
    chans: Vec<VecDeque<(Word, u64)>>,
    /// Per-channel capacity; `None` = unbounded.
    caps: Vec<Option<u32>>,
}

impl ChannelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh unbounded channel.
    pub fn create(&mut self) -> ChanId {
        self.create_with_capacity(None)
    }

    /// Allocates a channel; `Some(cap)` bounds the number of in-flight
    /// (undelivered or unconsumed) messages, and senders must wait for
    /// space — hardware-style backpressure.
    pub fn create_with_capacity(&mut self, cap: Option<u32>) -> ChanId {
        self.chans.push(VecDeque::new());
        self.caps.push(cap);
        (self.chans.len() - 1) as ChanId
    }

    /// `true` if `chan` can accept another message right now.
    pub fn has_space(&self, chan: ChanId) -> bool {
        match self.caps[chan as usize] {
            Some(cap) => (self.chans[chan as usize].len() as u32) < cap,
            None => true,
        }
    }

    /// Enqueues if the channel has space; `false` means the sender must
    /// wait.
    pub fn try_send(&mut self, chan: ChanId, value: Word, available_at: u64) -> bool {
        if !self.has_space(chan) {
            return false;
        }
        self.chans[chan as usize].push_back((value, available_at));
        true
    }

    /// `true` if `chan` names an allocated channel.
    pub fn is_valid(&self, chan: ChanId) -> bool {
        (chan as usize) < self.chans.len()
    }

    /// Enqueues `value`, deliverable at cycle `available_at`.
    ///
    /// # Panics
    ///
    /// Panics on an unallocated channel id — the simulator validates ids
    /// before calling.
    pub fn send(&mut self, chan: ChanId, value: Word, available_at: u64) {
        self.chans[chan as usize].push_back((value, available_at));
    }

    /// Pops the front message if it has been delivered by cycle `now`.
    pub fn try_recv(&mut self, chan: ChanId, now: u64) -> Option<Word> {
        let q = &mut self.chans[chan as usize];
        match q.front() {
            Some(&(_, at)) if at <= now => q.pop_front().map(|(v, _)| v),
            _ => None,
        }
    }

    /// The earliest delivery time of a pending message on `chan`, if any.
    pub fn next_delivery(&self, chan: ChanId) -> Option<u64> {
        self.chans[chan as usize].front().map(|&(_, at)| at)
    }

    /// Total undelivered + unconsumed messages (diagnostics).
    pub fn pending(&self) -> usize {
        self.chans.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_latency() {
        let mut t = ChannelTable::new();
        let c = t.create();
        t.send(c, 10, 100);
        t.send(c, 20, 50); // enqueued second, delivered earlier — still FIFO
        assert_eq!(t.try_recv(c, 99), None, "head not yet delivered");
        assert_eq!(t.try_recv(c, 100), Some(10));
        assert_eq!(t.try_recv(c, 100), Some(20));
        assert_eq!(t.try_recv(c, 100), None);
    }

    #[test]
    fn channels_are_independent() {
        let mut t = ChannelTable::new();
        let a = t.create();
        let b = t.create();
        t.send(a, 1, 0);
        assert_eq!(t.try_recv(b, 10), None);
        assert_eq!(t.try_recv(a, 10), Some(1));
    }

    #[test]
    fn next_delivery_reports_head() {
        let mut t = ChannelTable::new();
        let c = t.create();
        assert_eq!(t.next_delivery(c), None);
        t.send(c, 5, 42);
        assert_eq!(t.next_delivery(c), Some(42));
        assert_eq!(t.pending(), 1);
    }

    #[test]
    fn bounded_channels_apply_backpressure() {
        let mut t = ChannelTable::new();
        let c = t.create_with_capacity(Some(2));
        assert!(t.has_space(c));
        assert!(t.try_send(c, 1, 0));
        assert!(t.try_send(c, 2, 0));
        assert!(!t.has_space(c));
        assert!(!t.try_send(c, 3, 0), "third send must wait");
        assert_eq!(t.try_recv(c, 10), Some(1));
        assert!(t.has_space(c), "consuming frees space");
        assert!(t.try_send(c, 3, 0));
    }

    #[test]
    fn unbounded_channels_never_block() {
        let mut t = ChannelTable::new();
        let c = t.create();
        for i in 0..1000 {
            assert!(t.try_send(c, i, 0));
        }
        assert!(t.has_space(c));
    }

    #[test]
    fn validity() {
        let mut t = ChannelTable::new();
        assert!(!t.is_valid(0));
        let c = t.create();
        assert!(t.is_valid(c));
        assert!(!t.is_valid(c + 1));
    }
}
