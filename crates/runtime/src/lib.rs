//! # nsf-runtime — threads, scheduling, messages and synchronisation
//!
//! The paper's parallel benchmarks run on a **block-multithreaded**
//! processor (§3): a thread issues until it reaches a long-latency event —
//! a remote access, an empty channel, an unsatisfied join counter — then
//! the processor switches to another ready thread instead of stalling
//! (Figure 1). This crate provides the machinery *around* the pipeline:
//!
//! * [`Thread`] — architectural thread state: program counter, current
//!   Context ID, the procedure call stack of `(return pc, caller CID)`
//!   pairs, and the four thread-global registers (`g0` = stack pointer,
//!   `g1` = return value);
//! * [`Scheduler`] — ready queue (round-robin), blocked set with wake
//!   conditions, Context-ID allocation and per-thread stack carving;
//! * [`ChannelTable`] — message channels with a delivery latency, the
//!   vehicle for the "fine grain programs send messages every 75 to 100
//!   instructions" behaviour the paper measures.
//!
//! The processor model in `nsf-sim` drives these structures; they contain
//! no instruction semantics themselves.

pub mod channel;
pub mod sched;
pub mod thread;

pub use channel::{ChanId, ChannelTable};
pub use sched::{SchedDecision, Scheduler, SchedulerConfig, SchedulerError};
pub use thread::{BlockReason, Thread, ThreadId, ThreadState};
