//! The block-multithreading scheduler.
//!
//! Round-robin over ready threads; a thread runs until it blocks on a
//! long-latency event (paper Figure 1). Wake conditions:
//!
//! * remote loads wake at a known future cycle;
//! * receives wake when their channel has a delivered message (the
//!   blocked instruction re-executes, so racing receivers are safe);
//! * join waits wake when their counter reaches zero (probed via a
//!   memory callback, since the counter lives in simulated memory).
//!
//! The scheduler also owns the **Context ID** free list and carves a
//! stack region per thread — the "user program or thread scheduler"
//! software role the paper assigns to CID management (§4.3).

use crate::channel::ChannelTable;
use crate::thread::{BlockReason, Thread, ThreadId, ThreadState};
use nsf_core::Cid;
use nsf_mem::{Addr, Word};
use std::collections::VecDeque;
use std::fmt;

/// Scheduler limits and layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum live threads.
    pub max_threads: u32,
    /// Context IDs available (the Ctable size).
    pub cid_capacity: u16,
    /// Words of stack per thread.
    pub stack_words: u32,
    /// Base address of the stack arena (stacks grow downward from the top
    /// of each thread's region).
    pub stack_base: Addr,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_threads: 4096,
            cid_capacity: 4096,
            stack_words: 4096,
            stack_base: 0x0100_0000,
        }
    }
}

/// Scheduler failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// Thread limit reached.
    TooManyThreads,
    /// No free Context IDs (activation tree deeper than the Ctable).
    CidExhausted,
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::TooManyThreads => write!(f, "thread limit exceeded"),
            SchedulerError::CidExhausted => write!(f, "out of Context IDs"),
        }
    }
}

impl std::error::Error for SchedulerError {}

/// What the processor should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedDecision {
    /// Run this thread (it has been marked `Running`).
    Run(ThreadId),
    /// Nothing is ready; idle until this cycle, then rescan.
    AdvanceTo(u64),
    /// All threads finished.
    AllDone,
    /// Threads remain but none can ever wake — a program deadlock.
    Deadlock,
}

/// The scheduler. See module docs.
pub struct Scheduler {
    cfg: SchedulerConfig,
    threads: Vec<Thread>,
    ready: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    free_cids: Vec<Cid>,
    /// Message channels (owned here so wake checks can consult them).
    pub channels: ChannelTable,
    spawned: u64,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new(cfg: SchedulerConfig) -> Self {
        Scheduler {
            cfg,
            threads: Vec::new(),
            ready: VecDeque::new(),
            current: None,
            free_cids: (0..cfg.cid_capacity).rev().collect(),
            channels: ChannelTable::new(),
            spawned: 0,
        }
    }

    /// Allocates a Context ID (procedure call or thread spawn).
    pub fn alloc_cid(&mut self) -> Result<Cid, SchedulerError> {
        self.free_cids.pop().ok_or(SchedulerError::CidExhausted)
    }

    /// Returns a Context ID to the free list.
    pub fn free_cid(&mut self, cid: Cid) {
        self.free_cids.push(cid);
    }

    /// Spawns a thread at `pc` with `g1 = arg`. The thread gets a fresh
    /// CID and its own stack region.
    pub fn spawn(&mut self, pc: u32, arg: Word) -> Result<ThreadId, SchedulerError> {
        if self.threads.len() as u32 >= self.cfg.max_threads {
            return Err(SchedulerError::TooManyThreads);
        }
        let cid = self.alloc_cid()?;
        let id = self.threads.len() as ThreadId;
        let stack_top = self.cfg.stack_base + (id + 1) * self.cfg.stack_words;
        let mut t = Thread::new(id, pc, cid, stack_top);
        t.globals[1] = arg;
        self.threads.push(t);
        self.ready.push_back(id);
        self.spawned += 1;
        Ok(id)
    }

    /// The running thread, if any.
    pub fn current(&self) -> Option<&Thread> {
        self.current.map(|id| &self.threads[id as usize])
    }

    /// Mutable access to the running thread.
    ///
    /// # Panics
    ///
    /// Panics if no thread is running (the simulator only calls this
    /// between a `Run` decision and the next block/yield).
    pub fn current_mut(&mut self) -> &mut Thread {
        let id = self.current.expect("a thread is running");
        &mut self.threads[id as usize]
    }

    /// A thread by id.
    pub fn thread(&self, id: ThreadId) -> &Thread {
        &self.threads[id as usize]
    }

    /// All threads (reporting).
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Total threads ever spawned.
    pub fn spawned(&self) -> u64 {
        self.spawned
    }

    /// Number of threads currently waiting in the ready queue.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Parks the running thread on `reason`.
    pub fn block_current(&mut self, reason: BlockReason) {
        let t = self.current_mut();
        t.state = ThreadState::Blocked(reason);
        self.current = None;
    }

    /// Moves the running thread to the back of the ready queue.
    pub fn yield_current(&mut self) {
        let id = self.current.expect("a thread is running");
        self.threads[id as usize].state = ThreadState::Ready;
        self.ready.push_back(id);
        self.current = None;
    }

    /// Marks the running thread finished and releases its CID.
    pub fn finish_current(&mut self) -> ThreadId {
        let id = self.current.expect("a thread is running");
        self.threads[id as usize].state = ThreadState::Done;
        self.current = None;
        id
    }

    /// Wakes eligible blocked threads and picks the next to run.
    ///
    /// `sync_clear(addr)` reports whether the join counter at `addr` is
    /// zero (it lives in simulated memory, which the scheduler cannot
    /// see).
    pub fn next(&mut self, now: u64, mut sync_clear: impl FnMut(Addr) -> bool) -> SchedDecision {
        // Wake pass.
        for i in 0..self.threads.len() {
            let id = i as ThreadId;
            let wake = match self.threads[i].state {
                ThreadState::Blocked(BlockReason::RemoteLoad { ready_at }) => ready_at <= now,
                ThreadState::Blocked(BlockReason::Recv { chan }) => self
                    .channels
                    .next_delivery(chan)
                    .is_some_and(|at| at <= now),
                ThreadState::Blocked(BlockReason::Send { chan }) => self.channels.has_space(chan),
                ThreadState::Blocked(BlockReason::Sync { addr }) => sync_clear(addr),
                _ => false,
            };
            if wake {
                self.threads[i].state = ThreadState::Ready;
                self.ready.push_back(id);
            }
        }

        if let Some(id) = self.ready.pop_front() {
            self.threads[id as usize].state = ThreadState::Running;
            self.current = Some(id);
            return SchedDecision::Run(id);
        }

        // Nothing ready: find the earliest timed wake.
        let mut earliest: Option<u64> = None;
        let mut any_blocked = false;
        for t in &self.threads {
            match t.state {
                ThreadState::Blocked(BlockReason::RemoteLoad { ready_at }) => {
                    any_blocked = true;
                    earliest = Some(earliest.map_or(ready_at, |e| e.min(ready_at)));
                }
                ThreadState::Blocked(BlockReason::Recv { chan }) => {
                    any_blocked = true;
                    if let Some(at) = self.channels.next_delivery(chan) {
                        earliest = Some(earliest.map_or(at, |e| e.min(at)));
                    }
                }
                ThreadState::Blocked(BlockReason::Sync { .. })
                | ThreadState::Blocked(BlockReason::Send { .. }) => {
                    any_blocked = true;
                }
                _ => {}
            }
        }
        match (earliest, any_blocked) {
            (Some(at), _) => SchedDecision::AdvanceTo(at.max(now + 1)),
            (None, true) => SchedDecision::Deadlock,
            (None, false) => SchedDecision::AllDone,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(SchedulerConfig::default())
    }

    #[test]
    fn spawn_and_run_round_robin() {
        let mut s = sched();
        let a = s.spawn(10, 0).unwrap();
        let b = s.spawn(20, 0).unwrap();
        assert_eq!(s.next(0, |_| false), SchedDecision::Run(a));
        s.yield_current();
        assert_eq!(s.next(0, |_| false), SchedDecision::Run(b));
        s.yield_current();
        assert_eq!(s.next(0, |_| false), SchedDecision::Run(a));
    }

    #[test]
    fn threads_get_disjoint_stacks() {
        let mut s = sched();
        let a = s.spawn(0, 0).unwrap();
        let b = s.spawn(0, 0).unwrap();
        let sa = s.thread(a).globals[0];
        let sb = s.thread(b).globals[0];
        assert_ne!(sa, sb);
        assert!(sb - sa >= SchedulerConfig::default().stack_words);
    }

    #[test]
    fn spawn_arg_lands_in_g1() {
        let mut s = sched();
        let a = s.spawn(5, 99).unwrap();
        assert_eq!(s.thread(a).globals[1], 99);
    }

    #[test]
    fn remote_load_wakes_at_time() {
        let mut s = sched();
        let a = s.spawn(0, 0).unwrap();
        assert_eq!(s.next(0, |_| false), SchedDecision::Run(a));
        s.block_current(BlockReason::RemoteLoad { ready_at: 100 });
        assert_eq!(s.next(0, |_| false), SchedDecision::AdvanceTo(100));
        assert_eq!(s.next(100, |_| false), SchedDecision::Run(a));
    }

    #[test]
    fn recv_wakes_on_delivery() {
        let mut s = sched();
        let a = s.spawn(0, 0).unwrap();
        let c = s.channels.create();
        assert_eq!(s.next(0, |_| false), SchedDecision::Run(a));
        s.block_current(BlockReason::Recv { chan: c });
        // No message: blocked without a timed wake → deadlock.
        assert_eq!(s.next(0, |_| false), SchedDecision::Deadlock);
        s.channels.send(c, 7, 50);
        assert_eq!(s.next(0, |_| false), SchedDecision::AdvanceTo(50));
        assert_eq!(s.next(50, |_| false), SchedDecision::Run(a));
    }

    #[test]
    fn sync_wakes_via_probe() {
        let mut s = sched();
        let a = s.spawn(0, 0).unwrap();
        assert_eq!(s.next(0, |_| false), SchedDecision::Run(a));
        s.block_current(BlockReason::Sync { addr: 0x10 });
        assert_eq!(s.next(0, |_| false), SchedDecision::Deadlock);
        assert_eq!(s.next(0, |_| true), SchedDecision::Run(a));
    }

    #[test]
    fn all_done_after_finish() {
        let mut s = sched();
        s.spawn(0, 0).unwrap();
        assert!(matches!(s.next(0, |_| false), SchedDecision::Run(_)));
        s.finish_current();
        assert_eq!(s.next(0, |_| false), SchedDecision::AllDone);
    }

    #[test]
    fn cids_recycle() {
        let cfg = SchedulerConfig {
            cid_capacity: 2,
            ..Default::default()
        };
        let mut s = Scheduler::new(cfg);
        let a = s.alloc_cid().unwrap();
        let _b = s.alloc_cid().unwrap();
        assert_eq!(s.alloc_cid(), Err(SchedulerError::CidExhausted));
        s.free_cid(a);
        assert_eq!(s.alloc_cid(), Ok(a));
    }

    #[test]
    fn thread_limit_enforced() {
        let cfg = SchedulerConfig {
            max_threads: 1,
            ..Default::default()
        };
        let mut s = Scheduler::new(cfg);
        s.spawn(0, 0).unwrap();
        assert_eq!(s.spawn(0, 0), Err(SchedulerError::TooManyThreads));
    }
}
