//! Offline stand-in for the tiny slice of the `rand` crate this workspace
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The workspace runs in environments with no crates.io access, so the
//! real `rand` cannot be fetched. Everything here is deterministic per
//! seed (the repo's results paths require it — see CLAUDE.md); the
//! generator is SplitMix64, which passes the statistical bar needed for
//! replacement-policy ablations. The stream differs from upstream
//! `StdRng` (ChaCha12), so seeded sequences are *internally* stable but
//! not bit-compatible with the real crate.

use std::ops::{Range, RangeInclusive};

/// Seeded random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`start..end` or
    /// `start..=end`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Uniform value in `0..span` (`span > 0`), by rejection of the biased
/// tail.
fn bounded(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..32).map(|_| r.gen_range(0..100u32)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn small_spans_hit_every_value() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
