//! Property-based tests for the ISA layer: encode/decode roundtrips and
//! `load_const` constant-synthesis semantics.

use nsf_isa::builder::ProgramBuilder;
use nsf_isa::encode::{decode, encode, IMM14_MAX, IMM14_MIN};
use nsf_isa::{Inst, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        (0u8..nsf_isa::NUM_CTX_REGS).prop_map(Reg::R),
        (0u8..nsf_isa::NUM_GLOBAL_REGS).prop_map(Reg::G),
    ]
}

fn arb_imm14() -> impl Strategy<Value = i32> {
    IMM14_MIN..=IMM14_MAX
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Xor { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Sltu { rd, rs1, rs2 }),
        (r(), r(), arb_imm14()).prop_map(|(rd, rs1, imm)| Inst::Addi { rd, rs1, imm }),
        (r(), arb_imm14()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (r(), r()).prop_map(|(rd, rs1)| Inst::Mv { rd, rs1 }),
        (r(), r(), arb_imm14()).prop_map(|(rd, base, imm)| Inst::Lw { rd, base, imm }),
        (r(), r(), arb_imm14()).prop_map(|(base, src, imm)| Inst::Sw { base, src, imm }),
        (r(), r(), arb_imm14()).prop_map(|(rd, base, imm)| Inst::LwRemote { rd, base, imm }),
        (r(), r(), 0u32..(1 << 14)).prop_map(|(rs1, rs2, target)| Inst::Beq { rs1, rs2, target }),
        (r(), r(), 0u32..(1 << 14)).prop_map(|(rs1, rs2, target)| Inst::Blt { rs1, rs2, target }),
        (0u32..(1 << 26)).prop_map(|target| Inst::Jmp { target }),
        (0u32..(1 << 26)).prop_map(|target| Inst::Call { target }),
        (0u32..(1 << 14), r()).prop_map(|(target, arg)| Inst::Spawn { target, arg }),
        (r(), r(), arb_imm14()).prop_map(|(rd, base, imm)| Inst::AmoAdd { rd, base, imm }),
        (r(), arb_imm14()).prop_map(|(base, imm)| Inst::SyncWait { base, imm }),
        (r(), r()).prop_map(|(chan, src)| Inst::ChSend { chan, src }),
        (r(), r()).prop_map(|(rd, chan)| Inst::ChRecv { rd, chan }),
        (r()).prop_map(|reg| Inst::RFree { reg }),
        Just(Inst::Ret),
        Just(Inst::Halt),
        Just(Inst::Yield),
        Just(Inst::Nop),
    ]
}

proptest! {
    /// Every encodable instruction decodes back to itself.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(&inst).expect("strategy only generates encodable instructions");
        let back = decode(word).expect("decoding an encoded word");
        prop_assert_eq!(inst, back);
    }

    /// Instruction text written by `Display` re-assembles to the same
    /// instruction (when it is a standalone instruction with a numeric
    /// target).
    #[test]
    fn display_assemble_roundtrip(inst in arb_inst()) {
        // Targets must be in range of the 1-instruction program we build,
        // so map all control flow to target 0.
        let mut inst = inst;
        if inst.target().is_some() {
            inst.set_target(0);
        }
        let text = inst.to_string();
        let p = nsf_isa::asm::assemble(&text).expect("reassembling display output");
        prop_assert_eq!(p.insts()[0], inst);
    }

    /// `load_const` synthesises exactly the requested 32-bit constant when
    /// its instruction sequence is interpreted.
    #[test]
    fn load_const_synthesises_value(value in any::<i32>()) {
        let mut b = ProgramBuilder::new();
        b.load_const(Reg::R(0), value);
        b.emit(Inst::Halt);
        let p = b.finish("main").unwrap();

        // Interpret the li/slli/ori sequence.
        let mut acc: u32 = 0;
        for inst in p.insts() {
            match *inst {
                Inst::Li { imm, .. } => acc = imm as u32,
                Inst::Slli { imm, .. } => acc <<= imm as u32,
                Inst::Ori { imm, .. } => acc |= imm as u32,
                Inst::Halt => break,
                other => panic!("unexpected instruction {other}"),
            }
        }
        prop_assert_eq!(acc, value as u32);
    }
}
