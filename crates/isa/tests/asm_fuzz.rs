//! The assembler must never panic: arbitrary text yields `Ok` or a typed
//! error with a line number, and valid programs keep round-tripping.

use nsf_isa::asm::{assemble, disassemble};
use proptest::prelude::*;

proptest! {
    /// Totally arbitrary input never panics the assembler.
    #[test]
    fn arbitrary_text_never_panics(src in ".{0,400}") {
        let _ = assemble(&src);
    }

    /// Assembly-shaped noise (mnemonic-ish tokens, registers, numbers,
    /// punctuation) never panics either, and errors carry a 1-based line.
    #[test]
    fn assembly_shaped_noise_never_panics(
        lines in proptest::collection::vec(
            proptest::sample::select(vec![
                "add r1, r2, r3",
                "add r1, r2",
                "addi r1, r2, 99999999999",
                "lw r1, (r2",
                "lw r1, 4(g9)",
                "beq r1, r2, nowhere",
                "label:",
                "label: label:",
                "x: jmp x",
                "spawn x, r0, r1",
                "; comment only",
                "rfree",
                "syncwait r1",
                "li r0, -0x10",
                "halt extra",
            ]),
            0..12,
        )
    ) {
        let src = lines.join("\n");
        match assemble(&src) {
            Ok(p) => prop_assert!(p.validate().is_ok()),
            Err(e) => prop_assert!(e.line <= lines.len().max(1)),
        }
    }
}

#[test]
fn isa_reference_example_assembles_and_runs_in_docs() {
    // Keep the example in docs/ISA.md honest.
    let doc = include_str!("../../../docs/ISA.md");
    let start = doc.find("```asm").expect("asm block present") + 7;
    let end = doc[start..].find("```").expect("closed block") + start;
    let program = assemble(&doc[start..end]).expect("ISA.md example assembles");
    assert!(program.symbol("double").is_some());
    // Round trip it too.
    let again = assemble(&disassemble(&program)).unwrap();
    assert_eq!(program.insts(), again.insts());
}
