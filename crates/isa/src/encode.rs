//! Binary instruction encoding.
//!
//! Instructions encode into a fixed 32-bit word, in one of four formats:
//!
//! ```text
//! R:  [31:26 op] [25:20 rd ] [19:14 rs1] [13:8 rs2] [7:0  0]
//! I:  [31:26 op] [25:20 rd ] [19:14 rs1] [13:0  imm14 (signed)]
//! B:  [31:26 op] [25:20 rs1] [19:14 rs2] [13:0  target14 (absolute)]
//! J:  [31:26 op] [25:0  target26 (absolute)]
//! ```
//!
//! Register fields are 6 bits (bit 5 selects the global register space, see
//! [`Reg::to_field`]). Immediates are 14-bit signed; larger constants are
//! synthesised by the builder. Branch targets are absolute instruction
//! indices, so encodable program units are limited to 2¹⁴ instructions
//! (2²⁶ for jump/call/spawn) — ample for the workloads studied.

use crate::inst::Inst;
use crate::reg::Reg;
use std::fmt;

/// Range of a 14-bit signed immediate.
pub const IMM14_MIN: i32 = -(1 << 13);
/// Maximum value of a 14-bit signed immediate.
pub const IMM14_MAX: i32 = (1 << 13) - 1;

/// Error produced when an instruction cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit the 14-bit signed field.
    ImmOutOfRange(i32),
    /// A branch target does not fit its field.
    TargetOutOfRange(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(v) => {
                write!(f, "immediate {v} does not fit in 14 signed bits")
            }
            EncodeError::TargetOutOfRange(t) => write!(f, "branch target {t} out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a word cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field names no instruction.
    BadOpcode(u32),
    /// A register field names an out-of-range register.
    BadRegister(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadRegister(field) => write!(f, "invalid register field {field:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode assignments. Kept dense so decode can match exhaustively.
mod op {
    pub const ADD: u32 = 0;
    pub const SUB: u32 = 1;
    pub const MUL: u32 = 2;
    pub const DIV: u32 = 3;
    pub const REM: u32 = 4;
    pub const AND: u32 = 5;
    pub const OR: u32 = 6;
    pub const XOR: u32 = 7;
    pub const SLL: u32 = 8;
    pub const SRL: u32 = 9;
    pub const SRA: u32 = 10;
    pub const SLT: u32 = 11;
    pub const SLTU: u32 = 12;
    pub const SEQ: u32 = 13;
    pub const ADDI: u32 = 14;
    pub const ANDI: u32 = 15;
    pub const ORI: u32 = 16;
    pub const XORI: u32 = 17;
    pub const SLLI: u32 = 18;
    pub const SRLI: u32 = 19;
    pub const SRAI: u32 = 20;
    pub const SLTI: u32 = 21;
    pub const LI: u32 = 22;
    pub const MV: u32 = 23;
    pub const LW: u32 = 24;
    pub const SW: u32 = 25;
    pub const LWR: u32 = 26;
    pub const SWR: u32 = 27;
    pub const BEQ: u32 = 28;
    pub const BNE: u32 = 29;
    pub const BLT: u32 = 30;
    pub const BGE: u32 = 31;
    pub const JMP: u32 = 32;
    pub const CALL: u32 = 33;
    pub const RET: u32 = 34;
    pub const SPAWN: u32 = 35;
    pub const HALT: u32 = 36;
    pub const YIELD: u32 = 37;
    pub const CHNEW: u32 = 38;
    pub const CHSEND: u32 = 39;
    pub const CHRECV: u32 = 40;
    pub const AMOADD: u32 = 41;
    pub const SYNCWAIT: u32 = 42;
    pub const RFREE: u32 = 43;
    pub const NOP: u32 = 44;
}

fn imm14(v: i32) -> Result<u32, EncodeError> {
    if (IMM14_MIN..=IMM14_MAX).contains(&v) {
        Ok((v as u32) & 0x3FFF)
    } else {
        Err(EncodeError::ImmOutOfRange(v))
    }
}

fn target14(t: u32) -> Result<u32, EncodeError> {
    if t < (1 << 14) {
        Ok(t)
    } else {
        Err(EncodeError::TargetOutOfRange(t))
    }
}

fn target26(t: u32) -> Result<u32, EncodeError> {
    if t < (1 << 26) {
        Ok(t)
    } else {
        Err(EncodeError::TargetOutOfRange(t))
    }
}

fn fmt_r(opc: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (opc << 26) | (rd.to_field() << 20) | (rs1.to_field() << 14) | (rs2.to_field() << 8)
}

fn fmt_i(opc: u32, rd: Reg, rs1: Reg, imm: i32) -> Result<u32, EncodeError> {
    Ok((opc << 26) | (rd.to_field() << 20) | (rs1.to_field() << 14) | imm14(imm)?)
}

fn fmt_b(opc: u32, rs1: Reg, rs2: Reg, target: u32) -> Result<u32, EncodeError> {
    Ok((opc << 26) | (rs1.to_field() << 20) | (rs2.to_field() << 14) | target14(target)?)
}

fn fmt_j(opc: u32, target: u32) -> Result<u32, EncodeError> {
    Ok((opc << 26) | target26(target)?)
}

/// Encodes an instruction into its 32-bit machine word.
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    use Inst::*;
    Ok(match *inst {
        Add { rd, rs1, rs2 } => fmt_r(op::ADD, rd, rs1, rs2),
        Sub { rd, rs1, rs2 } => fmt_r(op::SUB, rd, rs1, rs2),
        Mul { rd, rs1, rs2 } => fmt_r(op::MUL, rd, rs1, rs2),
        Div { rd, rs1, rs2 } => fmt_r(op::DIV, rd, rs1, rs2),
        Rem { rd, rs1, rs2 } => fmt_r(op::REM, rd, rs1, rs2),
        And { rd, rs1, rs2 } => fmt_r(op::AND, rd, rs1, rs2),
        Or { rd, rs1, rs2 } => fmt_r(op::OR, rd, rs1, rs2),
        Xor { rd, rs1, rs2 } => fmt_r(op::XOR, rd, rs1, rs2),
        Sll { rd, rs1, rs2 } => fmt_r(op::SLL, rd, rs1, rs2),
        Srl { rd, rs1, rs2 } => fmt_r(op::SRL, rd, rs1, rs2),
        Sra { rd, rs1, rs2 } => fmt_r(op::SRA, rd, rs1, rs2),
        Slt { rd, rs1, rs2 } => fmt_r(op::SLT, rd, rs1, rs2),
        Sltu { rd, rs1, rs2 } => fmt_r(op::SLTU, rd, rs1, rs2),
        Seq { rd, rs1, rs2 } => fmt_r(op::SEQ, rd, rs1, rs2),
        Addi { rd, rs1, imm } => fmt_i(op::ADDI, rd, rs1, imm)?,
        Andi { rd, rs1, imm } => fmt_i(op::ANDI, rd, rs1, imm)?,
        Ori { rd, rs1, imm } => fmt_i(op::ORI, rd, rs1, imm)?,
        Xori { rd, rs1, imm } => fmt_i(op::XORI, rd, rs1, imm)?,
        Slli { rd, rs1, imm } => fmt_i(op::SLLI, rd, rs1, imm)?,
        Srli { rd, rs1, imm } => fmt_i(op::SRLI, rd, rs1, imm)?,
        Srai { rd, rs1, imm } => fmt_i(op::SRAI, rd, rs1, imm)?,
        Slti { rd, rs1, imm } => fmt_i(op::SLTI, rd, rs1, imm)?,
        Li { rd, imm } => fmt_i(op::LI, rd, rd, imm)?,
        Mv { rd, rs1 } => fmt_r(op::MV, rd, rs1, rs1),
        Lw { rd, base, imm } => fmt_i(op::LW, rd, base, imm)?,
        Sw { base, src, imm } => fmt_i(op::SW, src, base, imm)?,
        LwRemote { rd, base, imm } => fmt_i(op::LWR, rd, base, imm)?,
        SwRemote { base, src, imm } => fmt_i(op::SWR, src, base, imm)?,
        Beq { rs1, rs2, target } => fmt_b(op::BEQ, rs1, rs2, target)?,
        Bne { rs1, rs2, target } => fmt_b(op::BNE, rs1, rs2, target)?,
        Blt { rs1, rs2, target } => fmt_b(op::BLT, rs1, rs2, target)?,
        Bge { rs1, rs2, target } => fmt_b(op::BGE, rs1, rs2, target)?,
        Jmp { target } => fmt_j(op::JMP, target)?,
        Call { target } => fmt_j(op::CALL, target)?,
        Ret => op::RET << 26,
        Spawn { target, arg } => (op::SPAWN << 26) | (arg.to_field() << 20) | target14(target)?,
        Halt => op::HALT << 26,
        Yield => op::YIELD << 26,
        ChNew { rd } => (op::CHNEW << 26) | (rd.to_field() << 20),
        ChSend { chan, src } => fmt_r(op::CHSEND, chan, src, src),
        ChRecv { rd, chan } => fmt_r(op::CHRECV, rd, chan, chan),
        AmoAdd { rd, base, imm } => fmt_i(op::AMOADD, rd, base, imm)?,
        SyncWait { base, imm } => fmt_i(op::SYNCWAIT, base, base, imm)?,
        RFree { reg } => (op::RFREE << 26) | (reg.to_field() << 20),
        Nop => op::NOP << 26,
    })
}

fn sext14(field: u32) -> i32 {
    ((field as i32) << 18) >> 18
}

fn reg(field: u32) -> Result<Reg, DecodeError> {
    Reg::from_field(field & 0x3F).ok_or(DecodeError::BadRegister(field & 0x3F))
}

/// Decodes a 32-bit machine word back into an instruction.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    use Inst::*;
    let opc = word >> 26;
    let rd_f = (word >> 20) & 0x3F;
    let rs1_f = (word >> 14) & 0x3F;
    let rs2_f = (word >> 8) & 0x3F;
    let imm = sext14(word & 0x3FFF);
    let t14 = word & 0x3FFF;
    let t26 = word & 0x03FF_FFFF;

    let r3 =
        || -> Result<(Reg, Reg, Reg), DecodeError> { Ok((reg(rd_f)?, reg(rs1_f)?, reg(rs2_f)?)) };

    Ok(match opc {
        op::ADD => {
            let (rd, rs1, rs2) = r3()?;
            Add { rd, rs1, rs2 }
        }
        op::SUB => {
            let (rd, rs1, rs2) = r3()?;
            Sub { rd, rs1, rs2 }
        }
        op::MUL => {
            let (rd, rs1, rs2) = r3()?;
            Mul { rd, rs1, rs2 }
        }
        op::DIV => {
            let (rd, rs1, rs2) = r3()?;
            Div { rd, rs1, rs2 }
        }
        op::REM => {
            let (rd, rs1, rs2) = r3()?;
            Rem { rd, rs1, rs2 }
        }
        op::AND => {
            let (rd, rs1, rs2) = r3()?;
            And { rd, rs1, rs2 }
        }
        op::OR => {
            let (rd, rs1, rs2) = r3()?;
            Or { rd, rs1, rs2 }
        }
        op::XOR => {
            let (rd, rs1, rs2) = r3()?;
            Xor { rd, rs1, rs2 }
        }
        op::SLL => {
            let (rd, rs1, rs2) = r3()?;
            Sll { rd, rs1, rs2 }
        }
        op::SRL => {
            let (rd, rs1, rs2) = r3()?;
            Srl { rd, rs1, rs2 }
        }
        op::SRA => {
            let (rd, rs1, rs2) = r3()?;
            Sra { rd, rs1, rs2 }
        }
        op::SLT => {
            let (rd, rs1, rs2) = r3()?;
            Slt { rd, rs1, rs2 }
        }
        op::SLTU => {
            let (rd, rs1, rs2) = r3()?;
            Sltu { rd, rs1, rs2 }
        }
        op::SEQ => {
            let (rd, rs1, rs2) = r3()?;
            Seq { rd, rs1, rs2 }
        }
        op::ADDI => Addi {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::ANDI => Andi {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::ORI => Ori {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::XORI => Xori {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::SLLI => Slli {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::SRLI => Srli {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::SRAI => Srai {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::SLTI => Slti {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
            imm,
        },
        op::LI => Li {
            rd: reg(rd_f)?,
            imm,
        },
        op::MV => Mv {
            rd: reg(rd_f)?,
            rs1: reg(rs1_f)?,
        },
        op::LW => Lw {
            rd: reg(rd_f)?,
            base: reg(rs1_f)?,
            imm,
        },
        op::SW => Sw {
            src: reg(rd_f)?,
            base: reg(rs1_f)?,
            imm,
        },
        op::LWR => LwRemote {
            rd: reg(rd_f)?,
            base: reg(rs1_f)?,
            imm,
        },
        op::SWR => SwRemote {
            src: reg(rd_f)?,
            base: reg(rs1_f)?,
            imm,
        },
        op::BEQ => Beq {
            rs1: reg(rd_f)?,
            rs2: reg(rs1_f)?,
            target: t14,
        },
        op::BNE => Bne {
            rs1: reg(rd_f)?,
            rs2: reg(rs1_f)?,
            target: t14,
        },
        op::BLT => Blt {
            rs1: reg(rd_f)?,
            rs2: reg(rs1_f)?,
            target: t14,
        },
        op::BGE => Bge {
            rs1: reg(rd_f)?,
            rs2: reg(rs1_f)?,
            target: t14,
        },
        op::JMP => Jmp { target: t26 },
        op::CALL => Call { target: t26 },
        op::RET => Ret,
        op::SPAWN => Spawn {
            target: t14,
            arg: reg(rd_f)?,
        },
        op::HALT => Halt,
        op::YIELD => Yield,
        op::CHNEW => ChNew { rd: reg(rd_f)? },
        op::CHSEND => ChSend {
            chan: reg(rd_f)?,
            src: reg(rs1_f)?,
        },
        op::CHRECV => ChRecv {
            rd: reg(rd_f)?,
            chan: reg(rs1_f)?,
        },
        op::AMOADD => AmoAdd {
            rd: reg(rd_f)?,
            base: reg(rs1_f)?,
            imm,
        },
        op::SYNCWAIT => SyncWait {
            base: reg(rs1_f)?,
            imm,
        },
        op::RFREE => RFree { reg: reg(rd_f)? },
        op::NOP => Nop,
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn roundtrip(i: Inst) {
        let w = encode(&i).unwrap_or_else(|e| panic!("encode {i}: {e}"));
        let back = decode(w).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(i, back, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representatives() {
        let r = Reg::R;
        let g = Reg::G;
        for i in [
            Inst::Add {
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            Inst::Sub {
                rd: g(1),
                rs1: r(31),
                rs2: g(0),
            },
            Inst::Addi {
                rd: r(5),
                rs1: r(5),
                imm: -8191,
            },
            Inst::Li {
                rd: r(9),
                imm: 8191,
            },
            Inst::Mv {
                rd: r(0),
                rs1: g(3),
            },
            Inst::Lw {
                rd: r(7),
                base: g(0),
                imm: 44,
            },
            Inst::Sw {
                base: g(0),
                src: r(7),
                imm: -44,
            },
            Inst::LwRemote {
                rd: r(2),
                base: r(3),
                imm: 0,
            },
            Inst::SwRemote {
                base: r(3),
                src: r(2),
                imm: 12,
            },
            Inst::Beq {
                rs1: r(1),
                rs2: r(2),
                target: 16383,
            },
            Inst::Jmp {
                target: (1 << 26) - 1,
            },
            Inst::Call { target: 1234 },
            Inst::Ret,
            Inst::Spawn {
                target: 99,
                arg: r(4),
            },
            Inst::Halt,
            Inst::Yield,
            Inst::ChNew { rd: r(1) },
            Inst::ChSend {
                chan: r(1),
                src: r(2),
            },
            Inst::ChRecv {
                rd: r(3),
                chan: r(1),
            },
            Inst::AmoAdd {
                rd: r(1),
                base: r(2),
                imm: -1,
            },
            Inst::SyncWait { base: r(2), imm: 4 },
            Inst::RFree { reg: r(30) },
            Inst::Nop,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn imm_range_checked() {
        let i = Inst::Addi {
            rd: Reg::R(0),
            rs1: Reg::R(0),
            imm: 8192,
        };
        assert_eq!(encode(&i), Err(EncodeError::ImmOutOfRange(8192)));
        let i = Inst::Li {
            rd: Reg::R(0),
            imm: -8193,
        };
        assert_eq!(encode(&i), Err(EncodeError::ImmOutOfRange(-8193)));
    }

    #[test]
    fn target_range_checked() {
        let i = Inst::Beq {
            rs1: Reg::R(0),
            rs2: Reg::R(0),
            target: 1 << 14,
        };
        assert!(matches!(encode(&i), Err(EncodeError::TargetOutOfRange(_))));
        let i = Inst::Jmp { target: 1 << 26 };
        assert!(matches!(encode(&i), Err(EncodeError::TargetOutOfRange(_))));
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(decode(63 << 26), Err(DecodeError::BadOpcode(63))));
    }
}
