//! Peephole cleanup of emitted instruction streams.
//!
//! The code generator favours simplicity; this pass removes the slack it
//! leaves behind, rewriting a [`Program`] without changing its meaning:
//!
//! * `mv r, r` and `addi r, r, 0` and `nop`-equivalent shifts by 0 drop;
//! * `jmp L` where `L` is the next instruction drops;
//! * branch/jump/call targets are re-pointed through the dropped slots.
//!
//! Label symbols are preserved (re-mapped to the surviving positions).

use crate::inst::Inst;
use crate::program::{Program, ProgramError};

/// `true` if `inst` at index `i` has no architectural effect.
fn is_removable(inst: &Inst, i: usize) -> bool {
    match *inst {
        Inst::Nop => true,
        Inst::Mv { rd, rs1 } => rd == rs1,
        Inst::Addi { rd, rs1, imm: 0 }
        | Inst::Ori { rd, rs1, imm: 0 }
        | Inst::Xori { rd, rs1, imm: 0 }
        | Inst::Slli { rd, rs1, imm: 0 }
        | Inst::Srli { rd, rs1, imm: 0 }
        | Inst::Srai { rd, rs1, imm: 0 } => rd == rs1,
        Inst::Jmp { target } => target as usize == i + 1,
        _ => false,
    }
}

/// Runs the peephole pass, returning the compacted program and how many
/// instructions were removed.
pub fn peephole(p: &Program) -> Result<(Program, usize), ProgramError> {
    let insts = p.insts();
    let n = insts.len();

    // Iterate to a fixpoint on the removable set: removing a jump can
    // make an earlier jump-to-next removable.
    let mut removable = vec![false; n];
    loop {
        // new_index[i] = position of instruction i after compaction, or
        // the position of the next surviving instruction if i is removed.
        let mut new_index = vec![0u32; n + 1];
        let mut cursor = 0u32;
        for i in 0..n {
            new_index[i] = cursor;
            if !removable[i] {
                cursor += 1;
            }
        }
        new_index[n] = cursor;

        let mut changed = false;
        for i in 0..n {
            if removable[i] {
                continue;
            }
            let effective = match insts[i] {
                // A jump is removable when its *surviving* target equals
                // the next surviving position.
                Inst::Jmp { target } => new_index[target as usize] == new_index[i + 1],
                ref other => is_removable(other, i),
            };
            if effective {
                removable[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut new_index = vec![0u32; n + 1];
    let mut cursor = 0u32;
    for i in 0..n {
        new_index[i] = cursor;
        if !removable[i] {
            cursor += 1;
        }
    }
    new_index[n] = cursor;

    let mut out = Vec::with_capacity(cursor as usize);
    for (i, inst) in insts.iter().enumerate() {
        if removable[i] {
            continue;
        }
        let mut inst = *inst;
        if let Some(t) = inst.target() {
            inst.set_target(new_index[t as usize]);
        }
        out.push(inst);
    }

    let symbols = p
        .symbols()
        .iter()
        .map(|(name, &idx)| (name.clone(), new_index[idx as usize]))
        .collect();
    let entry = new_index[p.entry() as usize];
    let removed = n - out.len();
    Ok((Program::new(out, symbols, entry)?, removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::reg::Reg;

    fn opt(src: &str) -> (Program, usize) {
        peephole(&assemble(src).unwrap()).unwrap()
    }

    #[test]
    fn removes_self_moves_and_identity_arith() {
        let (p, removed) = opt("main: mv r0, r0
                   addi r1, r1, 0
                   slli r2, r2, 0
                   nop
                   mv r0, r1
                   halt");
        assert_eq!(removed, 4);
        assert_eq!(p.len(), 2);
        assert!(matches!(
            p.insts()[0],
            Inst::Mv {
                rd: Reg::R(0),
                rs1: Reg::R(1)
            }
        ));
    }

    #[test]
    fn keeps_effectful_identities() {
        // addi r1, r2, 0 is a move, not a no-op.
        let (p, removed) = opt("main: addi r1, r2, 0\n halt");
        assert_eq!(removed, 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn removes_jump_to_next_and_retargets() {
        let (p, removed) = opt("main: jmp next
             next: nop
                   beq r0, r0, next
                   halt");
        // `jmp next` falls through; `nop` drops; the branch target shifts.
        assert_eq!(removed, 2);
        assert!(matches!(p.insts()[0], Inst::Beq { target: 0, .. }));
        assert_eq!(p.symbol("next"), Some(0));
    }

    #[test]
    fn chained_jumps_collapse_to_fixpoint() {
        // jmp a; a: jmp b; b: halt — both jumps dissolve.
        let (p, removed) = opt("main: jmp a\n a: jmp b\n b: halt");
        assert_eq!(removed, 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.symbol("b"), Some(0));
    }

    #[test]
    fn backward_jumps_survive() {
        let (p, removed) = opt("main: li r0, 3
             top:  addi r0, r0, -1
                   li r1, 0
                   bne r0, r1, top
                   jmp top
                   halt");
        assert_eq!(removed, 0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn entry_and_symbols_remap() {
        let (p, _) = opt("nop\n nop\n main: halt");
        assert_eq!(p.entry(), 0);
        assert_eq!(p.symbol("main"), Some(0));
    }
}
