//! # nsf-isa — target instruction set for the NSF reproduction
//!
//! The paper (Nuth & Dally, HPCA '95) evaluated the Named-State Register
//! File by cross-compiling Sparc assembly (sequential benchmarks) and TAM
//! dataflow code (parallel benchmarks) into a register-file simulator. We
//! replace both with one compact load/store ISA, rich enough to express the
//! paper's nine benchmarks as real programs:
//!
//! * three-operand ALU instructions over 32-bit words (at most two register
//!   reads and one write per instruction, matching the three-ported register
//!   files studied in the paper);
//! * loads/stores against a simulated memory hierarchy, plus *remote* loads
//!   that incur a multiprocessor round-trip latency and therefore trigger a
//!   context switch on a block-multithreaded processor;
//! * procedure `call`/`ret` that allocate and free a fresh register context
//!   (the paper's "a compiler for a sequential program may allocate a new
//!   CID for each procedure invocation");
//! * thread primitives (`spawn`, `halt`, `yield`), message channels
//!   (`chnew`/`chsend`/`chrecv`) and synchronisation (`amoadd`, `syncwait`)
//!   modelling TAM-style fine-grain parallelism.
//!
//! Two register spaces exist, mirroring Sparc's windowed/global split:
//! [`Reg::R`] registers are *context-local* — they live in the register file
//! under study, addressed by `<Context ID : offset>` — while [`Reg::G`]
//! registers are *thread-global* scratch (stack pointer, return value) that
//! never touch the studied register file, so they do not perturb the paper's
//! measurements.
//!
//! The crate provides the instruction model ([`Inst`]), a binary
//! encoder/decoder ([`encode`]), a textual assembler/disassembler ([`asm`]),
//! and an ergonomic [`builder`] used by the compiler and the hand-written
//! parallel workloads.

pub mod asm;
pub mod builder;
pub mod encode;
pub mod inst;
pub mod peephole;
pub mod program;
pub mod reg;

pub use builder::ProgramBuilder;
pub use inst::{Inst, InstClass};
pub use program::{Program, ProgramError};
pub use reg::{Reg, NUM_CTX_REGS, NUM_GLOBAL_REGS, RV, SP};
