//! Register names.
//!
//! The ISA exposes two register spaces:
//!
//! * **Context registers** `r0..r31` ([`Reg::R`]) — local to the current
//!   procedure or thread activation. These are the registers held by the
//!   register file under study; every access goes through the Named-State
//!   or segmented file and is counted in the paper's statistics.
//! * **Global registers** `g0..g3` ([`Reg::G`]) — per-*thread* scratch state
//!   (stack pointer, return value, two temporaries), modelled after Sparc's
//!   `%g` registers. They live in the thread control block, are switched
//!   with the thread, and never occupy the studied register file.

use std::fmt;
use std::str::FromStr;

/// Number of context-local registers addressable per context (`r0..r31`).
///
/// This matches the paper: "The width of the offset field determines the
/// size of the register set (typically 32 registers)."
pub const NUM_CTX_REGS: u8 = 32;

/// Number of thread-global registers (`g0..g3`).
pub const NUM_GLOBAL_REGS: u8 = 4;

/// The stack pointer, by convention `g0`.
pub const SP: Reg = Reg::G(0);

/// The procedure return-value register, by convention `g1`.
pub const RV: Reg = Reg::G(1);

/// A register operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Context-local register `r<n>`, `n < NUM_CTX_REGS`.
    R(u8),
    /// Thread-global register `g<n>`, `n < NUM_GLOBAL_REGS`.
    G(u8),
}

impl Reg {
    /// Returns `true` for context-local registers (the ones held in the
    /// register file being studied).
    pub fn is_context(self) -> bool {
        matches!(self, Reg::R(_))
    }

    /// Returns the register index within its space.
    pub fn index(self) -> u8 {
        match self {
            Reg::R(n) | Reg::G(n) => n,
        }
    }

    /// Returns `true` if the register name is within architectural bounds.
    pub fn is_valid(self) -> bool {
        match self {
            Reg::R(n) => n < NUM_CTX_REGS,
            Reg::G(n) => n < NUM_GLOBAL_REGS,
        }
    }

    /// Encodes the register into a 6-bit operand field
    /// (bit 5 distinguishes global from context registers).
    pub fn to_field(self) -> u32 {
        match self {
            Reg::R(n) => u32::from(n),
            Reg::G(n) => 0b10_0000 | u32::from(n),
        }
    }

    /// Decodes a 6-bit operand field produced by [`Reg::to_field`].
    ///
    /// Returns `None` if the field names an out-of-range register.
    pub fn from_field(field: u32) -> Option<Reg> {
        let idx = (field & 0b1_1111) as u8;
        let reg = if field & 0b10_0000 != 0 {
            Reg::G(idx)
        } else {
            Reg::R(idx)
        };
        reg.is_valid().then_some(reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::R(n) => write!(f, "r{n}"),
            Reg::G(n) => write!(f, "g{n}"),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError(s.to_owned());
        let (kind, num) = s.split_at(1.min(s.len()));
        let n: u8 = num.parse().map_err(|_| err())?;
        let reg = match kind {
            "r" => Reg::R(n),
            "g" => Reg::G(n),
            _ => return Err(err()),
        };
        if reg.is_valid() {
            Ok(reg)
        } else {
            Err(err())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        for r in [Reg::R(0), Reg::R(31), Reg::G(0), Reg::G(3)] {
            let s = r.to_string();
            assert_eq!(s.parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn field_roundtrip() {
        for n in 0..NUM_CTX_REGS {
            let r = Reg::R(n);
            assert_eq!(Reg::from_field(r.to_field()), Some(r));
        }
        for n in 0..NUM_GLOBAL_REGS {
            let g = Reg::G(n);
            assert_eq!(Reg::from_field(g.to_field()), Some(g));
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("g4".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert_eq!(Reg::from_field(0b10_0100), None); // g4
    }

    #[test]
    fn classification() {
        assert!(Reg::R(5).is_context());
        assert!(!SP.is_context());
        assert_eq!(SP, Reg::G(0));
        assert_eq!(RV, Reg::G(1));
    }
}
