//! Program container.

use crate::inst::Inst;
use std::collections::BTreeMap;
use std::fmt;

/// A fully resolved program: a flat instruction vector plus a symbol table.
///
/// Branch, call and spawn targets are absolute indices into `insts`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    insts: Vec<Inst>,
    /// Symbolic names for instruction indices (procedure entry points,
    /// thread entry points). Sorted for deterministic iteration.
    symbols: BTreeMap<String, u32>,
    entry: u32,
}

/// Error produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A control-flow target points outside the program.
    TargetOutOfBounds {
        /// Index of the offending instruction.
        at: u32,
        /// The out-of-bounds target.
        target: u32,
    },
    /// The entry point is outside the program.
    EntryOutOfBounds(u32),
    /// An instruction names an architecturally invalid register.
    InvalidRegister {
        /// Index of the offending instruction.
        at: u32,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TargetOutOfBounds { at, target } => {
                write!(f, "instruction {at}: target {target} out of bounds")
            }
            ProgramError::EntryOutOfBounds(e) => write!(f, "entry point {e} out of bounds"),
            ProgramError::InvalidRegister { at } => {
                write!(f, "instruction {at}: invalid register operand")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Encodes the program into its binary image (one 32-bit word per
    /// instruction).
    pub fn to_words(&self) -> Result<Vec<u32>, crate::encode::EncodeError> {
        self.insts.iter().map(crate::encode::encode).collect()
    }

    /// Reconstructs a program from a binary image produced by
    /// [`Program::to_words`] (symbols are not part of the image; the
    /// entry index must be supplied).
    pub fn from_words(
        words: &[u32],
        entry: u32,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        let insts = words
            .iter()
            .map(|&w| crate::encode::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::new(insts, BTreeMap::new(), entry)?)
    }

    /// Creates a program from raw parts and validates it.
    pub fn new(
        insts: Vec<Inst>,
        symbols: BTreeMap<String, u32>,
        entry: u32,
    ) -> Result<Self, ProgramError> {
        let p = Program {
            insts,
            symbols,
            entry,
        };
        p.validate()?;
        Ok(p)
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// All instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry-point instruction index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a symbol (procedure or thread entry).
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Checks structural invariants: all control-flow targets and the entry
    /// point lie within the program, and all register operands are valid.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let n = self.insts.len() as u32;
        if self.entry >= n && n > 0 {
            return Err(ProgramError::EntryOutOfBounds(self.entry));
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                if t >= n {
                    return Err(ProgramError::TargetOutOfBounds {
                        at: i as u32,
                        target: t,
                    });
                }
            }
            let regs_ok = inst
                .reads()
                .into_iter()
                .chain(inst.writes())
                .all(|r| r.is_valid());
            if !regs_ok {
                return Err(ProgramError::InvalidRegister { at: i as u32 });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut by_index: BTreeMap<u32, &str> = BTreeMap::new();
        for (name, &idx) in &self.symbols {
            by_index.insert(idx, name);
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(name) = by_index.get(&(i as u32)) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "    {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn validate_catches_bad_target() {
        let insts = vec![Inst::Jmp { target: 5 }];
        let err = Program::new(insts, BTreeMap::new(), 0).unwrap_err();
        assert_eq!(err, ProgramError::TargetOutOfBounds { at: 0, target: 5 });
    }

    #[test]
    fn validate_catches_bad_entry() {
        let insts = vec![Inst::Nop];
        let err = Program::new(insts, BTreeMap::new(), 9).unwrap_err();
        assert_eq!(err, ProgramError::EntryOutOfBounds(9));
    }

    #[test]
    fn symbols_resolve() {
        let mut syms = BTreeMap::new();
        syms.insert("main".to_owned(), 1);
        let p = Program::new(vec![Inst::Nop, Inst::Halt], syms, 1).unwrap();
        assert_eq!(p.symbol("main"), Some(1));
        assert_eq!(p.symbol("other"), None);
        assert_eq!(p.entry(), 1);
        assert_eq!(p.fetch(1), Some(&Inst::Halt));
        assert_eq!(p.fetch(2), None);
    }

    #[test]
    fn binary_image_roundtrip() {
        let mut syms = BTreeMap::new();
        syms.insert("main".to_owned(), 0);
        let p = Program::new(
            vec![
                Inst::Li {
                    rd: Reg::R(0),
                    imm: 5,
                },
                Inst::Addi {
                    rd: Reg::R(0),
                    rs1: Reg::R(0),
                    imm: -1,
                },
                Inst::Halt,
            ],
            syms,
            0,
        )
        .unwrap();
        let words = p.to_words().unwrap();
        assert_eq!(words.len(), 3);
        let back = Program::from_words(&words, 0).unwrap();
        assert_eq!(p.insts(), back.insts());
    }

    #[test]
    fn display_lists_symbols() {
        let mut syms = BTreeMap::new();
        syms.insert("f".to_owned(), 0);
        let p = Program::new(
            vec![
                Inst::Mv {
                    rd: Reg::R(0),
                    rs1: Reg::G(1),
                },
                Inst::Ret,
            ],
            syms,
            0,
        )
        .unwrap();
        let s = p.to_string();
        assert!(s.contains("f:"));
        assert!(s.contains("mv r0, g1"));
    }
}
