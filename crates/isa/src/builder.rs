//! Ergonomic program construction with symbolic labels.
//!
//! [`ProgramBuilder`] is the assembly layer used both by the compiler's code
//! generator and by the hand-written parallel workloads. Labels are cheap
//! tokens ([`Label`]); forward references are recorded and patched when the
//! program is finished.
//!
//! # Example
//!
//! ```
//! use nsf_isa::{builder::ProgramBuilder, Inst, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.new_label();
//! b.load_const(Reg::R(0), 10);
//! b.bind(loop_top);
//! b.emit(Inst::Addi { rd: Reg::R(0), rs1: Reg::R(0), imm: -1 });
//! let zero = b.scratch(Reg::R(1), 0);
//! b.bne(Reg::R(0), zero, loop_top);
//! b.emit(Inst::Halt);
//! let prog = b.finish("main").unwrap();
//! assert!(prog.len() >= 4);
//! ```

use crate::encode::{IMM14_MAX, IMM14_MIN};
use crate::inst::Inst;
use crate::program::{Program, ProgramError};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// An opaque label token issued by [`ProgramBuilder::new_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced when finishing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(usize),
    /// A label was bound twice.
    ReboundLabel(usize),
    /// The produced program failed validation.
    Invalid(ProgramError),
    /// The entry symbol was never defined via [`ProgramBuilder::export`].
    MissingEntry(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label #{l} referenced but never bound"),
            BuildError::ReboundLabel(l) => write!(f, "label #{l} bound twice"),
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
            BuildError::MissingEntry(s) => write!(f, "entry symbol `{s}` was never exported"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> Self {
        BuildError::Invalid(e)
    }
}

/// The instruction sequence that materialises an arbitrary 32-bit
/// constant in `rd`: a single `li` when it fits the 14-bit immediate,
/// otherwise a seed `li` of the upmost 11 bits followed by three
/// shift-in-7-bit-chunk steps. Shared by [`ProgramBuilder::load_const`]
/// and the assembler's `li` expansion.
pub fn load_const_insts(rd: Reg, value: i32) -> Vec<Inst> {
    if (IMM14_MIN..=IMM14_MAX).contains(&value) {
        return vec![Inst::Li { rd, imm: value }];
    }
    let v = value as u32;
    let mut out = vec![Inst::Li {
        rd,
        imm: ((v >> 21) as i32) << 21 >> 21,
    }];
    for chunk_idx in (0..3).rev() {
        let chunk = ((v >> (7 * chunk_idx)) & 0x7F) as i32;
        out.push(Inst::Slli {
            rd,
            rs1: rd,
            imm: 7,
        });
        if chunk != 0 {
            out.push(Inst::Ori {
                rd,
                rs1: rd,
                imm: chunk,
            });
        }
    }
    out
}

/// Incrementally builds a [`Program`].
#[derive(Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    symbols: BTreeMap<String, u32>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current position (index of the next emitted instruction).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a program construction bug).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label #{} bound twice",
            label.0
        );
        self.labels[label.0] = Some(self.here());
    }

    /// Exports the current position under a symbolic name (e.g. a procedure
    /// entry point) and returns it as a bound label.
    pub fn export(&mut self, name: &str) -> Label {
        let l = self.new_label();
        self.bind(l);
        self.symbols.insert(name.to_owned(), self.here());
        l
    }

    /// Emits one instruction, returning its index.
    pub fn emit(&mut self, inst: Inst) -> u32 {
        self.insts.push(inst);
        self.here() - 1
    }

    fn emit_fixup(&mut self, inst: Inst, label: Label) {
        let at = self.insts.len();
        self.insts.push(inst);
        self.fixups.push((at, label));
    }

    /// Emits `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.emit_fixup(
            Inst::Beq {
                rs1,
                rs2,
                target: 0,
            },
            label,
        );
    }

    /// Emits `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.emit_fixup(
            Inst::Bne {
                rs1,
                rs2,
                target: 0,
            },
            label,
        );
    }

    /// Emits `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.emit_fixup(
            Inst::Blt {
                rs1,
                rs2,
                target: 0,
            },
            label,
        );
    }

    /// Emits `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.emit_fixup(
            Inst::Bge {
                rs1,
                rs2,
                target: 0,
            },
            label,
        );
    }

    /// Emits `jmp label`.
    pub fn jmp(&mut self, label: Label) {
        self.emit_fixup(Inst::Jmp { target: 0 }, label);
    }

    /// Emits `call label`.
    pub fn call(&mut self, label: Label) {
        self.emit_fixup(Inst::Call { target: 0 }, label);
    }

    /// Emits `spawn label, arg`.
    pub fn spawn(&mut self, label: Label, arg: Reg) {
        self.emit_fixup(Inst::Spawn { target: 0, arg }, label);
    }

    /// Loads an arbitrary 32-bit constant into `rd`, emitting as many
    /// instructions as the architectural 14-bit immediates require
    /// (1 for small constants, up to 5 in the worst case).
    pub fn load_const(&mut self, rd: Reg, value: i32) {
        for inst in load_const_insts(rd, value) {
            self.emit(inst);
        }
    }

    /// Loads a small constant into `reg` and returns `reg` — a convenience
    /// for instructions that need a constant operand in a register.
    pub fn scratch(&mut self, reg: Reg, value: i32) -> Reg {
        self.load_const(reg, value);
        reg
    }

    /// Resolves all labels and produces the final program with `entry` as
    /// its entry symbol.
    pub fn finish(mut self, entry: &str) -> Result<Program, BuildError> {
        if !self.symbols.contains_key(entry) {
            // Convention: if the caller never exported the entry symbol,
            // treat index 0 as the entry, under the given name.
            if self.insts.is_empty() {
                return Err(BuildError::MissingEntry(entry.to_owned()));
            }
            self.symbols.insert(entry.to_owned(), 0);
        }
        for (at, label) in &self.fixups {
            let pos = self.labels[label.0].ok_or(BuildError::UnboundLabel(label.0))?;
            let ok = self.insts[*at].set_target(pos);
            debug_assert!(ok, "fixup on targetless instruction");
        }
        let entry_pc = self.symbols[entry];
        Ok(Program::new(self.insts, self.symbols, entry_pc)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label();
        b.jmp(fwd); // forward reference
        let back = b.new_label();
        b.bind(back);
        b.emit(Inst::Nop);
        b.bind(fwd);
        b.jmp(back); // backward reference
        b.emit(Inst::Halt);
        let p = b.finish("main").unwrap();
        assert_eq!(p.insts()[0], Inst::Jmp { target: 2 });
        assert_eq!(p.insts()[2], Inst::Jmp { target: 1 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jmp(l);
        assert!(matches!(b.finish("main"), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn empty_program_missing_entry() {
        let b = ProgramBuilder::new();
        assert!(matches!(b.finish("main"), Err(BuildError::MissingEntry(_))));
    }

    #[test]
    fn export_registers_symbol() {
        let mut b = ProgramBuilder::new();
        b.emit(Inst::Nop);
        b.export("f");
        b.emit(Inst::Ret);
        let p = b.finish("main").unwrap();
        assert_eq!(p.symbol("f"), Some(1));
        assert_eq!(p.symbol("main"), Some(0));
    }
}
