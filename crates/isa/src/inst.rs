//! The instruction set.
//!
//! Every instruction reads at most two registers and writes at most one,
//! matching the three-ported (two read, one write) register files the paper
//! evaluates. Branch and jump targets are absolute instruction indices;
//! the [`crate::builder`] resolves symbolic labels to indices.

use crate::reg::Reg;
use std::fmt;

/// A machine instruction.
///
/// Immediates are architecturally 14-bit signed (see [`crate::encode`]);
/// the builder's `load_const` helper synthesises larger constants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inst {
    // --- ALU, register-register ---------------------------------------
    /// `rd = rs1 + rs2` (wrapping).
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 - rs2` (wrapping).
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 * rs2` (wrapping).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 / rs2` (signed; division by zero yields 0, like a trap
    /// handler returning a default).
    Div { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 % rs2` (signed; modulo by zero yields 0).
    Rem { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 & rs2`.
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 | rs2`.
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 ^ rs2`.
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 << (rs2 & 31)`.
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 31)` (logical).
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 31)` (arithmetic).
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed).
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 < rs2) ? 1 : 0` (unsigned).
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 == rs2) ? 1 : 0`.
    Seq { rd: Reg, rs1: Reg, rs2: Reg },

    // --- ALU, register-immediate ---------------------------------------
    /// `rd = rs1 + imm`.
    Addi { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 & imm`.
    Andi { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 | imm`.
    Ori { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 ^ imm`.
    Xori { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 << imm`.
    Slli { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 >> imm` (logical).
    Srli { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 >> imm` (arithmetic).
    Srai { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = (rs1 < imm) ? 1 : 0` (signed).
    Slti { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = sign_extend(imm)`.
    Li { rd: Reg, imm: i32 },
    /// `rd = rs1` (register move).
    Mv { rd: Reg, rs1: Reg },

    // --- Memory ---------------------------------------------------------
    /// `rd = mem[rs1 + imm]` (word addressed, local memory).
    Lw { rd: Reg, base: Reg, imm: i32 },
    /// `mem[rs1 + imm] = rs2` (word addressed, local memory).
    Sw { base: Reg, src: Reg, imm: i32 },
    /// Remote load: `rd = mem[rs1 + imm]`, incurring the multiprocessor
    /// round-trip latency. On a block-multithreaded processor this blocks
    /// the issuing thread and triggers a context switch (paper §2).
    LwRemote { rd: Reg, base: Reg, imm: i32 },
    /// Remote store (fire and forget; completes after the network delay).
    SwRemote { base: Reg, src: Reg, imm: i32 },

    // --- Control flow -----------------------------------------------------
    /// Branch to `target` if `rs1 == rs2`.
    Beq { rs1: Reg, rs2: Reg, target: u32 },
    /// Branch to `target` if `rs1 != rs2`.
    Bne { rs1: Reg, rs2: Reg, target: u32 },
    /// Branch to `target` if `rs1 < rs2` (signed).
    Blt { rs1: Reg, rs2: Reg, target: u32 },
    /// Branch to `target` if `rs1 >= rs2` (signed).
    Bge { rs1: Reg, rs2: Reg, target: u32 },
    /// Unconditional jump to `target`.
    Jmp { target: u32 },

    // --- Procedures (context-allocating) ---------------------------------
    /// Call the procedure at `target`.
    ///
    /// Allocates a fresh Context ID for the callee, saves the return PC and
    /// the caller's CID, and makes the callee's context current. On a
    /// segmented register file this is the point where a frame may have to
    /// be spilled; on the NSF nothing is saved or restored.
    Call { target: u32 },
    /// Return from the current procedure: deallocates the current context
    /// (all of its registers are dead) and resumes the caller.
    Ret,

    // --- Threads and synchronisation --------------------------------------
    /// Spawn a new thread at `target`; the child's `g1` receives `arg` and
    /// the runtime assigns it a fresh stack and Context ID.
    Spawn { target: u32, arg: Reg },
    /// Terminate the current thread, deallocating its context.
    Halt,
    /// Voluntarily yield the processor to another ready thread.
    Yield,
    /// Create a new message channel; its id is written to `rd`.
    ChNew { rd: Reg },
    /// Send the value in `src` on channel `chan` (non-blocking; the message
    /// becomes visible to the receiver after the network latency).
    ChSend { chan: Reg, src: Reg },
    /// Receive a value from channel `chan` into `rd`; blocks (switching
    /// contexts) until a message is available.
    ChRecv { rd: Reg, chan: Reg },
    /// Atomic fetch-and-add: `rd = mem[base]; mem[base] += imm`.
    AmoAdd { rd: Reg, base: Reg, imm: i32 },
    /// Block the thread until `mem[base + imm] == 0` (a TAM-style join
    /// counter reaching zero); blocking triggers a context switch.
    SyncWait { base: Reg, imm: i32 },

    // --- Register-file hints ----------------------------------------------
    /// Deallocate a single register of the current context (paper §4.2:
    /// "The NSF can explicitly deallocate a single register after it is no
    /// longer needed"). A no-op on non-associative register files.
    RFree { reg: Reg },

    /// No operation.
    Nop,
}

/// Broad instruction classes used for cycle accounting and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstClass {
    /// Register-to-register or register-immediate arithmetic.
    Alu,
    /// Local memory access.
    Mem,
    /// Remote (inter-node) memory access.
    RemoteMem,
    /// Branch or jump.
    Control,
    /// Procedure call/return (context allocating).
    Proc,
    /// Thread management, messaging, synchronisation.
    Thread,
    /// Register-file hint or no-op.
    Misc,
}

impl Inst {
    /// The registers this instruction reads, in operand order.
    pub fn reads(&self) -> Vec<Reg> {
        use Inst::*;
        match *self {
            Add { rs1, rs2, .. }
            | Sub { rs1, rs2, .. }
            | Mul { rs1, rs2, .. }
            | Div { rs1, rs2, .. }
            | Rem { rs1, rs2, .. }
            | And { rs1, rs2, .. }
            | Or { rs1, rs2, .. }
            | Xor { rs1, rs2, .. }
            | Sll { rs1, rs2, .. }
            | Srl { rs1, rs2, .. }
            | Sra { rs1, rs2, .. }
            | Slt { rs1, rs2, .. }
            | Sltu { rs1, rs2, .. }
            | Seq { rs1, rs2, .. } => vec![rs1, rs2],
            Addi { rs1, .. }
            | Andi { rs1, .. }
            | Ori { rs1, .. }
            | Xori { rs1, .. }
            | Slli { rs1, .. }
            | Srli { rs1, .. }
            | Srai { rs1, .. }
            | Slti { rs1, .. }
            | Mv { rs1, .. } => vec![rs1],
            Li { .. } => vec![],
            Lw { base, .. } | LwRemote { base, .. } => vec![base],
            Sw { base, src, .. } | SwRemote { base, src, .. } => vec![base, src],
            Beq { rs1, rs2, .. }
            | Bne { rs1, rs2, .. }
            | Blt { rs1, rs2, .. }
            | Bge { rs1, rs2, .. } => vec![rs1, rs2],
            Jmp { .. } | Call { .. } | Ret | Halt | Yield | Nop => vec![],
            Spawn { arg, .. } => vec![arg],
            ChNew { .. } => vec![],
            ChSend { chan, src } => vec![chan, src],
            ChRecv { chan, .. } => vec![chan],
            AmoAdd { base, .. } => vec![base],
            SyncWait { base, .. } => vec![base],
            RFree { .. } => vec![],
        }
    }

    /// The register this instruction writes, if any.
    pub fn writes(&self) -> Option<Reg> {
        use Inst::*;
        match *self {
            Add { rd, .. }
            | Sub { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Seq { rd, .. }
            | Addi { rd, .. }
            | Andi { rd, .. }
            | Ori { rd, .. }
            | Xori { rd, .. }
            | Slli { rd, .. }
            | Srli { rd, .. }
            | Srai { rd, .. }
            | Slti { rd, .. }
            | Li { rd, .. }
            | Mv { rd, .. }
            | Lw { rd, .. }
            | LwRemote { rd, .. }
            | ChNew { rd }
            | ChRecv { rd, .. }
            | AmoAdd { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The broad class of the instruction, for cycle accounting.
    pub fn class(&self) -> InstClass {
        use Inst::*;
        match self {
            Lw { .. } | Sw { .. } | AmoAdd { .. } => InstClass::Mem,
            LwRemote { .. } | SwRemote { .. } => InstClass::RemoteMem,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Jmp { .. } => InstClass::Control,
            Call { .. } | Ret => InstClass::Proc,
            Spawn { .. }
            | Halt
            | Yield
            | ChNew { .. }
            | ChSend { .. }
            | ChRecv { .. }
            | SyncWait { .. } => InstClass::Thread,
            RFree { .. } | Nop => InstClass::Misc,
            _ => InstClass::Alu,
        }
    }

    /// `true` if executing this instruction can block the issuing thread
    /// (and hence trigger a context switch on a multithreaded processor).
    /// `chsend` blocks only on bounded channels.
    pub fn may_block(&self) -> bool {
        matches!(
            self,
            Inst::LwRemote { .. }
                | Inst::ChRecv { .. }
                | Inst::ChSend { .. }
                | Inst::SyncWait { .. }
                | Inst::Yield
        )
    }

    /// The static branch/jump/call target, if this instruction has one.
    pub fn target(&self) -> Option<u32> {
        use Inst::*;
        match *self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blt { target, .. }
            | Bge { target, .. }
            | Jmp { target }
            | Call { target }
            | Spawn { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the static target (used by the assembler's fix-up pass).
    ///
    /// Returns `false` if the instruction has no target.
    pub fn set_target(&mut self, new: u32) -> bool {
        use Inst::*;
        match self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blt { target, .. }
            | Bge { target, .. }
            | Jmp { target }
            | Call { target }
            | Spawn { target, .. } => {
                *target = new;
                true
            }
            _ => false,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Rem { rd, rs1, rs2 } => write!(f, "rem {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Seq { rd, rs1, rs2 } => write!(f, "seq {rd}, {rs1}, {rs2}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Slli { rd, rs1, imm } => write!(f, "slli {rd}, {rs1}, {imm}"),
            Srli { rd, rs1, imm } => write!(f, "srli {rd}, {rs1}, {imm}"),
            Srai { rd, rs1, imm } => write!(f, "srai {rd}, {rs1}, {imm}"),
            Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Mv { rd, rs1 } => write!(f, "mv {rd}, {rs1}"),
            Lw { rd, base, imm } => write!(f, "lw {rd}, {imm}({base})"),
            Sw { base, src, imm } => write!(f, "sw {src}, {imm}({base})"),
            LwRemote { rd, base, imm } => write!(f, "lwr {rd}, {imm}({base})"),
            SwRemote { base, src, imm } => write!(f, "swr {src}, {imm}({base})"),
            Beq { rs1, rs2, target } => write!(f, "beq {rs1}, {rs2}, {target}"),
            Bne { rs1, rs2, target } => write!(f, "bne {rs1}, {rs2}, {target}"),
            Blt { rs1, rs2, target } => write!(f, "blt {rs1}, {rs2}, {target}"),
            Bge { rs1, rs2, target } => write!(f, "bge {rs1}, {rs2}, {target}"),
            Jmp { target } => write!(f, "jmp {target}"),
            Call { target } => write!(f, "call {target}"),
            Ret => write!(f, "ret"),
            Spawn { target, arg } => write!(f, "spawn {target}, {arg}"),
            Halt => write!(f, "halt"),
            Yield => write!(f, "yield"),
            ChNew { rd } => write!(f, "chnew {rd}"),
            ChSend { chan, src } => write!(f, "chsend {chan}, {src}"),
            ChRecv { rd, chan } => write!(f, "chrecv {rd}, {chan}"),
            AmoAdd { rd, base, imm } => write!(f, "amoadd {rd}, {imm}({base})"),
            SyncWait { base, imm } => write!(f, "syncwait {imm}({base})"),
            RFree { reg } => write!(f, "rfree {reg}"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn reads_writes_ports() {
        // No instruction exceeds 2 reads + 1 write (3-ported file).
        let samples = [
            Inst::Add {
                rd: Reg::R(1),
                rs1: Reg::R(2),
                rs2: Reg::R(3),
            },
            Inst::Sw {
                base: Reg::G(0),
                src: Reg::R(4),
                imm: 8,
            },
            Inst::ChSend {
                chan: Reg::R(0),
                src: Reg::R(1),
            },
            Inst::Beq {
                rs1: Reg::R(0),
                rs2: Reg::R(1),
                target: 7,
            },
        ];
        for i in &samples {
            assert!(i.reads().len() <= 2, "{i}");
        }
        assert_eq!(samples[0].writes(), Some(Reg::R(1)));
        assert_eq!(samples[1].writes(), None);
    }

    #[test]
    fn blocking_classification() {
        assert!(Inst::LwRemote {
            rd: Reg::R(0),
            base: Reg::R(1),
            imm: 0
        }
        .may_block());
        assert!(Inst::Yield.may_block());
        assert!(!Inst::Lw {
            rd: Reg::R(0),
            base: Reg::R(1),
            imm: 0
        }
        .may_block());
        assert!(Inst::ChSend {
            chan: Reg::R(0),
            src: Reg::R(1)
        }
        .may_block());
    }

    #[test]
    fn target_rewrite() {
        let mut i = Inst::Jmp { target: 3 };
        assert_eq!(i.target(), Some(3));
        assert!(i.set_target(9));
        assert_eq!(i.target(), Some(9));
        let mut n = Inst::Nop;
        assert!(!n.set_target(1));
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::Ret.class(), InstClass::Proc);
        assert_eq!(Inst::Halt.class(), InstClass::Thread);
        assert_eq!(Inst::Nop.class(), InstClass::Misc);
        assert_eq!(
            Inst::LwRemote {
                rd: Reg::R(0),
                base: Reg::R(0),
                imm: 0
            }
            .class(),
            InstClass::RemoteMem
        );
    }
}
