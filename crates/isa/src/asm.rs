//! Textual assembler and disassembler.
//!
//! The accepted syntax is exactly what [`Inst`]'s `Display` implementation
//! prints, plus `name:` label definitions and `;` / `#` comments. Labels
//! may be used wherever a branch/call/spawn target is expected; numeric
//! targets are also accepted (as printed by the disassembler).
//!
//! ```
//! use nsf_isa::asm::assemble;
//!
//! let p = assemble(
//!     "main:
//!         li r0, 3
//!     loop:
//!         addi r0, r0, -1
//!         li r1, 0
//!         bne r0, r1, loop
//!         halt",
//! )
//! .unwrap();
//! assert_eq!(p.len(), 5);
//! assert_eq!(p.symbol("loop"), Some(1));
//! ```

use crate::inst::Inst;
use crate::program::{Program, ProgramError};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced by [`assemble`], with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// A not-yet-resolved operand: either an absolute index or a label name.
enum Target {
    Abs(u32),
    Sym(String),
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    tok.trim()
        .parse::<Reg>()
        .map_err(|e| err(line, e.to_string()))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let t = tok.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v)
    } else {
        t.parse::<i64>()
    };
    parsed
        .ok()
        .and_then(|v| i32::try_from(v).ok())
        .ok_or_else(|| err(line, format!("invalid immediate `{t}`")))
}

fn parse_target(tok: &str) -> Target {
    let t = tok.trim();
    match t.parse::<u32>() {
        Ok(n) => Target::Abs(n),
        Err(_) => Target::Sym(t.to_owned()),
    }
}

/// Parses `imm(base)` memory-operand syntax.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(base)`, got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(err(line, format!("expected `imm(base)`, got `{t}`")));
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let base = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((imm, base))
}

/// Assembles source text into a [`Program`].
///
/// The entry point is the `main` label if defined, otherwise instruction 0.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut insts: Vec<Inst> = Vec::new();
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    // (instruction index, label, source line) fixups.
    let mut fixups: Vec<(usize, String, usize)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(cut) = text.find([';', '#']) {
            text = &text[..cut];
        }
        let mut text = text.trim();
        // Leading label definitions (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let name = text[..colon].trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(line, format!("invalid label `{name}`")));
            }
            if symbols
                .insert(name.to_owned(), insts.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("label `{name}` defined twice")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let at = insts.len();
        let push_target = |t: Target, fixups: &mut Vec<(usize, String, usize)>| -> u32 {
            match t {
                Target::Abs(n) => n,
                Target::Sym(s) => {
                    fixups.push((at, s, line));
                    0
                }
            }
        };

        macro_rules! rrr {
            ($variant:ident) => {{
                want(3)?;
                Inst::$variant {
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                    rs2: parse_reg(ops[2], line)?,
                }
            }};
        }
        macro_rules! rri {
            ($variant:ident) => {{
                want(3)?;
                Inst::$variant {
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                    imm: parse_imm(ops[2], line)?,
                }
            }};
        }
        macro_rules! branch {
            ($variant:ident) => {{
                want(3)?;
                let target = push_target(parse_target(ops[2]), &mut fixups);
                Inst::$variant {
                    rs1: parse_reg(ops[0], line)?,
                    rs2: parse_reg(ops[1], line)?,
                    target,
                }
            }};
        }

        let inst = match mnemonic {
            "add" => rrr!(Add),
            "sub" => rrr!(Sub),
            "mul" => rrr!(Mul),
            "div" => rrr!(Div),
            "rem" => rrr!(Rem),
            "and" => rrr!(And),
            "or" => rrr!(Or),
            "xor" => rrr!(Xor),
            "sll" => rrr!(Sll),
            "srl" => rrr!(Srl),
            "sra" => rrr!(Sra),
            "slt" => rrr!(Slt),
            "sltu" => rrr!(Sltu),
            "seq" => rrr!(Seq),
            "addi" => rri!(Addi),
            "andi" => rri!(Andi),
            "ori" => rri!(Ori),
            "xori" => rri!(Xori),
            "slli" => rri!(Slli),
            "srli" => rri!(Srli),
            "srai" => rri!(Srai),
            "slti" => rri!(Slti),
            "li" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let imm = parse_imm(ops[1], line)?;
                // Large constants expand to the canonical li/slli/ori
                // sequence, like the builder's `load_const`.
                let seq = crate::builder::load_const_insts(rd, imm);
                let (last, rest) = seq.split_last().expect("non-empty");
                for inst in rest {
                    insts.push(*inst);
                }
                *last
            }
            "mv" => {
                want(2)?;
                Inst::Mv {
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                }
            }
            "lw" | "lwr" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let (imm, base) = parse_mem(ops[1], line)?;
                if mnemonic == "lw" {
                    Inst::Lw { rd, base, imm }
                } else {
                    Inst::LwRemote { rd, base, imm }
                }
            }
            "sw" | "swr" => {
                want(2)?;
                let src = parse_reg(ops[0], line)?;
                let (imm, base) = parse_mem(ops[1], line)?;
                if mnemonic == "sw" {
                    Inst::Sw { base, src, imm }
                } else {
                    Inst::SwRemote { base, src, imm }
                }
            }
            "beq" => branch!(Beq),
            "bne" => branch!(Bne),
            "blt" => branch!(Blt),
            "bge" => branch!(Bge),
            "jmp" => {
                want(1)?;
                let target = push_target(parse_target(ops[0]), &mut fixups);
                Inst::Jmp { target }
            }
            "call" => {
                want(1)?;
                let target = push_target(parse_target(ops[0]), &mut fixups);
                Inst::Call { target }
            }
            "spawn" => {
                want(2)?;
                let target = push_target(parse_target(ops[0]), &mut fixups);
                Inst::Spawn {
                    target,
                    arg: parse_reg(ops[1], line)?,
                }
            }
            "ret" => {
                want(0)?;
                Inst::Ret
            }
            "halt" => {
                want(0)?;
                Inst::Halt
            }
            "yield" => {
                want(0)?;
                Inst::Yield
            }
            "nop" => {
                want(0)?;
                Inst::Nop
            }
            "chnew" => {
                want(1)?;
                Inst::ChNew {
                    rd: parse_reg(ops[0], line)?,
                }
            }
            "chsend" => {
                want(2)?;
                Inst::ChSend {
                    chan: parse_reg(ops[0], line)?,
                    src: parse_reg(ops[1], line)?,
                }
            }
            "chrecv" => {
                want(2)?;
                Inst::ChRecv {
                    rd: parse_reg(ops[0], line)?,
                    chan: parse_reg(ops[1], line)?,
                }
            }
            "amoadd" => {
                want(2)?;
                let rd = parse_reg(ops[0], line)?;
                let (imm, base) = parse_mem(ops[1], line)?;
                Inst::AmoAdd { rd, base, imm }
            }
            "syncwait" => {
                want(1)?;
                let (imm, base) = parse_mem(ops[0], line)?;
                Inst::SyncWait { base, imm }
            }
            "rfree" => {
                want(1)?;
                Inst::RFree {
                    reg: parse_reg(ops[0], line)?,
                }
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        insts.push(inst);
    }

    for (at, sym, line) in fixups {
        let pos = *symbols
            .get(&sym)
            .ok_or_else(|| err(line, format!("undefined label `{sym}`")))?;
        let ok = insts[at].set_target(pos);
        debug_assert!(ok);
    }

    let entry = symbols.get("main").copied().unwrap_or(0);
    Program::new(insts, symbols, entry).map_err(|e: ProgramError| AsmError {
        line: 0,
        message: e.to_string(),
    })
}

/// Disassembles a program back to source text that [`assemble`] accepts.
pub fn disassemble(p: &Program) -> String {
    p.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_all_operand_shapes() {
        let src = "
            main:
                li r0, 100
                addi r1, r0, -1
                add r2, r0, r1
                lw r3, 4(g0)
                sw r3, -4(g0)
                lwr r4, (r2)
                swr r4, 8(r2)
                amoadd r5, 1(r2)
                syncwait 2(r2)
                chnew r6
                chsend r6, r5
                chrecv r7, r6
                spawn worker, r7
                call main
                rfree r7
                yield
                ret
            worker:
                halt
        ";
        let p = assemble(src).unwrap();
        assert_eq!(p.len(), 18);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.symbol("worker"), Some(17));
    }

    #[test]
    fn roundtrips_through_disassembly() {
        let src = "
            main: li r0, 5
            top:  addi r0, r0, -1
                  li r1, 0
                  bne r0, r1, top
                  call fn1
                  halt
            fn1:  mv r0, g1
                  ret
        ";
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&disassemble(&p1)).unwrap();
        assert_eq!(p1.insts(), p2.insts());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"));

        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("lw r1, r2").unwrap_err();
        assert!(e.message.contains("imm(base)"));

        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; top comment\n  # another\n nop ; trailing\n\n halt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn large_li_expands() {
        let p = assemble("main: li r0, 0x200000\n halt").unwrap();
        assert!(p.len() > 2, "large constant expands to a sequence");
        // The expansion must synthesise the exact value.
        let mut acc: u32 = 0;
        for inst in p.insts() {
            match *inst {
                Inst::Li { imm, .. } => acc = imm as u32,
                Inst::Slli { imm, .. } => acc <<= imm as u32,
                Inst::Ori { imm, .. } => acc |= imm as u32,
                Inst::Halt => break,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(acc, 0x20_0000);
        // Labels after the expansion still resolve correctly.
        let p = assemble("main: li r0, 999999\n target: halt\n jmp target").unwrap();
        let t = p.symbol("target").unwrap();
        assert_eq!(p.insts()[t as usize], Inst::Halt);
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li r0, 0x1f\nli r1, -0x10\nhalt").unwrap();
        assert_eq!(
            p.insts()[0],
            Inst::Li {
                rd: Reg::R(0),
                imm: 31
            }
        );
        assert_eq!(
            p.insts()[1],
            Inst::Li {
                rd: Reg::R(1),
                imm: -16
            }
        );
    }
}
