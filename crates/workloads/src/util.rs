//! Shared construction helpers for the benchmark programs.

use nsf_compiler::{BinOp, Cond, FuncBuilder, Operand, VReg};
use nsf_isa::builder::ProgramBuilder;
use nsf_isa::{Inst, Reg};

/// Emits `for i in start..limit { body }` into an IR function and leaves
/// the builder positioned after the loop. The body closure receives the
/// induction variable.
pub fn counted_loop(
    b: &mut FuncBuilder,
    start: i32,
    limit: impl Into<Operand>,
    body: impl FnOnce(&mut FuncBuilder, VReg),
) {
    let limit = limit.into();
    let i = b.copy(start);
    let hdr = b.new_block();
    let bdy = b.new_block();
    let exit = b.new_block();
    b.jmp(hdr);
    b.switch_to(hdr);
    b.br(Cond::Lt, i, limit, bdy, exit);
    b.switch_to(bdy);
    body(b, i);
    b.bin_to(i, BinOp::Add, i, 1);
    b.jmp(hdr);
    b.switch_to(exit);
}

/// Assembly-level counted loop for the hand-written parallel benchmarks:
/// `for ctr in 0..limit { body }`. `ctr` and `limit_reg` must be distinct
/// registers the body does not clobber; `limit_reg` must already hold the
/// bound.
pub fn asm_loop(
    b: &mut ProgramBuilder,
    ctr: Reg,
    limit_reg: Reg,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    b.emit(Inst::Li { rd: ctr, imm: 0 });
    let hdr = b.new_label();
    let exit = b.new_label();
    b.bind(hdr);
    b.bge(ctr, limit_reg, exit);
    body(b);
    b.emit(Inst::Addi {
        rd: ctr,
        rs1: ctr,
        imm: 1,
    });
    b.jmp(hdr);
    b.bind(exit);
}

/// A deterministic 32-bit LCG matching the in-program generators
/// (`x' = x * 1664525 + 1013904223`).
pub fn lcg(x: u32) -> u32 {
    x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223)
}

/// Emits the same LCG step in assembly: `x = x * 1664525 + 1013904223`,
/// using `tmp` as scratch.
pub fn asm_lcg_step(b: &mut ProgramBuilder, x: Reg, tmp: Reg) {
    b.load_const(tmp, 1_664_525);
    b.emit(Inst::Mul {
        rd: x,
        rs1: x,
        rs2: tmp,
    });
    b.load_const(tmp, 1_013_904_223);
    b.emit(Inst::Add {
        rd: x,
        rs1: x,
        rs2: tmp,
    });
}

/// The `Label` re-export used by benchmark builders.
pub use nsf_isa::builder::Label as AsmLabel;

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_compiler::{compile, CompileOpts, Module};

    #[test]
    fn counted_loop_compiles() {
        let mut f = FuncBuilder::new("main", 0);
        let acc = f.copy(0);
        counted_loop(&mut f, 0, 10, |f, i| {
            f.bin_to(acc, BinOp::Add, acc, i);
        });
        f.ret(Some(acc.into()));
        let m = Module::default().with(f.finish());
        let p = compile(&m, "main", CompileOpts::default()).unwrap();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn lcg_is_deterministic() {
        assert_eq!(lcg(1), 1_015_568_748);
        assert_ne!(lcg(1), lcg(2));
    }
}
