//! DTW — dynamic time warping as a column-block pipeline.
//!
//! The paper's DTW benchmark (speech-template matching, 421 instructions
//! per context switch) computes the classic warping-distance DP:
//!
//! ```text
//! D[i][j] = |X[i-1] − Y[j-1]| + min(D[i-1][j], D[i][j-1], D[i-1][j-1])
//! ```
//!
//! Each thread owns a block of columns; for every row it must wait for
//! its left neighbour to pass the row boundary, compute its block of
//! cells, and hand a token to its right neighbour — a software pipeline
//! over message channels that context-switches once per row per thread.
//!
//! `D`, `X`, `Y` live in shared memory; the border row/column are staged
//! with a large "infinity" by `mem_init`. The final distance `D[N][M]`
//! is checked against a Rust reference.

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use crate::util::lcg;
use nsf_isa::{Inst, ProgramBuilder, Reg};

const BLOCKS: u32 = 4;
const INF: u32 = 0x3FFF_FFFF;

struct Params {
    n: u32,            // |X| (rows)
    cols_per_blk: u32, // M = BLOCKS * cols_per_blk
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params {
            n: 12,
            cols_per_blk: 4,
        },
        1 => Params {
            n: 64,
            cols_per_blk: 16,
        },
        s => Params {
            n: 64 * s,
            cols_per_blk: 16,
        },
    }
}

fn sequences(p: &Params) -> (Vec<u32>, Vec<u32>) {
    let m = BLOCKS * p.cols_per_blk;
    let mut x = 0xD7A0_0003u32;
    let xs = (0..p.n)
        .map(|_| {
            x = lcg(x);
            (x >> 9) % 64
        })
        .collect();
    let ys = (0..m)
        .map(|_| {
            x = lcg(x);
            (x >> 9) % 64
        })
        .collect();
    (xs, ys)
}

fn reference(p: &Params) -> u32 {
    let (xs, ys) = sequences(p);
    let n = xs.len();
    let m = ys.len();
    let stride = m + 1;
    let mut d = vec![INF; (n + 1) * stride];
    d[0] = 0;
    for i in 1..=n {
        for j in 1..=m {
            let c = xs[i - 1].abs_diff(ys[j - 1]);
            let best = d[(i - 1) * stride + j]
                .min(d[i * stride + j - 1])
                .min(d[(i - 1) * stride + j - 1]);
            d[i * stride + j] = c + best;
        }
    }
    d[n * stride + m]
}

/// Builds the DTW workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let m = (BLOCKS * p.cols_per_blk) as i32;
    let n = p.n as i32;
    let stride = m + 1;
    let d_base = DATA_BASE as i32;
    let x_base = d_base + (n + 1) * stride;
    let y_base = x_base + n;
    let chans_base = (RESULT_BASE + 16) as i32;
    let join_addr = (RESULT_BASE + 8) as i32;
    let r = Reg::R;

    let mut b = ProgramBuilder::new();
    let worker = b.new_label();

    // main: create the pipeline channels, spawn the blocks, wait, publish.
    b.export("main");
    b.load_const(r(0), BLOCKS as i32);
    b.load_const(r(1), join_addr);
    b.emit(Inst::Sw {
        base: r(1),
        src: r(0),
        imm: 0,
    });
    b.load_const(r(2), chans_base);
    for k in 0..=BLOCKS {
        b.emit(Inst::ChNew { rd: r(3) });
        b.emit(Inst::Sw {
            base: r(2),
            src: r(3),
            imm: k as i32,
        });
    }
    for k in 0..BLOCKS {
        b.load_const(r(4), k as i32);
        b.spawn(worker, r(4));
    }
    b.emit(Inst::SyncWait { base: r(1), imm: 0 });
    b.load_const(r(5), d_base + n * stride + m);
    b.emit(Inst::Lw {
        rd: r(6),
        base: r(5),
        imm: 0,
    });
    b.load_const(r(7), RESULT_BASE as i32);
    b.emit(Inst::Sw {
        base: r(7),
        src: r(6),
        imm: 0,
    });
    b.emit(Inst::Halt);

    // worker(k): pipeline stage over columns [1+k*CB, 1+(k+1)*CB).
    b.bind(worker);
    b.export("dtw_block");
    b.emit(Inst::Mv {
        rd: r(0),
        rs1: nsf_isa::RV,
    }); // k
    b.load_const(r(1), chans_base);
    b.emit(Inst::Add {
        rd: r(2),
        rs1: r(1),
        rs2: r(0),
    });
    b.emit(Inst::Lw {
        rd: r(3),
        base: r(2),
        imm: 0,
    }); // my channel
    b.emit(Inst::Lw {
        rd: r(4),
        base: r(2),
        imm: 1,
    }); // next channel
    b.load_const(r(5), p.cols_per_blk as i32);
    b.emit(Inst::Mul {
        rd: r(6),
        rs1: r(0),
        rs2: r(5),
    });
    b.emit(Inst::Addi {
        rd: r(6),
        rs1: r(6),
        imm: 1,
    }); // j_lo
    b.emit(Inst::Add {
        rd: r(7),
        rs1: r(6),
        rs2: r(5),
    }); // j_hi
    b.load_const(r(8), d_base);
    b.load_const(r(9), stride);
    b.load_const(r(10), x_base);
    b.load_const(r(11), y_base);
    b.emit(Inst::Li { rd: r(12), imm: 1 }); // i
    b.load_const(r(13), n + 1);
    let row_loop = b.new_label();
    let no_recv = b.new_label();
    let done = b.new_label();
    b.bind(row_loop);
    b.bge(r(12), r(13), done);
    // Block 0 reads the precomputed border column; others wait for the
    // left neighbour's row token.
    b.emit(Inst::Li { rd: r(14), imm: 0 });
    b.beq(r(0), r(14), no_recv);
    b.emit(Inst::ChRecv {
        rd: r(15),
        chan: r(3),
    });
    b.bind(no_recv);
    b.emit(Inst::Add {
        rd: r(16),
        rs1: r(10),
        rs2: r(12),
    });
    b.emit(Inst::Lw {
        rd: r(16),
        base: r(16),
        imm: -1,
    }); // xi
    b.emit(Inst::Mul {
        rd: r(17),
        rs1: r(12),
        rs2: r(9),
    });
    b.emit(Inst::Add {
        rd: r(17),
        rs1: r(17),
        rs2: r(8),
    }); // row base
    b.emit(Inst::Sub {
        rd: r(18),
        rs1: r(17),
        rs2: r(9),
    }); // prev row base
    b.emit(Inst::Mv {
        rd: r(19),
        rs1: r(6),
    }); // j
    let col_loop = b.new_label();
    let col_done = b.new_label();
    let abs_pos = b.new_label();
    let min_1 = b.new_label();
    let min_2 = b.new_label();
    b.bind(col_loop);
    b.bge(r(19), r(7), col_done);
    b.emit(Inst::Add {
        rd: r(20),
        rs1: r(11),
        rs2: r(19),
    });
    b.emit(Inst::Lw {
        rd: r(20),
        base: r(20),
        imm: -1,
    }); // yj
    b.emit(Inst::Sub {
        rd: r(21),
        rs1: r(16),
        rs2: r(20),
    }); // xi - yj
    b.emit(Inst::Li { rd: r(22), imm: 0 });
    b.bge(r(21), r(22), abs_pos);
    b.emit(Inst::Sub {
        rd: r(21),
        rs1: r(22),
        rs2: r(21),
    });
    b.bind(abs_pos);
    b.emit(Inst::Add {
        rd: r(23),
        rs1: r(18),
        rs2: r(19),
    });
    b.emit(Inst::Lw {
        rd: r(24),
        base: r(23),
        imm: 0,
    }); // up
    b.emit(Inst::Lw {
        rd: r(25),
        base: r(23),
        imm: -1,
    }); // diag
    b.emit(Inst::Add {
        rd: r(26),
        rs1: r(17),
        rs2: r(19),
    });
    b.emit(Inst::Lw {
        rd: r(27),
        base: r(26),
        imm: -1,
    }); // left
        // best = min(up, diag, left)
    b.emit(Inst::Mv {
        rd: r(28),
        rs1: r(24),
    });
    b.blt(r(28), r(25), min_1);
    b.emit(Inst::Mv {
        rd: r(28),
        rs1: r(25),
    });
    b.bind(min_1);
    b.blt(r(28), r(27), min_2);
    b.emit(Inst::Mv {
        rd: r(28),
        rs1: r(27),
    });
    b.bind(min_2);
    b.emit(Inst::Add {
        rd: r(29),
        rs1: r(28),
        rs2: r(21),
    });
    b.emit(Inst::Sw {
        base: r(26),
        src: r(29),
        imm: 0,
    });
    b.emit(Inst::Addi {
        rd: r(19),
        rs1: r(19),
        imm: 1,
    });
    b.jmp(col_loop);
    b.bind(col_done);
    // Pass the row token to the right neighbour (the last block's tokens
    // accumulate unread in the terminal channel).
    b.emit(Inst::ChSend {
        chan: r(4),
        src: r(12),
    });
    // End of the row activation: yield the processor, TAM-style, so the
    // pipeline actually interleaves (a sender never blocks otherwise).
    b.emit(Inst::Yield);
    b.emit(Inst::Addi {
        rd: r(12),
        rs1: r(12),
        imm: 1,
    });
    b.jmp(row_loop);
    b.bind(done);
    b.load_const(r(30), join_addr);
    b.emit(Inst::AmoAdd {
        rd: r(31),
        base: r(30),
        imm: -1,
    });
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("dtw builds");
    let (xs, ys) = sequences(&p);
    // Border row 0 and column 0 hold INF except D[0][0] = 0.
    let mut row0 = vec![INF; stride as usize];
    row0[0] = 0;
    let mut mem_init = vec![
        (d_base as u32, row0),
        (x_base as u32, xs),
        (y_base as u32, ys),
    ];
    for i in 1..=n {
        mem_init.push(((d_base + i * stride) as u32, vec![INF]));
    }
    let expected = reference(&p);
    Workload {
        name: "DTW",
        parallel: true,
        program,
        source_lines: include_str!("dtw.rs").lines().count(),
        mem_init,
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn warping_distance_matches_reference() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("dtw validates");
        assert_eq!(r.spawns, u64::from(BLOCKS));
        // Pipeline: a switch per row per block → hundreds of instrs.
        let ipcs = r.instrs_per_switch();
        assert!((20.0..2000.0).contains(&ipcs), "dtw grain {ipcs}");
    }

    #[test]
    fn reference_scales() {
        assert_ne!(reference(&params(0)), reference(&params(1)));
    }
}
