//! Workload packaging and execution.

use nsf_isa::Program;
use nsf_mem::{Addr, MemSystem, Word};
use nsf_sim::{LaneSet, Machine, RunReport, SimConfig, SimError};
use std::fmt;

/// A functional output check, run against simulated memory after the
/// program halts.
pub type Check = Box<dyn Fn(&MemSystem) -> Result<(), String> + Send + Sync>;

/// A packaged benchmark: program, input data, and an output validator.
pub struct Workload {
    /// Benchmark name as in the paper's Table 1.
    pub name: &'static str,
    /// `true` for the TAM-style parallel benchmarks.
    pub parallel: bool,
    /// The executable program.
    pub program: Program,
    /// Lines of generator source (our analogue of Table 1's
    /// "source code lines").
    pub source_lines: usize,
    /// `(address, words)` blocks staged into memory before the run.
    pub mem_init: Vec<(Addr, Vec<Word>)>,
    /// Output validator.
    pub check: Check,
}

/// The sweep runner in `nsf-bench` shares built workloads by reference
/// across worker threads, so a [`Workload`] must stay `Send + Sync`
/// (the [`Check`] closure is the only part that could regress — it is
/// explicitly bounded above). This assertion fails to compile if a
/// non-thread-safe field is ever added.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
};

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("parallel", &self.parallel)
            .field("static_instructions", &self.program.len())
            .finish_non_exhaustive()
    }
}

/// Failure of a workload run.
#[derive(Debug)]
pub enum WorkloadError {
    /// The simulator failed.
    Sim(SimError),
    /// The program ran but produced wrong output.
    CheckFailed {
        /// Which benchmark.
        name: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Sim(e) => write!(f, "simulation failed: {e}"),
            WorkloadError::CheckFailed { name, detail } => {
                write!(f, "{name} produced wrong output: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        WorkloadError::Sim(e)
    }
}

/// Runs `workload` under `cfg`, validates its output, and returns the
/// measurement report.
pub fn run(workload: &Workload, cfg: SimConfig) -> Result<RunReport, WorkloadError> {
    run_inner(workload, cfg, None)
}

/// Runs `workload` under `cfg` exactly as [`run`] does — same
/// validation, same report — while streaming the register-file
/// operation stream (and the program's data-cache traffic) into `sink`.
///
/// Recording is observational: the report is identical to an unrecorded
/// run's, so any engine under any workload can be captured without the
/// workload knowing (see the `nsf-trace` crate).
pub fn run_recorded(
    workload: &Workload,
    cfg: SimConfig,
    sink: nsf_core::SharedSink,
) -> Result<RunReport, WorkloadError> {
    run_inner(workload, cfg, Some(sink))
}

fn run_inner(
    workload: &Workload,
    cfg: SimConfig,
    sink: Option<nsf_core::SharedSink>,
) -> Result<RunReport, WorkloadError> {
    let mut machine = Machine::new(workload.program.clone(), cfg)?;
    if let Some(sink) = sink {
        machine.attach_sink(sink);
    }
    for (addr, words) in &workload.mem_init {
        machine.mem.poke_block(*addr, words);
    }
    let report = machine.run_and_keep()?;
    (workload.check)(&machine.mem).map_err(|detail| WorkloadError::CheckFailed {
        name: workload.name,
        detail,
    })?;
    Ok(report)
}

/// Runs `workload` under every configuration in `cfgs` and returns one
/// report per configuration, in order — bit-identical to what
/// [`run`] would return for each configuration separately.
///
/// When the (program, configurations) pair is lane-batchable
/// ([`nsf_sim::batchable`]: single-threaded stream, identical frontends)
/// the whole set executes as one shared-frontend [`LaneSet`] pass;
/// otherwise each configuration falls back to a serial [`run`]. Either
/// way **every** lane's output is validated against the workload's
/// check — statistics are never reported from an unvalidated run.
pub fn run_lanes(workload: &Workload, cfgs: &[SimConfig]) -> Result<Vec<RunReport>, WorkloadError> {
    if !nsf_sim::batchable(&workload.program, cfgs) {
        return cfgs.iter().map(|&cfg| run(workload, cfg)).collect();
    }
    let mut lanes = LaneSet::new(workload.program.clone(), cfgs)?;
    for (addr, words) in &workload.mem_init {
        lanes.poke_block(*addr, words);
    }
    let reports = lanes.run_and_keep()?;
    for i in 0..lanes.lanes() {
        (workload.check)(lanes.lane_mem(i)).map_err(|detail| WorkloadError::CheckFailed {
            name: workload.name,
            detail: format!("lane {i}: {detail}"),
        })?;
    }
    Ok(reports)
}

/// Standard result-area base address used by all workloads.
pub const RESULT_BASE: Addr = 0x0020_0000;

/// Standard input-data base address used by all workloads.
pub const DATA_BASE: Addr = 0x0010_0000;

/// Builds a checker that compares `count` words at `addr` against
/// `expected`.
pub fn expect_words(addr: Addr, expected: Vec<Word>) -> Check {
    Box::new(move |mem: &MemSystem| {
        for (i, &want) in expected.iter().enumerate() {
            let got = mem.peek(addr + i as Addr);
            if got != want {
                return Err(format!(
                    "word {i} at {:#x}: expected {want}, got {got}",
                    addr + i as Addr
                ));
            }
        }
        Ok(())
    })
}
