//! # nsf-workloads — the paper's benchmark suite
//!
//! Table 1 of the paper lists three sequential benchmarks (cross-compiled
//! from Sparc assembly) and six parallel ones (translated from TAM
//! dataflow code). We rebuild all nine as *real programs* for our ISA —
//! scaled down in input size (DESIGN.md §2 documents the substitution)
//! but with genuine algorithmic content and functional output checks:
//!
//! | paper | type | ours |
//! |-------|------|------|
//! | GateSim | seq | event-free gate-level netlist simulator |
//! | RTLSim | seq | register-transfer machine interpreter |
//! | ZipFile | seq | LZ77-style compressor |
//! | AS | par | coarse-grain array sweeps (few long threads) |
//! | DTW | par | banded dynamic time warping pipeline |
//! | Gamteb | par | Monte-Carlo particle transport (very fine grain) |
//! | Paraffins | par | alkyl-radical counting DP |
//! | Quicksort | par | thread-per-partition quicksort |
//! | Wavefront | par | 2-D wavefront relaxation in row bands |
//!
//! Sequential benchmarks are written in `nsf-compiler` IR and register
//! allocated by graph coloring (8–10 live registers per 20-register
//! context, like the paper's Sparc compiler). Parallel benchmarks are
//! hand-written at ISA level in the TAM translator's style: thread locals
//! are folded into the 32-register context without lifetime reuse, giving
//! the paper's 18–22 active registers per context.
//!
//! Every [`Workload`] carries a `check` that validates the program's
//! output against a Rust reference implementation, so simulator and
//! register file bugs cannot hide behind plausible-looking statistics.

pub mod as_bench;
pub mod dtw;
pub mod gamteb;
pub mod gatesim;
pub mod harness;
pub mod paraffins;
pub mod quicksort;
pub mod rtlsim;
pub mod synth;
pub mod util;
pub mod wavefront;
pub mod zipfile;

pub use harness::{run, run_lanes, run_recorded, Workload, WorkloadError};

/// All nine paper benchmarks at the given scale (0 = test-sized,
/// 1 = evaluation-sized; larger values grow inputs further).
pub fn paper_suite(scale: u32) -> Vec<Workload> {
    vec![
        gatesim::build(scale),
        rtlsim::build(scale),
        zipfile::build(scale),
        as_bench::build(scale),
        dtw::build(scale),
        gamteb::build(scale),
        paraffins::build(scale),
        quicksort::build(scale),
        wavefront::build(scale),
    ]
}

/// The three sequential benchmarks.
pub fn sequential_suite(scale: u32) -> Vec<Workload> {
    vec![
        gatesim::build(scale),
        rtlsim::build(scale),
        zipfile::build(scale),
    ]
}

/// The six parallel benchmarks.
pub fn parallel_suite(scale: u32) -> Vec<Workload> {
    vec![
        as_bench::build(scale),
        dtw::build(scale),
        gamteb::build(scale),
        paraffins::build(scale),
        quicksort::build(scale),
        wavefront::build(scale),
    ]
}
