//! Gamteb — Monte-Carlo particle transport (very fine grain).
//!
//! The paper's Gamteb (photon transport through a carbon cylinder) is the
//! finest-grain benchmark: 16 instructions per context switch. Ours
//! spawns one thread per particle; each bounce steps a private LCG,
//! scores a tally cell atomically, and fetches the cell's absorption
//! probability with a **remote load** — which blocks the thread and
//! forces a context switch every couple dozen instructions, exactly the
//! regime the Named-State Register File is built for.
//!
//! Trajectories depend only on the thread-private LCG, so the tally is
//! deterministic regardless of interleaving, and the Rust reference
//! replays every particle exactly.

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use crate::util::lcg;
use nsf_isa::{Inst, ProgramBuilder, Reg};

const CELLS: u32 = 16;
const MAX_BOUNCES: u32 = 24;

struct Params {
    particles: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params { particles: 8 },
        1 => Params { particles: 96 },
        s => Params { particles: 96 * s },
    }
}

fn seeds(p: &Params) -> Vec<u32> {
    let mut x = 0x6A3B_0007u32;
    (0..p.particles)
        .map(|_| {
            x = lcg(x);
            x | 1
        })
        .collect()
}

/// Absorption probability (percent) per cell.
fn xsec() -> Vec<u32> {
    (0..CELLS).map(|c| 5 + (c * 7) % 23).collect()
}

fn reference(p: &Params) -> u32 {
    let xs = xsec();
    let mut tally = vec![0u32; CELLS as usize];
    for seed in seeds(p) {
        let mut x = seed;
        for _ in 0..MAX_BOUNCES {
            x = lcg(x);
            let cell = ((x >> 5) % CELLS) as usize;
            tally[cell] += 1;
            let roll = (x >> 11) % 100;
            if roll < xs[cell] {
                break; // absorbed
            }
        }
    }
    let mut acc = 0u32;
    for t in tally {
        acc = acc.wrapping_mul(31).wrapping_add(t);
    }
    acc
}

/// Builds the Gamteb workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let tally_base = DATA_BASE as i32;
    let xsec_base = tally_base + CELLS as i32;
    let join_addr = (RESULT_BASE + 8) as i32;
    let r = Reg::R;

    let mut b = ProgramBuilder::new();
    let particle = b.new_label();

    // main: join = P, spawn particles with their seeds, wait, checksum.
    b.export("main");
    b.load_const(r(0), p.particles as i32);
    b.load_const(r(1), join_addr);
    b.emit(Inst::Sw {
        base: r(1),
        src: r(0),
        imm: 0,
    });
    for seed in seeds(&p) {
        b.load_const(r(2), seed as i32);
        b.spawn(particle, r(2));
    }
    b.emit(Inst::SyncWait { base: r(1), imm: 0 });
    b.load_const(r(3), tally_base);
    b.emit(Inst::Li { rd: r(4), imm: 0 }); // acc
    b.emit(Inst::Li { rd: r(5), imm: 0 }); // c
    b.load_const(r(6), CELLS as i32);
    b.emit(Inst::Li { rd: r(7), imm: 31 });
    let sum_hdr = b.new_label();
    let sum_end = b.new_label();
    b.bind(sum_hdr);
    b.bge(r(5), r(6), sum_end);
    b.emit(Inst::Add {
        rd: r(8),
        rs1: r(3),
        rs2: r(5),
    });
    b.emit(Inst::Lw {
        rd: r(9),
        base: r(8),
        imm: 0,
    });
    b.emit(Inst::Mul {
        rd: r(4),
        rs1: r(4),
        rs2: r(7),
    });
    b.emit(Inst::Add {
        rd: r(4),
        rs1: r(4),
        rs2: r(9),
    });
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    });
    b.jmp(sum_hdr);
    b.bind(sum_end);
    b.load_const(r(10), RESULT_BASE as i32);
    b.emit(Inst::Sw {
        base: r(10),
        src: r(4),
        imm: 0,
    });
    b.emit(Inst::Halt);

    // particle(seed): bounce until absorbed or MAX_BOUNCES.
    b.bind(particle);
    b.export("particle");
    b.emit(Inst::Mv {
        rd: r(0),
        rs1: nsf_isa::RV,
    }); // x = seed
    b.load_const(r(1), tally_base);
    b.load_const(r(2), xsec_base);
    b.load_const(r(3), CELLS as i32);
    b.emit(Inst::Li { rd: r(4), imm: 0 }); // bounce counter
    b.load_const(r(5), MAX_BOUNCES as i32);
    b.load_const(r(6), join_addr);
    b.load_const(r(7), 1_664_525); // LCG multiplier, lives all thread
    b.load_const(r(8), 1_013_904_223); // LCG increment
    b.emit(Inst::Li { rd: r(9), imm: 100 });
    let bounce = b.new_label();
    let absorbed = b.new_label();
    b.bind(bounce);
    b.bge(r(4), r(5), absorbed);
    b.emit(Inst::Mul {
        rd: r(0),
        rs1: r(0),
        rs2: r(7),
    });
    b.emit(Inst::Add {
        rd: r(0),
        rs1: r(0),
        rs2: r(8),
    });
    b.emit(Inst::Srli {
        rd: r(10),
        rs1: r(0),
        imm: 5,
    });
    b.emit(Inst::Rem {
        rd: r(11),
        rs1: r(10),
        rs2: r(3),
    }); // cell
    b.emit(Inst::Add {
        rd: r(12),
        rs1: r(1),
        rs2: r(11),
    });
    b.emit(Inst::AmoAdd {
        rd: r(13),
        base: r(12),
        imm: 1,
    }); // score
    b.emit(Inst::Add {
        rd: r(14),
        rs1: r(2),
        rs2: r(11),
    });
    // Cross-section lives on a remote node: round trip + switch.
    b.emit(Inst::LwRemote {
        rd: r(15),
        base: r(14),
        imm: 0,
    });
    b.emit(Inst::Srli {
        rd: r(16),
        rs1: r(0),
        imm: 11,
    });
    b.emit(Inst::Rem {
        rd: r(17),
        rs1: r(16),
        rs2: r(9),
    }); // roll
    b.blt(r(17), r(15), absorbed);
    b.emit(Inst::Addi {
        rd: r(4),
        rs1: r(4),
        imm: 1,
    });
    b.jmp(bounce);
    b.bind(absorbed);
    b.emit(Inst::AmoAdd {
        rd: r(18),
        base: r(6),
        imm: -1,
    });
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("gamteb builds");
    let expected = reference(&p);
    Workload {
        name: "Gamteb",
        parallel: true,
        program,
        source_lines: include_str!("gamteb.rs").lines().count(),
        mem_init: vec![(xsec_base as u32, xsec())],
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn tally_matches_reference() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("gamteb validates");
        assert_eq!(r.spawns, u64::from(params(0).particles));
        // Very fine grain: the remote load blocks every bounce.
        assert!(
            r.instrs_per_switch() < 64.0,
            "gamteb must switch constantly, got {}",
            r.instrs_per_switch()
        );
    }

    #[test]
    fn more_particles_change_checksum() {
        assert_ne!(reference(&params(0)), reference(&params(1)));
    }
}
