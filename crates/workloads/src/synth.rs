//! Synthetic workload generators for sweeps and ablations.
//!
//! Real benchmarks fix their call depth and register pressure; these
//! generators expose them as parameters, which the design-space benches
//! (and property tests) sweep:
//!
//! * [`sequential`] — a recursive call tree of configurable depth and
//!   fan-out, with a configurable number of live locals per activation;
//! * [`parallel`] — T threads of configurable run length between yields,
//!   each keeping a configurable number of registers active.

use crate::harness::{expect_words, Workload, RESULT_BASE};
use nsf_compiler::{compile, BinOp, CompileOpts, Cond, FuncBuilder, Module, Operand};
use nsf_isa::{Inst, ProgramBuilder, Reg};

/// Parameters of the [`sequential`] generator.
#[derive(Clone, Copy, Debug)]
pub struct SeqParams {
    /// Recursion depth (call-chain length).
    pub depth: u32,
    /// Recursive calls per activation.
    pub fanout: u32,
    /// Live locals per activation (register pressure).
    pub locals: u32,
}

impl Default for SeqParams {
    fn default() -> Self {
        SeqParams {
            depth: 8,
            fanout: 2,
            locals: 8,
        }
    }
}

/// Mirror of the generated recursive function, for the output check.
fn seq_reference(p: &SeqParams, d: u32, x: u32) -> u32 {
    // locals l_k = x + k, folded into acc.
    let mut acc = x;
    for k in 0..p.locals {
        acc = acc.wrapping_add(x.wrapping_add(k));
    }
    if d == 0 {
        return acc;
    }
    for _ in 0..p.fanout {
        acc = acc.wrapping_add(seq_reference(p, d - 1, acc & 0xFFFF));
    }
    acc
}

/// Builds a synthetic sequential workload: `rec(depth, seed)` where each
/// activation touches `locals` registers and recurses `fanout` times.
pub fn sequential(p: SeqParams) -> Workload {
    let rec = {
        let mut f = FuncBuilder::new("rec", 2);
        let d = f.param(0);
        let x = f.param(1);
        let acc = f.copy(x);
        // `locals` live values, all folded in (they overlap, forcing the
        // allocator to keep them simultaneously live).
        let vals: Vec<_> = (0..p.locals)
            .map(|k| f.bin(BinOp::Add, x, k as i32))
            .collect();
        for v in vals {
            f.bin_to(acc, BinOp::Add, acc, v);
        }
        let base = f.new_block();
        let recurse = f.new_block();
        f.br(Cond::Eq, d, 0, base, recurse);
        f.switch_to(base);
        f.ret(Some(acc.into()));
        f.switch_to(recurse);
        let dm1 = f.bin(BinOp::Sub, d, 1);
        for _ in 0..p.fanout {
            let arg = f.bin(BinOp::And, acc, 0xFFFF);
            let sub = f
                .call("rec", vec![Operand::Reg(dm1), Operand::Reg(arg)], true)
                .expect("ret");
            f.bin_to(acc, BinOp::Add, acc, sub);
        }
        f.ret(Some(acc.into()));
        f.finish()
    };

    let main = {
        let mut f = FuncBuilder::new("main", 0);
        let d = f.copy(p.depth as i32);
        let x = f.copy(1);
        let v = f
            .call("rec", vec![Operand::Reg(d), Operand::Reg(x)], true)
            .expect("ret");
        f.store(v, RESULT_BASE as i32, 0);
        f.ret(None);
        f.finish()
    };

    let module = Module::default().with(main).with(rec);
    let program = compile(&module, "main", CompileOpts::default()).expect("synth compiles");
    let expected = seq_reference(&p, p.depth, 1);
    Workload {
        name: "SynthSeq",
        parallel: false,
        program,
        source_lines: include_str!("synth.rs").lines().count(),
        mem_init: vec![],
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

/// Parameters of the [`parallel`] generator.
#[derive(Clone, Copy, Debug)]
pub struct ParParams {
    /// Concurrent threads.
    pub threads: u32,
    /// Loop iterations per thread.
    pub iters: u32,
    /// Instructions of straight-line work between yields (approximate).
    pub work: u32,
    /// Context registers each thread keeps live (2..=30).
    pub active_regs: u8,
}

impl Default for ParParams {
    fn default() -> Self {
        ParParams {
            threads: 8,
            iters: 32,
            work: 20,
            active_regs: 20,
        }
    }
}

/// Builds a synthetic parallel workload: each thread keeps
/// `active_regs` registers live and yields every ~`work` instructions.
pub fn parallel(p: ParParams) -> Workload {
    assert!((2..=30).contains(&p.active_regs), "active_regs in 2..=30");
    let join_addr = (RESULT_BASE + 8) as i32;
    let r = Reg::R;
    let mut b = ProgramBuilder::new();
    let worker = b.new_label();

    b.export("main");
    b.load_const(r(0), p.threads as i32);
    b.load_const(r(1), join_addr);
    b.emit(Inst::Sw {
        base: r(1),
        src: r(0),
        imm: 0,
    });
    for k in 0..p.threads {
        b.load_const(r(2), k as i32 + 1);
        b.spawn(worker, r(2));
    }
    b.emit(Inst::SyncWait { base: r(1), imm: 0 });
    // Publish a token so the check has something to verify.
    b.load_const(r(3), RESULT_BASE as i32);
    b.load_const(r(4), 0x600D);
    b.emit(Inst::Sw {
        base: r(3),
        src: r(4),
        imm: 0,
    });
    b.emit(Inst::Halt);

    b.bind(worker);
    b.export("worker");
    let live = p.active_regs;
    // Materialise `live` registers, all kept live across the loop.
    for i in 0..live {
        b.emit(Inst::Li {
            rd: r(i),
            imm: i32::from(i) + 1,
        });
    }
    let ctr = r(30);
    let limit = r(31);
    b.emit(Inst::Li { rd: ctr, imm: 0 });
    b.load_const(limit, p.iters as i32);
    let hdr = b.new_label();
    let end = b.new_label();
    b.bind(hdr);
    b.bge(ctr, limit, end);
    // ~`work` instructions touching all the live registers in a ring.
    let mut emitted = 0;
    while emitted < p.work {
        for i in 0..live {
            let j = (i + 1) % live;
            b.emit(Inst::Add {
                rd: r(i),
                rs1: r(i),
                rs2: r(j),
            });
            emitted += 1;
            if emitted >= p.work {
                break;
            }
        }
    }
    b.emit(Inst::Yield);
    b.emit(Inst::Addi {
        rd: ctr,
        rs1: ctr,
        imm: 1,
    });
    b.jmp(hdr);
    b.bind(end);
    b.load_const(r(29), join_addr);
    b.emit(Inst::AmoAdd {
        rd: r(28),
        base: r(29),
        imm: -1,
    });
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("synth parallel builds");
    Workload {
        name: "SynthPar",
        parallel: true,
        program,
        source_lines: include_str!("synth.rs").lines().count(),
        mem_init: vec![],
        check: expect_words(RESULT_BASE, vec![0x600D]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn sequential_depth_drives_call_chain() {
        let w = sequential(SeqParams {
            depth: 6,
            fanout: 1,
            locals: 6,
        });
        let r = run(&w, SimConfig::default()).expect("synth seq validates");
        assert!(r.calls >= 6);
    }

    #[test]
    fn parallel_yields_drive_switches() {
        let w = parallel(ParParams {
            threads: 4,
            iters: 8,
            work: 16,
            active_regs: 12,
        });
        let r = run(&w, SimConfig::default()).expect("synth par validates");
        assert!(r.thread_switches > 8, "yields must rotate threads");
    }

    #[test]
    #[should_panic(expected = "active_regs")]
    fn parallel_rejects_bad_pressure() {
        parallel(ParParams {
            active_regs: 31,
            ..Default::default()
        });
    }
}
