//! RTLSim — a register-transfer-level machine interpreter (sequential).
//!
//! The paper's second sequential benchmark (30 k source lines) was an RTL
//! simulator. Ours interprets a randomly generated micro-operation
//! program over a bank of RTL registers, for many cycles. The interpreter
//! is structured as nested procedures — `run_cycle` → `do_uop` →
//! `fetch`/`apply` — giving the call-per-operation rhythm of the original
//! (Table 1: ~63 instructions per context switch).
//!
//! Memory layout (from [`DATA_BASE`]):
//!
//! ```text
//! UOP_OP[NU]  micro-op kind (0=add 1=sub 2=and 3=xor 4=shl1 5=slt)
//! UOP_D[NU]   destination RTL register
//! UOP_A[NU]   first source RTL register
//! UOP_B[NU]   second source RTL register
//! REGS[NR]    the simulated machine's register bank
//! ```

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use crate::util::{counted_loop, lcg};
use nsf_compiler::{compile, BinOp, CompileOpts, Cond, FuncBuilder, Module, Operand};

struct Params {
    uops: u32,
    regs: u32,
    cycles: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params {
            uops: 16,
            regs: 8,
            cycles: 5,
        },
        1 => Params {
            uops: 64,
            regs: 16,
            cycles: 60,
        },
        n => Params {
            uops: 64,
            regs: 16,
            cycles: 60 * n,
        },
    }
}

fn machine_description(p: &Params) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut x = 0x5EED_1234u32;
    let mut op = Vec::new();
    let mut d = Vec::new();
    let mut a = Vec::new();
    let mut bb = Vec::new();
    for _ in 0..p.uops {
        x = lcg(x);
        op.push((x >> 11) % 6);
        x = lcg(x);
        d.push((x >> 9) % p.regs);
        x = lcg(x);
        a.push((x >> 13) % p.regs);
        x = lcg(x);
        bb.push((x >> 17) % p.regs);
    }
    (op, d, a, bb)
}

fn initial_regs(p: &Params) -> Vec<u32> {
    let mut x = 0x0DDB_A115u32;
    (0..p.regs)
        .map(|_| {
            x = lcg(x);
            x >> 8
        })
        .collect()
}

fn apply_uop(op: u32, a: u32, b: u32) -> u32 {
    match op {
        0 => a.wrapping_add(b),
        1 => a.wrapping_sub(b),
        2 => a & b,
        3 => a ^ b,
        4 => a << 1,
        _ => u32::from((a as i32) < (b as i32)),
    }
}

fn reference(p: &Params) -> u32 {
    let (op, d, a, b) = machine_description(p);
    let mut regs = initial_regs(p);
    for _ in 0..p.cycles {
        for u in 0..p.uops as usize {
            regs[d[u] as usize] = apply_uop(op[u], regs[a[u] as usize], regs[b[u] as usize]);
        }
    }
    let mut acc = 0u32;
    for r in regs {
        acc = acc.wrapping_mul(31).wrapping_add(r);
    }
    acc
}

/// Builds the RTLSim workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let nu = p.uops as i32;
    let nr = p.regs as i32;
    let base = DATA_BASE as i32;
    let op_base = base;
    let d_base = base + nu;
    let a_base = base + 2 * nu;
    let b_base = base + 3 * nu;
    let regs_base = base + 4 * nu;

    // fn read_port(addr) -> mem[addr]: the lowest access layer.
    let read_port = {
        let mut f = FuncBuilder::new("read_port", 1);
        let a = f.param(0);
        let v = f.load(a, 0);
        f.ret(Some(v.into()));
        f.finish()
    };

    // fn fetch(r) -> REGS[r], via the port-read layer (the deep call
    // chain is what exercises frame-based register files).
    let fetch = {
        let mut f = FuncBuilder::new("fetch", 1);
        let r = f.param(0);
        let addr = f.bin(BinOp::Add, r, regs_base);
        let v = f
            .call("read_port", vec![Operand::Reg(addr)], true)
            .expect("ret");
        f.ret(Some(v.into()));
        f.finish()
    };

    // fn apply(op, a, b) -> result
    let apply = {
        let mut f = FuncBuilder::new("apply", 3);
        let op = f.param(0);
        let a = f.param(1);
        let b = f.param(2);
        let r = f.vreg();
        let cases: Vec<_> = (0..6).map(|_| f.new_block()).collect();
        let done = f.new_block();
        let next: Vec<_> = (0..5).map(|_| f.new_block()).collect();
        for k in 0..5 {
            f.br(Cond::Eq, op, k as i32, cases[k], next[k]);
            f.switch_to(next[k]);
        }
        f.jmp(cases[5]);
        for (k, blk) in cases.iter().enumerate() {
            f.switch_to(*blk);
            match k {
                0 => f.bin_to(r, BinOp::Add, a, b),
                1 => f.bin_to(r, BinOp::Sub, a, b),
                2 => f.bin_to(r, BinOp::And, a, b),
                3 => f.bin_to(r, BinOp::Xor, a, b),
                4 => f.bin_to(r, BinOp::Sll, a, 1),
                _ => f.bin_to(r, BinOp::Slt, a, b),
            }
            f.jmp(done);
        }
        f.switch_to(done);
        f.ret(Some(r.into()));
        f.finish()
    };

    // fn do_uop(u): decode, fetch operands, apply, write back.
    let do_uop = {
        let mut f = FuncBuilder::new("do_uop", 1);
        let u = f.param(0);
        let opa = f.bin(BinOp::Add, u, op_base);
        let op = f.load(opa, 0);
        let aa = f.bin(BinOp::Add, u, a_base);
        let ar = f.load(aa, 0);
        let ba = f.bin(BinOp::Add, u, b_base);
        let br = f.load(ba, 0);
        let av = f.call("fetch", vec![Operand::Reg(ar)], true).expect("ret");
        let bv = f.call("fetch", vec![Operand::Reg(br)], true).expect("ret");
        let res = f
            .call(
                "apply",
                vec![Operand::Reg(op), Operand::Reg(av), Operand::Reg(bv)],
                true,
            )
            .expect("ret");
        let da = f.bin(BinOp::Add, u, d_base);
        let dr = f.load(da, 0);
        let dst = f.bin(BinOp::Add, dr, regs_base);
        f.store(res, dst, 0);
        f.ret(None);
        f.finish()
    };

    // fn run_cycle(): interpret the whole micro-program once.
    let run_cycle = {
        let mut f = FuncBuilder::new("run_cycle", 0);
        counted_loop(&mut f, 0, nu, |f, u| {
            f.call("do_uop", vec![Operand::Reg(u)], false);
        });
        f.ret(None);
        f.finish()
    };

    // fn main(): cycle loop then checksum.
    let main = {
        let mut f = FuncBuilder::new("main", 0);
        counted_loop(&mut f, 0, p.cycles as i32, |f, _t| {
            f.call("run_cycle", vec![], false);
        });
        let acc = f.copy(0);
        counted_loop(&mut f, 0, nr, |f, i| {
            let a = f.bin(BinOp::Add, i, regs_base);
            let v = f.load(a, 0);
            let scaled = f.bin(BinOp::Mul, acc, 31);
            f.bin_to(acc, BinOp::Add, scaled, v);
        });
        f.store(acc, RESULT_BASE as i32, 0);
        f.ret(None);
        f.finish()
    };

    let module = Module::default()
        .with(main)
        .with(run_cycle)
        .with(do_uop)
        .with(apply)
        .with(fetch)
        .with(read_port);
    let program = compile(&module, "main", CompileOpts::default()).expect("rtlsim compiles");

    let (op, d, a, b) = machine_description(&p);
    let expected = reference(&p);
    Workload {
        name: "RTLSim",
        parallel: false,
        program,
        source_lines: include_str!("rtlsim.rs").lines().count(),
        mem_init: vec![
            (DATA_BASE, op),
            (DATA_BASE + p.uops, d),
            (DATA_BASE + 2 * p.uops, a),
            (DATA_BASE + 3 * p.uops, b),
            (regs_base as u32, initial_regs(&p)),
        ],
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn produces_reference_checksum() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("rtlsim validates");
        // Call-heavy: 2 fetches + 1 apply + 1 do_uop per micro-op.
        assert!(r.calls as u32 >= 16 * 5 * 3);
    }

    #[test]
    fn deeper_scale_changes_checksum() {
        assert_ne!(reference(&params(0)), reference(&params(1)));
    }
}
