//! GateSim — a gate-level logic simulator (sequential).
//!
//! The paper's largest sequential benchmark (51 k source lines, 488 M
//! executed instructions) was a gate-level simulator. Ours evaluates a
//! randomly generated combinational netlist **demand-driven and
//! recursively**: `eval(idx)` recursively evaluates a gate's fan-in cone
//! with per-timestep memoisation, exactly like an event-free levelizing
//! simulator. The recursion produces the deep, data-dependent procedure
//! call chains whose register behaviour the paper's sequential evaluation
//! hinges on ("the NSF can hold the entire call chain of a large
//! sequential program"). Output checksums are validated against a Rust
//! reference simulation.
//!
//! Memory layout (word addressed, from [`DATA_BASE`]):
//!
//! ```text
//! OPS[NG]      gate kinds (0=and 1=or 2=xor 3=nand)
//! IN1[NG]      first input index (into the value array)
//! IN2[NG]      second input index
//! VALS[NI+NG]  primary inputs then gate outputs
//! DONE[NI+NG]  memo stamps (timestep+1 when computed)
//! INPUTS[T*NI] pregenerated input vectors
//! ```

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use crate::util::{counted_loop, lcg};
use nsf_compiler::{compile, BinOp, CompileOpts, Cond, FuncBuilder, Module, Operand};

struct Params {
    gates: u32,
    inputs: u32,
    steps: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params {
            gates: 24,
            inputs: 8,
            steps: 4,
        },
        1 => Params {
            gates: 120,
            inputs: 16,
            steps: 40,
        },
        n => Params {
            gates: 120 * n,
            inputs: 16,
            steps: 40 * n,
        },
    }
}

/// Deterministic netlist generation (shared by program and reference).
fn netlist(p: &Params) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut x = 0xC0FF_EE01u32;
    let mut ops = Vec::new();
    let mut in1 = Vec::new();
    let mut in2 = Vec::new();
    for g in 0..p.gates {
        x = lcg(x);
        // Roughly one gate in eight is a latch (state element); the rest
        // are combinational.
        ops.push(if (x >> 21).is_multiple_of(8) {
            4
        } else {
            (x >> 13) & 3
        });
        // Inputs come from primary inputs or earlier gates only; bias
        // toward recent gates so fan-in cones grow deep.
        let pool = p.inputs + g;
        x = lcg(x);
        let a = (x >> 7) % pool;
        x = lcg(x);
        let b = if g > 0 && !(x >> 3).is_multiple_of(4) {
            // usually the immediately preceding gate → long chains
            p.inputs + g - 1
        } else {
            (x >> 9) % pool
        };
        in1.push(a);
        in2.push(b);
    }
    (ops, in1, in2)
}

fn input_vectors(p: &Params) -> Vec<u32> {
    let mut x = 0xBEEF_CAFEu32;
    (0..p.steps * p.inputs)
        .map(|_| {
            x = lcg(x);
            (x >> 16) & 1
        })
        .collect()
}

fn gate_fn(op: u32, a: u32, b: u32) -> u32 {
    match op {
        0 => a & b,
        1 => a | b,
        2 => a ^ b,
        _ => (a & b) ^ 1,
    }
}

/// Reference simulation in Rust (full evaluation; combinational, so it
/// agrees with the program's demand-driven evaluation).
fn reference(p: &Params) -> u32 {
    let (ops, in1, in2) = netlist(p);
    let inputs = input_vectors(p);
    let mut vals = vec![0u32; (p.inputs + p.gates) as usize];
    let mut latch = vec![0u32; p.gates as usize];
    let mut acc = 0u32;
    for t in 0..p.steps {
        for i in 0..p.inputs {
            vals[i as usize] = inputs[(t * p.inputs + i) as usize];
        }
        for g in 0..p.gates {
            let a = vals[in1[g as usize] as usize];
            let b = vals[in2[g as usize] as usize];
            vals[(p.inputs + g) as usize] = if ops[g as usize] == 4 {
                latch[g as usize] // state element: last timestep's input
            } else {
                gate_fn(ops[g as usize], a, b)
            };
        }
        // Clock edge: every latch captures its (combinational) input.
        for g in 0..p.gates {
            if ops[g as usize] == 4 {
                latch[g as usize] = vals[in1[g as usize] as usize];
            }
        }
        let out = vals[(p.inputs + p.gates - 1) as usize];
        acc = acc.wrapping_mul(31).wrapping_add(out);
    }
    acc
}

/// Builds the GateSim workload at the given scale.
pub fn build(scale: u32) -> Workload {
    build_with_hints(scale, false)
}

/// Builds GateSim with or without explicit register-deallocation hints
/// (`rfree` after last use — the paper's §4.2 option; used by the
/// hint ablation).
pub fn build_with_hints(scale: u32, free_hints: bool) -> Workload {
    let p = params(scale);
    let ng = p.gates as i32;
    let ni = p.inputs as i32;
    let base = DATA_BASE as i32;
    let ops_base = base;
    let in1_base = base + ng;
    let in2_base = base + 2 * ng;
    let vals_base = base + 3 * ng;
    let done_base = vals_base + ni + ng;
    let lstate_base = done_base + ni + ng; // latch state, one slot per gate
    let inputs_base = lstate_base + ng;

    // fn eval(idx, stamp) -> value: demand-driven recursive evaluation.
    let eval = {
        let mut f = FuncBuilder::new("eval", 2);
        let idx = f.param(0);
        let stamp = f.param(1);
        let prim = f.new_block();
        let not_prim = f.new_block();
        let memo_hit = f.new_block();
        let compute = f.new_block();
        f.br(Cond::Lt, idx, ni, prim, not_prim);
        // Primary input: read directly.
        f.switch_to(prim);
        let a = f.bin(BinOp::Add, idx, vals_base);
        let v = f.load(a, 0);
        f.ret(Some(v.into()));
        // Memoised this timestep?
        f.switch_to(not_prim);
        let da = f.bin(BinOp::Add, idx, done_base);
        let done = f.load(da, 0);
        f.br(Cond::Eq, done, stamp, memo_hit, compute);
        f.switch_to(memo_hit);
        let a = f.bin(BinOp::Add, idx, vals_base);
        let v = f.load(a, 0);
        f.ret(Some(v.into()));
        // Latches read their stored state; combinational gates recurse
        // into their fan-ins. Either way the result is memoised below.
        f.switch_to(compute);
        let g = f.bin(BinOp::Sub, idx, ni);
        let oa = f.bin(BinOp::Add, g, ops_base);
        let op = f.load(oa, 0);
        let r = f.vreg();
        let is_latch = f.new_block();
        let not_latch = f.new_block();
        let is_and = f.new_block();
        let not_and = f.new_block();
        let is_or = f.new_block();
        let not_or = f.new_block();
        let is_xor = f.new_block();
        let is_nand = f.new_block();
        let done_blk = f.new_block();
        f.br(Cond::Eq, op, 4, is_latch, not_latch);
        f.switch_to(is_latch);
        let la = f.bin(BinOp::Add, g, lstate_base);
        let lv = f.load(la, 0);
        f.copy_to(r, lv);
        f.jmp(done_blk);
        f.switch_to(not_latch);
        let ia = f.bin(BinOp::Add, g, in1_base);
        let src_a = f.load(ia, 0);
        let ib = f.bin(BinOp::Add, g, in2_base);
        let src_b = f.load(ib, 0);
        let av = f
            .call("eval", vec![Operand::Reg(src_a), Operand::Reg(stamp)], true)
            .expect("ret");
        let bv = f
            .call("eval", vec![Operand::Reg(src_b), Operand::Reg(stamp)], true)
            .expect("ret");
        f.br(Cond::Eq, op, 0, is_and, not_and);
        f.switch_to(is_and);
        f.bin_to(r, BinOp::And, av, bv);
        f.jmp(done_blk);
        f.switch_to(not_and);
        f.br(Cond::Eq, op, 1, is_or, not_or);
        f.switch_to(is_or);
        f.bin_to(r, BinOp::Or, av, bv);
        f.jmp(done_blk);
        f.switch_to(not_or);
        f.br(Cond::Eq, op, 2, is_xor, is_nand);
        f.switch_to(is_xor);
        f.bin_to(r, BinOp::Xor, av, bv);
        f.jmp(done_blk);
        f.switch_to(is_nand);
        let nand = f.bin(BinOp::And, av, bv);
        f.bin_to(r, BinOp::Xor, nand, 1);
        f.jmp(done_blk);
        f.switch_to(done_blk);
        let va = f.bin(BinOp::Add, idx, vals_base);
        f.store(r, va, 0);
        let da2 = f.bin(BinOp::Add, idx, done_base);
        f.store(stamp, da2, 0);
        f.ret(Some(r.into()));
        f.finish()
    };

    // fn update_latches(stamp): the clock edge, in two phases. Phase 1
    // evaluates (and memoises) every latch's input under this timestep's
    // stamp while all latch state is still old; phase 2 re-reads the
    // memoised values and commits them. A single pass would let an early
    // latch's new state leak into a later latch's input cone.
    let update_latches = {
        let mut f = FuncBuilder::new("update_latches", 1);
        let stamp = f.param(0);
        for phase in 0..2 {
            counted_loop(&mut f, 0, ng, |f, g| {
                let oa = f.bin(BinOp::Add, g, ops_base);
                let op = f.load(oa, 0);
                let capture = f.new_block();
                let next = f.new_block();
                f.br(Cond::Eq, op, 4, capture, next);
                f.switch_to(capture);
                let ia = f.bin(BinOp::Add, g, in1_base);
                let src = f.load(ia, 0);
                let v = f
                    .call("eval", vec![Operand::Reg(src), Operand::Reg(stamp)], true)
                    .expect("ret");
                if phase == 1 {
                    // Phase-2 eval is a memo hit; commit the captured value.
                    let la = f.bin(BinOp::Add, g, lstate_base);
                    f.store(v, la, 0);
                }
                f.jmp(next);
                f.switch_to(next);
            });
        }
        f.ret(None);
        f.finish()
    };

    // fn load_inputs(t): copies the t-th input vector into VALS[0..NI).
    let load_inputs = {
        let mut f = FuncBuilder::new("load_inputs", 1);
        let t = f.param(0);
        let row = f.bin(BinOp::Mul, t, ni);
        let src = f.bin(BinOp::Add, row, inputs_base);
        counted_loop(&mut f, 0, ni, |f, i| {
            let s = f.bin(BinOp::Add, src, i);
            let v = f.load(s, 0);
            let d = f.bin(BinOp::Add, i, vals_base);
            f.store(v, d, 0);
        });
        f.ret(None);
        f.finish()
    };

    // fn main(): timestep loop with checksum accumulation.
    let main = {
        let mut f = FuncBuilder::new("main", 0);
        let acc = f.copy(0);
        counted_loop(&mut f, 0, p.steps as i32, |f, t| {
            f.call("load_inputs", vec![Operand::Reg(t)], false);
            let stamp = f.bin(BinOp::Add, t, 1);
            let root = f.copy(ni + ng - 1);
            let out = f
                .call("eval", vec![Operand::Reg(root), Operand::Reg(stamp)], true)
                .expect("ret");
            let scaled = f.bin(BinOp::Mul, acc, 31);
            f.bin_to(acc, BinOp::Add, scaled, out);
            f.call("update_latches", vec![Operand::Reg(stamp)], false);
        });
        f.store(acc, RESULT_BASE as i32, 0);
        f.ret(None);
        f.finish()
    };

    let module = Module::default()
        .with(main)
        .with(load_inputs)
        .with(update_latches)
        .with(eval);
    let opts = CompileOpts {
        free_hints,
        ..Default::default()
    };
    let program = compile(&module, "main", opts).expect("gatesim compiles");

    let (ops, in1, in2) = netlist(&p);
    let expected = reference(&p);
    Workload {
        name: "GateSim",
        parallel: false,
        program,
        source_lines: include_str!("gatesim.rs").lines().count(),
        mem_init: vec![
            (DATA_BASE, ops),
            (DATA_BASE + p.gates, in1),
            (DATA_BASE + 2 * p.gates, in2),
            (inputs_base as u32, input_vectors(&p)),
        ],
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn produces_reference_checksum_on_nsf() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("gatesim validates");
        assert!(r.instructions > 1000);
        assert!(r.calls > 20, "recursive gate evaluation calls");
        // Sequential programs average roughly tens of instructions per
        // context switch (Table 1's GateSim: 39).
        let ipcs = r.instrs_per_switch();
        assert!((5.0..200.0).contains(&ipcs), "instrs/switch {ipcs}");
    }

    #[test]
    fn reference_is_input_sensitive() {
        assert_ne!(reference(&params(0)), reference(&params(1)));
    }
}
