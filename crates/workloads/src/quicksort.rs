//! Quicksort — thread-per-partition sorting (fine grain).
//!
//! The paper's parallel Quicksort switches every ~20 instructions: TAM
//! spawns an activation per partition step. Ours does the same: each
//! task thread partitions its range (Lomuto), spawns a child task for the
//! left half and iterates on the right, yielding at activation
//! boundaries; small ranges finish with insertion sort. Task descriptors
//! are bump-allocated from a shared arena with `amoadd`; an open-task
//! counter provides the join.
//!
//! The check compares the whole array against Rust's sort — any lost or
//! duplicated element, racy descriptor, or broken partition shows up.

use crate::harness::{Workload, DATA_BASE, RESULT_BASE};
use crate::util::lcg;
use nsf_isa::{Inst, ProgramBuilder, Reg};
use nsf_mem::MemSystem;

const CUTOFF: i32 = 8;

struct Params {
    n: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params { n: 128 },
        1 => Params { n: 2048 },
        s => Params { n: 2048 * s },
    }
}

fn initial_array(p: &Params) -> Vec<u32> {
    let mut x = 0x50FA_0001u32;
    (0..p.n)
        .map(|_| {
            x = lcg(x);
            x >> 4
        })
        .collect()
}

/// Builds the Quicksort workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let a_base = DATA_BASE as i32;
    let open_addr = (RESULT_BASE + 8) as i32;
    let arena_ptr = (RESULT_BASE + 9) as i32;
    let arena_base = (RESULT_BASE + 16) as i32;
    let r = Reg::R;

    let mut b = ProgramBuilder::new();
    let task = b.new_label();

    // main: seed the root task descriptor and wait for quiescence.
    b.export("main");
    b.load_const(r(0), arena_base);
    b.emit(Inst::Li { rd: r(1), imm: 0 });
    b.emit(Inst::Sw {
        base: r(0),
        src: r(1),
        imm: 0,
    }); // lo = 0
    b.load_const(r(2), p.n as i32);
    b.emit(Inst::Sw {
        base: r(0),
        src: r(2),
        imm: 1,
    }); // hi = n
    b.spawn(task, r(0));
    b.load_const(r(3), open_addr);
    b.emit(Inst::SyncWait { base: r(3), imm: 0 });
    b.emit(Inst::Halt);

    // task(desc): partition loop with child spawns.
    b.bind(task);
    b.export("qsort_task");
    b.emit(Inst::Mv {
        rd: r(0),
        rs1: nsf_isa::RV,
    }); // desc
    b.emit(Inst::Lw {
        rd: r(1),
        base: r(0),
        imm: 0,
    }); // lo
    b.emit(Inst::Lw {
        rd: r(2),
        base: r(0),
        imm: 1,
    }); // hi
    b.load_const(r(3), a_base);
    b.load_const(r(4), CUTOFF);
    b.load_const(r(5), open_addr);
    b.load_const(r(6), arena_ptr);
    let part_loop = b.new_label();
    let small = b.new_label();
    b.bind(part_loop);
    b.emit(Inst::Sub {
        rd: r(7),
        rs1: r(2),
        rs2: r(1),
    });
    b.blt(r(7), r(4), small);
    // Lomuto partition, pivot = A[hi-1].
    b.emit(Inst::Add {
        rd: r(8),
        rs1: r(3),
        rs2: r(2),
    });
    b.emit(Inst::Lw {
        rd: r(9),
        base: r(8),
        imm: -1,
    }); // pivot
    b.emit(Inst::Mv {
        rd: r(10),
        rs1: r(1),
    }); // i
    b.emit(Inst::Mv {
        rd: r(11),
        rs1: r(1),
    }); // j
    b.emit(Inst::Addi {
        rd: r(12),
        rs1: r(2),
        imm: -1,
    }); // hi-1
    let scan = b.new_label();
    let scan_done = b.new_label();
    let no_swap = b.new_label();
    b.bind(scan);
    b.bge(r(11), r(12), scan_done);
    b.emit(Inst::Add {
        rd: r(13),
        rs1: r(3),
        rs2: r(11),
    });
    b.emit(Inst::Lw {
        rd: r(14),
        base: r(13),
        imm: 0,
    });
    b.bge(r(14), r(9), no_swap);
    b.emit(Inst::Add {
        rd: r(15),
        rs1: r(3),
        rs2: r(10),
    });
    b.emit(Inst::Lw {
        rd: r(16),
        base: r(15),
        imm: 0,
    });
    b.emit(Inst::Sw {
        base: r(15),
        src: r(14),
        imm: 0,
    });
    b.emit(Inst::Sw {
        base: r(13),
        src: r(16),
        imm: 0,
    });
    b.emit(Inst::Addi {
        rd: r(10),
        rs1: r(10),
        imm: 1,
    });
    b.bind(no_swap);
    b.emit(Inst::Addi {
        rd: r(11),
        rs1: r(11),
        imm: 1,
    });
    b.jmp(scan);
    b.bind(scan_done);
    // Swap pivot into place: A[i] <-> A[hi-1].
    b.emit(Inst::Add {
        rd: r(17),
        rs1: r(3),
        rs2: r(10),
    });
    b.emit(Inst::Lw {
        rd: r(18),
        base: r(17),
        imm: 0,
    });
    b.emit(Inst::Lw {
        rd: r(19),
        base: r(8),
        imm: -1,
    });
    b.emit(Inst::Sw {
        base: r(17),
        src: r(19),
        imm: 0,
    });
    b.emit(Inst::Sw {
        base: r(8),
        src: r(18),
        imm: -1,
    });
    // Spawn the left half [lo, i) as a child task.
    b.emit(Inst::AmoAdd {
        rd: r(20),
        base: r(5),
        imm: 1,
    }); // open++
    b.emit(Inst::AmoAdd {
        rd: r(21),
        base: r(6),
        imm: 2,
    }); // bump arena
    b.emit(Inst::Sw {
        base: r(21),
        src: r(1),
        imm: 0,
    });
    b.emit(Inst::Sw {
        base: r(21),
        src: r(10),
        imm: 1,
    });
    b.spawn(task, r(21));
    // Iterate on the right half [i+1, hi); yield at the activation
    // boundary like a TAM thread split.
    b.emit(Inst::Addi {
        rd: r(1),
        rs1: r(10),
        imm: 1,
    });
    b.emit(Inst::Yield);
    b.jmp(part_loop);
    // Insertion sort for [lo, hi).
    b.bind(small);
    b.emit(Inst::Addi {
        rd: r(22),
        rs1: r(1),
        imm: 1,
    }); // i
    let ins_outer = b.new_label();
    let ins_inner = b.new_label();
    let ins_place = b.new_label();
    let ins_done = b.new_label();
    b.bind(ins_outer);
    b.bge(r(22), r(2), ins_done);
    b.emit(Inst::Add {
        rd: r(23),
        rs1: r(3),
        rs2: r(22),
    });
    b.emit(Inst::Lw {
        rd: r(24),
        base: r(23),
        imm: 0,
    }); // key
    b.emit(Inst::Mv {
        rd: r(25),
        rs1: r(22),
    }); // j
    b.bind(ins_inner);
    b.bge(r(1), r(25), ins_place); // j <= lo
    b.emit(Inst::Add {
        rd: r(26),
        rs1: r(3),
        rs2: r(25),
    });
    b.emit(Inst::Lw {
        rd: r(27),
        base: r(26),
        imm: -1,
    });
    b.bge(r(24), r(27), ins_place); // A[j-1] <= key
    b.emit(Inst::Sw {
        base: r(26),
        src: r(27),
        imm: 0,
    });
    b.emit(Inst::Addi {
        rd: r(25),
        rs1: r(25),
        imm: -1,
    });
    b.jmp(ins_inner);
    b.bind(ins_place);
    b.emit(Inst::Add {
        rd: r(28),
        rs1: r(3),
        rs2: r(25),
    });
    b.emit(Inst::Sw {
        base: r(28),
        src: r(24),
        imm: 0,
    });
    b.emit(Inst::Addi {
        rd: r(22),
        rs1: r(22),
        imm: 1,
    });
    // Each inserted element is its own TAM activation: yield.
    b.emit(Inst::Yield);
    b.jmp(ins_outer);
    b.bind(ins_done);
    b.emit(Inst::AmoAdd {
        rd: r(29),
        base: r(5),
        imm: -1,
    }); // open--
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("quicksort builds");
    let input = initial_array(&p);
    let mut expected = input.clone();
    expected.sort_unstable();
    let n = p.n;
    Workload {
        name: "Quicksort",
        parallel: true,
        program,
        source_lines: include_str!("quicksort.rs").lines().count(),
        mem_init: vec![
            (DATA_BASE, input),
            (open_addr as u32, vec![1]), // the root task is open
            (arena_ptr as u32, vec![arena_base as u32 + 2]),
        ],
        check: Box::new(move |mem: &MemSystem| {
            for (i, &want) in expected.iter().enumerate() {
                let got = mem.peek(DATA_BASE + i as u32);
                if got != want {
                    return Err(format!("A[{i}] of {n}: expected {want}, got {got}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn sorts_correctly() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("quicksort validates");
        assert!(r.spawns >= 2, "parallel recursion must spawn tasks");
        assert!(
            r.instrs_per_switch() < 500.0,
            "quicksort is fine-grained, got {}",
            r.instrs_per_switch()
        );
    }

    #[test]
    fn input_is_unsorted() {
        let a = initial_array(&params(0));
        assert!(a.windows(2).any(|w| w[0] > w[1]));
    }
}
