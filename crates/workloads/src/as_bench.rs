//! AS — coarse-grain parallel array sweeps.
//!
//! Table 1's `AS` is the coarsest parallel benchmark (18,940 instructions
//! per context switch): a handful of long-running threads that almost
//! never synchronise. Ours spawns K worker threads, each transforming and
//! reducing a disjoint slice of a large array (`A[i] = A[i]*3 + i`,
//! accumulating the sum), then folding the partial sums into a global
//! accumulator and a join counter. Threads block only at the very end, so
//! the processor switches contexts rarely — the behaviour the paper's
//! segmented register file is happiest with.
//!
//! Memory: `A[N]` at [`DATA_BASE`]; the global sum, join counter and
//! result live in the result area. Read-modify-write on the shared sum is
//! safe without an atomic because block multithreading only switches
//! threads at blocking instructions.

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use crate::util::lcg;
use nsf_isa::{Inst, ProgramBuilder, Reg};

const THREADS: u32 = 4;

struct Params {
    n: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params { n: 256 },
        1 => Params { n: 8192 },
        s => Params { n: 8192 * s },
    }
}

fn initial_array(p: &Params) -> Vec<u32> {
    let mut x = 0xA5A5_0001u32;
    (0..p.n)
        .map(|_| {
            x = lcg(x);
            x >> 12
        })
        .collect()
}

fn reference(p: &Params) -> u32 {
    let mut sum = 0u32;
    for (i, a) in initial_array(p).iter().enumerate() {
        sum = sum.wrapping_add(a.wrapping_mul(3).wrapping_add(i as u32));
    }
    sum
}

/// Builds the AS workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let chunk = (p.n / THREADS) as i32;
    let a_base = DATA_BASE as i32;
    let sum_addr = (RESULT_BASE + 8) as i32;
    let join_addr = (RESULT_BASE + 9) as i32;
    let r = Reg::R;

    let mut b = ProgramBuilder::new();
    let worker = b.new_label();

    // main: join = K, spawn workers, wait, publish the sum.
    b.export("main");
    b.load_const(r(0), THREADS as i32);
    b.load_const(r(1), join_addr);
    b.emit(Inst::Sw {
        base: r(1),
        src: r(0),
        imm: 0,
    });
    for k in 0..THREADS {
        b.load_const(r(2), k as i32);
        b.spawn(worker, r(2));
    }
    b.emit(Inst::SyncWait { base: r(1), imm: 0 });
    b.load_const(r(3), sum_addr);
    b.emit(Inst::Lw {
        rd: r(4),
        base: r(3),
        imm: 0,
    });
    b.load_const(r(5), RESULT_BASE as i32);
    b.emit(Inst::Sw {
        base: r(5),
        src: r(4),
        imm: 0,
    });
    b.emit(Inst::Halt);

    // worker(k): sweep slice [k*chunk, (k+1)*chunk).
    b.bind(worker);
    b.export("worker");
    b.emit(Inst::Mv {
        rd: r(0),
        rs1: nsf_isa::RV,
    }); // k
    b.load_const(r(1), chunk);
    b.emit(Inst::Mul {
        rd: r(2),
        rs1: r(0),
        rs2: r(1),
    }); // lo = running index
    b.emit(Inst::Add {
        rd: r(3),
        rs1: r(2),
        rs2: r(1),
    }); // hi
    b.load_const(r(4), a_base);
    b.emit(Inst::Add {
        rd: r(5),
        rs1: r(4),
        rs2: r(2),
    }); // ptr
    b.emit(Inst::Add {
        rd: r(6),
        rs1: r(4),
        rs2: r(3),
    }); // end
    b.emit(Inst::Li { rd: r(7), imm: 0 }); // partial sum
    b.emit(Inst::Li { rd: r(8), imm: 3 }); // multiplier, live whole thread
    let loop_hdr = b.new_label();
    let loop_end = b.new_label();
    b.bind(loop_hdr);
    b.bge(r(5), r(6), loop_end);
    b.emit(Inst::Lw {
        rd: r(10),
        base: r(5),
        imm: 0,
    });
    b.emit(Inst::Mul {
        rd: r(11),
        rs1: r(10),
        rs2: r(8),
    });
    b.emit(Inst::Add {
        rd: r(12),
        rs1: r(11),
        rs2: r(2),
    }); // + index
    b.emit(Inst::Sw {
        base: r(5),
        src: r(12),
        imm: 0,
    });
    b.emit(Inst::Add {
        rd: r(7),
        rs1: r(7),
        rs2: r(12),
    });
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    });
    b.emit(Inst::Addi {
        rd: r(2),
        rs1: r(2),
        imm: 1,
    });
    // Scheduling quantum: rotate threads every 256 elements, so the
    // resident-thread set actually cycles like on the paper's machine.
    let no_yield = b.new_label();
    b.emit(Inst::Andi {
        rd: r(9),
        rs1: r(2),
        imm: 255,
    });
    b.emit(Inst::Li { rd: r(18), imm: 0 });
    b.bne(r(9), r(18), no_yield);
    b.emit(Inst::Yield);
    b.bind(no_yield);
    b.jmp(loop_hdr);
    b.bind(loop_end);
    // Fold into the shared sum (non-blocking RMW is atomic under block
    // multithreading), then join.
    b.load_const(r(13), sum_addr);
    b.emit(Inst::Lw {
        rd: r(14),
        base: r(13),
        imm: 0,
    });
    b.emit(Inst::Add {
        rd: r(15),
        rs1: r(14),
        rs2: r(7),
    });
    b.emit(Inst::Sw {
        base: r(13),
        src: r(15),
        imm: 0,
    });
    b.load_const(r(16), join_addr);
    b.emit(Inst::AmoAdd {
        rd: r(17),
        base: r(16),
        imm: -1,
    });
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("as_bench builds");
    let expected = reference(&p);
    Workload {
        name: "AS",
        parallel: true,
        program,
        source_lines: include_str!("as_bench.rs").lines().count(),
        mem_init: vec![(DATA_BASE, initial_array(&p))],
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn computes_reference_sum() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("as validates");
        assert_eq!(r.spawns, u64::from(THREADS));
        // Coarse grain: long uninterrupted runs between switches.
        assert!(
            r.instrs_per_switch() > 100.0,
            "AS must be coarse-grained, got {}",
            r.instrs_per_switch()
        );
    }
}
