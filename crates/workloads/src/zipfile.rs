//! ZipFile — an LZ77-style file compressor (sequential).
//!
//! The paper's third sequential benchmark compressed files. Ours runs a
//! greedy LZ77 over a synthetic, repetitive "text": at each position it
//! calls `find_match` (which calls `match_len` per window candidate) and
//! either emits a `(distance, length)` token or a literal via `emit`.
//! The output token stream's checksum and length are validated against a
//! Rust reference running the identical algorithm.
//!
//! Memory layout (from [`DATA_BASE`]):
//!
//! ```text
//! IN[N]    input bytes (one per word)
//! OUT[..]  emitted tokens
//! OUTPOS   output cursor (one word, at a fixed address)
//! ```

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use crate::util::{counted_loop, lcg};
use nsf_compiler::{compile, BinOp, CompileOpts, Cond, FuncBuilder, Module, Operand};

const WINDOW: i32 = 32;
const MIN_MATCH: u32 = 3;
const MAX_MATCH: u32 = 15;

struct Params {
    len: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params { len: 160 },
        1 => Params { len: 1400 },
        n => Params { len: 1400 * n },
    }
}

/// Synthetic repetitive input: random phrases repeated with mutations.
fn input_text(p: &Params) -> Vec<u32> {
    let mut x = 0x7EA7_0001u32;
    let mut out = Vec::with_capacity(p.len as usize);
    let mut phrase: Vec<u32> = Vec::new();
    while out.len() < p.len as usize {
        x = lcg(x);
        if phrase.is_empty() || (x >> 10).is_multiple_of(3) {
            // New phrase of 4-11 symbols from a small alphabet.
            phrase.clear();
            x = lcg(x);
            let n = 4 + ((x >> 6) % 8);
            for _ in 0..n {
                x = lcg(x);
                phrase.push((x >> 17) % 26 + 97);
            }
        }
        out.extend(phrase.iter().copied());
    }
    out.truncate(p.len as usize);
    out
}

/// The exact algorithm the compiled program runs, in Rust.
fn reference(p: &Params) -> (u32, u32) {
    let input = input_text(p);
    let n = input.len() as i32;
    let mut tokens: Vec<u32> = Vec::new();
    let mut pos: i32 = 0;
    while pos < n {
        // find_match: best (len, dist) within WINDOW, len >= MIN_MATCH.
        let mut best_len = 0u32;
        let mut best_dist = 0u32;
        let lo = (pos - WINDOW).max(0);
        let mut cand = lo;
        while cand < pos {
            // match_len(cand, pos)
            let mut l = 0u32;
            while l < MAX_MATCH
                && (pos + l as i32) < n
                && input[(cand + l as i32) as usize] == input[(pos + l as i32) as usize]
            {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = (pos - cand) as u32;
            }
            cand += 1;
        }
        if best_len >= MIN_MATCH {
            tokens.push((1 << 24) | (best_dist << 8) | best_len);
            pos += best_len as i32;
        } else {
            tokens.push(input[pos as usize]);
            pos += 1;
        }
    }
    let mut acc = 0u32;
    for t in &tokens {
        acc = acc.wrapping_mul(33).wrapping_add(*t);
    }
    (acc, tokens.len() as u32)
}

/// Builds the ZipFile workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let n = p.len as i32;
    let in_base = DATA_BASE as i32;
    let out_base = in_base + n;
    let outpos_addr = out_base + 4 * n; // plenty of room for tokens

    // fn match_len(cand, pos, budget) -> length of common prefix.
    //
    // Written recursively (1 + match_len(cand+1, pos+1, budget-1)), the
    // way the original's comparison helpers nest: the call chain dives up
    // to MAX_MATCH activations deep and pops back out, the oscillation
    // that register-window-style files pay for.
    let match_len = {
        let mut f = FuncBuilder::new("match_len", 3);
        let cand = f.param(0);
        let pos = f.param(1);
        let budget = f.param(2);
        let stop = f.new_block();
        let chk2 = f.new_block();
        let chk3 = f.new_block();
        let recurse = f.new_block();
        f.br(Cond::Eq, budget, 0, stop, chk2);
        f.switch_to(chk2);
        f.br(Cond::Ge, pos, n, stop, chk3);
        f.switch_to(chk3);
        let ca = f.bin(BinOp::Add, cand, in_base);
        let cv = f.load(ca, 0);
        let pa = f.bin(BinOp::Add, pos, in_base);
        let pv = f.load(pa, 0);
        f.br(Cond::Eq, cv, pv, recurse, stop);
        f.switch_to(stop);
        f.ret(Some(Operand::Const(0)));
        f.switch_to(recurse);
        let c1 = f.bin(BinOp::Add, cand, 1);
        let p1 = f.bin(BinOp::Add, pos, 1);
        let b1 = f.bin(BinOp::Sub, budget, 1);
        let rest = f
            .call(
                "match_len",
                vec![Operand::Reg(c1), Operand::Reg(p1), Operand::Reg(b1)],
                true,
            )
            .expect("ret");
        let total = f.bin(BinOp::Add, rest, 1);
        f.ret(Some(total.into()));
        f.finish()
    };

    // fn find_match(pos) -> (best_len << 16) | best_dist
    let find_match = {
        let mut f = FuncBuilder::new("find_match", 1);
        let pos = f.param(0);
        let best_len = f.copy(0);
        let best_dist = f.copy(0);
        let lo_raw = f.bin(BinOp::Sub, pos, WINDOW);
        let lo = f.vreg();
        let neg = f.new_block();
        let nonneg = f.new_block();
        let scan = f.new_block();
        f.br(Cond::Lt, lo_raw, 0, neg, nonneg);
        f.switch_to(neg);
        f.copy_to(lo, 0);
        f.jmp(scan);
        f.switch_to(nonneg);
        f.copy_to(lo, lo_raw);
        f.jmp(scan);
        f.switch_to(scan);
        let cand = f.copy(lo);
        let hdr = f.new_block();
        let body = f.new_block();
        let better = f.new_block();
        let next = f.new_block();
        let exit = f.new_block();
        f.jmp(hdr);
        f.switch_to(hdr);
        f.br(Cond::Lt, cand, pos, body, exit);
        f.switch_to(body);
        let l = f
            .call(
                "match_len",
                vec![
                    Operand::Reg(cand),
                    Operand::Reg(pos),
                    Operand::Const(MAX_MATCH as i32),
                ],
                true,
            )
            .expect("ret");
        f.br(Cond::Lt, best_len, l, better, next);
        f.switch_to(better);
        f.copy_to(best_len, l);
        let d = f.bin(BinOp::Sub, pos, cand);
        f.copy_to(best_dist, d);
        f.jmp(next);
        f.switch_to(next);
        f.bin_to(cand, BinOp::Add, cand, 1);
        f.jmp(hdr);
        f.switch_to(exit);
        let hi = f.bin(BinOp::Sll, best_len, 16);
        let packed = f.bin(BinOp::Or, hi, best_dist);
        f.ret(Some(packed.into()));
        f.finish()
    };

    // fn emit(token): appends to OUT and bumps OUTPOS.
    let emit = {
        let mut f = FuncBuilder::new("emit", 1);
        let tok = f.param(0);
        let cur = f.load(outpos_addr, 0);
        let slot = f.bin(BinOp::Add, cur, out_base);
        f.store(tok, slot, 0);
        let nxt = f.bin(BinOp::Add, cur, 1);
        f.store(nxt, outpos_addr, 0);
        f.ret(None);
        f.finish()
    };

    // fn compress_step(pos) -> next pos: one greedy decision.
    let compress_step = {
        let mut f = FuncBuilder::new("compress_step", 1);
        let pos = f.param(0);
        let take_match = f.new_block();
        let take_lit = f.new_block();
        let packed = f
            .call("find_match", vec![Operand::Reg(pos)], true)
            .expect("ret");
        let len = f.bin(BinOp::Srl, packed, 16);
        let dist = f.bin(BinOp::And, packed, 0xFFFF);
        f.br(Cond::Ge, len, MIN_MATCH as i32, take_match, take_lit);
        f.switch_to(take_match);
        let dsh = f.bin(BinOp::Sll, dist, 8);
        let tagged = f.bin(BinOp::Or, dsh, len);
        let one = f.copy(1);
        let tag = f.bin(BinOp::Sll, one, 24);
        let token = f.bin(BinOp::Or, tagged, tag);
        f.call("emit", vec![Operand::Reg(token)], false);
        let next = f.bin(BinOp::Add, pos, len);
        f.ret(Some(next.into()));
        f.switch_to(take_lit);
        let a = f.bin(BinOp::Add, pos, in_base);
        let lit = f.load(a, 0);
        f.call("emit", vec![Operand::Reg(lit)], false);
        let next = f.bin(BinOp::Add, pos, 1);
        f.ret(Some(next.into()));
        f.finish()
    };

    // fn main(): greedy compression loop, then checksum the tokens.
    let main = {
        let mut f = FuncBuilder::new("main", 0);
        let pos = f.copy(0);
        let hdr = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(hdr);
        f.switch_to(hdr);
        f.br(Cond::Lt, pos, n, body, done);
        f.switch_to(body);
        let next = f
            .call("compress_step", vec![Operand::Reg(pos)], true)
            .expect("ret");
        f.copy_to(pos, next);
        f.jmp(hdr);
        f.switch_to(done);
        // Checksum tokens.
        let count = f.load(outpos_addr, 0);
        let acc = f.copy(0);
        counted_loop(&mut f, 0, count, |f, i| {
            let a = f.bin(BinOp::Add, i, out_base);
            let t = f.load(a, 0);
            let s = f.bin(BinOp::Mul, acc, 33);
            f.bin_to(acc, BinOp::Add, s, t);
        });
        f.store(acc, RESULT_BASE as i32, 0);
        f.store(count, RESULT_BASE as i32, 1);
        f.ret(None);
        f.finish()
    };

    let module = Module::default()
        .with(main)
        .with(compress_step)
        .with(find_match)
        .with(match_len)
        .with(emit);
    let program = compile(&module, "main", CompileOpts::default()).expect("zipfile compiles");

    let (acc, count) = reference(&p);
    Workload {
        name: "ZipFile",
        parallel: false,
        program,
        source_lines: include_str!("zipfile.rs").lines().count(),
        mem_init: vec![(DATA_BASE, input_text(&p))],
        check: expect_words(RESULT_BASE, vec![acc, count]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn produces_reference_token_stream() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("zipfile validates");
        assert!(r.calls > 100, "find_match/match_len call chain");
    }

    #[test]
    fn compression_actually_compresses() {
        let (_, tokens) = reference(&params(0));
        assert!(tokens < params(0).len, "repetitive input must shrink");
    }
}
