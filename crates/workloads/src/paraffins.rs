//! Paraffins — counting alkyl radicals (fine-grain dependency graph).
//!
//! The Id benchmark enumerates paraffin isomers; its computational core
//! is the radical-counting recurrence. We count **alkyl radicals**: a
//! radical of size `n` is a carbon bonded to three sub-radicals whose
//! sizes sum to `n − 1`, counted up to symmetry:
//!
//! ```text
//! r[0] = 1
//! r[n] = Σ_{i≤j≤k, i+j+k=n−1}  ⎧ r_i·r_j·r_k              (i<j<k)
//!                              ⎨ C(r_i+1,2)·r_k            (i=j<k)
//!                              ⎨ r_i·C(r_j+1,2)            (i<j=k)
//!                              ⎩ C(r_i+2,3)                (i=j=k)
//! ```
//!
//! giving the classic series 1, 1, 1, 2, 4, 8, 17, 39, 89, 211, … .
//!
//! The translation is TAM-like in two ways. First, the code is
//! **specialised at translation time**: one thread per size `n`, plus one
//! tiny thread per term of `r[n]`'s sum, each with the triple `(i,j,k)`
//! baked in and its locals folded into context registers without reuse.
//! Second, the term threads fetch their `r_i` inputs with **remote
//! loads** (heap structures live across the machine in the Id model), so
//! they block and switch every few instructions — this is one of the
//! paper's fine-grain benchmarks (76 instructions per switch).

use crate::harness::{Workload, DATA_BASE, RESULT_BASE};
use nsf_isa::{Inst, ProgramBuilder, Reg};
use nsf_mem::MemSystem;

struct Params {
    n_max: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params { n_max: 8 },
        1 => Params { n_max: 12 },
        s => Params {
            n_max: (12 + s).min(20),
        },
    }
}

/// Number of alkyl radicals with `n` carbons, up to `n_max`.
pub fn radicals(n_max: u32) -> Vec<u32> {
    let mut r = vec![0u32; (n_max + 1) as usize];
    r[0] = 1;
    for n in 1..=n_max as usize {
        let mut total = 0u64;
        for (i, j, k) in triples(n as u32) {
            let (ri, rj, rk) = (
                u64::from(r[i as usize]),
                u64::from(r[j as usize]),
                u64::from(r[k as usize]),
            );
            total += if i == j && j == k {
                ri * (ri + 1) * (ri + 2) / 6
            } else if i == j {
                ri * (ri + 1) / 2 * rk
            } else if j == k {
                ri * (rj * (rj + 1) / 2)
            } else {
                ri * rj * rk
            };
        }
        r[n] = u32::try_from(total).expect("fits in u32 for n <= 20");
    }
    r
}

/// The `(i, j, k)` triples contributing to `r[n]`.
fn triples(n: u32) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    let rest = n - 1;
    for i in 0..n {
        for j in i..n {
            if i + j > rest {
                break;
            }
            let k = rest - i - j;
            if k < j {
                break;
            }
            out.push((i, j, k));
        }
    }
    out
}

/// Builds the Paraffins workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let n_max = p.n_max;
    let r_base = DATA_BASE as i32;
    let ready_base = r_base + n_max as i32 + 1; // READY[n], 1 = not ready
    let tjoin_base = ready_base + n_max as i32 + 1; // per-size term joins
    let join_addr = (RESULT_BASE + 8) as i32;
    let r = Reg::R;

    let mut b = ProgramBuilder::new();
    let size_workers: Vec<_> = (1..=n_max).map(|_| b.new_label()).collect();
    let term_workers: Vec<Vec<_>> = (1..=n_max)
        .map(|n| triples(n).iter().map(|_| b.new_label()).collect())
        .collect();

    // main: join = n_max, spawn a specialised thread per size, wait.
    b.export("main");
    b.load_const(r(0), n_max as i32);
    b.load_const(r(1), join_addr);
    b.emit(Inst::Sw {
        base: r(1),
        src: r(0),
        imm: 0,
    });
    for (idx, w) in size_workers.iter().enumerate() {
        b.load_const(r(2), idx as i32 + 1);
        b.spawn(*w, r(2));
    }
    b.emit(Inst::SyncWait { base: r(1), imm: 0 });
    b.emit(Inst::Halt);

    // Size thread n: wait for r[n-1], fan the terms out, join them,
    // publish r[n].
    for (idx, w) in size_workers.iter().enumerate() {
        let n = idx as u32 + 1;
        let terms = &term_workers[idx];
        b.bind(*w);
        b.export(&format!("radical_{n}"));
        b.load_const(r(0), ready_base + n as i32 - 1);
        b.emit(Inst::SyncWait { base: r(0), imm: 0 });
        // TERM_JOIN[n] = #terms, then spawn each term thread.
        b.load_const(r(1), tjoin_base + n as i32);
        b.load_const(r(2), terms.len() as i32);
        b.emit(Inst::Sw {
            base: r(1),
            src: r(2),
            imm: 0,
        });
        for t in terms {
            b.emit(Inst::Li { rd: r(3), imm: 0 });
            b.spawn(*t, r(3));
        }
        b.emit(Inst::SyncWait { base: r(1), imm: 0 });
        // READY[n] = 0; join main.
        b.load_const(r(4), ready_base + n as i32);
        b.emit(Inst::Li { rd: r(5), imm: 0 });
        b.emit(Inst::Sw {
            base: r(4),
            src: r(5),
            imm: 0,
        });
        b.load_const(r(6), join_addr);
        b.emit(Inst::AmoAdd {
            rd: r(7),
            base: r(6),
            imm: -1,
        });
        b.emit(Inst::Halt);
    }

    // Term thread (n; i,j,k): remote-fetch inputs, compute the symmetry-
    // corrected product, accumulate into r[n], decrement the term join.
    for (idx, terms) in term_workers.iter().enumerate() {
        let n = idx as u32 + 1;
        for (t_idx, t_label) in terms.iter().enumerate() {
            let (i, j, k) = triples(n)[t_idx];
            b.bind(*t_label);
            b.load_const(r(0), r_base);
            // Radical table entries live on remote heap nodes: each
            // fetch blocks (the paper's fine-grain behaviour).
            b.emit(Inst::LwRemote {
                rd: r(1),
                base: r(0),
                imm: i as i32,
            });
            b.emit(Inst::LwRemote {
                rd: r(2),
                base: r(0),
                imm: j as i32,
            });
            b.emit(Inst::LwRemote {
                rd: r(3),
                base: r(0),
                imm: k as i32,
            });
            // Term value into r7 (locals r4-r6 are scratch, never reused).
            if i == j && j == k {
                b.emit(Inst::Addi {
                    rd: r(4),
                    rs1: r(1),
                    imm: 1,
                });
                b.emit(Inst::Addi {
                    rd: r(5),
                    rs1: r(1),
                    imm: 2,
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(1),
                    rs2: r(4),
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(7),
                    rs2: r(5),
                });
                b.emit(Inst::Li { rd: r(6), imm: 6 });
                b.emit(Inst::Div {
                    rd: r(7),
                    rs1: r(7),
                    rs2: r(6),
                });
            } else if i == j {
                b.emit(Inst::Addi {
                    rd: r(4),
                    rs1: r(1),
                    imm: 1,
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(1),
                    rs2: r(4),
                });
                b.emit(Inst::Srli {
                    rd: r(7),
                    rs1: r(7),
                    imm: 1,
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(7),
                    rs2: r(3),
                });
            } else if j == k {
                b.emit(Inst::Addi {
                    rd: r(4),
                    rs1: r(2),
                    imm: 1,
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(2),
                    rs2: r(4),
                });
                b.emit(Inst::Srli {
                    rd: r(7),
                    rs1: r(7),
                    imm: 1,
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(7),
                    rs2: r(1),
                });
            } else {
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(1),
                    rs2: r(2),
                });
                b.emit(Inst::Mul {
                    rd: r(7),
                    rs1: r(7),
                    rs2: r(3),
                });
            }
            // r[n] += term. The load/add/store triplet cannot be torn:
            // block multithreading switches only at blocking points.
            b.emit(Inst::Lw {
                rd: r(8),
                base: r(0),
                imm: n as i32,
            });
            b.emit(Inst::Add {
                rd: r(9),
                rs1: r(8),
                rs2: r(7),
            });
            b.emit(Inst::Sw {
                base: r(0),
                src: r(9),
                imm: n as i32,
            });
            b.load_const(r(10), tjoin_base + n as i32);
            b.emit(Inst::AmoAdd {
                rd: r(11),
                base: r(10),
                imm: -1,
            });
            b.emit(Inst::Halt);
        }
    }

    let program = b.finish("main").expect("paraffins builds");
    let expected = radicals(n_max);
    let check_base = DATA_BASE;
    Workload {
        name: "Paraffins",
        parallel: true,
        program,
        source_lines: include_str!("paraffins.rs").lines().count(),
        mem_init: vec![
            (DATA_BASE, vec![1]), // r[0] = 1
            // READY[0] = 0 (ready), READY[1..=n_max] = 1 (pending).
            (
                ready_base as u32,
                std::iter::once(0)
                    .chain(std::iter::repeat_n(1, n_max as usize))
                    .collect(),
            ),
        ],
        check: Box::new(move |mem: &MemSystem| {
            for (n, &want) in expected.iter().enumerate() {
                let got = mem.peek(check_base + n as u32);
                if got != want {
                    return Err(format!("r[{n}]: expected {want}, got {got}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn radical_series_is_correct() {
        assert_eq!(radicals(9), vec![1, 1, 1, 2, 4, 8, 17, 39, 89, 211]);
    }

    #[test]
    fn program_computes_radicals() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("paraffins validates");
        // One thread per size plus one per term.
        assert!(r.spawns > u64::from(params(0).n_max));
        assert!(
            r.instrs_per_switch() < 150.0,
            "paraffins is fine-grained, got {}",
            r.instrs_per_switch()
        );
    }
}
