//! Wavefront — 2-D grid relaxation in row bands.
//!
//! The paper's Wavefront is the second-coarsest parallel benchmark (8,280
//! instructions per context switch): a wavefront sweep where each thread
//! relaxes a band of rows and waits for the previous band to finish
//! before starting (the data dependence `G[i][j] = f(G[i-1][j],
//! G[i][j-1])` means a band needs its predecessor's last row). Threads
//! therefore run thousands of instructions per synchronisation.
//!
//! Grid `G[(ROWS+1) x (COLS+1)]` at [`DATA_BASE`], row-major; row 0 and
//! column 0 are boundary values staged by `mem_init`. Band-done flags and
//! the join counter live in the result area.

use crate::harness::{expect_words, Workload, DATA_BASE, RESULT_BASE};
use nsf_isa::{Inst, ProgramBuilder, Reg};

const BANDS: u32 = 4;

struct Params {
    rows_per_band: u32,
    cols: u32,
}

fn params(scale: u32) -> Params {
    match scale {
        0 => Params {
            rows_per_band: 3,
            cols: 16,
        },
        1 => Params {
            rows_per_band: 16,
            cols: 96,
        },
        s => Params {
            rows_per_band: 16 * s,
            cols: 96,
        },
    }
}

fn boundary(p: &Params) -> Vec<(u32, Vec<u32>)> {
    let stride = p.cols + 1;
    let rows = BANDS * p.rows_per_band;
    let mut init = Vec::new();
    // Row 0.
    let top: Vec<u32> = (0..=p.cols).map(|j| (j * 5) % 11 + 1).collect();
    init.push((DATA_BASE, top));
    // Column 0 of every interior row.
    for i in 1..=rows {
        init.push((DATA_BASE + i * stride, vec![(i * 7) % 13 + 1]));
    }
    init
}

fn reference(p: &Params) -> u32 {
    let stride = (p.cols + 1) as usize;
    let rows = (BANDS * p.rows_per_band) as usize;
    let mut g = vec![0u32; (rows + 1) * stride];
    for (j, cell) in g.iter_mut().enumerate().take(p.cols as usize + 1) {
        *cell = ((j as u32) * 5) % 11 + 1;
    }
    for i in 1..=rows {
        g[i * stride] = ((i as u32) * 7) % 13 + 1;
    }
    for i in 1..=rows {
        for j in 1..=p.cols as usize {
            let up = g[(i - 1) * stride + j];
            let left = g[i * stride + j - 1];
            g[i * stride + j] = (up.wrapping_add(left).wrapping_add(1)) >> 1;
        }
    }
    let mut acc = 0u32;
    for j in 1..=p.cols as usize {
        acc = acc.wrapping_mul(31).wrapping_add(g[rows * stride + j]);
    }
    acc
}

/// Builds the Wavefront workload at the given scale.
pub fn build(scale: u32) -> Workload {
    let p = params(scale);
    let stride = (p.cols + 1) as i32;
    let g_base = DATA_BASE as i32;
    let flags_base = (RESULT_BASE + 16) as i32; // DONE[b], 1 = not done
    let join_addr = (RESULT_BASE + 8) as i32;
    let rows_total = (BANDS * p.rows_per_band) as i32;
    let r = Reg::R;

    let mut b = ProgramBuilder::new();
    let worker = b.new_label();

    // main: join = BANDS, spawn bands, wait, checksum the last row.
    b.export("main");
    b.load_const(r(0), BANDS as i32);
    b.load_const(r(1), join_addr);
    b.emit(Inst::Sw {
        base: r(1),
        src: r(0),
        imm: 0,
    });
    for k in 0..BANDS {
        b.load_const(r(2), k as i32);
        b.spawn(worker, r(2));
    }
    b.emit(Inst::SyncWait { base: r(1), imm: 0 });
    // acc = fold over G[rows_total][1..=cols]
    b.load_const(r(3), g_base + rows_total * stride);
    b.emit(Inst::Li { rd: r(4), imm: 0 }); // acc
    b.emit(Inst::Li { rd: r(5), imm: 1 }); // j
    b.load_const(r(6), stride);
    b.emit(Inst::Li { rd: r(7), imm: 31 });
    let sum_hdr = b.new_label();
    let sum_end = b.new_label();
    b.bind(sum_hdr);
    b.bge(r(5), r(6), sum_end);
    b.emit(Inst::Add {
        rd: r(8),
        rs1: r(3),
        rs2: r(5),
    });
    b.emit(Inst::Lw {
        rd: r(9),
        base: r(8),
        imm: 0,
    });
    b.emit(Inst::Mul {
        rd: r(4),
        rs1: r(4),
        rs2: r(7),
    });
    b.emit(Inst::Add {
        rd: r(4),
        rs1: r(4),
        rs2: r(9),
    });
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    });
    b.jmp(sum_hdr);
    b.bind(sum_end);
    b.load_const(r(10), RESULT_BASE as i32);
    b.emit(Inst::Sw {
        base: r(10),
        src: r(4),
        imm: 0,
    });
    b.emit(Inst::Halt);

    // worker(band): wait for band-1, relax rows, mark done, join.
    b.bind(worker);
    b.export("worker");
    b.emit(Inst::Mv {
        rd: r(0),
        rs1: nsf_isa::RV,
    }); // band index
    let compute = b.new_label();
    b.emit(Inst::Li { rd: r(1), imm: 0 });
    b.beq(r(0), r(1), compute);
    b.load_const(r(2), flags_base);
    b.emit(Inst::Add {
        rd: r(3),
        rs1: r(2),
        rs2: r(0),
    });
    b.emit(Inst::SyncWait {
        base: r(3),
        imm: -1,
    }); // DONE[band-1] == 0
    b.bind(compute);
    b.load_const(r(4), p.rows_per_band as i32);
    b.emit(Inst::Mul {
        rd: r(5),
        rs1: r(0),
        rs2: r(4),
    });
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    }); // first row
    b.emit(Inst::Add {
        rd: r(6),
        rs1: r(5),
        rs2: r(4),
    }); // end row
    b.load_const(r(7), stride);
    b.load_const(r(8), g_base);
    let row_hdr = b.new_label();
    let row_end = b.new_label();
    b.bind(row_hdr);
    b.bge(r(5), r(6), row_end);
    b.emit(Inst::Mul {
        rd: r(10),
        rs1: r(5),
        rs2: r(7),
    });
    b.emit(Inst::Add {
        rd: r(11),
        rs1: r(10),
        rs2: r(8),
    }); // row base
    b.emit(Inst::Sub {
        rd: r(12),
        rs1: r(11),
        rs2: r(7),
    }); // prev row base
    b.emit(Inst::Li { rd: r(13), imm: 1 }); // j
    let col_hdr = b.new_label();
    let col_end = b.new_label();
    b.bind(col_hdr);
    b.bge(r(13), r(7), col_end); // j < stride  (== j <= cols)
    b.emit(Inst::Add {
        rd: r(15),
        rs1: r(12),
        rs2: r(13),
    });
    b.emit(Inst::Lw {
        rd: r(16),
        base: r(15),
        imm: 0,
    }); // up
    b.emit(Inst::Add {
        rd: r(17),
        rs1: r(11),
        rs2: r(13),
    });
    b.emit(Inst::Lw {
        rd: r(18),
        base: r(17),
        imm: -1,
    }); // left
    b.emit(Inst::Add {
        rd: r(19),
        rs1: r(16),
        rs2: r(18),
    });
    b.emit(Inst::Addi {
        rd: r(19),
        rs1: r(19),
        imm: 1,
    });
    b.emit(Inst::Srli {
        rd: r(19),
        rs1: r(19),
        imm: 1,
    });
    b.emit(Inst::Sw {
        base: r(17),
        src: r(19),
        imm: 0,
    });
    b.emit(Inst::Addi {
        rd: r(13),
        rs1: r(13),
        imm: 1,
    });
    b.jmp(col_hdr);
    b.bind(col_end);
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    });
    b.jmp(row_hdr);
    b.bind(row_end);
    // DONE[band] = 0; join--.
    b.load_const(r(20), flags_base);
    b.emit(Inst::Add {
        rd: r(21),
        rs1: r(20),
        rs2: r(0),
    });
    b.emit(Inst::Li { rd: r(22), imm: 0 });
    b.emit(Inst::Sw {
        base: r(21),
        src: r(22),
        imm: 0,
    });
    b.load_const(r(23), join_addr);
    b.emit(Inst::AmoAdd {
        rd: r(24),
        base: r(23),
        imm: -1,
    });
    b.emit(Inst::Halt);

    let program = b.finish("main").expect("wavefront builds");
    let mut mem_init = boundary(&p);
    // DONE flags: 1 (= not done) for every band.
    mem_init.push((flags_base as u32, vec![1; BANDS as usize]));
    let expected = reference(&p);
    Workload {
        name: "Wavefront",
        parallel: true,
        program,
        source_lines: include_str!("wavefront.rs").lines().count(),
        mem_init,
        check: expect_words(RESULT_BASE, vec![expected]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;
    use nsf_sim::SimConfig;

    #[test]
    fn relaxation_matches_reference() {
        let w = build(0);
        let r = run(&w, SimConfig::default()).expect("wavefront validates");
        assert_eq!(r.spawns, u64::from(BANDS));
        assert!(
            r.instrs_per_switch() > 50.0,
            "wavefront is coarse, got {}",
            r.instrs_per_switch()
        );
    }

    #[test]
    fn reference_depends_on_size() {
        assert_ne!(reference(&params(0)), reference(&params(1)));
    }
}
