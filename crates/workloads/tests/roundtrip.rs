//! Every benchmark program must survive a disassemble → reassemble
//! round trip — the assembler and `Display` implementations cover the
//! full instruction mix of real programs, not just unit-test samples.

use nsf_isa::asm::{assemble, disassemble};

#[test]
fn all_paper_programs_roundtrip_through_the_assembler() {
    for w in nsf_workloads::paper_suite(0) {
        let text = disassemble(&w.program);
        let back =
            assemble(&text).unwrap_or_else(|e| panic!("{} failed to reassemble: {e}", w.name));
        assert_eq!(
            w.program.insts(),
            back.insts(),
            "{}: instruction stream changed across the round trip",
            w.name
        );
        assert_eq!(
            w.program.symbols(),
            back.symbols(),
            "{}: symbol table changed",
            w.name
        );
    }
}

#[test]
fn all_paper_programs_validate() {
    for w in nsf_workloads::paper_suite(0) {
        w.program
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid program: {e}", w.name));
        assert!(w.program.symbol("main").is_some(), "{}", w.name);
    }
}

#[test]
fn quicksort_runs_from_its_binary_image() {
    // The encoded image alone (no symbols) carries everything execution
    // needs: run quicksort from machine words and validate the sort.
    use nsf_isa::Program;
    use nsf_sim::{Machine, SimConfig};
    let w = nsf_workloads::quicksort::build(0);
    let words = w.program.to_words().expect("encodes");
    let reloaded = Program::from_words(&words, w.program.entry()).expect("decodes");
    let mut m = Machine::new(reloaded, SimConfig::default()).unwrap();
    for (a, ws) in &w.mem_init {
        m.mem.poke_block(*a, ws);
    }
    m.run_and_keep().expect("runs from the binary image");
    // Spot-check sortedness.
    let n = 128u32;
    let base = 0x0010_0000;
    for i in 1..n {
        assert!(m.mem.peek(base + i - 1) <= m.mem.peek(base + i), "A[{i}]");
    }
}

#[test]
fn all_paper_programs_encode_to_machine_words() {
    use nsf_isa::encode::{decode, encode};
    for w in nsf_workloads::paper_suite(0) {
        for (i, inst) in w.program.insts().iter().enumerate() {
            let word = encode(inst)
                .unwrap_or_else(|e| panic!("{} inst {i} ({inst}) unencodable: {e}", w.name));
            let back =
                decode(word).unwrap_or_else(|e| panic!("{} inst {i} undecodable: {e}", w.name));
            assert_eq!(*inst, back, "{} inst {i}", w.name);
        }
    }
}
