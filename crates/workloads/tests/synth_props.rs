//! Property tests over the synthetic workload generators: arbitrary
//! parameters must produce programs that validate on every register file
//! organization, with metrics that respect the generator's knobs.

use nsf_sim::{RegFileSpec, SimConfig};
use nsf_workloads::synth::{parallel, sequential, ParParams, SeqParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recursive synthetic program computes the same value on the
    /// NSF, the segmented file and the oracle, for any shape.
    #[test]
    fn sequential_synth_validates_everywhere(
        depth in 0u32..8,
        fanout in 1u32..3,
        locals in 1u32..12,
    ) {
        let w = sequential(SeqParams { depth, fanout, locals });
        for cfg in [
            SimConfig::with_regfile(RegFileSpec::paper_nsf(80)),
            SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 20)),
            SimConfig::with_regfile(RegFileSpec::Oracle),
        ] {
            // `run` validates the result against the Rust mirror.
            nsf_workloads::run(&w, cfg).expect("synth validates");
        }
    }

    /// Deeper call trees hold more NSF contexts, never fewer.
    #[test]
    fn depth_grows_resident_contexts(depth in 1u32..7) {
        let shallow = sequential(SeqParams { depth, fanout: 1, locals: 4 });
        let deeper = sequential(SeqParams { depth: depth + 1, fanout: 1, locals: 4 });
        let cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(256));
        let a = nsf_workloads::run(&shallow, cfg).unwrap();
        let b = nsf_workloads::run(&deeper, cfg).unwrap();
        prop_assert!(
            b.occupancy.max_contexts >= a.occupancy.max_contexts,
            "depth {} -> {} contexts, depth {} -> {}",
            depth, a.occupancy.max_contexts, depth + 1, b.occupancy.max_contexts
        );
    }

    /// Parallel synthetic threads validate on both organizations and
    /// more active registers mean more segmented live-reload traffic.
    #[test]
    fn parallel_synth_pressure_monotone(active in 4u8..26) {
        let lo = parallel(ParParams { threads: 8, iters: 8, work: 16, active_regs: active });
        let hi = parallel(ParParams {
            threads: 8,
            iters: 8,
            work: 16,
            active_regs: active + 4,
        });
        let cfg = SimConfig::with_regfile(RegFileSpec::segmented_valid_only(4, 32));
        let a = nsf_workloads::run(&lo, cfg).unwrap();
        let b = nsf_workloads::run(&hi, cfg).unwrap();
        prop_assert!(
            b.regfile.live_regs_reloaded >= a.regfile.live_regs_reloaded,
            "{} regs -> {}, {} regs -> {}",
            active, a.regfile.live_regs_reloaded,
            active + 4, b.regfile.live_regs_reloaded
        );
    }
}
