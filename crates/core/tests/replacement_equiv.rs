//! Equivalence properties for the O(1) hot-path rewrite.
//!
//! The intrusive-list [`VictimPicker`] and the residency-indexed
//! [`NamedStateFile`] must be *observationally identical* to the
//! historical implementations they replaced — every figure in
//! EXPERIMENTS.md depends on the exact eviction sequence, so "roughly the
//! same statistics" is not good enough. Two layers of defence:
//!
//! 1. [`TimestampPicker`] (the retained O(n)-scan reference) is driven
//!    with the same operation sequence as [`VictimPicker`]; picks must
//!    agree exactly, with candidates fixed to the full ascending slot
//!    list — the only pattern the register files ever used, because
//!    eviction happens exclusively at full occupancy.
//! 2. A from-scratch reference NSF (linear tag scan + timestamp picker +
//!    `Vec`-building reload, transcribed from the seed implementation)
//!    is run against [`NamedStateFile`] on arbitrary programs; per-access
//!    results, typed errors, final [`RegFileStats`] and per-step
//!    occupancy must all match.

use nsf_core::replacement::{TimestampPicker, VictimPicker};
use nsf_core::{
    Access, BackingStore, MapStore, NamedStateFile, NsfConfig, Occupancy, RegAddr, RegFileError,
    RegFileStats, RegisterFile, ReloadPolicy, ReplacementPolicy, SpillEngine, Word,
    WriteMissPolicy,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Layer 1: picker vs picker.
// ---------------------------------------------------------------------------

/// One step of picker exercise.
#[derive(Clone, Copy, Debug)]
enum PickerOp {
    Touch(usize),
    Allocate(usize),
    Pick,
}

fn arb_picker_ops(slots: usize) -> impl Strategy<Value = Vec<PickerOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..slots).prop_map(PickerOp::Touch),
            3 => (0..slots).prop_map(PickerOp::Allocate),
            1 => Just(PickerOp::Pick),
        ],
        1..200,
    )
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        any::<u64>().prop_map(|seed| ReplacementPolicy::Random { seed }),
    ]
}

// ---------------------------------------------------------------------------
// Layer 2: NSF vs a transcription of the seed implementation.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct RefLine {
    regs: Box<[Word]>,
    valid: u32,
    dirty: u32,
}

/// The seed `NamedStateFile`, reconstructed with deliberately naive
/// bookkeeping: a linear-scan tag array in place of the CAM index, the
/// timestamp picker in place of the intrusive lists, and `Vec`-building
/// reloads. Slow and simple — exactly what the optimized file must match.
struct RefNsf {
    cfg: NsfConfig,
    tags: Vec<Option<(u16, u8)>>,
    free: Vec<usize>,
    lines: Vec<RefLine>,
    picker: TimestampPicker,
    stats: RegFileStats,
}

impl RefNsf {
    fn new(cfg: NsfConfig) -> Self {
        let n = (cfg.total_regs / u32::from(cfg.regs_per_line)) as usize;
        RefNsf {
            cfg,
            tags: vec![None; n],
            free: (0..n).rev().collect(),
            lines: vec![
                RefLine {
                    regs: vec![0; cfg.regs_per_line as usize].into_boxed_slice(),
                    valid: 0,
                    dirty: 0,
                };
                n
            ],
            picker: TimestampPicker::new(n, cfg.replacement),
            stats: RegFileStats::default(),
        }
    }

    fn lookup(&self, cid: u16, line: u8) -> Option<usize> {
        self.tags.iter().position(|t| *t == Some((cid, line)))
    }

    fn unbind(&mut self, slot: usize) {
        assert!(self.tags[slot].take().is_some());
        self.free.push(slot);
    }

    fn evict_one(&mut self, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        let candidates: Vec<usize> = (0..self.tags.len())
            .filter(|&s| self.tags[s].is_some())
            .collect();
        let victim = self.picker.pick(&candidates);
        let (cid, line) = self.tags[victim].expect("victim was bound");
        self.unbind(victim);
        let l = &mut self.lines[victim];
        let mut moved = 0u32;
        let mut mem_cycles = 0u32;
        for i in 0..self.cfg.regs_per_line {
            let bit = 1u32 << i;
            if l.valid & bit != 0 && l.dirty & bit != 0 {
                let offset = line * self.cfg.regs_per_line + i;
                mem_cycles += store.spill(cid, offset, l.regs[i as usize])?;
                moved += 1;
            }
        }
        l.valid = 0;
        l.dirty = 0;
        self.stats.regs_spilled += u64::from(moved);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }

    fn allocate_line(
        &mut self,
        cid: u16,
        line: u8,
        store: &mut dyn BackingStore,
    ) -> Result<(usize, u32), RegFileError> {
        let mut cycles = 0;
        let slot = loop {
            if let Some(free) = self.free.pop() {
                break free;
            }
            cycles += self.evict_one(store)?;
        };
        self.tags[slot] = Some((cid, line));
        self.picker.allocate(slot);
        Ok((slot, cycles))
    }

    fn reload_line(
        &mut self,
        slot: usize,
        cid: u16,
        line: u8,
        demand: u8,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        let rpl = self.cfg.regs_per_line;
        let base = line * rpl;
        let mut moved = 0u32;
        let mut live = 0u32;
        let mut mem_cycles = 0u32;
        let slots_to_fetch: Vec<u8> = match self.cfg.reload {
            ReloadPolicy::SingleRegister => vec![demand],
            ReloadPolicy::WholeLine => (0..rpl)
                .filter(|&i| self.lines[slot].valid & (1 << i) == 0)
                .collect(),
            ReloadPolicy::ValidOnly => (0..rpl)
                .filter(|&i| {
                    self.lines[slot].valid & (1 << i) == 0
                        && (i == demand || store.is_present(cid, base + i))
                })
                .collect(),
        };
        for i in slots_to_fetch {
            let (value, cyc) = store.reload(cid, base + i)?;
            mem_cycles += cyc;
            moved += 1;
            if let Some(v) = value {
                live += 1;
                let l = &mut self.lines[slot];
                l.regs[i as usize] = v;
                l.valid |= 1 << i;
                l.dirty &= !(1 << i);
            }
        }
        self.stats.lines_reloaded += 1;
        self.stats.regs_reloaded += u64::from(moved);
        self.stats.live_regs_reloaded += u64::from(live);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }

    fn read(
        &mut self,
        addr: RegAddr,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        if addr.offset >= self.cfg.ctx_regs {
            return Err(RegFileError::BadOffset(addr));
        }
        self.stats.reads += 1;
        let rpl = self.cfg.regs_per_line;
        let line = addr.line_index(rpl);
        let within = addr.line_slot(rpl);
        let bit = 1u32 << within;
        if let Some(slot) = self.lookup(addr.cid, line) {
            if self.lines[slot].valid & bit != 0 {
                self.stats.read_hits += 1;
                self.picker.touch(slot);
                return Ok(Access::hit(self.lines[slot].regs[within as usize]));
            }
            self.stats.read_misses += 1;
            let cycles = self.reload_line(slot, addr.cid, line, within, store)?;
            self.picker.touch(slot);
            if self.lines[slot].valid & bit == 0 {
                return Err(RegFileError::ReadUndefined(addr));
            }
            return Ok(Access {
                value: self.lines[slot].regs[within as usize],
                stall_cycles: cycles,
                missed: true,
            });
        }
        self.stats.read_misses += 1;
        let (slot, alloc_cycles) = self.allocate_line(addr.cid, line, store)?;
        let reload_cycles = self.reload_line(slot, addr.cid, line, within, store)?;
        self.picker.touch(slot);
        if self.lines[slot].valid & bit == 0 {
            if self.lines[slot].valid == 0 {
                self.unbind(slot);
            }
            return Err(RegFileError::ReadUndefined(addr));
        }
        Ok(Access {
            value: self.lines[slot].regs[within as usize],
            stall_cycles: alloc_cycles + reload_cycles,
            missed: true,
        })
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        if addr.offset >= self.cfg.ctx_regs {
            return Err(RegFileError::BadOffset(addr));
        }
        self.stats.writes += 1;
        let rpl = self.cfg.regs_per_line;
        let line = addr.line_index(rpl);
        let within = addr.line_slot(rpl);
        let bit = 1u32 << within;
        let (slot, stall) = if let Some(slot) = self.lookup(addr.cid, line) {
            self.stats.write_hits += 1;
            (slot, 0)
        } else {
            self.stats.write_misses += 1;
            let (slot, mut cycles) = self.allocate_line(addr.cid, line, store)?;
            if self.cfg.write_miss == WriteMissPolicy::FetchOnWrite {
                cycles += self.reload_line(slot, addr.cid, line, within, store)?;
            }
            (slot, cycles)
        };
        let l = &mut self.lines[slot];
        l.regs[within as usize] = value;
        l.valid |= bit;
        l.dirty |= bit;
        self.picker.touch(slot);
        Ok(Access {
            value,
            stall_cycles: stall,
            missed: stall > 0,
        })
    }

    fn switch_to(&mut self, cid: u16) {
        self.stats.context_switches += 1;
        if self.tags.iter().any(|t| t.is_some_and(|(c, _)| c == cid)) {
            self.stats.switch_hits += 1;
        }
    }

    fn free_context(&mut self, cid: u16, store: &mut dyn BackingStore) {
        // The seed released a context's slots in ascending slot order.
        for slot in 0..self.tags.len() {
            if self.tags[slot].is_some_and(|(c, _)| c == cid) {
                self.unbind(slot);
                self.lines[slot].valid = 0;
                self.lines[slot].dirty = 0;
            }
        }
        store.discard_context(cid);
    }

    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        let rpl = self.cfg.regs_per_line;
        let line = addr.line_index(rpl);
        let bit = 1u32 << addr.line_slot(rpl);
        if let Some(slot) = self.lookup(addr.cid, line) {
            let l = &mut self.lines[slot];
            l.valid &= !bit;
            l.dirty &= !bit;
            if l.valid == 0 {
                self.unbind(slot);
            }
        }
        store.discard_reg(addr.cid, addr.offset);
    }

    fn occupancy(&self) -> Occupancy {
        let mut contexts: Vec<u16> = self.tags.iter().filter_map(|t| t.map(|(c, _)| c)).collect();
        contexts.sort_unstable();
        contexts.dedup();
        Occupancy {
            valid_regs: (0..self.tags.len())
                .filter(|&s| self.tags[s].is_some())
                .map(|s| self.lines[s].valid.count_ones())
                .sum(),
            resident_contexts: contexts.len() as u32,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared workload vocabulary.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Op {
    Write(RegAddr, u32),
    Read(RegAddr),
    Switch(u16),
    FreeReg(RegAddr),
    FreeContext(u16),
}

fn arb_addr() -> impl Strategy<Value = RegAddr> {
    // Small spaces create heavy eviction pressure on an 8-register file.
    (0u16..6, 0u8..8).prop_map(|(cid, offset)| RegAddr::new(cid, offset))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_addr(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        4 => arb_addr().prop_map(Op::Read),
        2 => (0u16..6).prop_map(Op::Switch),
        1 => arb_addr().prop_map(Op::FreeReg),
        1 => (0u16..6).prop_map(Op::FreeContext),
    ]
}

fn nsf_cfg(total: u32, rpl: u8, reload: ReloadPolicy, replacement: ReplacementPolicy) -> NsfConfig {
    NsfConfig {
        total_regs: total,
        regs_per_line: rpl,
        ctx_regs: 32,
        reload,
        write_miss: WriteMissPolicy::WriteAllocate,
        replacement,
        engine: SpillEngine::hardware(),
    }
}

fn run_against_reference(cfg: NsfConfig, ops: &[Op]) {
    let mut file = NamedStateFile::new(cfg);
    let mut reference = RefNsf::new(cfg);
    let mut store = MapStore::new();
    let mut ref_store = MapStore::new();
    for op in ops {
        match *op {
            Op::Write(a, v) => {
                let got = file.write(a, v, &mut store);
                let want = reference.write(a, v, &mut ref_store);
                assert_eq!(got, want, "write {a} under {cfg:?}");
            }
            Op::Read(a) => {
                let got = file.read(a, &mut store);
                let want = reference.read(a, &mut ref_store);
                assert_eq!(got, want, "read {a} under {cfg:?}");
            }
            Op::Switch(c) => {
                file.switch_to(c, &mut store).unwrap();
                reference.switch_to(c);
            }
            Op::FreeReg(a) => {
                file.free_reg(a, &mut store);
                reference.free_reg(a, &mut ref_store);
            }
            Op::FreeContext(c) => {
                file.free_context(c, &mut store);
                reference.free_context(c, &mut ref_store);
            }
        }
        assert_eq!(file.occupancy(), reference.occupancy(), "after {op:?}");
    }
    assert_eq!(*file.stats(), reference.stats, "final stats under {cfg:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The intrusive-list picker agrees with the timestamp scan on every
    /// operation sequence, under every policy, when picks range over the
    /// full ascending slot list (the register files' only usage pattern).
    #[test]
    fn picker_matches_timestamp_reference(
        policy in arb_policy(),
        ops in arb_picker_ops(8),
    ) {
        let mut fast = VictimPicker::new(8, policy);
        let mut slow = TimestampPicker::new(8, policy);
        let all: Vec<usize> = (0..8).collect();
        for op in ops {
            match op {
                PickerOp::Touch(s) => {
                    fast.touch(s);
                    slow.touch(s);
                }
                PickerOp::Allocate(s) => {
                    fast.allocate(s);
                    slow.allocate(s);
                }
                PickerOp::Pick => {
                    prop_assert_eq!(fast.pick(), slow.pick(&all), "policy {:?}", policy);
                }
            }
        }
    }

    /// The optimized NSF is operation-for-operation identical to the seed
    /// implementation: same access results, same errors, same statistics,
    /// same occupancy — across line widths, reload policies and
    /// replacement policies, under heavy eviction pressure.
    #[test]
    fn nsf_matches_seed_reference(ops in proptest::collection::vec(arb_op(), 1..150)) {
        for rpl in [1u8, 2, 4] {
            for reload in [
                ReloadPolicy::SingleRegister,
                ReloadPolicy::ValidOnly,
                ReloadPolicy::WholeLine,
            ] {
                run_against_reference(nsf_cfg(8, rpl, reload, ReplacementPolicy::Lru), &ops);
            }
        }
        for replacement in [
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random { seed: 42 },
        ] {
            run_against_reference(
                nsf_cfg(8, 1, ReloadPolicy::SingleRegister, replacement),
                &ops,
            );
        }
    }
}
