//! Deterministic fault-injection tests: every organization must surface a
//! backing-store failure as `RegFileError::Store` — mid-spill and
//! mid-reload — without panicking, without corrupting resident state, and
//! without letting its statistics counters drift. After the (one-shot)
//! fault heals, the interrupted operation must be retryable and the file
//! must still hold every architecturally visible value.

use nsf_core::{
    segmented::FramePolicy, BackingStore, ConventionalFile, FaultPlan, FaultyStore, MapStore,
    NamedStateFile, NsfConfig, RegAddr, RegFileError, RegisterFile, SegmentedConfig, SegmentedFile,
    SpillEngine, WindowedConfig, WindowedFile,
};

type Store = FaultyStore<MapStore>;

fn store() -> Store {
    FaultyStore::with_plan(MapStore::new(), FaultPlan::Never)
}

fn assert_store_err<T: std::fmt::Debug>(r: Result<T, RegFileError>, what: &str) {
    match r {
        Err(RegFileError::Store(_)) => {}
        other => panic!("{what}: expected Err(Store), got {other:?}"),
    }
}

fn assert_consistent(file: &dyn RegisterFile) {
    if let Some(v) = file.stats().invariant_violation() {
        panic!("stats invariant violated on {}: {v}", file.describe());
    }
    assert!(
        file.occupancy().valid_regs <= file.capacity(),
        "occupancy exceeds capacity on {}",
        file.describe()
    );
}

#[test]
fn nsf_mid_spill_fault_leaves_victim_resident_and_retryable() {
    // 4 single-register lines, all dirty: the 5th write must evict.
    let mut f = NamedStateFile::new(NsfConfig::paper_default(4));
    let mut s = store();
    for cid in 1..=4u16 {
        f.write(RegAddr::new(cid, 0), 10 * u32::from(cid), &mut s)
            .unwrap();
    }
    assert_eq!(f.occupancy().valid_regs, 4);

    s.arm(FaultPlan::NthSpill(1));
    assert_store_err(f.write(RegAddr::new(5, 0), 50, &mut s), "evicting write");
    assert_consistent(&f);
    // The victim's registers must still be somewhere recoverable: the
    // fault aborted the spill before the line was unbound.
    assert_eq!(f.occupancy().valid_regs, 4, "no register was lost");
    assert_eq!(s.injected(), 1);

    // The plan is one-shot: the identical retry succeeds, and every value
    // ever written is still readable afterwards.
    f.write(RegAddr::new(5, 0), 50, &mut s).unwrap();
    for cid in 1..=4u16 {
        assert_eq!(
            f.read(RegAddr::new(cid, 0), &mut s).unwrap().value,
            10 * u32::from(cid)
        );
    }
    assert_eq!(f.read(RegAddr::new(5, 0), &mut s).unwrap().value, 50);
    assert_consistent(&f);

    // Drain: freeing every context empties file and backing store.
    for cid in 1..=5u16 {
        f.free_context(cid, &mut s);
        assert!(!s.any_present(cid));
    }
    assert_eq!(f.occupancy().valid_regs, 0);
    assert_eq!(f.occupancy().resident_contexts, 0);
}

#[test]
fn nsf_mid_reload_fault_surfaces_and_retry_restores_the_value() {
    // One line: every new name evicts the previous one.
    let mut f = NamedStateFile::new(NsfConfig::paper_default(1));
    let mut s = store();
    f.write(RegAddr::new(1, 0), 11, &mut s).unwrap();
    f.write(RegAddr::new(2, 0), 22, &mut s).unwrap(); // spills <1:0>

    s.arm(FaultPlan::NthReload(1));
    assert_store_err(f.read(RegAddr::new(1, 0), &mut s), "reloading read");
    assert_consistent(&f);

    assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 11);
    assert_eq!(f.read(RegAddr::new(2, 0), &mut s).unwrap().value, 22);
    assert_consistent(&f);
}

#[test]
fn segmented_mid_spill_fault_keeps_the_victim_frame_current() {
    let mut f = SegmentedFile::new(SegmentedConfig::paper_default(1, 4));
    let mut s = store();
    f.switch_to(1, &mut s).unwrap();
    for i in 0..4u8 {
        f.write(RegAddr::new(1, i), 100 + u32::from(i), &mut s)
            .unwrap();
    }

    // Fault in the middle of the frame writeback (2nd of 4 transfers).
    s.arm(FaultPlan::NthSpill(2));
    assert_store_err(f.switch_to(2, &mut s), "frame-spilling switch");
    assert_consistent(&f);
    // The victim was not evicted: context 1 is still current and intact.
    for i in 0..4u8 {
        assert_eq!(
            f.read(RegAddr::new(1, i), &mut s).unwrap().value,
            100 + u32::from(i),
            "victim frame must stay readable after an aborted spill"
        );
    }

    // Retry the switch, then come back: every register survived the trip.
    f.switch_to(2, &mut s).unwrap();
    f.switch_to(1, &mut s).unwrap();
    for i in 0..4u8 {
        assert_eq!(
            f.read(RegAddr::new(1, i), &mut s).unwrap().value,
            100 + u32::from(i)
        );
    }
    assert_consistent(&f);
}

#[test]
fn segmented_mid_reload_fault_unclaims_the_frame() {
    let mut f = SegmentedFile::new(SegmentedConfig::paper_default(1, 4));
    let mut s = store();
    f.switch_to(1, &mut s).unwrap();
    for i in 0..4u8 {
        f.write(RegAddr::new(1, i), 200 + u32::from(i), &mut s)
            .unwrap();
    }
    f.switch_to(2, &mut s).unwrap(); // spills ctx 1; ctx 2 never ran
    f.write(RegAddr::new(2, 0), 7, &mut s).unwrap();

    // Fault on the 2nd of ctx 1's four reloads (spills don't count).
    s.arm(FaultPlan::NthReload(2));
    assert_store_err(f.switch_to(1, &mut s), "frame-reloading switch");
    assert_consistent(&f);
    // The half-filled frame must not stay claimed: a later switch finding
    // it "resident" would see only the registers reloaded pre-fault.
    assert_eq!(
        f.occupancy().resident_contexts,
        0,
        "faulted reload must drop the claim"
    );
    assert!(
        matches!(
            f.read(RegAddr::new(1, 0), &mut s),
            Err(RegFileError::NotCurrent(1))
        ),
        "no context is current after the aborted switch"
    );

    // Retry from scratch: the full frame comes back.
    f.switch_to(1, &mut s).unwrap();
    for i in 0..4u8 {
        assert_eq!(
            f.read(RegAddr::new(1, i), &mut s).unwrap().value,
            200 + u32::from(i)
        );
    }
    f.switch_to(2, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(2, 0), &mut s).unwrap().value, 7);
    assert_consistent(&f);
}

#[test]
fn segmented_software_engine_and_valid_only_policy_fault_identically() {
    let mut cfg = SegmentedConfig::paper_default(1, 4);
    cfg.engine = SpillEngine::software();
    cfg.policy = FramePolicy::ValidOnly;
    let mut f = SegmentedFile::new(cfg);
    let mut s = store();
    f.switch_to(1, &mut s).unwrap();
    f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
    f.write(RegAddr::new(1, 3), 4, &mut s).unwrap();

    s.arm(FaultPlan::NthSpill(2));
    assert_store_err(f.switch_to(2, &mut s), "ValidOnly frame spill");
    assert_consistent(&f);
    f.switch_to(2, &mut s).unwrap();

    s.arm(FaultPlan::NthReload(1));
    assert_store_err(f.switch_to(1, &mut s), "ValidOnly frame reload");
    assert_consistent(&f);
    f.switch_to(1, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 1);
    assert_eq!(f.read(RegAddr::new(1, 3), &mut s).unwrap().value, 4);
    assert_consistent(&f);
}

#[test]
fn windowed_overflow_spill_fault_keeps_the_deep_window_resident() {
    let mut f = WindowedFile::new(WindowedConfig {
        windows: 2,
        window_regs: 4,
        engine: SpillEngine::software(),
    });
    let mut s = store();
    f.thread_switch(1, &mut s).unwrap();
    f.write(RegAddr::new(1, 0), 100, &mut s).unwrap();
    f.call_push(2, &mut s).unwrap();
    f.write(RegAddr::new(2, 0), 200, &mut s).unwrap();

    // The 3rd activation overflows; the spill of cid 1's window faults.
    s.arm(FaultPlan::NthSpill(1));
    assert_store_err(f.call_push(3, &mut s), "overflow spill");
    assert_consistent(&f);
    assert_eq!(
        f.occupancy().resident_contexts,
        2,
        "the deep window must survive the aborted spill"
    );

    f.call_push(3, &mut s).unwrap();
    f.write(RegAddr::new(3, 0), 300, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(3, 0), &mut s).unwrap().value, 300);

    // Unwind the chain: every activation's registers are intact.
    f.free_context(3, &mut s);
    f.switch_to(2, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(2, 0), &mut s).unwrap().value, 200);
    f.free_context(2, &mut s);
    f.switch_to(1, &mut s).unwrap(); // underflow reload
    assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 100);
    assert_consistent(&f);
}

#[test]
fn windowed_thread_switch_reload_fault_leaves_the_chain_parked() {
    let mut f = WindowedFile::new(WindowedConfig {
        windows: 2,
        window_regs: 4,
        engine: SpillEngine::software(),
    });
    let mut s = store();
    f.thread_switch(1, &mut s).unwrap();
    f.write(RegAddr::new(1, 2), 12, &mut s).unwrap();
    f.thread_switch(10, &mut s).unwrap(); // parks thread 1
    f.write(RegAddr::new(10, 2), 102, &mut s).unwrap();

    // Dispatching thread 1 again: its window reload faults.
    s.arm(FaultPlan::NthReload(1));
    assert_store_err(f.thread_switch(1, &mut s), "dispatch reload");
    assert_consistent(&f);

    // The chain stayed parked; the dispatch is retryable, and both
    // threads' registers are still reachable.
    f.thread_switch(1, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(1, 2), &mut s).unwrap().value, 12);
    f.thread_switch(10, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(10, 2), &mut s).unwrap().value, 102);
    assert_consistent(&f);
}

#[test]
fn windowed_underflow_reload_fault_is_retryable() {
    let mut f = WindowedFile::new(WindowedConfig {
        windows: 2,
        window_regs: 4,
        engine: SpillEngine::software(),
    });
    let mut s = store();
    f.thread_switch(1, &mut s).unwrap();
    f.write(RegAddr::new(1, 1), 11, &mut s).unwrap();
    f.call_push(2, &mut s).unwrap();
    f.call_push(3, &mut s).unwrap(); // spills window 1
    f.free_context(3, &mut s);
    f.free_context(2, &mut s);

    // Returning to cid 1 underflows; the reload faults.
    s.arm(FaultPlan::NthReload(1));
    assert_store_err(f.switch_to(1, &mut s), "underflow reload");
    assert_consistent(&f);
    assert!(f.switch_to(1, &mut s).unwrap() > 0, "retry reloads");
    assert_eq!(f.read(RegAddr::new(1, 1), &mut s).unwrap().value, 11);
    assert_consistent(&f);
}

#[test]
fn conventional_fault_paths_surface_errors_and_recover() {
    let mut f = ConventionalFile::new(4);
    let mut s = store();
    f.switch_to(1, &mut s).unwrap();
    for i in 0..4u8 {
        f.write(RegAddr::new(1, i), 300 + u32::from(i), &mut s)
            .unwrap();
    }

    s.arm(FaultPlan::NthSpill(3));
    assert_store_err(f.switch_to(2, &mut s), "conventional switch-out");
    assert_consistent(&f);
    f.switch_to(2, &mut s).unwrap();

    s.arm(FaultPlan::NthReload(2));
    assert_store_err(f.switch_to(1, &mut s), "conventional switch-in");
    assert_consistent(&f);
    f.switch_to(1, &mut s).unwrap();
    for i in 0..4u8 {
        assert_eq!(
            f.read(RegAddr::new(1, i), &mut s).unwrap().value,
            300 + u32::from(i)
        );
    }
    assert_consistent(&f);
}

#[test]
fn per_context_plan_targets_one_context_across_engines() {
    // NthForContext only fires on the planned cid's traffic: context 2's
    // spill sails through while context 1's reload faults.
    let mut f = SegmentedFile::new(SegmentedConfig::paper_default(1, 2));
    let mut s = store();
    f.switch_to(1, &mut s).unwrap();
    f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
    f.switch_to(2, &mut s).unwrap();
    f.write(RegAddr::new(2, 0), 2, &mut s).unwrap();

    // Switch back to 1: ctx 2's frame spills (2 regs, ignored by the
    // plan), then ctx 1's reload is its first counted operation.
    s.arm(FaultPlan::NthForContext(1, 1));
    assert_store_err(f.switch_to(1, &mut s), "targeted reload");
    assert_consistent(&f);
    f.switch_to(1, &mut s).unwrap();
    assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 1);
    assert_consistent(&f);
}
