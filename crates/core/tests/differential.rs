//! Differential property tests: every register file organization must be
//! *transparent* — an arbitrary program sees exactly the values it would
//! see on an infinite, never-spilling oracle file, no matter how much
//! spilling and reloading happens underneath.

use nsf_core::{
    segmented::FramePolicy, MapStore, NamedStateFile, NsfConfig, OracleFile, RegAddr, RegFileError,
    RegisterFile, ReloadPolicy, ReplacementPolicy, SegmentedConfig, SegmentedFile, SpillEngine,
    WriteMissPolicy,
};
use proptest::prelude::*;

/// One step of a register-file workload.
#[derive(Clone, Debug)]
enum Op {
    Write(RegAddr, u32),
    Read(RegAddr),
    FreeReg(RegAddr),
    FreeContext(u16),
}

fn arb_addr() -> impl Strategy<Value = RegAddr> {
    // Small spaces create heavy eviction pressure on an 8-register file.
    (0u16..6, 0u8..8).prop_map(|(cid, offset)| RegAddr::new(cid, offset))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_addr(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        4 => arb_addr().prop_map(Op::Read),
        1 => arb_addr().prop_map(Op::FreeReg),
        1 => (0u16..6).prop_map(Op::FreeContext),
    ]
}

/// Runs `ops` against `file`, mirrored on an oracle, asserting identical
/// visible behaviour. `needs_switch` inserts the `switch_to` discipline the
/// segmented file requires.
fn run_differential(file: &mut dyn RegisterFile, ops: &[Op], needs_switch: bool) {
    let mut oracle = OracleFile::new();
    let mut store = MapStore::new();
    let mut oracle_store = MapStore::new();

    for op in ops {
        match *op {
            Op::Write(addr, v) => {
                if needs_switch {
                    file.switch_to(addr.cid, &mut store).unwrap();
                }
                file.write(addr, v, &mut store).unwrap();
                oracle.write(addr, v, &mut oracle_store).unwrap();
            }
            Op::Read(addr) => {
                if needs_switch {
                    file.switch_to(addr.cid, &mut store).unwrap();
                }
                let got = file.read(addr, &mut store);
                let want = oracle.read(addr, &mut oracle_store);
                match (got, want) {
                    (Ok(g), Ok(w)) => assert_eq!(
                        g.value,
                        w.value,
                        "value mismatch at {addr} on {}",
                        file.describe()
                    ),
                    (Err(RegFileError::ReadUndefined(_)), Err(RegFileError::ReadUndefined(_))) => {}
                    (g, w) => panic!(
                        "outcome mismatch at {addr} on {}: {g:?} vs oracle {w:?}",
                        file.describe()
                    ),
                }
            }
            Op::FreeReg(addr) => {
                file.free_reg(addr, &mut store);
                oracle.free_reg(addr, &mut oracle_store);
            }
            Op::FreeContext(cid) => {
                file.free_context(cid, &mut store);
                oracle.free_context(cid, &mut oracle_store);
            }
        }
    }
}

fn nsf_variants() -> Vec<NamedStateFile> {
    let mut out = Vec::new();
    for (total, rpl) in [(8u32, 1u8), (8, 2), (8, 4), (16, 4), (32, 1)] {
        for reload in [
            ReloadPolicy::SingleRegister,
            ReloadPolicy::ValidOnly,
            ReloadPolicy::WholeLine,
        ] {
            for write_miss in [
                WriteMissPolicy::WriteAllocate,
                WriteMissPolicy::FetchOnWrite,
            ] {
                let cfg = NsfConfig {
                    total_regs: total,
                    regs_per_line: rpl,
                    ctx_regs: 32,
                    reload,
                    write_miss,
                    replacement: ReplacementPolicy::Lru,
                    engine: SpillEngine::hardware(),
                };
                out.push(NamedStateFile::new(cfg));
            }
        }
    }
    // Non-LRU replacement policies must also stay transparent.
    for replacement in [
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random { seed: 7 },
    ] {
        let cfg = NsfConfig {
            replacement,
            ..NsfConfig::paper_default(8)
        };
        out.push(NamedStateFile::new(cfg));
    }
    out
}

fn segmented_variants() -> Vec<SegmentedFile> {
    let mut out = Vec::new();
    for frames in [1u32, 2, 4] {
        for policy in [FramePolicy::Full, FramePolicy::ValidOnly] {
            for engine in [SpillEngine::hardware(), SpillEngine::software()] {
                let mut cfg = SegmentedConfig::paper_default(frames, 8);
                cfg.policy = policy;
                cfg.engine = engine;
                out.push(SegmentedFile::new(cfg));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every NSF geometry / policy combination behaves like the oracle.
    #[test]
    fn nsf_matches_oracle(ops in proptest::collection::vec(arb_op(), 1..120)) {
        for mut file in nsf_variants() {
            run_differential(&mut file, &ops, false);
        }
    }

    /// Every segmented configuration behaves like the oracle.
    #[test]
    fn segmented_matches_oracle(ops in proptest::collection::vec(arb_op(), 1..120)) {
        for mut file in segmented_variants() {
            run_differential(&mut file, &ops, true);
        }
    }

    /// NSF invariant: resident valid registers never exceed capacity, and
    /// spilled+resident accounting never loses a write.
    #[test]
    fn nsf_occupancy_bounded(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut file = NamedStateFile::new(NsfConfig::paper_default(8));
        let mut store = MapStore::new();
        for op in &ops {
            match *op {
                Op::Write(a, v) => { file.write(a, v, &mut store).unwrap(); }
                Op::Read(a) => { let _ = file.read(a, &mut store); }
                Op::FreeReg(a) => file.free_reg(a, &mut store),
                Op::FreeContext(c) => file.free_context(c, &mut store),
            }
            let occ = file.occupancy();
            prop_assert!(occ.valid_regs <= file.capacity());
            prop_assert!(occ.resident_contexts <= occ.valid_regs.max(1));
        }
    }

    /// The hit/miss counters are consistent with the operation counts.
    #[test]
    fn stats_accounting_consistent(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut file = NamedStateFile::new(NsfConfig::paper_default(8));
        let mut store = MapStore::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for op in &ops {
            match *op {
                Op::Write(a, v) => { file.write(a, v, &mut store).unwrap(); writes += 1; }
                Op::Read(a) => { let _ = file.read(a, &mut store); reads += 1; }
                Op::FreeReg(a) => file.free_reg(a, &mut store),
                Op::FreeContext(c) => file.free_context(c, &mut store),
            }
        }
        let s = file.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        prop_assert_eq!(s.read_hits + s.read_misses, s.reads);
        prop_assert_eq!(s.write_hits + s.write_misses, s.writes);
        // Live reloads can never exceed total reloads.
        prop_assert!(s.live_regs_reloaded <= s.regs_reloaded);
    }
}
