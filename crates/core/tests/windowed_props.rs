//! Property tests for the SPARC-style windowed file: arbitrary
//! call/return/switch sequences under the processor's discipline must
//! read back exactly the values a perfect-memory model predicts.

use nsf_core::{MapStore, RegAddr, RegisterFile, SpillEngine, WindowedConfig, WindowedFile, Word};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    /// Call a new procedure (push a fresh context).
    Call,
    /// Return from the current procedure (pop), unless at a chain root.
    Ret,
    /// Write `offset` in the current context.
    Write(u8, Word),
    /// Read `offset` in the current context (checked against the model).
    Read(u8),
    /// Switch to thread `t` (mod live threads).
    Switch(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Call),
        2 => Just(Op::Ret),
        5 => (0u8..4, any::<Word>()).prop_map(|(o, v)| Op::Write(o, v)),
        5 => (0u8..4).prop_map(Op::Read),
        2 => (0u8..3).prop_map(Op::Switch),
    ]
}

/// A perfect-memory model of the same discipline.
#[derive(Default)]
struct Model {
    /// Per-thread chains of (cid, register map).
    chains: Vec<Vec<(u16, HashMap<u8, Word>)>>,
    current: usize,
    next_cid: u16,
}

impl Model {
    fn top_cid(&self) -> u16 {
        self.chains[self.current].last().expect("non-empty chain").0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn windowed_file_matches_perfect_memory(
        windows in 1u32..5,
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let mut file = WindowedFile::new(WindowedConfig {
            windows,
            window_regs: 4,
            engine: SpillEngine::software(),
        });
        let mut store = MapStore::new();
        let mut model = Model::default();

        // Three threads, each rooted in its own context.
        for t in 0..3 {
            model.chains.push(vec![(model.next_cid, HashMap::new())]);
            model.next_cid += 1;
            let cid = model.chains[t].last().unwrap().0;
            if t == 0 {
                file.thread_switch(cid, &mut store).unwrap();
            }
        }

        for op in ops {
            match op {
                Op::Call => {
                    let cid = model.next_cid;
                    model.next_cid += 1;
                    model.chains[model.current].push((cid, HashMap::new()));
                    file.call_push(cid, &mut store).unwrap();
                }
                Op::Ret => {
                    if model.chains[model.current].len() > 1 {
                        let (dead, _) = model.chains[model.current].pop().unwrap();
                        file.free_context(dead, &mut store);
                        let caller = model.top_cid();
                        file.switch_to(caller, &mut store).unwrap();
                    }
                }
                Op::Write(offset, v) => {
                    let cid = model.top_cid();
                    model.chains[model.current]
                        .last_mut()
                        .unwrap()
                        .1
                        .insert(offset, v);
                    file.write(RegAddr::new(cid, offset), v, &mut store).unwrap();
                }
                Op::Read(offset) => {
                    let cid = model.top_cid();
                    let want = model.chains[model.current].last().unwrap().1.get(&offset);
                    let got = file.read(RegAddr::new(cid, offset), &mut store);
                    match want {
                        Some(&v) => prop_assert_eq!(
                            got.unwrap().value, v,
                            "chain {} cid {} offset {}", model.current, cid, offset
                        ),
                        None => prop_assert!(got.is_err(), "undefined read must fail"),
                    }
                }
                Op::Switch(t) => {
                    let t = usize::from(t) % model.chains.len();
                    if t != model.current {
                        model.current = t;
                        let cid = model.top_cid();
                        file.thread_switch(cid, &mut store).unwrap();
                    }
                }
            }
            // Residency never exceeds the window count.
            prop_assert!(file.occupancy().resident_contexts <= windows);
        }
    }
}
