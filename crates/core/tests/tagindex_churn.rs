//! Exact-capacity churn property test for [`nsf_core::tagindex::TagIndex`].
//!
//! The CAM decoder drives its tag index at the sized capacity for the
//! whole run: every unbind is immediately followed by a bind, so the
//! table lives at its maximum load factor with backward-shift deletion
//! constantly reshaping the probe clusters. This test reproduces that
//! regime differentially against `std::collections::HashMap`: fill to
//! exactly `cap` entries, then churn remove+reinsert pairs that keep the
//! table at (or one below) capacity, sweeping the whole key universe
//! after every step. The key universe is kept narrow relative to the
//! table so probe chains collide, merge, and wrap around the end of the
//! power-of-two array.

use nsf_core::tagindex::TagIndex;
use proptest::prelude::*;
use std::collections::HashMap;

/// Narrow key universe: at most 48 distinct keys feeding a table of at
/// most 64 slots guarantees long shared probe clusters and wraparound.
const KEYS: u32 = 48;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    // The differential shape needs `contains_key` *then* a checked
    // `insert` into both maps; the entry API would bypass the model.
    #[allow(clippy::map_entry)]
    fn exact_capacity_churn_matches_hashmap(
        cap in 1usize..=24,
        fill in proptest::collection::vec(0u32..KEYS, 48..64),
        churn in proptest::collection::vec(
            (0usize..KEYS as usize, 0u32..KEYS, any::<u32>()),
            1..160,
        ),
    ) {
        let mut t = TagIndex::with_capacity(cap);
        let mut m: HashMap<u32, u32> = HashMap::new();
        // Insertion-ordered list of resident keys, so the churn indices
        // pick victims deterministically.
        let mut present: Vec<u32> = Vec::new();
        let mut val = 0u32;

        // Phase 1: fill to *exactly* `cap` entries. Random draws first
        // (duplicates exercise the overwrite path), then a deterministic
        // top-up in case the draws repeated too much.
        for &k in &fill {
            if m.len() == cap {
                break;
            }
            if !m.contains_key(&k) {
                present.push(k);
            }
            prop_assert_eq!(t.insert(k, val), m.insert(k, val));
            val += 1;
        }
        for k in 0..KEYS {
            if m.len() == cap {
                break;
            }
            if !m.contains_key(&k) {
                present.push(k);
                prop_assert_eq!(t.insert(k, val), m.insert(k, val));
                val += 1;
            }
        }
        prop_assert_eq!(t.len(), cap, "fill phase must reach exact capacity");

        // Phase 2: churn at capacity. Each step removes one resident key
        // (forcing a backward shift inside a full-load cluster) and
        // immediately reinserts, so the table never dips more than one
        // entry below its sized maximum.
        for (idx, key_in, val_in) in churn {
            let victim = present[idx % present.len()];
            prop_assert_eq!(t.remove(victim), m.remove(&victim));
            present.retain(|&k| k != victim);

            // The reinserted key may equal a still-resident one, in which
            // case this is an overwrite and occupancy stays at cap - 1.
            if !m.contains_key(&key_in) {
                present.push(key_in);
            }
            prop_assert_eq!(t.insert(key_in, val_in), m.insert(key_in, val_in));
            prop_assert_eq!(t.len(), m.len());

            // If the reinsert overwrote, top back up with the smallest
            // absent key so every step starts from exact capacity again.
            for k in 0..KEYS {
                if m.len() == cap {
                    break;
                }
                if !m.contains_key(&k) {
                    present.push(k);
                    prop_assert_eq!(t.insert(k, val_in ^ k), m.insert(k, val_in ^ k));
                }
            }
            prop_assert_eq!(t.len(), cap);

            // Removing an absent key must be a no-op on both sides.
            let absent = (victim + 1) % KEYS;
            if !m.contains_key(&absent) {
                prop_assert_eq!(t.remove(absent), None);
                prop_assert_eq!(t.len(), m.len());
            }

            // Full-universe read-back after every step: any entry lost or
            // stranded by a bad backward shift shows up immediately.
            for q in 0..KEYS {
                prop_assert_eq!(t.get(q), m.get(&q).copied(), "key {}", q);
            }
        }
    }
}
