//! Self-contained backing stores for tests and standalone library use.
//!
//! In the full simulator the backing store is the data cache + Ctable
//! (`nsf-sim::backing`); here we provide [`MapStore`], a flat-latency map
//! that makes `nsf-core` usable and testable on its own, and
//! [`FaultyStore`], a failure-injection wrapper.

use crate::addr::Cid;
use crate::traits::{BackingStore, StoreFault};
use crate::Word;
use std::collections::HashMap;

/// An in-memory backing store with a fixed per-register latency.
#[derive(Debug, Default)]
pub struct MapStore {
    regs: HashMap<(Cid, u8), Word>,
    /// Cycles charged per register moved (a cache-hit-like constant).
    latency: u32,
    spills: u64,
    reloads: u64,
}

impl MapStore {
    /// Creates a store with the default 2-cycle per-register latency
    /// (a first-level cache hit).
    pub fn new() -> Self {
        MapStore {
            latency: 2,
            ..Default::default()
        }
    }

    /// Creates a store with an explicit per-register latency.
    pub fn with_latency(latency: u32) -> Self {
        MapStore {
            latency,
            ..Default::default()
        }
    }

    /// Number of spill operations served.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Number of reload operations served.
    pub fn reloads(&self) -> u64 {
        self.reloads
    }

    /// Direct inspection of a backed register (tests).
    pub fn peek(&self, cid: Cid, offset: u8) -> Option<Word> {
        self.regs.get(&(cid, offset)).copied()
    }

    /// Pre-populates a backed register (tests).
    pub fn preload(&mut self, cid: Cid, offset: u8, value: Word) {
        self.regs.insert((cid, offset), value);
    }
}

impl BackingStore for MapStore {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        self.spills += 1;
        self.regs.insert((cid, offset), value);
        Ok(self.latency)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        self.reloads += 1;
        Ok((self.regs.get(&(cid, offset)).copied(), self.latency))
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.regs.contains_key(&(cid, offset))
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.regs.keys().any(|&(c, _)| c == cid)
    }

    fn discard_context(&mut self, cid: Cid) {
        self.regs.retain(|&(c, _), _| c != cid);
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        self.regs.remove(&(cid, offset));
    }
}

/// A wrapper that injects faults after a countdown — used to verify that
/// register files surface backing failures as typed errors instead of
/// panicking.
pub struct FaultyStore<S> {
    inner: S,
    /// Operations remaining before every subsequent spill/reload faults.
    countdown: u64,
}

impl<S: BackingStore> FaultyStore<S> {
    /// Wraps `inner`; the first `ok_ops` spill/reload operations succeed,
    /// everything after faults.
    pub fn new(inner: S, ok_ops: u64) -> Self {
        FaultyStore {
            inner,
            countdown: ok_ops,
        }
    }

    fn tick(&mut self) -> Result<(), StoreFault> {
        if self.countdown == 0 {
            Err(StoreFault::Io("injected fault".into()))
        } else {
            self.countdown -= 1;
            Ok(())
        }
    }
}

impl<S: BackingStore> BackingStore for FaultyStore<S> {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        self.tick()?;
        self.inner.spill(cid, offset, value)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        self.tick()?;
        self.inner.reload(cid, offset)
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.inner.is_present(cid, offset)
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.inner.any_present(cid)
    }

    fn discard_context(&mut self, cid: Cid) {
        self.inner.discard_context(cid);
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        self.inner.discard_reg(cid, offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_then_reload() {
        let mut s = MapStore::new();
        assert_eq!(s.spill(1, 2, 99).unwrap(), 2);
        assert_eq!(s.reload(1, 2).unwrap(), (Some(99), 2));
        assert_eq!(s.reload(1, 3).unwrap(), (None, 2));
        assert!(s.is_present(1, 2));
        assert!(!s.is_present(1, 3));
        assert!(s.any_present(1));
        assert!(!s.any_present(2));
    }

    #[test]
    fn discard_context_drops_only_that_cid() {
        let mut s = MapStore::new();
        s.spill(1, 0, 1).unwrap();
        s.spill(2, 0, 2).unwrap();
        s.discard_context(1);
        assert!(!s.any_present(1));
        assert!(s.any_present(2));
    }

    #[test]
    fn faulty_store_counts_down() {
        let mut s = FaultyStore::new(MapStore::new(), 2);
        assert!(s.spill(1, 0, 1).is_ok());
        assert!(s.reload(1, 0).is_ok());
        assert!(matches!(s.spill(1, 1, 2), Err(StoreFault::Io(_))));
    }
}
