//! Self-contained backing stores for tests and standalone library use.
//!
//! In the full simulator the backing store is the data cache + Ctable
//! (`nsf-sim::backing`); here we provide [`MapStore`], a flat-latency map
//! that makes `nsf-core` usable and testable on its own, and
//! [`FaultyStore`], a failure-injection wrapper.

use crate::addr::Cid;
use crate::traits::{BackingStore, StoreFault};
use crate::Word;
use std::collections::HashMap;

/// One context's backing page: a dense 256-entry register array (offsets
/// are `u8`) plus a presence bitmap. Every per-register operation is O(1),
/// and `any_present` is a counter check rather than a map walk.
#[derive(Debug)]
struct Page {
    regs: Box<[Word]>,
    present: [u64; 4],
    count: u16,
}

impl Page {
    fn new() -> Self {
        Page {
            regs: vec![0; 256].into_boxed_slice(),
            present: [0; 4],
            count: 0,
        }
    }

    fn has(&self, offset: u8) -> bool {
        self.present[usize::from(offset) >> 6] & (1 << (offset & 63)) != 0
    }

    fn get(&self, offset: u8) -> Option<Word> {
        self.has(offset).then(|| self.regs[usize::from(offset)])
    }

    fn set(&mut self, offset: u8, value: Word) {
        if !self.has(offset) {
            self.present[usize::from(offset) >> 6] |= 1 << (offset & 63);
            self.count += 1;
        }
        self.regs[usize::from(offset)] = value;
    }

    fn clear(&mut self, offset: u8) {
        if self.has(offset) {
            self.present[usize::from(offset) >> 6] &= !(1 << (offset & 63));
            self.count -= 1;
        }
    }
}

/// An in-memory backing store with a fixed per-register latency.
///
/// Registers live in per-context [`Page`]s, so context-granular queries
/// (`any_present`) and teardown (`discard_context`) touch one map entry
/// instead of walking every backed register in the machine — the seed's
/// flat `(Cid, offset)` map made both O(total backed registers), which
/// dominated workloads that create and retire many activations.
#[derive(Debug, Default)]
pub struct MapStore {
    pages: HashMap<Cid, Page>,
    /// Cycles charged per register moved (a cache-hit-like constant).
    latency: u32,
    spills: u64,
    reloads: u64,
}

impl MapStore {
    /// Creates a store with the default 2-cycle per-register latency
    /// (a first-level cache hit).
    pub fn new() -> Self {
        MapStore {
            latency: 2,
            ..Default::default()
        }
    }

    /// Creates a store with an explicit per-register latency.
    pub fn with_latency(latency: u32) -> Self {
        MapStore {
            latency,
            ..Default::default()
        }
    }

    /// Number of spill operations served.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Number of reload operations served.
    pub fn reloads(&self) -> u64 {
        self.reloads
    }

    /// Direct inspection of a backed register (tests).
    pub fn peek(&self, cid: Cid, offset: u8) -> Option<Word> {
        self.pages.get(&cid).and_then(|p| p.get(offset))
    }

    /// Pre-populates a backed register (tests).
    pub fn preload(&mut self, cid: Cid, offset: u8, value: Word) {
        self.pages
            .entry(cid)
            .or_insert_with(Page::new)
            .set(offset, value);
    }
}

impl BackingStore for MapStore {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        self.spills += 1;
        self.pages
            .entry(cid)
            .or_insert_with(Page::new)
            .set(offset, value);
        Ok(self.latency)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        self.reloads += 1;
        Ok((self.peek(cid, offset), self.latency))
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.pages.get(&cid).is_some_and(|p| p.has(offset))
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.pages.get(&cid).is_some_and(|p| p.count > 0)
    }

    fn discard_context(&mut self, cid: Cid) {
        self.pages.remove(&cid);
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        if let Some(p) = self.pages.get_mut(&cid) {
            p.clear(offset);
        }
    }
}

/// When a [`FaultyStore`] injects its fault (all counts are 1-based and
/// measured from the most recent [`FaultyStore::arm`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Never faults (a transparent wrapper).
    Never,
    /// The first `N` spill/reload operations succeed; every later one
    /// faults (persistent — the historical countdown behavior).
    AfterOps(u64),
    /// The `n`th spill faults once; the store then heals.
    NthSpill(u64),
    /// The `n`th reload faults once; the store then heals.
    NthReload(u64),
    /// The `n`th spill-or-reload touching `cid` faults once; the store
    /// then heals.
    NthForContext(Cid, u64),
}

/// A wrapper that injects faults per a deterministic [`FaultPlan`] — used
/// to verify that register files surface backing failures as typed errors
/// instead of panicking, and by the differential checker to prove faults
/// leave resident state intact.
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
    /// Spill/reload operations observed since the last arm.
    ops: u64,
    spills: u64,
    reloads: u64,
    /// Ops touching the planned context since the last arm.
    ctx_ops: u64,
    /// Faults injected over the store's whole lifetime.
    injected: u64,
}

impl<S: BackingStore> FaultyStore<S> {
    /// Wraps `inner`; the first `ok_ops` spill/reload operations succeed,
    /// everything after faults (shorthand for [`FaultPlan::AfterOps`]).
    pub fn new(inner: S, ok_ops: u64) -> Self {
        Self::with_plan(inner, FaultPlan::AfterOps(ok_ops))
    }

    /// Wraps `inner` with an explicit fault plan.
    pub fn with_plan(inner: S, plan: FaultPlan) -> Self {
        FaultyStore {
            inner,
            plan,
            ops: 0,
            spills: 0,
            reloads: 0,
            ctx_ops: 0,
            injected: 0,
        }
    }

    /// Replaces the fault plan and restarts its counters (counts in the
    /// new plan are relative to this call).
    pub fn arm(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.ops = 0;
        self.spills = 0;
        self.reloads = 0;
        self.ctx_ops = 0;
    }

    /// Number of faults injected so far (lifetime total).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn tick(&mut self, is_spill: bool, cid: Cid) -> Result<(), StoreFault> {
        self.ops += 1;
        if is_spill {
            self.spills += 1;
        } else {
            self.reloads += 1;
        }
        let fire = match self.plan {
            FaultPlan::Never => false,
            FaultPlan::AfterOps(ok_ops) => self.ops > ok_ops,
            FaultPlan::NthSpill(n) => is_spill && self.spills == n,
            FaultPlan::NthReload(n) => !is_spill && self.reloads == n,
            FaultPlan::NthForContext(planned, n) => {
                if cid == planned {
                    self.ctx_ops += 1;
                }
                cid == planned && self.ctx_ops == n
            }
        };
        if fire {
            // One-shot plans heal after firing; AfterOps keeps faulting.
            if !matches!(self.plan, FaultPlan::AfterOps(_)) {
                self.plan = FaultPlan::Never;
            }
            self.injected += 1;
            Err(StoreFault::Io("injected fault".into()))
        } else {
            Ok(())
        }
    }
}

impl<S: BackingStore> BackingStore for FaultyStore<S> {
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault> {
        self.tick(true, cid)?;
        self.inner.spill(cid, offset, value)
    }

    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault> {
        self.tick(false, cid)?;
        self.inner.reload(cid, offset)
    }

    fn is_present(&self, cid: Cid, offset: u8) -> bool {
        self.inner.is_present(cid, offset)
    }

    fn any_present(&self, cid: Cid) -> bool {
        self.inner.any_present(cid)
    }

    fn discard_context(&mut self, cid: Cid) {
        self.inner.discard_context(cid);
    }

    fn discard_reg(&mut self, cid: Cid, offset: u8) {
        self.inner.discard_reg(cid, offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_then_reload() {
        let mut s = MapStore::new();
        assert_eq!(s.spill(1, 2, 99).unwrap(), 2);
        assert_eq!(s.reload(1, 2).unwrap(), (Some(99), 2));
        assert_eq!(s.reload(1, 3).unwrap(), (None, 2));
        assert!(s.is_present(1, 2));
        assert!(!s.is_present(1, 3));
        assert!(s.any_present(1));
        assert!(!s.any_present(2));
    }

    #[test]
    fn discard_context_drops_only_that_cid() {
        let mut s = MapStore::new();
        s.spill(1, 0, 1).unwrap();
        s.spill(2, 0, 2).unwrap();
        s.discard_context(1);
        assert!(!s.any_present(1));
        assert!(s.any_present(2));
        assert_eq!(s.peek(1, 0), None, "peek sees the discard");
        assert_eq!(s.peek(2, 0), Some(2));
    }

    #[test]
    fn discard_reg_clears_presence() {
        let mut s = MapStore::new();
        s.spill(3, 0, 7).unwrap();
        s.spill(3, 63, 8).unwrap();
        s.spill(3, 64, 9).unwrap(); // second presence word
        s.spill(3, 255, 10).unwrap(); // last offset
        s.discard_reg(3, 63);
        assert!(!s.is_present(3, 63));
        assert!(s.is_present(3, 0));
        assert!(s.is_present(3, 64));
        assert!(s.is_present(3, 255));
        assert!(s.any_present(3));
        s.discard_reg(3, 0);
        s.discard_reg(3, 64);
        s.discard_reg(3, 255);
        assert!(!s.any_present(3), "count reaches zero");
        // Re-spilling after a full clear works and re-reports presence.
        s.spill(3, 64, 11).unwrap();
        assert_eq!(s.peek(3, 64), Some(11));
    }

    #[test]
    fn preload_and_peek_roundtrip() {
        let mut s = MapStore::new();
        s.preload(9, 200, 12345);
        assert_eq!(s.peek(9, 200), Some(12345));
        assert!(s.is_present(9, 200));
        assert_eq!(s.reload(9, 200).unwrap(), (Some(12345), 2));
    }

    #[test]
    fn faulty_store_counts_down() {
        let mut s = FaultyStore::new(MapStore::new(), 2);
        assert!(s.spill(1, 0, 1).is_ok());
        assert!(s.reload(1, 0).is_ok());
        assert!(matches!(s.spill(1, 1, 2), Err(StoreFault::Io(_))));
    }

    #[test]
    fn nth_spill_plan_fires_once_then_heals() {
        let mut s = FaultyStore::with_plan(MapStore::new(), FaultPlan::NthSpill(2));
        assert!(s.spill(1, 0, 1).is_ok());
        assert!(s.reload(1, 0).is_ok(), "reloads don't count toward spills");
        assert!(matches!(s.spill(1, 1, 2), Err(StoreFault::Io(_))));
        assert_eq!(s.injected(), 1);
        // Healed: the faulted write never reached the store, a retry does.
        assert!(s.spill(1, 1, 2).is_ok());
        assert_eq!(s.inner().peek(1, 1), Some(2));
        assert_eq!(s.injected(), 1);
    }

    #[test]
    fn nth_reload_plan_counts_only_reloads() {
        let mut s = FaultyStore::with_plan(MapStore::new(), FaultPlan::NthReload(1));
        assert!(s.spill(1, 0, 7).is_ok());
        assert!(matches!(s.reload(1, 0), Err(StoreFault::Io(_))));
        assert_eq!(s.reload(1, 0).unwrap().0, Some(7));
    }

    #[test]
    fn per_context_plan_ignores_other_contexts() {
        let mut s = FaultyStore::with_plan(MapStore::new(), FaultPlan::NthForContext(5, 2));
        assert!(s.spill(4, 0, 1).is_ok());
        assert!(s.spill(5, 0, 1).is_ok());
        assert!(s.spill(4, 1, 1).is_ok());
        assert!(matches!(s.reload(5, 0), Err(StoreFault::Io(_))));
        assert!(s.reload(5, 0).is_ok(), "one-shot plan heals");
    }

    #[test]
    fn arm_restarts_counters() {
        let mut s = FaultyStore::with_plan(MapStore::new(), FaultPlan::Never);
        for i in 0..10 {
            s.spill(1, i, 0).unwrap();
        }
        s.arm(FaultPlan::NthSpill(1));
        assert!(
            matches!(s.spill(1, 0, 0), Err(StoreFault::Io(_))),
            "counts are relative to arm, not store lifetime"
        );
    }

    #[test]
    fn faulty_store_forwards_queries() {
        let mut s = FaultyStore::new(MapStore::new(), 10);
        s.spill(4, 1, 42).unwrap();
        assert!(s.is_present(4, 1));
        assert!(s.any_present(4));
        s.discard_reg(4, 1);
        assert!(!s.any_present(4));
        s.spill(4, 2, 43).unwrap();
        s.discard_context(4);
        assert!(!s.is_present(4, 2));
    }
}
