//! Victim selection for line (NSF) and frame (segmented) eviction.
//!
//! The paper simulates LRU ("This study simulates a least recently used
//! (LRU) strategy", §4.2); FIFO and seeded-random policies are provided as
//! ablation points for the replacement-policy bench.
//!
//! The hardware tracks recency with per-line state updated in parallel on
//! every access; the model mirrors that with **intrusive doubly-linked
//! order lists** over the slot indices, so `touch`, `allocate` and `pick`
//! are all O(1) with no allocation — a timestamp scan would make every
//! eviction O(lines) and bound large-file sweeps by simulator overhead
//! instead of modeled behaviour.
//!
//! Equivalence with the historical timestamp scan (which survives as
//! [`TimestampPicker`] for differential tests): a victim is only ever
//! picked when the file is **full**, so every candidate slot has been
//! `allocate`d at least once and therefore carries a distinct logical
//! timestamp — the minimum is unique and equals the head of the
//! corresponding order list. The seeded `Random` policy drew
//! `gen_range(0..candidates.len())` over the full ascending slot list,
//! which is exactly `gen_range(0..slots)`; the RNG stream is unchanged.

use crate::policy::ReplacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An intrusive doubly-linked list over slot indices `0..slots`, with a
/// sentinel node at index `slots`. Front = least recent, back = most
/// recent. All operations are O(1) and allocation-free after `new`.
#[derive(Debug)]
struct OrderList {
    prev: Vec<u32>,
    next: Vec<u32>,
}

impl OrderList {
    /// A list containing `0, 1, …, slots-1` in ascending order (matching
    /// the timestamp scan's ascending-index tie-break for untouched slots).
    fn new(slots: usize) -> Self {
        let n = slots as u32;
        // Circular through the sentinel: prev[i] = i-1, next[i] = i+1.
        let prev = (0..=n).map(|i| if i == 0 { n } else { i - 1 }).collect();
        let next = (0..=n).map(|i| if i == n { 0 } else { i + 1 }).collect();
        OrderList { prev, next }
    }

    fn sentinel(&self) -> u32 {
        (self.prev.len() - 1) as u32
    }

    /// The least recently moved slot.
    fn front(&self) -> usize {
        debug_assert_ne!(self.next[self.sentinel() as usize], self.sentinel());
        self.next[self.sentinel() as usize] as usize
    }

    /// Moves `slot` to the back (most recent position).
    fn move_to_back(&mut self, slot: usize) {
        let s = slot as u32;
        let (p, n) = (self.prev[slot], self.next[slot]);
        if n == self.sentinel() {
            return; // already at the back
        }
        // Unlink.
        self.next[p as usize] = n;
        self.prev[n as usize] = p;
        // Insert before the sentinel.
        let sent = self.sentinel();
        let tail = self.prev[sent as usize];
        self.next[tail as usize] = s;
        self.prev[slot] = tail;
        self.next[slot] = sent;
        self.prev[sent as usize] = s;
    }
}

/// Tracks recency/age per slot and picks eviction victims in O(1).
#[derive(Debug)]
pub struct VictimPicker {
    policy: ReplacementPolicy,
    slots: usize,
    /// Recency order (LRU): front = least recently touched.
    recency: OrderList,
    /// Allocation order (FIFO): front = oldest allocation.
    age: OrderList,
    rng: Option<StdRng>,
}

impl VictimPicker {
    /// Creates a picker for `slots` slots under `policy`.
    pub fn new(slots: usize, policy: ReplacementPolicy) -> Self {
        let rng = match policy {
            ReplacementPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        VictimPicker {
            policy,
            slots,
            recency: OrderList::new(slots),
            age: OrderList::new(slots),
            rng,
        }
    }

    /// Records an access to `slot`.
    pub fn touch(&mut self, slot: usize) {
        self.recency.move_to_back(slot);
    }

    /// Records a (re)allocation of `slot`.
    pub fn allocate(&mut self, slot: usize) {
        self.age.move_to_back(slot);
        self.recency.move_to_back(slot);
    }

    /// Chooses a victim among all slots. The caller guarantees the file
    /// is full (eviction only happens when no free slot exists), so every
    /// slot is a candidate.
    ///
    /// # Panics
    ///
    /// Panics if the picker has zero slots.
    pub fn pick(&mut self) -> usize {
        assert!(self.slots > 0, "no eviction candidates");
        match self.policy {
            ReplacementPolicy::Lru => self.recency.front(),
            ReplacementPolicy::Fifo => self.age.front(),
            ReplacementPolicy::Random { .. } => {
                let rng = self.rng.as_mut().expect("rng present for Random policy");
                rng.gen_range(0..self.slots)
            }
        }
    }
}

/// The historical timestamp-scan picker: O(candidates) per pick. Retained
/// as the **reference implementation** for the equivalence property tests
/// (`tests/replacement_equiv.rs`) and as documentation of the semantics
/// [`VictimPicker`] must preserve.
#[derive(Debug)]
pub struct TimestampPicker {
    policy: ReplacementPolicy,
    /// Last-touch timestamp per slot (LRU).
    touched: Vec<u64>,
    /// Allocation timestamp per slot (FIFO).
    allocated: Vec<u64>,
    clock: u64,
    rng: Option<StdRng>,
}

impl TimestampPicker {
    /// Creates a picker for `slots` slots under `policy`.
    pub fn new(slots: usize, policy: ReplacementPolicy) -> Self {
        let rng = match policy {
            ReplacementPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        TimestampPicker {
            policy,
            touched: vec![0; slots],
            allocated: vec![0; slots],
            clock: 0,
            rng,
        }
    }

    /// Records an access to `slot`.
    pub fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.touched[slot] = self.clock;
    }

    /// Records a (re)allocation of `slot`.
    pub fn allocate(&mut self, slot: usize) {
        self.clock += 1;
        self.allocated[slot] = self.clock;
        self.touched[slot] = self.clock;
    }

    /// Chooses a victim among `candidates` (non-empty) by scanning
    /// timestamps; ties break toward the earliest candidate.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn pick(&mut self, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no eviction candidates");
        match self.policy {
            ReplacementPolicy::Lru => *candidates
                .iter()
                .min_by_key(|&&s| self.touched[s])
                .expect("non-empty"),
            ReplacementPolicy::Fifo => *candidates
                .iter()
                .min_by_key(|&&s| self.allocated[s])
                .expect("non-empty"),
            ReplacementPolicy::Random { .. } => {
                let rng = self.rng.as_mut().expect("rng present for Random policy");
                candidates[rng.gen_range(0..candidates.len())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recently_touched() {
        let mut p = VictimPicker::new(3, ReplacementPolicy::Lru);
        p.allocate(0);
        p.allocate(1);
        p.allocate(2);
        p.touch(0); // 1 is now LRU
        assert_eq!(p.pick(), 1);
        p.touch(1);
        assert_eq!(p.pick(), 2);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = VictimPicker::new(3, ReplacementPolicy::Fifo);
        p.allocate(0);
        p.allocate(1);
        p.allocate(2);
        p.touch(0);
        p.touch(0);
        assert_eq!(p.pick(), 0, "oldest allocation evicted first");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut p = VictimPicker::new(8, ReplacementPolicy::Random { seed });
            (0..10).map(|_| p.pick()).collect::<Vec<_>>()
        };
        assert_eq!(picks(42), picks(42));
    }

    #[test]
    fn random_stream_matches_reference() {
        let mut new = VictimPicker::new(8, ReplacementPolicy::Random { seed: 7 });
        let mut old = TimestampPicker::new(8, ReplacementPolicy::Random { seed: 7 });
        let all: Vec<usize> = (0..8).collect();
        for _ in 0..32 {
            assert_eq!(new.pick(), old.pick(&all));
        }
    }

    #[test]
    fn untouched_slots_break_ties_by_ascending_index() {
        // Before any allocation, both implementations must agree on slot 0.
        let mut new = VictimPicker::new(4, ReplacementPolicy::Lru);
        let mut old = TimestampPicker::new(4, ReplacementPolicy::Lru);
        assert_eq!(new.pick(), 0);
        assert_eq!(old.pick(&[0, 1, 2, 3]), 0);
    }

    #[test]
    fn reallocation_moves_slot_to_back_of_both_orders() {
        let mut p = VictimPicker::new(3, ReplacementPolicy::Fifo);
        p.allocate(0);
        p.allocate(1);
        p.allocate(2);
        p.allocate(0); // 0 is now the *newest* allocation
        assert_eq!(p.pick(), 1);
    }

    #[test]
    #[should_panic(expected = "no eviction candidates")]
    fn empty_picker_panics() {
        let mut p = VictimPicker::new(0, ReplacementPolicy::Lru);
        p.pick();
    }
}
