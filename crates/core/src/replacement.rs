//! Victim selection for line (NSF) and frame (segmented) eviction.
//!
//! The paper simulates LRU ("This study simulates a least recently used
//! (LRU) strategy", §4.2); FIFO and seeded-random policies are provided as
//! ablation points for the replacement-policy bench.

use crate::policy::ReplacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tracks recency/age per slot and picks eviction victims.
#[derive(Debug)]
pub struct VictimPicker {
    policy: ReplacementPolicy,
    /// Last-touch timestamp per slot (LRU).
    touched: Vec<u64>,
    /// Allocation timestamp per slot (FIFO).
    allocated: Vec<u64>,
    clock: u64,
    rng: Option<StdRng>,
}

impl VictimPicker {
    /// Creates a picker for `slots` slots under `policy`.
    pub fn new(slots: usize, policy: ReplacementPolicy) -> Self {
        let rng = match policy {
            ReplacementPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        VictimPicker {
            policy,
            touched: vec![0; slots],
            allocated: vec![0; slots],
            clock: 0,
            rng,
        }
    }

    /// Records an access to `slot`.
    pub fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.touched[slot] = self.clock;
    }

    /// Records a (re)allocation of `slot`.
    pub fn allocate(&mut self, slot: usize) {
        self.clock += 1;
        self.allocated[slot] = self.clock;
        self.touched[slot] = self.clock;
    }

    /// Chooses a victim among `candidates` (non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty — the caller guarantees the file is
    /// full, so there is always a victim.
    pub fn pick(&mut self, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no eviction candidates");
        match self.policy {
            ReplacementPolicy::Lru => *candidates
                .iter()
                .min_by_key(|&&s| self.touched[s])
                .expect("non-empty"),
            ReplacementPolicy::Fifo => *candidates
                .iter()
                .min_by_key(|&&s| self.allocated[s])
                .expect("non-empty"),
            ReplacementPolicy::Random { .. } => {
                let rng = self.rng.as_mut().expect("rng present for Random policy");
                candidates[rng.gen_range(0..candidates.len())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recently_touched() {
        let mut p = VictimPicker::new(3, ReplacementPolicy::Lru);
        p.allocate(0);
        p.allocate(1);
        p.allocate(2);
        p.touch(0); // 1 is now LRU
        assert_eq!(p.pick(&[0, 1, 2]), 1);
        p.touch(1);
        assert_eq!(p.pick(&[0, 1, 2]), 2);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = VictimPicker::new(3, ReplacementPolicy::Fifo);
        p.allocate(0);
        p.allocate(1);
        p.allocate(2);
        p.touch(0);
        p.touch(0);
        assert_eq!(p.pick(&[0, 1, 2]), 0, "oldest allocation evicted first");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut p = VictimPicker::new(8, ReplacementPolicy::Random { seed });
            (0..10)
                .map(|_| p.pick(&[0, 1, 2, 3, 4, 5, 6, 7]))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(42), picks(42));
    }

    #[test]
    fn respects_candidate_subset() {
        let mut p = VictimPicker::new(4, ReplacementPolicy::Lru);
        for s in 0..4 {
            p.allocate(s);
        }
        // Slot 0 is globally LRU, but only 2 and 3 are candidates.
        assert_eq!(p.pick(&[2, 3]), 2);
    }

    #[test]
    #[should_panic(expected = "no eviction candidates")]
    fn empty_candidates_panics() {
        let mut p = VictimPicker::new(1, ReplacementPolicy::Lru);
        p.pick(&[]);
    }
}
