//! Register naming: the `<Context ID : offset>` address space.
//!
//! Paper §4.2: "A register address in the NSF is the concatenation of its
//! Context ID and offset. The current instruction specifies the register
//! offset, and a processor status word supplies the current CID."

use std::fmt;

/// A Context ID — a short integer that uniquely identifies an activation
/// among those resident in the register file. CIDs are *not* virtual
/// addresses and *not* global thread identifiers; the runtime assigns them
/// freely (a fresh CID per procedure call, per thread, or any other policy).
pub type Cid = u16;

/// A full register name: context plus compiled register offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegAddr {
    /// Which activation this register belongs to.
    pub cid: Cid,
    /// Register offset within the activation (the short field compiled
    /// into the instruction).
    pub offset: u8,
}

impl RegAddr {
    /// Convenience constructor.
    pub fn new(cid: Cid, offset: u8) -> Self {
        RegAddr { cid, offset }
    }

    /// The index of the line containing this register, for a file with
    /// `regs_per_line` registers per line.
    pub fn line_index(self, regs_per_line: u8) -> u8 {
        self.offset / regs_per_line
    }

    /// The register's position within its line.
    pub fn line_slot(self, regs_per_line: u8) -> u8 {
        self.offset % regs_per_line
    }
}

impl fmt::Display for RegAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}:{}>", self.cid, self.offset)
    }
}

impl fmt::Debug for RegAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        let a = RegAddr::new(7, 13);
        assert_eq!(a.line_index(4), 3);
        assert_eq!(a.line_slot(4), 1);
        assert_eq!(a.line_index(1), 13);
        assert_eq!(a.line_slot(1), 0);
    }

    #[test]
    fn display() {
        assert_eq!(RegAddr::new(3, 9).to_string(), "<3:9>");
    }
}
