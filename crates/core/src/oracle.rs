//! An infinite, never-spilling register file used as a functional oracle.
//!
//! [`OracleFile`] holds every `<CID:offset>` register it has ever seen, with
//! zero-cost accesses and no backing traffic. Differential tests drive the
//! same operation sequence through an oracle and a real organization and
//! assert the visible values agree — the register file organizations must
//! be *transparent* to program semantics.

use crate::addr::{Cid, RegAddr};
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;
use std::collections::HashMap;

/// The oracle. See module docs.
#[derive(Default)]
pub struct OracleFile {
    regs: HashMap<RegAddr, Word>,
    stats: RegFileStats,
}

impl OracleFile {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RegisterFile for OracleFile {
    fn read(
        &mut self,
        addr: RegAddr,
        _store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.stats.reads += 1;
        match self.regs.get(&addr) {
            Some(&v) => {
                self.stats.read_hits += 1;
                Ok(Access::hit(v))
            }
            None => {
                self.stats.read_misses += 1;
                Err(RegFileError::ReadUndefined(addr))
            }
        }
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        _store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.stats.writes += 1;
        self.stats.write_hits += 1;
        self.regs.insert(addr, value);
        Ok(Access::hit(value))
    }

    fn switch_to(&mut self, _cid: Cid, _store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.stats.context_switches += 1;
        self.stats.switch_hits += 1;
        Ok(0)
    }

    fn free_context(&mut self, cid: Cid, _store: &mut dyn BackingStore) {
        self.regs.retain(|a, _| a.cid != cid);
    }

    fn free_reg(&mut self, addr: RegAddr, _store: &mut dyn BackingStore) {
        self.regs.remove(&addr);
    }

    fn capacity(&self) -> u32 {
        u32::MAX
    }

    fn occupancy(&self) -> Occupancy {
        let mut cids: Vec<Cid> = self.regs.keys().map(|a| a.cid).collect();
        cids.sort_unstable();
        cids.dedup();
        Occupancy {
            valid_regs: self.regs.len() as u32,
            resident_contexts: cids.len() as u32,
        }
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = RegFileStats::default();
    }

    fn describe(&self) -> String {
        "Oracle (infinite)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;

    #[test]
    fn remembers_everything() {
        let mut f = OracleFile::new();
        let mut s = MapStore::new();
        for cid in 0..100u16 {
            f.write(RegAddr::new(cid, 0), u32::from(cid), &mut s)
                .unwrap();
        }
        for cid in 0..100u16 {
            assert_eq!(
                f.read(RegAddr::new(cid, 0), &mut s).unwrap().value,
                u32::from(cid)
            );
        }
        assert_eq!(f.occupancy().resident_contexts, 100);
        assert_eq!(f.stats().read_misses, 0);
    }

    #[test]
    fn free_context_forgets() {
        let mut f = OracleFile::new();
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 5, &mut s).unwrap();
        f.free_context(1, &mut s);
        assert!(f.read(RegAddr::new(1, 0), &mut s).is_err());
    }
}
