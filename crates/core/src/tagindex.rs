//! A tiny open-addressed hash index for the CAM decoder's tag lookup.
//!
//! [`crate::cam::AssocDecoder::lookup`] runs once per simulated register
//! access, which makes it the hottest call in every NSF sweep.
//! `std::collections::HashMap`'s DoS-resistant SipHash spends more time
//! hashing the 3-byte tag than the rest of the access path combined, so
//! this index packs the tag into a `u32` key, hashes it with a single
//! Fibonacci multiply, and probes linearly in a power-of-two table sized
//! once at construction. The decoder never binds more tags than it has
//! physical lines, so the table is built at twice that capacity and the
//! load factor stays at or below one half — probe chains are short.
//! Deletion compacts by backward shifting, so churny bind/unbind traffic
//! never accumulates tombstones.
//!
//! Results-path safety: the map is consulted only through point queries
//! (`get`/`insert`/`remove`) — it exposes no iteration — so hash-order can
//! never leak into simulation statistics.

/// Marker for an empty table slot. Callers' keys must be below this;
/// the decoder's packed `<cid:16, line:8>` tags top out at `0x00FF_FFFF`.
const EMPTY: u32 = u32::MAX;

/// Fibonacci hashing constant: `2^32 / golden ratio`, odd.
const HASH_MUL: u32 = 0x9E37_79B9;

/// A fixed-capacity `u32 -> u32` hash table with linear probing.
#[derive(Debug, Clone)]
pub struct TagIndex {
    keys: Vec<u32>,
    vals: Vec<u32>,
    /// `table_len - 1`; table lengths are powers of two.
    mask: usize,
    /// Right-shift applied to the hash product to keep its *high* bits
    /// (the low bits of a multiplicative hash mix poorly).
    shift: u32,
    len: usize,
}

impl TagIndex {
    /// Builds an index that can hold `cap` entries. The table is sized to
    /// the next power of two at or above `2 * cap`, fixing the maximum
    /// load factor at one half.
    pub fn with_capacity(cap: usize) -> Self {
        let table = (cap.max(1) * 2).next_power_of_two();
        TagIndex {
            keys: vec![EMPTY; table],
            vals: vec![0; table],
            mask: table - 1,
            shift: 32 - table.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u32) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u32) -> Option<u32> {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `key -> val`, returning the previous value if the key was
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) if the insert would push the load
    /// factor above one half — the caller sized the table for a known
    /// maximum entry count.
    pub fn insert(&mut self, key: u32, val: u32) -> Option<u32> {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            if k == EMPTY {
                debug_assert!(2 * (self.len + 1) <= self.keys.len(), "TagIndex overfilled");
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value if it was present. The probe
    /// chain behind the hole is compacted by backward shifting.
    pub fn remove(&mut self, key: u32) -> Option<u32> {
        debug_assert_ne!(key, EMPTY);
        let mut hole = self.home(key);
        loop {
            let k = self.keys[hole];
            if k == key {
                break;
            }
            if k == EMPTY {
                return None;
            }
            hole = (hole + 1) & self.mask;
        }
        let old = self.vals[hole];
        // Backward-shift compaction: walk the cluster after the hole and
        // pull back any entry whose home position lies at or before the
        // hole (cyclically), preserving the invariant that every entry is
        // reachable from its home by forward probing.
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let dist_from_home = j.wrapping_sub(self.home(k)) & self.mask;
            let dist_from_hole = j.wrapping_sub(hole) & self.mask;
            if dist_from_home >= dist_from_hole {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove() {
        let mut t = TagIndex::with_capacity(4);
        assert!(t.is_empty());
        assert_eq!(t.insert(7, 1), None);
        assert_eq!(t.insert(9, 2), None);
        assert_eq!(t.get(7), Some(1));
        assert_eq!(t.get(9), Some(2));
        assert_eq!(t.get(8), None);
        assert_eq!(t.insert(7, 3), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(7), Some(3));
        assert_eq!(t.remove(7), None);
        assert_eq!(t.get(7), None);
        assert_eq!(t.get(9), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_capacity_still_works() {
        let mut t = TagIndex::with_capacity(0);
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.remove(1), Some(10));
    }

    /// Force every key into the same home slot (keys differing only in
    /// high bits collide after the multiply keeps few bits) to exercise
    /// the probe chain and backward-shift paths deterministically.
    #[test]
    fn colliding_cluster_survives_middle_removal() {
        let mut t = TagIndex::with_capacity(8); // table of 16
                                                // Find keys sharing one home slot.
        let mut cluster = Vec::new();
        let mut probe_key = 1u32;
        let want = t.home(1);
        while cluster.len() < 4 {
            if t.home(probe_key) == want {
                cluster.push(probe_key);
            }
            probe_key += 1;
        }
        for (i, &k) in cluster.iter().enumerate() {
            t.insert(k, i as u32);
        }
        // Remove from the middle of the chain; the rest must stay findable.
        t.remove(cluster[1]);
        assert_eq!(t.get(cluster[0]), Some(0));
        assert_eq!(t.get(cluster[1]), None);
        assert_eq!(t.get(cluster[2]), Some(2));
        assert_eq!(t.get(cluster[3]), Some(3));
    }

    #[test]
    fn differential_churn_against_std_hashmap() {
        let mut rng = StdRng::seed_from_u64(0xCA11_AB1E);
        for round in 0..32 {
            let cap = 1 + (round % 7) * 9; // 1..=55
            let mut t = TagIndex::with_capacity(cap);
            let mut m: HashMap<u32, u32> = HashMap::new();
            for step in 0..4000u32 {
                // Small key space forces heavy collision + reuse.
                let key = rng.gen_range(0..64u32);
                if m.len() < cap && rng.gen_range(0..3u32) != 0 {
                    assert_eq!(t.insert(key, step), m.insert(key, step), "round {round}");
                } else {
                    assert_eq!(t.remove(key), m.remove(&key), "round {round}");
                }
                assert_eq!(t.len(), m.len());
                let q = rng.gen_range(0..64u32);
                assert_eq!(t.get(q), m.get(&q).copied(), "round {round} step {step}");
            }
        }
    }
}
