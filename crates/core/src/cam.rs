//! The associative address decoder.
//!
//! Paper §4.1: "Each line of the address decoder contains a content
//! addressable memory (CAM) wide enough to hold a register address. The
//! NSF binds a register name to a line in the register file by programming
//! that line of the address decoder. Subsequent register reads and writes
//! compare an operand address against the address programmed into each
//! line of the decoder."
//!
//! Hardware performs the comparison in every line simultaneously; the model
//! keeps a hash index alongside the tag array so simulation cost stays
//! O(1) per access while the tag array remains the source of truth. The
//! index is a [`TagIndex`] — an open-addressed table over packed
//! `<cid, line>` keys — rather than a `std::collections::HashMap`, because
//! the lookup runs once per simulated register access and SipHash alone
//! costs more than the rest of the hit path. A **per-context residency
//! index** (context → bound slots, with each slot's position stored
//! inline) likewise makes `has_context`, `resident_contexts` and context
//! teardown O(1) per line — `switch_to` consults it on every simulated
//! context switch, so a tag scan there would dominate large sweeps. That
//! index is a plain vector addressed by context ID (IDs are allocated
//! densely and recycled by the runtime), so the switch path is an array
//! load, not a hash.

use crate::addr::Cid;
use crate::tagindex::TagIndex;

/// Tag programmed into one decoder line: which context and which
/// architectural line of that context currently own the physical line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LineTag {
    /// Owning context.
    pub cid: Cid,
    /// Architectural line index within the context
    /// (`offset / regs_per_line`).
    pub line: u8,
}

impl LineTag {
    /// Packs the tag into the `TagIndex` key space (`cid` in the high
    /// half, `line` low — at most `0x00FF_FFFF`, safely below the table's
    /// empty-slot marker).
    #[inline]
    fn key(cid: Cid, line: u8) -> u32 {
        (u32::from(cid) << 8) | u32::from(line)
    }
}

/// A fully associative decoder over `lines` physical lines.
#[derive(Debug)]
pub struct AssocDecoder {
    tags: Vec<Option<LineTag>>,
    index: TagIndex,
    free: Vec<usize>,
    /// Residency index, addressed by context ID: each context's bound
    /// slots (unordered). An empty list means the context is absent; the
    /// lists keep their capacity across binds, so steady-state churn
    /// never allocates.
    by_ctx: Vec<Vec<usize>>,
    /// Number of contexts with at least one bound line (the count of
    /// non-empty `by_ctx` lists).
    resident: u32,
    /// For each bound slot, its position within its context's slot list
    /// (so unbinding is a swap-remove, not a search).
    ctx_pos: Vec<usize>,
}

impl AssocDecoder {
    /// Creates a decoder with all lines unbound.
    pub fn new(lines: usize) -> Self {
        AssocDecoder {
            tags: vec![None; lines],
            index: TagIndex::with_capacity(lines),
            free: (0..lines).rev().collect(),
            by_ctx: Vec::new(),
            resident: 0,
            ctx_pos: vec![0; lines],
        }
    }

    /// Number of physical lines.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Number of currently bound lines.
    pub fn bound(&self) -> usize {
        self.tags.len() - self.free.len()
    }

    /// CAM match: the physical slot bound to `<cid, line>`, if any.
    #[inline]
    pub fn lookup(&self, cid: Cid, line: u8) -> Option<usize> {
        self.index.get(LineTag::key(cid, line)).map(|s| s as usize)
    }

    /// The tag bound to a physical slot.
    pub fn tag(&self, slot: usize) -> Option<LineTag> {
        self.tags[slot]
    }

    /// Pops an unbound physical slot, if one exists.
    pub fn take_free(&mut self) -> Option<usize> {
        self.free.pop()
    }

    /// Programs `slot` with a new tag.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already bound or the tag already mapped —
    /// the register file must invalidate first (an internal invariant).
    pub fn bind(&mut self, slot: usize, cid: Cid, line: u8) {
        let tag = LineTag { cid, line };
        assert!(self.tags[slot].is_none(), "slot {slot} already bound");
        let prev = self.index.insert(LineTag::key(cid, line), slot as u32);
        assert!(prev.is_none(), "tag {tag:?} bound twice");
        self.tags[slot] = Some(tag);
        if self.by_ctx.len() <= usize::from(cid) {
            self.by_ctx.resize_with(usize::from(cid) + 1, Vec::new);
        }
        let slots = &mut self.by_ctx[usize::from(cid)];
        if slots.is_empty() {
            self.resident += 1;
        }
        self.ctx_pos[slot] = slots.len();
        slots.push(slot);
    }

    /// Removes `slot` from its context's residency list (swap-remove,
    /// updating the displaced slot's stored position). The caller has
    /// already taken `slot`'s tag.
    fn drop_from_ctx(&mut self, cid: Cid, slot: usize) {
        let slots = &mut self.by_ctx[usize::from(cid)];
        let pos = self.ctx_pos[slot];
        debug_assert_eq!(slots[pos], slot);
        slots.swap_remove(pos);
        if let Some(&moved) = slots.get(pos) {
            self.ctx_pos[moved] = pos;
        }
        if slots.is_empty() {
            self.resident -= 1;
        }
    }

    /// Clears `slot`, returning its previous tag (if it was bound).
    pub fn unbind(&mut self, slot: usize) -> Option<LineTag> {
        let tag = self.tags[slot].take()?;
        self.index.remove(LineTag::key(tag.cid, tag.line));
        self.drop_from_ctx(tag.cid, slot);
        self.free.push(slot);
        Some(tag)
    }

    /// Unbinds every line of `cid`, invoking `f(slot)` per line in
    /// ascending slot order (the order the historical tag scan released
    /// slots in, which fixes the free-list pop order and therefore the
    /// exact slot-assignment sequence downstream).
    pub fn unbind_context(&mut self, cid: Cid, mut f: impl FnMut(usize)) {
        let Some(slots) = self.by_ctx.get_mut(usize::from(cid)) else {
            return;
        };
        if slots.is_empty() {
            return;
        }
        let mut slots = std::mem::take(slots);
        slots.sort_unstable();
        for &slot in &slots {
            let tag = self.tags[slot].take().expect("indexed slot is bound");
            debug_assert_eq!(tag.cid, cid);
            self.index.remove(LineTag::key(tag.cid, tag.line));
            self.free.push(slot);
            f(slot);
        }
        slots.clear();
        // Hand the (empty, capacity-bearing) list back to its cell so the
        // context's next bind doesn't reallocate.
        self.by_ctx[usize::from(cid)] = slots;
        self.resident -= 1;
    }

    /// Whether context `cid` has at least one bound line — the O(1) query
    /// behind every simulated context switch.
    #[inline]
    pub fn has_context(&self, cid: Cid) -> bool {
        self.by_ctx
            .get(usize::from(cid))
            .is_some_and(|v| !v.is_empty())
    }

    /// The physical slots currently bound to context `cid`, in no
    /// particular order.
    pub fn slots_of(&self, cid: Cid) -> &[usize] {
        self.by_ctx
            .get(usize::from(cid))
            .map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct contexts with at least one bound line.
    pub fn resident_contexts(&self) -> u32 {
        self.resident
    }

    /// Iterates over `(slot, tag)` for all bound lines (diagnostics and
    /// tests; not on any simulation hot path).
    pub fn bound_lines(&self) -> impl Iterator<Item = (usize, LineTag)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|tag| (i, tag)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let mut d = AssocDecoder::new(4);
        assert_eq!(d.lines(), 4);
        let s = d.take_free().unwrap();
        d.bind(s, 7, 3);
        assert_eq!(d.lookup(7, 3), Some(s));
        assert_eq!(d.lookup(7, 2), None);
        assert_eq!(d.bound(), 1);
        assert!(d.has_context(7));
        assert_eq!(d.unbind(s), Some(LineTag { cid: 7, line: 3 }));
        assert_eq!(d.lookup(7, 3), None);
        assert_eq!(d.bound(), 0);
        assert!(!d.has_context(7));
    }

    #[test]
    fn exhausts_free_slots() {
        let mut d = AssocDecoder::new(2);
        let a = d.take_free().unwrap();
        let b = d.take_free().unwrap();
        assert_ne!(a, b);
        assert_eq!(d.take_free(), None);
    }

    #[test]
    fn slots_of_and_residency() {
        let mut d = AssocDecoder::new(4);
        for (cid, line) in [(1u16, 0u8), (1, 1), (2, 0)] {
            let s = d.take_free().unwrap();
            d.bind(s, cid, line);
        }
        assert_eq!(d.slots_of(1).len(), 2);
        assert_eq!(d.slots_of(2).len(), 1);
        assert_eq!(d.slots_of(3).len(), 0);
        assert_eq!(d.resident_contexts(), 2);
    }

    #[test]
    fn unbind_context_releases_in_ascending_slot_order() {
        let mut d = AssocDecoder::new(8);
        // Free slots pop in ascending order, so cid 5 lands in 0, 1, 2
        // and cid 9 in 3. Unbind 2 and 0, rebind them to cid 5 in the
        // order 2, then 0, so the residency list is scrambled: [1, 2, 0].
        for line in 0..3u8 {
            let s = d.take_free().unwrap();
            d.bind(s, 5, line);
        }
        let other = d.take_free().unwrap();
        d.bind(other, 9, 0);
        d.unbind(2);
        d.unbind(0);
        let s = d.take_free().unwrap(); // 0 (last freed)
        d.bind(s, 5, 0);
        let s = d.take_free().unwrap(); // 2
        d.bind(s, 5, 2);
        let mut released = Vec::new();
        d.unbind_context(5, |s| released.push(s));
        assert_eq!(released, vec![0, 1, 2], "ascending slot order");
        assert!(!d.has_context(5));
        assert!(d.has_context(9));
        assert_eq!(d.resident_contexts(), 1);
        // The freed slots pop back LIFO: 2 first (the seed's order).
        assert_eq!(d.take_free(), Some(2));
    }

    #[test]
    fn unbind_context_of_absent_context_is_noop() {
        let mut d = AssocDecoder::new(2);
        let mut called = false;
        d.unbind_context(3, |_| called = true);
        assert!(!called);
    }

    #[test]
    fn residency_index_survives_swap_remove_churn() {
        let mut d = AssocDecoder::new(6);
        let slots: Vec<usize> = (0..6)
            .map(|i| {
                let s = d.take_free().unwrap();
                d.bind(s, 1, i as u8);
                s
            })
            .collect();
        // Unbind from the middle to force swap-remove position fixups.
        d.unbind(slots[2]);
        d.unbind(slots[0]);
        d.unbind(slots[4]);
        let mut left: Vec<usize> = d.slots_of(1).to_vec();
        left.sort_unstable();
        let mut want = vec![slots[1], slots[3], slots[5]];
        want.sort_unstable();
        assert_eq!(left, want);
        assert_eq!(d.resident_contexts(), 1);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut d = AssocDecoder::new(2);
        let s = d.take_free().unwrap();
        d.bind(s, 1, 0);
        d.bind(s, 1, 1);
    }

    #[test]
    fn unbound_slot_returns_none() {
        let mut d = AssocDecoder::new(1);
        assert_eq!(d.unbind(0), None);
    }
}
