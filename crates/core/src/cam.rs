//! The associative address decoder.
//!
//! Paper §4.1: "Each line of the address decoder contains a content
//! addressable memory (CAM) wide enough to hold a register address. The
//! NSF binds a register name to a line in the register file by programming
//! that line of the address decoder. Subsequent register reads and writes
//! compare an operand address against the address programmed into each
//! line of the decoder."
//!
//! Hardware performs the comparison in every line simultaneously; the model
//! keeps a hash index alongside the tag array so simulation cost stays
//! O(1) per access while the tag array remains the source of truth.

use crate::addr::Cid;
use std::collections::HashMap;

/// Tag programmed into one decoder line: which context and which
/// architectural line of that context currently own the physical line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LineTag {
    /// Owning context.
    pub cid: Cid,
    /// Architectural line index within the context
    /// (`offset / regs_per_line`).
    pub line: u8,
}

/// A fully associative decoder over `lines` physical lines.
#[derive(Debug)]
pub struct AssocDecoder {
    tags: Vec<Option<LineTag>>,
    index: HashMap<LineTag, usize>,
    free: Vec<usize>,
}

impl AssocDecoder {
    /// Creates a decoder with all lines unbound.
    pub fn new(lines: usize) -> Self {
        AssocDecoder {
            tags: vec![None; lines],
            index: HashMap::with_capacity(lines),
            free: (0..lines).rev().collect(),
        }
    }

    /// Number of physical lines.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Number of currently bound lines.
    pub fn bound(&self) -> usize {
        self.tags.len() - self.free.len()
    }

    /// CAM match: the physical slot bound to `<cid, line>`, if any.
    pub fn lookup(&self, cid: Cid, line: u8) -> Option<usize> {
        self.index.get(&LineTag { cid, line }).copied()
    }

    /// The tag bound to a physical slot.
    pub fn tag(&self, slot: usize) -> Option<LineTag> {
        self.tags[slot]
    }

    /// Pops an unbound physical slot, if one exists.
    pub fn take_free(&mut self) -> Option<usize> {
        self.free.pop()
    }

    /// Programs `slot` with a new tag.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already bound or the tag already mapped —
    /// the register file must invalidate first (an internal invariant).
    pub fn bind(&mut self, slot: usize, cid: Cid, line: u8) {
        let tag = LineTag { cid, line };
        assert!(self.tags[slot].is_none(), "slot {slot} already bound");
        let prev = self.index.insert(tag, slot);
        assert!(prev.is_none(), "tag {tag:?} bound twice");
        self.tags[slot] = Some(tag);
    }

    /// Clears `slot`, returning its previous tag (if it was bound).
    pub fn unbind(&mut self, slot: usize) -> Option<LineTag> {
        let tag = self.tags[slot].take()?;
        self.index.remove(&tag);
        self.free.push(slot);
        Some(tag)
    }

    /// All physical slots currently bound to context `cid`.
    pub fn slots_of(&self, cid: Cid) -> Vec<usize> {
        self.tags
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Some(tag) if tag.cid == cid => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Number of distinct contexts with at least one bound line.
    pub fn resident_contexts(&self) -> u32 {
        let mut cids: Vec<Cid> = self.tags.iter().flatten().map(|t| t.cid).collect();
        cids.sort_unstable();
        cids.dedup();
        cids.len() as u32
    }

    /// Iterates over `(slot, tag)` for all bound lines.
    pub fn bound_lines(&self) -> impl Iterator<Item = (usize, LineTag)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|tag| (i, tag)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let mut d = AssocDecoder::new(4);
        assert_eq!(d.lines(), 4);
        let s = d.take_free().unwrap();
        d.bind(s, 7, 3);
        assert_eq!(d.lookup(7, 3), Some(s));
        assert_eq!(d.lookup(7, 2), None);
        assert_eq!(d.bound(), 1);
        assert_eq!(d.unbind(s), Some(LineTag { cid: 7, line: 3 }));
        assert_eq!(d.lookup(7, 3), None);
        assert_eq!(d.bound(), 0);
    }

    #[test]
    fn exhausts_free_slots() {
        let mut d = AssocDecoder::new(2);
        let a = d.take_free().unwrap();
        let b = d.take_free().unwrap();
        assert_ne!(a, b);
        assert_eq!(d.take_free(), None);
    }

    #[test]
    fn slots_of_and_residency() {
        let mut d = AssocDecoder::new(4);
        for (cid, line) in [(1u16, 0u8), (1, 1), (2, 0)] {
            let s = d.take_free().unwrap();
            d.bind(s, cid, line);
        }
        assert_eq!(d.slots_of(1).len(), 2);
        assert_eq!(d.slots_of(2).len(), 1);
        assert_eq!(d.slots_of(3).len(), 0);
        assert_eq!(d.resident_contexts(), 2);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut d = AssocDecoder::new(2);
        let s = d.take_free().unwrap();
        d.bind(s, 1, 0);
        d.bind(s, 1, 1);
    }

    #[test]
    fn unbound_slot_returns_none() {
        let mut d = AssocDecoder::new(1);
        assert_eq!(d.unbind(0), None);
    }
}
