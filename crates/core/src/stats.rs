//! Uniform statistics reported by every register file organization.
//!
//! The paper's evaluation (§7–§8) is phrased entirely in terms of these
//! counters: registers reloaded per instruction (Figs. 10, 12, 13), live
//! registers reloaded (Fig. 10), occupancy / active registers (Fig. 9),
//! resident contexts (Fig. 11), and spill/reload cycle overhead (Fig. 14).

/// Counters accumulated by a register file while a program runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegFileStats {
    /// Register read operations issued.
    pub reads: u64,
    /// Register write operations issued.
    pub writes: u64,
    /// Reads that found their register resident and valid.
    pub read_hits: u64,
    /// Reads that missed (register spilled or never loaded).
    pub read_misses: u64,
    /// Writes that hit a resident line.
    pub write_hits: u64,
    /// Writes that missed (allocated or fetched a line).
    pub write_misses: u64,
    /// Lines transferred from the backing store into the file.
    pub lines_reloaded: u64,
    /// Registers transferred from the backing store, counted per the active
    /// [`crate::ReloadPolicy`] (whole-line policies count empty slots too).
    pub regs_reloaded: u64,
    /// Of `regs_reloaded`, registers that actually held data — the paper's
    /// "live registers reloaded" curve.
    pub live_regs_reloaded: u64,
    /// Registers written back to the backing store on eviction.
    pub regs_spilled: u64,
    /// Of `regs_spilled`, registers whose writeback was prepaid by a
    /// background "dribble" engine during idle cycles (related work
    /// \[29\]): the traffic still happened, only the stall was hidden.
    pub regs_dribbled: u64,
    /// Context-switch notifications received.
    pub context_switches: u64,
    /// Switches that found the incoming context resident.
    pub switch_hits: u64,
    /// Total cycles spent moving registers (spill + reload), including
    /// spill-engine overhead — the numerator of Figure 14.
    pub spill_reload_cycles: u64,
    /// Cycles a multi-issue frontend stalled because the file ran out of
    /// read or write ports. Engines never touch this counter: the
    /// pipeline frontend (`nsf-sim`'s scoreboard) charges it and merges
    /// it into the run's stats, so it stays 0 under single-issue.
    pub port_conflict_cycles: u64,
}

impl RegFileStats {
    /// Registers reloaded per instruction executed (the paper's Figures
    /// 10, 12 and 13 y-axis), given the instruction count from the
    /// simulator.
    pub fn reloads_per_instruction(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.regs_reloaded as f64 / instructions as f64
        }
    }

    /// Read miss ratio in `[0, 1]`.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Checks the cross-counter invariants every organization must
    /// maintain, returning a description of the first violation. Used by
    /// the differential checker (`nsf-check`) and the fault-injection
    /// tests: a store fault may abort an operation mid-way, but it must
    /// never leave the counters contradicting each other.
    pub fn invariant_violation(&self) -> Option<String> {
        if self.read_hits + self.read_misses != self.reads {
            return Some(format!(
                "read_hits {} + read_misses {} != reads {}",
                self.read_hits, self.read_misses, self.reads
            ));
        }
        if self.write_hits + self.write_misses != self.writes {
            return Some(format!(
                "write_hits {} + write_misses {} != writes {}",
                self.write_hits, self.write_misses, self.writes
            ));
        }
        if self.live_regs_reloaded > self.regs_reloaded {
            return Some(format!(
                "live_regs_reloaded {} > regs_reloaded {}",
                self.live_regs_reloaded, self.regs_reloaded
            ));
        }
        if self.regs_dribbled > self.regs_spilled {
            return Some(format!(
                "regs_dribbled {} > regs_spilled {}",
                self.regs_dribbled, self.regs_spilled
            ));
        }
        if self.switch_hits > self.context_switches {
            return Some(format!(
                "switch_hits {} > context_switches {}",
                self.switch_hits, self.context_switches
            ));
        }
        None
    }

    /// Merges another stats block into this one (used when aggregating
    /// across benchmark runs).
    pub fn merge(&mut self, other: &RegFileStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.lines_reloaded += other.lines_reloaded;
        self.regs_reloaded += other.regs_reloaded;
        self.live_regs_reloaded += other.live_regs_reloaded;
        self.regs_spilled += other.regs_spilled;
        self.regs_dribbled += other.regs_dribbled;
        self.context_switches += other.context_switches;
        self.switch_hits += other.switch_hits;
        self.spill_reload_cycles += other.spill_reload_cycles;
        self.port_conflict_cycles += other.port_conflict_cycles;
    }
}

/// A point-in-time occupancy snapshot, sampled by the simulator once per
/// instruction to produce the paper's utilization (Fig. 9) and resident
/// context (Fig. 11) averages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Registers currently holding data ("active registers").
    pub valid_regs: u32,
    /// Distinct contexts with at least one resident register (NSF) or an
    /// assigned frame (segmented file).
    pub resident_contexts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = RegFileStats::default();
        assert_eq!(s.reloads_per_instruction(0), 0.0);
        assert_eq!(s.read_miss_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = RegFileStats {
            reads: 1,
            regs_reloaded: 5,
            ..Default::default()
        };
        let b = RegFileStats {
            reads: 2,
            regs_reloaded: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.regs_reloaded, 12);
    }

    #[test]
    fn invariants_catch_counter_drift() {
        assert_eq!(RegFileStats::default().invariant_violation(), None);
        let ok = RegFileStats {
            reads: 3,
            read_hits: 2,
            read_misses: 1,
            writes: 1,
            write_hits: 1,
            regs_reloaded: 4,
            live_regs_reloaded: 4,
            regs_spilled: 2,
            regs_dribbled: 1,
            context_switches: 5,
            switch_hits: 5,
            ..Default::default()
        };
        assert_eq!(ok.invariant_violation(), None);
        let drifted = RegFileStats {
            reads: 3,
            read_hits: 1,
            read_misses: 1,
            ..Default::default()
        };
        assert!(drifted.invariant_violation().unwrap().contains("reads"));
        let dribble = RegFileStats {
            regs_dribbled: 2,
            regs_spilled: 1,
            ..Default::default()
        };
        assert!(dribble
            .invariant_violation()
            .unwrap()
            .contains("regs_dribbled"));
    }

    #[test]
    fn reloads_per_instruction_ratio() {
        let s = RegFileStats {
            regs_reloaded: 25,
            ..Default::default()
        };
        assert!((s.reloads_per_instruction(100) - 0.25).abs() < 1e-12);
    }
}
