//! # nsf-core — the Named-State Register File and its rivals
//!
//! This crate is the paper's primary contribution, reproduced as a library:
//! register file *organizations* that a processor model plugs in behind a
//! common interface.
//!
//! ## The Named-State Register File (NSF)
//!
//! [`NamedStateFile`] is a **fully associative** register file with very
//! small lines (1–4 registers). A register is named by a
//! `<Context ID : offset>` pair ([`RegAddr`]); a content-addressable decoder
//! ([`cam::AssocDecoder`]) binds names to physical lines at run time:
//!
//! * the **first write** to a register allocates its line (write-allocate);
//! * a **read miss** reloads the register from its backing store on demand;
//! * when the file is full, a victim line is **spilled lazily** (LRU by
//!   default), writing back only dirty registers;
//! * **context switches cost nothing** — the new thread simply starts
//!   issuing and faults its registers in as it touches them.
//!
//! ## Baselines
//!
//! [`SegmentedFile`] models the multithreaded register files of HEP,
//! Sparcle, MASA and friends (paper §3.1): the file is statically divided
//! into frames, one thread per frame; switching to a non-resident thread
//! spills a whole victim frame and reloads the incoming one, using either a
//! hardware spill engine or Sparcle-style software trap handlers
//! ([`SpillEngine`]). [`ConventionalFile`] is the single-context degenerate
//! case. [`WindowedFile`] models the SPARC register windows that the
//! paper's related work (Keppel, Hidaka) tried to multithread — strict
//! stack-ordered windows with trap-driven overflow/underflow and a full
//! flush on thread switches. [`OracleFile`] is an infinite, never-spilling
//! file used as a functional reference in differential tests.
//!
//! All organizations implement [`RegisterFile`] and report uniform
//! [`RegFileStats`], from which every figure of the paper's evaluation is
//! derived.

pub mod addr;
pub mod cam;
pub mod conventional;
pub mod dispatch;
pub mod nsf;
pub mod oracle;
pub mod policy;
pub mod record;
pub mod replacement;
pub mod segmented;
pub mod stats;
pub mod store;
pub mod tagindex;
pub mod traits;
pub mod windowed;

pub use addr::{Cid, RegAddr};
pub use conventional::ConventionalFile;
pub use dispatch::{EngineDispatch, LaneOp, LaneStep};
pub use nsf::{NamedStateFile, NsfConfig};
pub use oracle::OracleFile;
pub use policy::{ReloadPolicy, ReplacementPolicy, SpillEngine, WriteMissPolicy};
pub use record::{EventSink, RecordingFile, SharedSink};
pub use segmented::{SegmentedConfig, SegmentedFile};
pub use stats::{Occupancy, RegFileStats};
pub use store::{FaultPlan, FaultyStore, MapStore};
pub use traits::{Access, BackingStore, RegFileError, RegisterFile, StoreFault};
pub use windowed::{WindowedConfig, WindowedFile};

/// Machine word, shared with the memory hierarchy.
pub type Word = nsf_mem::Word;
