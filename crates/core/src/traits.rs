//! The [`RegisterFile`] interface shared by every organization, and the
//! [`BackingStore`] interface through which files spill and reload.

use crate::addr::{Cid, RegAddr};
use crate::stats::{Occupancy, RegFileStats};
use crate::Word;
use std::fmt;

/// Fault raised by a backing store (failure injection, unmapped context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreFault {
    /// The store has no translation for this context (e.g. the Ctable was
    /// never programmed by the scheduler).
    Unmapped(Cid),
    /// An injected fault (tests) or an underlying memory error.
    Io(String),
}

impl fmt::Display for StoreFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFault::Unmapped(cid) => write!(f, "no backing mapping for context {cid}"),
            StoreFault::Io(msg) => write!(f, "backing store fault: {msg}"),
        }
    }
}

impl std::error::Error for StoreFault {}

/// Errors surfaced by register file operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegFileError {
    /// A register was read that was never written and has no backed copy —
    /// a read-before-write program bug the file can detect.
    ReadUndefined(RegAddr),
    /// The register offset exceeds the architectural context size.
    BadOffset(RegAddr),
    /// A segmented file was asked to access a context that is not the
    /// current frame; the processor must `switch_to` first.
    NotCurrent(Cid),
    /// The backing store faulted during a spill or reload.
    Store(StoreFault),
}

impl fmt::Display for RegFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegFileError::ReadUndefined(a) => {
                write!(f, "read of undefined register {a} (never written)")
            }
            RegFileError::BadOffset(a) => write!(f, "register offset out of range: {a}"),
            RegFileError::NotCurrent(cid) => {
                write!(f, "context {cid} is not current; switch_to it first")
            }
            RegFileError::Store(e) => write!(f, "spill/reload failed: {e}"),
        }
    }
}

impl std::error::Error for RegFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegFileError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreFault> for RegFileError {
    fn from(e: StoreFault) -> Self {
        RegFileError::Store(e)
    }
}

/// Result of a single register access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Value read (for writes, the value written).
    pub value: Word,
    /// Extra cycles the access cost beyond the pipelined register access
    /// (0 on a hit; reload/spill latency on a miss).
    pub stall_cycles: u32,
    /// Whether the access missed in the file.
    pub missed: bool,
}

impl Access {
    /// A zero-cost hit returning `value`.
    pub fn hit(value: Word) -> Self {
        Access {
            value,
            stall_cycles: 0,
            missed: false,
        }
    }
}

/// Where spilled registers live: the per-context backing frames in memory.
///
/// Concrete implementations: [`crate::MapStore`] (self-contained, for unit
/// and property tests) and the simulator's Ctable-over-data-cache store
/// (`nsf-sim`), which charges real cache latencies per the paper's Fig. 4.
pub trait BackingStore {
    /// Writes one register back to the context's backing frame.
    /// Returns the memory cycles consumed.
    fn spill(&mut self, cid: Cid, offset: u8, value: Word) -> Result<u32, StoreFault>;

    /// Fetches one register from the backing frame.
    ///
    /// Returns `(None, cycles)` if the register has no backed copy (it was
    /// never spilled) — the transfer still happens in hardware, it just
    /// carries no defined data.
    fn reload(&mut self, cid: Cid, offset: u8) -> Result<(Option<Word>, u32), StoreFault>;

    /// `true` if the backing frame holds data for this register — the
    /// per-register valid bits a `ValidOnly` reload policy consults.
    fn is_present(&self, cid: Cid, offset: u8) -> bool;

    /// `true` if any register of the context has a backed copy (i.e. the
    /// context has run and spilled before).
    fn any_present(&self, cid: Cid) -> bool;

    /// Drops all backing data for a dead context.
    fn discard_context(&mut self, cid: Cid);

    /// Drops the backed copy of a single dead register (issued on the
    /// explicit per-register deallocation hint, paper §4.2).
    fn discard_reg(&mut self, cid: Cid, offset: u8);
}

/// A register file organization, as seen by the processor pipeline.
pub trait RegisterFile {
    /// Reads register `addr`; may reload it from `store` on a miss.
    fn read(&mut self, addr: RegAddr, store: &mut dyn BackingStore)
        -> Result<Access, RegFileError>;

    /// Writes register `addr`; may allocate, fetch, or spill via `store`.
    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError>;

    /// Notifies the file that `cid` becomes the running context. Returns
    /// the stall cycles of the switch (zero for the NSF; a possible frame
    /// spill + reload for segmented files).
    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError>;

    /// A procedure call pushed a fresh context: `cid` is the callee.
    /// Window-based organizations advance their current-window pointer
    /// here; everything else treats it as an ordinary [`switch_to`].
    ///
    /// [`switch_to`]: RegisterFile::switch_to
    fn call_push(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.switch_to(cid, store)
    }

    /// The scheduler dispatched a different *thread* whose current
    /// context is `cid`. Window-based organizations flush here (their
    /// windows belong to one call chain); everything else treats it as an
    /// ordinary [`switch_to`].
    ///
    /// [`switch_to`]: RegisterFile::switch_to
    fn thread_switch(
        &mut self,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        self.switch_to(cid, store)
    }

    /// Declares every register of `cid` dead: resident lines are dropped
    /// without writeback and backing data is discarded.
    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore);

    /// Explicitly deallocates a single register (paper §4.2); a hint that
    /// non-associative organizations ignore.
    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore);

    /// Total architectural register slots in the file.
    fn capacity(&self) -> u32;

    /// Point-in-time occupancy (sampled by the simulator each instruction).
    fn occupancy(&self) -> Occupancy;

    /// Accumulated statistics.
    fn stats(&self) -> &RegFileStats;

    /// Resets statistics (occupancy state is untouched).
    fn reset_stats(&mut self);

    /// A short human-readable description, e.g. `"NSF 128x1"`.
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = RegFileError::Store(StoreFault::Unmapped(4));
        assert!(e.to_string().contains("context 4"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = RegFileError::ReadUndefined(RegAddr::new(1, 2));
        assert!(std::error::Error::source(&e2).is_none());
        assert!(e2.to_string().contains("<1:2>"));
    }

    #[test]
    fn access_hit_constructor() {
        let a = Access::hit(9);
        assert_eq!(a.value, 9);
        assert_eq!(a.stall_cycles, 0);
        assert!(!a.missed);
    }
}
