//! Tunable policies of the register file organizations.
//!
//! Each enum corresponds to a design axis the paper discusses; the defaults
//! are the configuration the paper simulates (LRU replacement,
//! write-allocate, single-register demand reload, hardware spill engine).

/// What a miss transfers from the backing store (paper §7.3, Figure 13).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReloadPolicy {
    /// Strategy A: reload the entire missing line, counting every register
    /// slot whether or not it holds data.
    WholeLine,
    /// Strategy B: per-register valid bits in the backing frame; transfer
    /// only the registers that held data when the line was spilled.
    ValidOnly,
    /// Strategy C (the paper's headline NSF configuration): reload only the
    /// single register that missed. "It ensures that the NSF never loads
    /// registers that are not needed."
    #[default]
    SingleRegister,
}

/// How a write miss is handled (paper §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WriteMissPolicy {
    /// "May simply allocate a line for that register in the file
    /// (write-allocate)." The default: first write creates the register.
    #[default]
    WriteAllocate,
    /// "May cause a line to be reloaded into the file (fetch on write)."
    FetchOnWrite,
}

/// Victim selection when the file must free a line (paper §4.2 simulates
/// LRU; the others are ablation points).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReplacementPolicy {
    /// Least recently used (the paper's simulated strategy).
    #[default]
    Lru,
    /// Oldest allocation first.
    Fifo,
    /// Uniformly random victim, from a deterministic seeded generator.
    Random {
        /// PRNG seed, so experiments stay reproducible.
        seed: u64,
    },
}

/// The machinery that moves registers between the file and memory
/// (paper §8, Figure 14 compares hardware assist with software traps).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillEngine {
    /// Dedicated spill/reload hardware: a small fixed setup cost per
    /// transfer burst plus the backing-store (cache) latency per register.
    Hardware {
        /// Cycles to start a burst (address generation, arbitration).
        setup_cycles: u32,
        /// Extra cycles per register moved, on top of cache latency.
        per_reg_cycles: u32,
    },
    /// Sparcle-style software trap handlers: trap entry/exit overhead plus
    /// a load-or-store instruction sequence per register.
    SoftwareTrap {
        /// Cycles to enter and leave the trap handler.
        trap_cycles: u32,
        /// Cycles of handler code per register moved, on top of cache
        /// latency.
        per_reg_cycles: u32,
    },
}

impl SpillEngine {
    /// The hardware engine with the defaults used throughout the study.
    pub fn hardware() -> Self {
        SpillEngine::Hardware {
            setup_cycles: 1,
            per_reg_cycles: 1,
        }
    }

    /// The software-trap engine with defaults calibrated to a Sparc-class
    /// trap (tens of cycles of entry/exit, a two-instruction sequence per
    /// register).
    pub fn software() -> Self {
        SpillEngine::SoftwareTrap {
            trap_cycles: 40,
            per_reg_cycles: 2,
        }
    }

    /// Cost of transferring `regs` registers whose raw cache latency summed
    /// to `mem_cycles`.
    pub fn transfer_cost(&self, regs: u32, mem_cycles: u32) -> u32 {
        if regs == 0 {
            return 0;
        }
        match *self {
            SpillEngine::Hardware {
                setup_cycles,
                per_reg_cycles,
            } => setup_cycles + per_reg_cycles * regs + mem_cycles,
            SpillEngine::SoftwareTrap {
                trap_cycles,
                per_reg_cycles,
            } => trap_cycles + per_reg_cycles * regs + mem_cycles,
        }
    }
}

impl Default for SpillEngine {
    fn default() -> Self {
        SpillEngine::hardware()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        assert_eq!(ReloadPolicy::default(), ReloadPolicy::SingleRegister);
        assert_eq!(WriteMissPolicy::default(), WriteMissPolicy::WriteAllocate);
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
        assert!(matches!(
            SpillEngine::default(),
            SpillEngine::Hardware { .. }
        ));
    }

    #[test]
    fn transfer_cost_zero_for_no_regs() {
        assert_eq!(SpillEngine::hardware().transfer_cost(0, 0), 0);
        assert_eq!(SpillEngine::software().transfer_cost(0, 0), 0);
    }

    #[test]
    fn software_trap_dominates_hardware() {
        let regs = 20;
        let mem = 40;
        assert!(
            SpillEngine::software().transfer_cost(regs, mem)
                > SpillEngine::hardware().transfer_cost(regs, mem)
        );
    }
}
