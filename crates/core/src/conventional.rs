//! A conventional, single-context register file.
//!
//! The degenerate case of the segmented organization: one frame, so every
//! context switch spills and reloads the whole register set through memory.
//! This is the "conventional processor" of the paper's introduction, whose
//! switch cost "may take hundreds of cycles".

use crate::addr::{Cid, RegAddr};
use crate::policy::SpillEngine;
use crate::segmented::{FramePolicy, SegmentedConfig, SegmentedFile};
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;

/// A classic indexed register file holding exactly one context.
pub struct ConventionalFile {
    inner: SegmentedFile,
}

impl ConventionalFile {
    /// Creates a file of `regs` registers with a hardware spill engine.
    pub fn new(regs: u8) -> Self {
        Self::with_engine(regs, SpillEngine::hardware())
    }

    /// Creates a file of `regs` registers with an explicit spill engine
    /// (software traps model a conventional OS context switch).
    pub fn with_engine(regs: u8, engine: SpillEngine) -> Self {
        let mut cfg = SegmentedConfig::paper_default(1, regs);
        cfg.engine = engine;
        cfg.policy = FramePolicy::Full;
        ConventionalFile {
            inner: SegmentedFile::new(cfg),
        }
    }
}

impl RegisterFile for ConventionalFile {
    fn read(
        &mut self,
        addr: RegAddr,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.inner.read(addr, store)
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.inner.write(addr, value, store)
    }

    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.inner.switch_to(cid, store)
    }

    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        self.inner.free_context(cid, store);
    }

    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        self.inner.free_reg(addr, store);
    }

    fn capacity(&self) -> u32 {
        self.inner.capacity()
    }

    fn occupancy(&self) -> Occupancy {
        self.inner.occupancy()
    }

    fn stats(&self) -> &RegFileStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn describe(&self) -> String {
        format!("Conventional {} regs", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;

    #[test]
    fn every_switch_moves_the_whole_file() {
        let mut f = ConventionalFile::new(8);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        f.switch_to(2, &mut s).unwrap();
        assert_eq!(f.stats().regs_spilled, 8);
        f.write(RegAddr::new(2, 0), 2, &mut s).unwrap();
        f.switch_to(1, &mut s).unwrap();
        assert_eq!(f.stats().regs_spilled, 16);
        assert_eq!(f.stats().regs_reloaded, 8);
        assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 1);
    }

    #[test]
    fn describe_names_it() {
        assert!(ConventionalFile::new(32)
            .describe()
            .contains("Conventional"));
    }
}
