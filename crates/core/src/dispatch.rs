//! Static dispatch over the concrete register-file organizations.
//!
//! The simulator's inner loop issues a register read or write per
//! instruction; holding the engine as a `Box<dyn RegisterFile>` put a
//! vtable call on that path. [`EngineDispatch`] enumerates the concrete
//! engine families instead, so a machine that owns one by value
//! dispatches with a predictable `match` the compiler can inline
//! through. The [`EngineDispatch::Boxed`] escape hatch keeps dynamic
//! engines (event-recording wrappers, test doubles) usable behind the
//! same type at their old cost.

use crate::addr::{Cid, RegAddr};
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;
use crate::{ConventionalFile, NamedStateFile, OracleFile, SegmentedFile, WindowedFile};

/// A register file organization, dispatched statically.
///
/// One variant per concrete engine family (the segmented family covers
/// both hardware- and software-spill engines — that choice is a
/// [`crate::SpillEngine`] parameter, not a type), plus [`Self::Boxed`]
/// for anything only known at run time, e.g. [`crate::RecordingFile`].
pub enum EngineDispatch {
    /// The Named-State Register File.
    Nsf(NamedStateFile),
    /// A segmented multithreaded file (hardware or software spill).
    Segmented(SegmentedFile),
    /// SPARC-style overlapping register windows.
    Windowed(WindowedFile),
    /// A conventional single-context file.
    Conventional(ConventionalFile),
    /// The infinite oracle (differential testing).
    Oracle(OracleFile),
    /// Dynamic escape hatch: recording wrappers and custom engines.
    Boxed(Box<dyn RegisterFile>),
}

impl EngineDispatch {
    /// Wraps a dynamic engine (kept for recording wrappers and tests).
    pub fn boxed(inner: Box<dyn RegisterFile>) -> Self {
        EngineDispatch::Boxed(inner)
    }
}

impl From<NamedStateFile> for EngineDispatch {
    fn from(e: NamedStateFile) -> Self {
        EngineDispatch::Nsf(e)
    }
}

impl From<SegmentedFile> for EngineDispatch {
    fn from(e: SegmentedFile) -> Self {
        EngineDispatch::Segmented(e)
    }
}

impl From<WindowedFile> for EngineDispatch {
    fn from(e: WindowedFile) -> Self {
        EngineDispatch::Windowed(e)
    }
}

impl From<ConventionalFile> for EngineDispatch {
    fn from(e: ConventionalFile) -> Self {
        EngineDispatch::Conventional(e)
    }
}

impl From<OracleFile> for EngineDispatch {
    fn from(e: OracleFile) -> Self {
        EngineDispatch::Oracle(e)
    }
}

/// Forwards one method call to whichever engine is inside. Concrete
/// variants resolve statically (including each engine's own overrides
/// of the trait's defaulted methods); `Boxed` pays the vtable as before.
macro_rules! forward {
    ($self:expr, $method:ident ( $($arg:expr),* )) => {
        match $self {
            EngineDispatch::Nsf(e) => e.$method($($arg),*),
            EngineDispatch::Segmented(e) => e.$method($($arg),*),
            EngineDispatch::Windowed(e) => e.$method($($arg),*),
            EngineDispatch::Conventional(e) => e.$method($($arg),*),
            EngineDispatch::Oracle(e) => e.$method($($arg),*),
            EngineDispatch::Boxed(e) => e.$method($($arg),*),
        }
    };
}

impl RegisterFile for EngineDispatch {
    #[inline]
    fn read(
        &mut self,
        addr: RegAddr,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        forward!(self, read(addr, store))
    }

    #[inline]
    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        forward!(self, write(addr, value, store))
    }

    #[inline]
    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        forward!(self, switch_to(cid, store))
    }

    #[inline]
    fn call_push(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        forward!(self, call_push(cid, store))
    }

    #[inline]
    fn thread_switch(
        &mut self,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        forward!(self, thread_switch(cid, store))
    }

    #[inline]
    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        forward!(self, free_context(cid, store))
    }

    #[inline]
    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        forward!(self, free_reg(addr, store))
    }

    #[inline]
    fn capacity(&self) -> u32 {
        forward!(self, capacity())
    }

    #[inline]
    fn occupancy(&self) -> Occupancy {
        forward!(self, occupancy())
    }

    #[inline]
    fn stats(&self) -> &RegFileStats {
        forward!(self, stats())
    }

    #[inline]
    fn reset_stats(&mut self) {
        forward!(self, reset_stats())
    }

    fn describe(&self) -> String {
        forward!(self, describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;
    use crate::NsfConfig;

    #[test]
    fn dispatch_matches_inner_engine() {
        let mut store = MapStore::new();
        let mut direct = NamedStateFile::new(NsfConfig::paper_default(64));
        let mut via: EngineDispatch = NamedStateFile::new(NsfConfig::paper_default(64)).into();
        assert_eq!(via.describe(), direct.describe());
        assert_eq!(via.capacity(), direct.capacity());
        for i in 0..8 {
            let a = RegAddr::new(1, i);
            let d = direct.write(a, Word::from(i) + 1, &mut store);
            let v = via.write(a, Word::from(i) + 1, &mut store);
            assert_eq!(d, v);
            assert_eq!(
                direct.read(a, &mut store).unwrap(),
                via.read(a, &mut store).unwrap()
            );
        }
        assert_eq!(direct.stats(), via.stats());
        assert_eq!(direct.occupancy().valid_regs, via.occupancy().valid_regs);
    }

    #[test]
    fn boxed_escape_hatch_forwards() {
        let mut store = MapStore::new();
        let mut e = EngineDispatch::boxed(Box::new(OracleFile::new()));
        assert!(e.describe().contains("Oracle"));
        e.write(RegAddr::new(3, 0), 7, &mut store).unwrap();
        assert_eq!(e.read(RegAddr::new(3, 0), &mut store).unwrap().value, 7);
        e.free_context(3, &mut store);
        assert_eq!(e.occupancy().valid_regs, 0);
    }
}
