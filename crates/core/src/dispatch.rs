//! Static dispatch over the concrete register-file organizations.
//!
//! The simulator's inner loop issues a register read or write per
//! instruction; holding the engine as a `Box<dyn RegisterFile>` put a
//! vtable call on that path. [`EngineDispatch`] enumerates the concrete
//! engine families instead, so a machine that owns one by value
//! dispatches with a predictable `match` the compiler can inline
//! through. The [`EngineDispatch::Boxed`] escape hatch keeps dynamic
//! engines (event-recording wrappers, test doubles) usable behind the
//! same type at their old cost.

use crate::addr::{Cid, RegAddr};
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;
use crate::{ConventionalFile, NamedStateFile, OracleFile, SegmentedFile, WindowedFile};

/// A register file organization, dispatched statically.
///
/// One variant per concrete engine family (the segmented family covers
/// both hardware- and software-spill engines — that choice is a
/// [`crate::SpillEngine`] parameter, not a type), plus [`Self::Boxed`]
/// for anything only known at run time, e.g. [`crate::RecordingFile`].
pub enum EngineDispatch {
    /// The Named-State Register File.
    Nsf(NamedStateFile),
    /// A segmented multithreaded file (hardware or software spill).
    Segmented(SegmentedFile),
    /// SPARC-style overlapping register windows.
    Windowed(WindowedFile),
    /// A conventional single-context file.
    Conventional(ConventionalFile),
    /// The infinite oracle (differential testing).
    Oracle(OracleFile),
    /// Dynamic escape hatch: recording wrappers and custom engines.
    Boxed(Box<dyn RegisterFile>),
}

impl EngineDispatch {
    /// Wraps a dynamic engine (kept for recording wrappers and tests).
    pub fn boxed(inner: Box<dyn RegisterFile>) -> Self {
        EngineDispatch::Boxed(inner)
    }

    /// Applies one architectural operation — the lane-stepping entry
    /// point. Every [`RegisterFile`] method that the simulator or the
    /// differential checker issues per instruction is reachable through
    /// one [`LaneOp`], so a batched executor can drive N engines through
    /// a single decoded stream without re-matching on the instruction
    /// per lane.
    #[inline]
    pub fn apply_op(
        &mut self,
        op: LaneOp,
        store: &mut dyn BackingStore,
    ) -> Result<LaneStep, RegFileError> {
        match op {
            LaneOp::Read(addr) => self.read(addr, store).map(|a| LaneStep {
                value: Some(a.value),
                stall_cycles: a.stall_cycles,
            }),
            LaneOp::Write(addr, value) => self.write(addr, value, store).map(|a| LaneStep {
                value: None,
                stall_cycles: a.stall_cycles,
            }),
            LaneOp::SwitchTo(cid) => self.switch_to(cid, store).map(LaneStep::switch),
            LaneOp::CallPush(cid) => self.call_push(cid, store).map(LaneStep::switch),
            LaneOp::ThreadSwitch(cid) => self.thread_switch(cid, store).map(LaneStep::switch),
            LaneOp::FreeContext(cid) => {
                self.free_context(cid, store);
                Ok(LaneStep::free())
            }
            LaneOp::FreeReg(addr) => {
                self.free_reg(addr, store);
                Ok(LaneStep::free())
            }
        }
    }

    /// Steps every lane through the same operation, in lane order: lane
    /// `i` sees exactly the operation sequence it would in a serial run,
    /// so per-lane statistics and backing traffic are bit-identical to N
    /// independent executions. `visit` receives each lane's result as it
    /// completes; lanes are independent, so one lane's error never stops
    /// the others mid-batch.
    #[inline]
    pub fn step_lanes<S, F>(
        lanes: &mut [EngineDispatch],
        stores: &mut [S],
        op: LaneOp,
        mut visit: F,
    ) where
        S: BackingStore,
        F: FnMut(usize, Result<LaneStep, RegFileError>),
    {
        assert_eq!(
            lanes.len(),
            stores.len(),
            "each lane needs its own backing store"
        );
        for (i, (lane, store)) in lanes.iter_mut().zip(stores.iter_mut()).enumerate() {
            visit(i, lane.apply_op(op, store));
        }
    }
}

/// One architectural register-file operation in the form the
/// lane-stepping paths share ([`EngineDispatch::apply_op`],
/// [`EngineDispatch::step_lanes`]): the simulator's batched executor and
/// the differential checker's lane-stepped mode both decode to this
/// once, then fan it across lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneOp {
    /// Read a register.
    Read(RegAddr),
    /// Write a register.
    Write(RegAddr, Word),
    /// Make `cid` current (plain switch).
    SwitchTo(Cid),
    /// Make `cid` current via the call-allocation path.
    CallPush(Cid),
    /// Make `cid` current via the thread-switch path.
    ThreadSwitch(Cid),
    /// Release a whole context.
    FreeContext(Cid),
    /// Deallocate one register.
    FreeReg(RegAddr),
}

/// What one lane reported for one [`LaneOp`]: the architectural value
/// (reads only) and the stall cycles the operation cost that lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneStep {
    /// The value a [`LaneOp::Read`] returned; `None` for every other op.
    pub value: Option<Word>,
    /// Pipeline stall cycles charged by this lane's organization.
    pub stall_cycles: u32,
}

impl LaneStep {
    #[inline]
    fn switch(cycles: u32) -> Self {
        LaneStep {
            value: None,
            stall_cycles: cycles,
        }
    }

    #[inline]
    fn free() -> Self {
        LaneStep {
            value: None,
            stall_cycles: 0,
        }
    }
}

impl From<NamedStateFile> for EngineDispatch {
    fn from(e: NamedStateFile) -> Self {
        EngineDispatch::Nsf(e)
    }
}

impl From<SegmentedFile> for EngineDispatch {
    fn from(e: SegmentedFile) -> Self {
        EngineDispatch::Segmented(e)
    }
}

impl From<WindowedFile> for EngineDispatch {
    fn from(e: WindowedFile) -> Self {
        EngineDispatch::Windowed(e)
    }
}

impl From<ConventionalFile> for EngineDispatch {
    fn from(e: ConventionalFile) -> Self {
        EngineDispatch::Conventional(e)
    }
}

impl From<OracleFile> for EngineDispatch {
    fn from(e: OracleFile) -> Self {
        EngineDispatch::Oracle(e)
    }
}

/// Forwards one method call to whichever engine is inside. Concrete
/// variants resolve statically (including each engine's own overrides
/// of the trait's defaulted methods); `Boxed` pays the vtable as before.
macro_rules! forward {
    ($self:expr, $method:ident ( $($arg:expr),* )) => {
        match $self {
            EngineDispatch::Nsf(e) => e.$method($($arg),*),
            EngineDispatch::Segmented(e) => e.$method($($arg),*),
            EngineDispatch::Windowed(e) => e.$method($($arg),*),
            EngineDispatch::Conventional(e) => e.$method($($arg),*),
            EngineDispatch::Oracle(e) => e.$method($($arg),*),
            EngineDispatch::Boxed(e) => e.$method($($arg),*),
        }
    };
}

impl RegisterFile for EngineDispatch {
    #[inline]
    fn read(
        &mut self,
        addr: RegAddr,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        forward!(self, read(addr, store))
    }

    #[inline]
    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        forward!(self, write(addr, value, store))
    }

    #[inline]
    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        forward!(self, switch_to(cid, store))
    }

    #[inline]
    fn call_push(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        forward!(self, call_push(cid, store))
    }

    #[inline]
    fn thread_switch(
        &mut self,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        forward!(self, thread_switch(cid, store))
    }

    #[inline]
    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        forward!(self, free_context(cid, store))
    }

    #[inline]
    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        forward!(self, free_reg(addr, store))
    }

    #[inline]
    fn capacity(&self) -> u32 {
        forward!(self, capacity())
    }

    #[inline]
    fn occupancy(&self) -> Occupancy {
        forward!(self, occupancy())
    }

    #[inline]
    fn stats(&self) -> &RegFileStats {
        forward!(self, stats())
    }

    #[inline]
    fn reset_stats(&mut self) {
        forward!(self, reset_stats())
    }

    fn describe(&self) -> String {
        forward!(self, describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;
    use crate::NsfConfig;

    #[test]
    fn dispatch_matches_inner_engine() {
        let mut store = MapStore::new();
        let mut direct = NamedStateFile::new(NsfConfig::paper_default(64));
        let mut via: EngineDispatch = NamedStateFile::new(NsfConfig::paper_default(64)).into();
        assert_eq!(via.describe(), direct.describe());
        assert_eq!(via.capacity(), direct.capacity());
        for i in 0..8 {
            let a = RegAddr::new(1, i);
            let d = direct.write(a, Word::from(i) + 1, &mut store);
            let v = via.write(a, Word::from(i) + 1, &mut store);
            assert_eq!(d, v);
            assert_eq!(
                direct.read(a, &mut store).unwrap(),
                via.read(a, &mut store).unwrap()
            );
        }
        assert_eq!(direct.stats(), via.stats());
        assert_eq!(direct.occupancy().valid_regs, via.occupancy().valid_regs);
    }

    #[test]
    fn apply_op_matches_direct_calls() {
        let ops = [
            LaneOp::ThreadSwitch(1),
            LaneOp::Write(RegAddr::new(1, 0), 42),
            LaneOp::Read(RegAddr::new(1, 0)),
            LaneOp::CallPush(2),
            LaneOp::Write(RegAddr::new(2, 3), 7),
            LaneOp::SwitchTo(1),
            LaneOp::FreeReg(RegAddr::new(1, 0)),
            LaneOp::FreeContext(2),
            LaneOp::FreeContext(1),
        ];
        let mut direct: EngineDispatch = NamedStateFile::new(NsfConfig::paper_default(32)).into();
        let mut via: EngineDispatch = NamedStateFile::new(NsfConfig::paper_default(32)).into();
        let (mut sd, mut sv) = (MapStore::new(), MapStore::new());
        for &op in &ops {
            let want = match op {
                LaneOp::Read(a) => direct.read(a, &mut sd).map(|acc| LaneStep {
                    value: Some(acc.value),
                    stall_cycles: acc.stall_cycles,
                }),
                LaneOp::Write(a, v) => direct.write(a, v, &mut sd).map(|acc| LaneStep {
                    value: None,
                    stall_cycles: acc.stall_cycles,
                }),
                LaneOp::SwitchTo(c) => direct.switch_to(c, &mut sd).map(LaneStep::switch),
                LaneOp::CallPush(c) => direct.call_push(c, &mut sd).map(LaneStep::switch),
                LaneOp::ThreadSwitch(c) => direct.thread_switch(c, &mut sd).map(LaneStep::switch),
                LaneOp::FreeContext(c) => {
                    direct.free_context(c, &mut sd);
                    Ok(LaneStep::free())
                }
                LaneOp::FreeReg(a) => {
                    direct.free_reg(a, &mut sd);
                    Ok(LaneStep::free())
                }
            };
            let got = via.apply_op(op, &mut sv);
            match (want, got) {
                (Ok(w), Ok(g)) => assert_eq!(w, g, "{op:?}"),
                (Err(w), Err(g)) => assert_eq!(w.to_string(), g.to_string(), "{op:?}"),
                (w, g) => panic!("{op:?}: direct {w:?} vs apply_op {g:?}"),
            }
        }
        assert_eq!(direct.stats(), via.stats());
    }

    #[test]
    fn step_lanes_keeps_lanes_independent_and_in_order() {
        // Two NSF lanes of different capacity plus the oracle: the same
        // op stream must leave each lane exactly as a serial run would.
        let build = || -> Vec<EngineDispatch> {
            vec![
                NamedStateFile::new(NsfConfig::paper_default(16)).into(),
                NamedStateFile::new(NsfConfig::paper_default(64)).into(),
                OracleFile::new().into(),
            ]
        };
        let ops = [
            LaneOp::ThreadSwitch(0),
            LaneOp::Write(RegAddr::new(0, 1), 11),
            LaneOp::Read(RegAddr::new(0, 1)),
            LaneOp::CallPush(3),
            LaneOp::Write(RegAddr::new(3, 0), 22),
            LaneOp::Read(RegAddr::new(3, 0)),
            LaneOp::FreeContext(3),
            LaneOp::SwitchTo(0),
            LaneOp::Read(RegAddr::new(0, 1)),
        ];

        let mut batched = build();
        let mut batched_stores = vec![MapStore::new(), MapStore::new(), MapStore::new()];
        let mut seen: Vec<(usize, Option<Word>)> = Vec::new();
        for &op in &ops {
            EngineDispatch::step_lanes(&mut batched, &mut batched_stores, op, |i, r| {
                seen.push((i, r.expect("legal stream").value));
            });
        }
        // Lane order within each op, and value agreement across lanes.
        for chunk in seen.chunks(3) {
            assert_eq!([chunk[0].0, chunk[1].0, chunk[2].0], [0, 1, 2]);
            assert_eq!(chunk[0].1, chunk[1].1);
            assert_eq!(chunk[1].1, chunk[2].1);
        }

        let mut serial = build();
        let mut serial_stores = [MapStore::new(), MapStore::new(), MapStore::new()];
        for (lane, store) in serial.iter_mut().zip(serial_stores.iter_mut()) {
            for &op in &ops {
                lane.apply_op(op, store).expect("legal stream");
            }
        }
        for (b, s) in batched.iter().zip(serial.iter()) {
            assert_eq!(b.stats(), s.stats(), "{}", b.describe());
            assert_eq!(b.occupancy().valid_regs, s.occupancy().valid_regs);
        }
    }

    #[test]
    fn boxed_escape_hatch_forwards() {
        let mut store = MapStore::new();
        let mut e = EngineDispatch::boxed(Box::new(OracleFile::new()));
        assert!(e.describe().contains("Oracle"));
        e.write(RegAddr::new(3, 0), 7, &mut store).unwrap();
        assert_eq!(e.read(RegAddr::new(3, 0), &mut store).unwrap().value, 7);
        e.free_context(3, &mut store);
        assert_eq!(e.occupancy().valid_regs, 0);
    }
}
