//! Event capture: the [`EventSink`] hook and the [`RecordingFile`]
//! wrapper that interposes on any [`RegisterFile`] without the wrapped
//! organization (or the code driving it) knowing.
//!
//! The paper's evaluation (Figs. 9–13) depends only on the stream of
//! register-file operations, not on how the processor produced them.
//! A sink observes exactly that stream: every access, context switch
//! and deallocation the engine sees, in call order — plus the program's
//! own data-cache traffic, because spills and reloads go *through the
//! data cache* (paper Fig. 4), so cache state (and therefore spill and
//! reload cycle costs) is a function of the interleaved register and
//! program memory streams. A trace carrying both replays to
//! bit-identical [`crate::RegFileStats`] (see the `nsf-trace` crate).
//!
//! Recording is strictly observational: [`RecordingFile`] forwards every
//! call unchanged and never perturbs timing, statistics or results.

use crate::addr::{Cid, RegAddr};
use crate::stats::Occupancy;
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::{RegFileStats, Word};
use nsf_mem::Addr;
use std::cell::RefCell;
use std::rc::Rc;

/// Observer of the engine-facing operation stream.
///
/// Methods are invoked *before* the operation executes, so the recorded
/// order is the call order even when an operation fails. All methods
/// take `&mut self`; sinks are shared via `Rc<RefCell<_>>` between the
/// [`RecordingFile`] (register events) and the simulator (memory events
/// and clock stamps).
pub trait EventSink {
    /// The simulator's clock advanced to `cycle`. Stamps subsequent
    /// events; purely informational (replay ignores it). Called once per
    /// instruction, not per event.
    fn clock(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// A register read was issued.
    fn reg_read(&mut self, addr: RegAddr);

    /// A register write of `value` was issued.
    fn reg_write(&mut self, addr: RegAddr, value: Word);

    /// `cid` became current via a plain switch (procedure return).
    fn switch_to(&mut self, cid: Cid);

    /// `cid` became current via a procedure call (fresh context — this
    /// is the allocation edge of a context's lifetime).
    fn call_push(&mut self, cid: Cid);

    /// `cid` became current via a thread dispatch.
    fn thread_switch(&mut self, cid: Cid);

    /// Every register of `cid` was declared dead.
    fn free_context(&mut self, cid: Cid);

    /// A single register was explicitly deallocated (paper §4.2).
    fn free_reg(&mut self, addr: RegAddr);

    /// The program loaded from data memory (through the data cache).
    fn mem_read(&mut self, addr: Addr);

    /// The program stored to data memory (through the data cache).
    fn mem_write(&mut self, addr: Addr);
}

/// A shareable sink handle, as held by the simulator and the wrapper.
pub type SharedSink = Rc<RefCell<dyn EventSink>>;

/// A [`RegisterFile`] wrapper that reports every operation to an
/// [`EventSink`] and then forwards it to the wrapped organization.
///
/// Statistics, occupancy, capacity and description all come from the
/// inner file, so a recorded run reports exactly what an unrecorded run
/// would.
pub struct RecordingFile {
    inner: Box<dyn RegisterFile>,
    sink: SharedSink,
}

impl RecordingFile {
    /// Wraps `inner`, reporting its operation stream to `sink`.
    pub fn new(inner: Box<dyn RegisterFile>, sink: SharedSink) -> Self {
        RecordingFile { inner, sink }
    }

    /// Unwraps, returning the inner file.
    pub fn into_inner(self) -> Box<dyn RegisterFile> {
        self.inner
    }
}

impl RegisterFile for RecordingFile {
    fn read(
        &mut self,
        addr: RegAddr,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.sink.borrow_mut().reg_read(addr);
        self.inner.read(addr, store)
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.sink.borrow_mut().reg_write(addr, value);
        self.inner.write(addr, value, store)
    }

    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.sink.borrow_mut().switch_to(cid);
        self.inner.switch_to(cid, store)
    }

    fn call_push(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.sink.borrow_mut().call_push(cid);
        self.inner.call_push(cid, store)
    }

    fn thread_switch(
        &mut self,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        self.sink.borrow_mut().thread_switch(cid);
        self.inner.thread_switch(cid, store)
    }

    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        self.sink.borrow_mut().free_context(cid);
        self.inner.free_context(cid, store);
    }

    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        self.sink.borrow_mut().free_reg(addr);
        self.inner.free_reg(addr, store);
    }

    fn capacity(&self) -> u32 {
        self.inner.capacity()
    }

    fn occupancy(&self) -> Occupancy {
        self.inner.occupancy()
    }

    fn stats(&self) -> &RegFileStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;
    use crate::{NamedStateFile, NsfConfig};

    /// A sink that tallies calls per kind.
    #[derive(Default)]
    struct CountingSink {
        reads: u32,
        writes: u32,
        switches: u32,
        calls: u32,
        threads: u32,
        free_ctx: u32,
        free_reg: u32,
        mem: u32,
        last_clock: u64,
    }

    impl EventSink for CountingSink {
        fn clock(&mut self, cycle: u64) {
            self.last_clock = cycle;
        }
        fn reg_read(&mut self, _: RegAddr) {
            self.reads += 1;
        }
        fn reg_write(&mut self, _: RegAddr, _: Word) {
            self.writes += 1;
        }
        fn switch_to(&mut self, _: Cid) {
            self.switches += 1;
        }
        fn call_push(&mut self, _: Cid) {
            self.calls += 1;
        }
        fn thread_switch(&mut self, _: Cid) {
            self.threads += 1;
        }
        fn free_context(&mut self, _: Cid) {
            self.free_ctx += 1;
        }
        fn free_reg(&mut self, _: RegAddr) {
            self.free_reg += 1;
        }
        fn mem_read(&mut self, _: Addr) {
            self.mem += 1;
        }
        fn mem_write(&mut self, _: Addr) {
            self.mem += 1;
        }
    }

    #[test]
    fn wrapper_records_and_forwards() {
        let sink = Rc::new(RefCell::new(CountingSink::default()));
        let inner = Box::new(NamedStateFile::new(NsfConfig::paper_default(16)));
        let mut f = RecordingFile::new(inner, sink.clone());
        let mut store = MapStore::new();

        f.switch_to(1, &mut store).unwrap();
        f.write(RegAddr::new(1, 0), 7, &mut store).unwrap();
        let v = f.read(RegAddr::new(1, 0), &mut store).unwrap();
        assert_eq!(v.value, 7, "forwarding preserves results");
        f.call_push(2, &mut store).unwrap();
        f.thread_switch(1, &mut store).unwrap();
        f.free_reg(RegAddr::new(1, 0), &mut store);
        f.free_context(2, &mut store);

        let s = sink.borrow();
        assert_eq!(
            (s.reads, s.writes, s.switches, s.calls, s.threads),
            (1, 1, 1, 1, 1)
        );
        assert_eq!((s.free_ctx, s.free_reg), (1, 1));
        drop(s);

        // Stats flow through from the inner file.
        assert_eq!(f.stats().reads, 1);
        assert_eq!(f.stats().writes, 1);
        assert!(f.describe().contains("NSF"));
        assert_eq!(f.capacity(), 16);
        let inner = f.into_inner();
        assert_eq!(inner.stats().reads, 1);
    }

    #[test]
    fn clock_default_is_noop() {
        struct Minimal;
        impl EventSink for Minimal {
            fn reg_read(&mut self, _: RegAddr) {}
            fn reg_write(&mut self, _: RegAddr, _: Word) {}
            fn switch_to(&mut self, _: Cid) {}
            fn call_push(&mut self, _: Cid) {}
            fn thread_switch(&mut self, _: Cid) {}
            fn free_context(&mut self, _: Cid) {}
            fn free_reg(&mut self, _: RegAddr) {}
            fn mem_read(&mut self, _: Addr) {}
            fn mem_write(&mut self, _: Addr) {}
        }
        Minimal.clock(42); // must compile and do nothing
    }
}
