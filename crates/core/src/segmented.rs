//! The segmented register file — the multithreaded baseline (paper §3.1).
//!
//! "This processor partitions a large register set into a few register
//! frames, each of which holds the registers of a different thread. A frame
//! pointer selects the current active frame. [...] To switch to a
//! non-resident thread, the processor must spill the contents of a register
//! frame out to memory, and load the registers of a new thread in its
//! place."
//!
//! Two reload variants are modelled (paper §7.3):
//!
//! * [`FramePolicy::Full`] — the classic design with no per-register valid
//!   bits: a frame miss moves the *entire* frame in each direction,
//!   including empty registers.
//! * [`FramePolicy::ValidOnly`] — each register is tagged with a valid bit
//!   and only registers containing data are spilled and reloaded.
//!
//! The spill machinery is either a hardware engine or Sparcle-style
//! software trap handlers ([`crate::SpillEngine`]), which drives the
//! Figure 14 overhead comparison.

use crate::addr::{Cid, RegAddr};
use crate::policy::{ReplacementPolicy, SpillEngine};
use crate::replacement::VictimPicker;
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;

/// Sentinel in [`SegmentedFile::resident`] for "context not resident".
const NOT_RESIDENT: u32 = u32::MAX;

/// What a frame miss transfers (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FramePolicy {
    /// Whole frames move; empty registers are transferred too.
    #[default]
    Full,
    /// Per-register valid bits; only registers holding data move.
    ValidOnly,
}

/// Configuration of a [`SegmentedFile`].
#[derive(Clone, Copy, Debug)]
pub struct SegmentedConfig {
    /// Number of frames (resident thread slots). The paper's reference
    /// configuration uses 4.
    pub frames: u32,
    /// Registers per frame (20 for the sequential experiments, 32 for the
    /// parallel ones).
    pub frame_regs: u8,
    /// Transfer policy on a frame miss.
    pub policy: FramePolicy,
    /// Victim frame selection.
    pub replacement: ReplacementPolicy,
    /// Spill/reload cost model (hardware assist vs software traps).
    pub engine: SpillEngine,
    /// Optional background spill ("dribble-back") engine: while a frame
    /// sits idle, its registers trickle out to memory, so an eventual
    /// eviction finds them pre-written. One register is prepaid per
    /// `ops_per_reg` register file operations of idle time. The paper's
    /// critique stands either way: the *traffic* is unchanged, only the
    /// eviction stall shrinks.
    pub dribble: Option<DribbleConfig>,
}

/// Background spill rate for [`SegmentedConfig::dribble`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DribbleConfig {
    /// Register-file operations of idle time that prepay one register's
    /// writeback.
    pub ops_per_reg: u32,
}

impl SegmentedConfig {
    /// The paper's baseline: `frames` frames, full-frame transfers, LRU,
    /// hardware-assisted spilling.
    pub fn paper_default(frames: u32, frame_regs: u8) -> Self {
        SegmentedConfig {
            frames,
            frame_regs,
            policy: FramePolicy::Full,
            replacement: ReplacementPolicy::Lru,
            engine: SpillEngine::hardware(),
            dribble: None,
        }
    }

    /// A swept point of the design space: `total_regs` registers divided
    /// evenly into `frames` frames. `frames` must divide `total_regs`
    /// and each frame must fit an eight-bit register count.
    pub fn evenly_divided(total_regs: u32, frames: u32) -> Self {
        assert!(frames > 0, "need at least one frame");
        assert_eq!(total_regs % frames, 0, "frames must divide the file");
        let frame_regs = total_regs / frames;
        assert!(
            frame_regs > 0 && frame_regs <= 255,
            "frame size out of range"
        );
        SegmentedConfig::paper_default(frames, frame_regs as u8)
    }
}

#[derive(Clone)]
struct Frame {
    owner: Option<Cid>,
    regs: Box<[Word]>,
    valid: u64,
    dirty: u64,
}

impl Frame {
    fn new(width: u8) -> Self {
        Frame {
            owner: None,
            regs: vec![0; width as usize].into_boxed_slice(),
            valid: 0,
            dirty: 0,
        }
    }

    fn clear(&mut self) {
        self.owner = None;
        self.valid = 0;
        self.dirty = 0;
    }
}

/// The segmented register file. See module docs.
pub struct SegmentedFile {
    cfg: SegmentedConfig,
    frames: Vec<Frame>,
    /// cid → frame index for resident contexts, addressed by context
    /// ID (`NOT_RESIDENT` marks absence). Context switches consult this
    /// on every simulated switch, so it is an array load, not a hash.
    resident: Vec<u32>,
    /// Number of resident contexts (entries of `resident` that are not
    /// `NOT_RESIDENT`).
    resident_count: u32,
    /// The frame pointer: index of the current frame.
    current: Option<usize>,
    picker: VictimPicker,
    stats: RegFileStats,
    /// Register-file operation counter (dribble idle-time clock).
    ops: u64,
    /// `ops` value when each frame was last touched.
    last_touch: Vec<u64>,
    /// Bitmask of unowned frames (bit i ⇔ frame i free), so claiming the
    /// lowest-index free frame is a word scan, not a frame scan.
    free_mask: Vec<u64>,
    /// Running count of set valid bits across owned frames (O(1)
    /// occupancy sampling).
    valid_count: u32,
}

impl SegmentedFile {
    /// Creates an empty file.
    ///
    /// # Panics
    ///
    /// Panics on zero frames or zero-width frames (configuration bugs).
    pub fn new(cfg: SegmentedConfig) -> Self {
        assert!(cfg.frames > 0, "need at least one frame");
        assert!(
            cfg.frame_regs > 0 && cfg.frame_regs <= 64,
            "1..=64 registers per frame"
        );
        let n = cfg.frames as usize;
        let mut free_mask = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            *free_mask.last_mut().expect("at least one word") = (1u64 << (n % 64)) - 1;
        }
        SegmentedFile {
            cfg,
            frames: vec![Frame::new(cfg.frame_regs); n],
            resident: Vec::new(),
            resident_count: 0,
            current: None,
            picker: VictimPicker::new(n, cfg.replacement),
            stats: RegFileStats::default(),
            ops: 0,
            last_touch: vec![0; n],
            free_mask,
            valid_count: 0,
        }
    }

    /// The lowest-index unowned frame, if any (the frame the historical
    /// `position(|f| f.owner.is_none())` scan would return).
    fn first_free_frame(&self) -> Option<usize> {
        self.free_mask
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(word, &w)| word * 64 + w.trailing_zeros() as usize)
    }

    fn mark_free(&mut self, idx: usize) {
        self.free_mask[idx / 64] |= 1 << (idx % 64);
    }

    fn mark_owned(&mut self, idx: usize) {
        self.free_mask[idx / 64] &= !(1 << (idx % 64));
    }

    /// The configuration this file was built with.
    pub fn config(&self) -> &SegmentedConfig {
        &self.cfg
    }

    fn check(&self, addr: RegAddr) -> Result<(), RegFileError> {
        if addr.offset < self.cfg.frame_regs {
            Ok(())
        } else {
            Err(RegFileError::BadOffset(addr))
        }
    }

    fn touch(&mut self, idx: usize) {
        self.ops += 1;
        self.last_touch[idx] = self.ops;
        self.picker.touch(idx);
    }

    /// Registers of frame `idx` whose writeback the dribble engine has
    /// already performed during its idle time.
    fn prepaid_regs(&self, idx: usize) -> u32 {
        match self.cfg.dribble {
            Some(d) if d.ops_per_reg > 0 => {
                let idle = self.ops.saturating_sub(self.last_touch[idx]);
                u32::try_from(idle / u64::from(d.ops_per_reg)).unwrap_or(u32::MAX)
            }
            _ => 0,
        }
    }

    /// Spills frame `idx` to the backing store per the frame policy.
    fn spill_frame(
        &mut self,
        idx: usize,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        let width = self.cfg.frame_regs;
        let prepaid_budget = self.prepaid_regs(idx);
        let frame = &mut self.frames[idx];
        let cid = frame.owner.expect("spilling an unowned frame");
        let mut moved = 0u32;
        let mut mem_cycles = 0u32;
        for i in 0..width {
            let bit = 1u64 << i;
            let valid = frame.valid & bit != 0;
            match self.cfg.policy {
                FramePolicy::Full => {
                    // The whole frame moves; empty slots carry no data but
                    // still cost a memory transfer.
                    let cyc = store.spill(cid, i, frame.regs[i as usize])?;
                    if moved >= prepaid_budget {
                        mem_cycles += cyc;
                    }
                    if !valid {
                        // Do not let garbage masquerade as live data.
                        store.discard_reg(cid, i);
                    }
                    moved += 1;
                }
                FramePolicy::ValidOnly => {
                    if valid {
                        let cyc = store.spill(cid, i, frame.regs[i as usize])?;
                        if moved >= prepaid_budget {
                            mem_cycles += cyc;
                        }
                        moved += 1;
                    }
                }
            }
        }
        let freed = frame.valid.count_ones();
        frame.clear();
        self.valid_count -= freed;
        self.clear_resident(cid);
        self.mark_free(idx);
        let prepaid = moved.min(prepaid_budget);
        self.stats.regs_spilled += u64::from(moved);
        self.stats.regs_dribbled += u64::from(prepaid);
        // Only the transfers the dribble engine had not finished stall
        // the pipeline.
        let cycles = self.cfg.engine.transfer_cost(moved - prepaid, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }

    /// Loads context `cid` into frame `idx` per the frame policy.
    fn reload_frame(
        &mut self,
        idx: usize,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        let width = self.cfg.frame_regs;
        // A context that never ran has nothing to load; the frame is
        // simply claimed.
        if !store.any_present(cid) {
            return Ok(0);
        }
        let mut moved = 0u32;
        let mut live = 0u32;
        let mut mem_cycles = 0u32;
        for i in 0..width {
            let fetch = match self.cfg.policy {
                FramePolicy::Full => true,
                FramePolicy::ValidOnly => store.is_present(cid, i),
            };
            if !fetch {
                continue;
            }
            let (value, cyc) = store.reload(cid, i)?;
            mem_cycles += cyc;
            moved += 1;
            if let Some(v) = value {
                live += 1;
                let frame = &mut self.frames[idx];
                frame.regs[i as usize] = v;
                frame.valid |= 1 << i;
                // Counted per register, not batched after the loop: a store
                // fault mid-reload must not desync the count from the bits.
                self.valid_count += 1;
            }
        }
        self.stats.lines_reloaded += 1;
        self.stats.regs_reloaded += u64::from(moved);
        self.stats.live_regs_reloaded += u64::from(live);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }

    /// The frame holding context `cid`, if it is resident.
    #[inline]
    fn resident_frame(&self, cid: Cid) -> Option<usize> {
        match self.resident.get(usize::from(cid)) {
            Some(&idx) if idx != NOT_RESIDENT => Some(idx as usize),
            _ => None,
        }
    }

    /// Records context `cid` as resident in frame `idx`.
    fn set_resident(&mut self, cid: Cid, idx: usize) {
        if self.resident.len() <= usize::from(cid) {
            self.resident.resize(usize::from(cid) + 1, NOT_RESIDENT);
        }
        debug_assert_eq!(self.resident[usize::from(cid)], NOT_RESIDENT);
        self.resident[usize::from(cid)] = idx as u32;
        self.resident_count += 1;
    }

    /// Clears context `cid`'s residency, returning the frame it held.
    fn clear_resident(&mut self, cid: Cid) -> Option<usize> {
        let slot = self.resident.get_mut(usize::from(cid))?;
        if *slot == NOT_RESIDENT {
            return None;
        }
        let idx = *slot as usize;
        *slot = NOT_RESIDENT;
        self.resident_count -= 1;
        Some(idx)
    }

    fn current_frame(&self, cid: Cid) -> Result<usize, RegFileError> {
        match self.current {
            Some(idx) if self.frames[idx].owner == Some(cid) => Ok(idx),
            _ => Err(RegFileError::NotCurrent(cid)),
        }
    }
}

impl RegisterFile for SegmentedFile {
    fn read(
        &mut self,
        addr: RegAddr,
        _store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.check(addr)?;
        // A NotCurrent rejection never reaches the file; only accesses
        // that do are counted, keeping hits + misses == accesses.
        let idx = self.current_frame(addr.cid)?;
        self.stats.reads += 1;
        self.touch(idx);
        let frame = &self.frames[idx];
        if frame.valid & (1 << addr.offset) == 0 {
            self.stats.read_misses += 1;
            return Err(RegFileError::ReadUndefined(addr));
        }
        self.stats.read_hits += 1;
        Ok(Access::hit(frame.regs[addr.offset as usize]))
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        _store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.check(addr)?;
        let idx = self.current_frame(addr.cid)?;
        self.stats.writes += 1;
        self.touch(idx);
        let frame = &mut self.frames[idx];
        if frame.valid & (1 << addr.offset) == 0 {
            self.valid_count += 1;
        }
        frame.regs[addr.offset as usize] = value;
        frame.valid |= 1 << addr.offset;
        frame.dirty |= 1 << addr.offset;
        self.stats.write_hits += 1;
        Ok(Access::hit(value))
    }

    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.stats.context_switches += 1;
        if let Some(idx) = self.resident_frame(cid) {
            // "Switching between the resident threads is very fast, since
            // it only requires setting the frame pointer."
            self.stats.switch_hits += 1;
            self.current = Some(idx);
            self.touch(idx);
            return Ok(0);
        }
        // Frame miss: claim a free frame or spill a victim (the file is
        // full in that case, so the picker chooses among all frames).
        let mut cycles = 0;
        let idx = match self.first_free_frame() {
            Some(free) => free,
            None => {
                let victim = self.picker.pick();
                cycles += self.spill_frame(victim, store)?;
                victim
            }
        };
        self.frames[idx].owner = Some(cid);
        self.mark_owned(idx);
        self.set_resident(cid, idx);
        self.picker.allocate(idx);
        self.ops += 1;
        self.last_touch[idx] = self.ops;
        match self.reload_frame(idx, cid, store) {
            Ok(c) => cycles += c,
            Err(e) => {
                // A faulted reload must not leave the context claimed: a
                // partially filled frame would satisfy the next switch as
                // resident while its remaining registers sit unreadable in
                // the backing store. Drop the claim so a retry reloads
                // from scratch.
                self.valid_count -= self.frames[idx].valid.count_ones();
                self.frames[idx].clear();
                self.clear_resident(cid);
                self.mark_free(idx);
                return Err(e);
            }
        }
        self.current = Some(idx);
        Ok(cycles)
    }

    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        if let Some(idx) = self.clear_resident(cid) {
            self.valid_count -= self.frames[idx].valid.count_ones();
            self.frames[idx].clear();
            self.mark_free(idx);
            if self.current == Some(idx) {
                self.current = None;
            }
        }
        store.discard_context(cid);
    }

    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        if let Some(idx) = self.resident_frame(addr.cid) {
            let bit = 1u64 << addr.offset;
            if self.frames[idx].valid & bit != 0 {
                self.valid_count -= 1;
            }
            self.frames[idx].valid &= !bit;
            self.frames[idx].dirty &= !bit;
        }
        store.discard_reg(addr.cid, addr.offset);
    }

    fn capacity(&self) -> u32 {
        self.cfg.frames * u32::from(self.cfg.frame_regs)
    }

    fn occupancy(&self) -> Occupancy {
        Occupancy {
            valid_regs: self.valid_count,
            resident_contexts: self.resident_count,
        }
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = RegFileStats::default();
    }

    fn describe(&self) -> String {
        format!(
            "Segmented {}x{} ({:?}, {:?})",
            self.cfg.frames, self.cfg.frame_regs, self.cfg.policy, self.cfg.engine
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;

    fn file(frames: u32, width: u8, policy: FramePolicy) -> SegmentedFile {
        let mut cfg = SegmentedConfig::paper_default(frames, width);
        cfg.policy = policy;
        SegmentedFile::new(cfg)
    }

    #[test]
    fn access_requires_switch() {
        let mut f = file(2, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        let err = f.write(RegAddr::new(1, 0), 5, &mut s).unwrap_err();
        assert_eq!(err, RegFileError::NotCurrent(1));
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 5, &mut s).unwrap();
        assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 5);
    }

    #[test]
    fn resident_switch_is_free() {
        let mut f = file(2, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.switch_to(2, &mut s).unwrap();
        assert_eq!(f.switch_to(1, &mut s).unwrap(), 0);
        assert_eq!(f.stats().switch_hits, 1);
        assert_eq!(f.stats().regs_reloaded, 0, "no context ever spilled");
    }

    #[test]
    fn frame_miss_spills_whole_frame_under_full_policy() {
        let mut f = file(1, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 10, &mut s).unwrap(); // 1 valid of 4
        let cycles = f.switch_to(2, &mut s).unwrap();
        assert!(cycles > 0);
        // Whole frame spilled: 4 transfers, though only 1 register was live.
        assert_eq!(f.stats().regs_spilled, 4);
        // Switching back reloads the whole frame again.
        f.switch_to(1, &mut s).unwrap();
        assert_eq!(f.stats().regs_reloaded, 4);
        assert_eq!(f.stats().live_regs_reloaded, 1);
        assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 10);
    }

    #[test]
    fn valid_only_policy_moves_live_registers() {
        let mut f = file(1, 8, FramePolicy::ValidOnly);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 10, &mut s).unwrap();
        f.write(RegAddr::new(1, 3), 13, &mut s).unwrap();
        f.switch_to(2, &mut s).unwrap();
        assert_eq!(f.stats().regs_spilled, 2);
        f.switch_to(1, &mut s).unwrap();
        assert_eq!(f.stats().regs_reloaded, 2);
        assert_eq!(f.stats().live_regs_reloaded, 2);
        assert_eq!(f.read(RegAddr::new(1, 3), &mut s).unwrap().value, 13);
    }

    #[test]
    fn fresh_context_claims_frame_without_traffic() {
        let mut f = file(2, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(7, &mut s).unwrap();
        assert_eq!(f.stats().regs_reloaded, 0);
        assert_eq!(f.stats().regs_spilled, 0);
    }

    #[test]
    fn lru_frame_is_victim() {
        let mut f = file(2, 2, FramePolicy::ValidOnly);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        f.switch_to(2, &mut s).unwrap();
        f.write(RegAddr::new(2, 0), 2, &mut s).unwrap();
        f.switch_to(1, &mut s).unwrap(); // touch 1; 2 becomes LRU
        f.switch_to(3, &mut s).unwrap(); // must evict context 2
        assert!(f.resident_frame(1).is_some());
        assert!(f.resident_frame(2).is_none());
    }

    #[test]
    fn free_context_releases_frame_silently() {
        let mut f = file(1, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 9, &mut s).unwrap();
        f.free_context(1, &mut s);
        assert_eq!(f.stats().regs_spilled, 0);
        assert_eq!(f.occupancy().resident_contexts, 0);
        // Frame is immediately reusable without eviction.
        assert_eq!(f.switch_to(2, &mut s).unwrap(), 0);
    }

    #[test]
    fn read_undefined_detected() {
        let mut f = file(1, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        assert!(matches!(
            f.read(RegAddr::new(1, 2), &mut s),
            Err(RegFileError::ReadUndefined(_))
        ));
    }

    #[test]
    fn full_spill_does_not_fabricate_live_data() {
        let mut f = file(1, 4, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 1), 11, &mut s).unwrap();
        f.switch_to(2, &mut s).unwrap(); // spills frame of 1
        f.switch_to(1, &mut s).unwrap(); // reloads
                                         // Register 0 was never written; it must still read as undefined.
        assert!(matches!(
            f.read(RegAddr::new(1, 0), &mut s),
            Err(RegFileError::ReadUndefined(_))
        ));
        assert_eq!(f.read(RegAddr::new(1, 1), &mut s).unwrap().value, 11);
    }

    #[test]
    fn occupancy_reflects_frames() {
        let mut f = file(4, 8, FramePolicy::Full);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        f.switch_to(2, &mut s).unwrap();
        f.write(RegAddr::new(2, 0), 1, &mut s).unwrap();
        f.write(RegAddr::new(2, 1), 1, &mut s).unwrap();
        let o = f.occupancy();
        assert_eq!(o.resident_contexts, 2);
        assert_eq!(o.valid_regs, 3);
        assert_eq!(f.capacity(), 32);
    }

    #[test]
    fn dribble_prepays_idle_frame_spills() {
        use crate::segmented::DribbleConfig;
        let run = |dribble: Option<DribbleConfig>| {
            let mut cfg = SegmentedConfig::paper_default(2, 4);
            cfg.policy = FramePolicy::ValidOnly;
            cfg.dribble = dribble;
            let mut f = SegmentedFile::new(cfg);
            let mut s = MapStore::new();
            // Frame 0 fills, then sits idle while frame 1 works.
            f.switch_to(1, &mut s).unwrap();
            for i in 0..4 {
                f.write(RegAddr::new(1, i), 1, &mut s).unwrap();
            }
            f.switch_to(2, &mut s).unwrap();
            for _ in 0..50 {
                f.write(RegAddr::new(2, 0), 2, &mut s).unwrap();
            }
            // Evict the long-idle frame of context 1.
            f.switch_to(3, &mut s).unwrap();
            (
                f.stats().spill_reload_cycles,
                f.stats().regs_spilled,
                f.stats().regs_dribbled,
            )
        };
        let (plain_cycles, plain_spills, plain_dribbled) = run(None);
        let (dr_cycles, dr_spills, dr_dribbled) = run(Some(DribbleConfig { ops_per_reg: 8 }));
        assert_eq!(plain_dribbled, 0);
        assert_eq!(
            plain_spills, dr_spills,
            "dribbling must not change the traffic, only the stall"
        );
        assert_eq!(dr_dribbled, 4, "50 idle ops / 8 per reg covers all 4");
        assert!(
            dr_cycles < plain_cycles,
            "prepaid spills must shrink the stall: {dr_cycles} vs {plain_cycles}"
        );
    }

    #[test]
    fn dribble_does_not_prepay_hot_frames() {
        use crate::segmented::DribbleConfig;
        let mut cfg = SegmentedConfig::paper_default(1, 4);
        cfg.dribble = Some(DribbleConfig { ops_per_reg: 8 });
        let mut f = SegmentedFile::new(cfg);
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        // Immediately evicted: no idle time, nothing prepaid.
        f.switch_to(2, &mut s).unwrap();
        assert_eq!(f.stats().regs_dribbled, 0);
    }

    #[test]
    fn dribble_counts_idle_from_allocation_not_run_start() {
        // A frame allocated late and never touched must accrue prepaid
        // writebacks only for the operations after its allocation — if
        // `last_touch` were left at its initial 0, the whole run's op
        // count would count as idle time and the eviction would be
        // spuriously prepaid.
        use crate::segmented::DribbleConfig;
        let mut cfg = SegmentedConfig::paper_default(2, 4);
        cfg.dribble = Some(DribbleConfig { ops_per_reg: 8 });
        let mut f = SegmentedFile::new(cfg);
        let mut s = MapStore::new();
        // A long busy prefix on frame 0.
        f.switch_to(1, &mut s).unwrap();
        for _ in 0..200 {
            f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        }
        // Frame 1 allocated late, never touched afterwards.
        f.switch_to(2, &mut s).unwrap();
        // Make frame 1 the LRU victim, then evict it almost immediately.
        f.switch_to(1, &mut s).unwrap();
        f.switch_to(3, &mut s).unwrap(); // evicts the never-touched frame 1
        assert_eq!(
            f.stats().regs_dribbled,
            0,
            "2 idle ops cannot prepay anything; 200 pre-allocation ops must not count"
        );
        // Full policy still moved the whole 4-register frame.
        assert_eq!(f.stats().regs_spilled, 4);
    }

    #[test]
    fn dribble_just_allocated_never_written_frame_earns_its_idle() {
        // The complementary case: a never-touched frame that genuinely
        // idles after allocation earns prepaid credit for exactly that
        // idle span (and never more than the transfer it prepays).
        use crate::segmented::DribbleConfig;
        let mut cfg = SegmentedConfig::paper_default(2, 4);
        cfg.dribble = Some(DribbleConfig { ops_per_reg: 8 });
        let mut f = SegmentedFile::new(cfg);
        let mut s = MapStore::new();
        // Frame 0: context 2, allocated first, never read or written.
        f.switch_to(2, &mut s).unwrap();
        // Frame 1: busy context — 100 ops of idle time for frame 0.
        f.switch_to(1, &mut s).unwrap();
        for _ in 0..100 {
            f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        }
        f.switch_to(3, &mut s).unwrap(); // evicts frame 0 (LRU)
        assert_eq!(f.stats().regs_spilled, 4, "Full policy moves the frame");
        assert_eq!(
            f.stats().regs_dribbled,
            4,
            "100 idle ops / 8 per reg covers the whole 4-register transfer"
        );
        assert_eq!(
            f.stats().invariant_violation().as_deref().unwrap_or("none"),
            "none"
        );
    }

    #[test]
    fn software_engine_costs_more() {
        let run = |engine: SpillEngine| {
            let mut cfg = SegmentedConfig::paper_default(1, 8);
            cfg.engine = engine;
            let mut f = SegmentedFile::new(cfg);
            let mut s = MapStore::new();
            f.switch_to(1, &mut s).unwrap();
            f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
            f.switch_to(2, &mut s).unwrap();
            f.switch_to(1, &mut s).unwrap();
            f.stats().spill_reload_cycles
        };
        assert!(run(SpillEngine::software()) > run(SpillEngine::hardware()));
    }
}
