//! A SPARC-style windowed register file — the related-work baseline.
//!
//! Paper §5: "Keppel and Hidaka propose running multiple concurrent
//! threads in the register windows of a Sparc processor by modifying
//! window trap handlers." This organization models that machine:
//!
//! * a circular set of **windows**, one per procedure activation, advanced
//!   by `call` and retracted by `ret`;
//! * **overflow**: a call that wraps onto an occupied window traps and
//!   spills the *deepest* resident activation (strict stack order — not
//!   LRU);
//! * **underflow**: a return to an activation whose window was spilled
//!   traps and reloads it;
//! * **thread switches flush**: the window set belongs to one call chain,
//!   so dispatching another thread spills every resident window of the
//!   outgoing chain and reloads the incoming thread's top activation —
//!   the cost Keppel's and Hidaka's trap handlers try to soften, and the
//!   cost the Named-State Register File removes outright.
//!
//! Spills and reloads run through the same [`SpillEngine`] cost model as
//! the segmented file, using software traps by default (the Sparc way).

use crate::addr::{Cid, RegAddr};
use crate::policy::SpillEngine;
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;
use std::collections::HashMap;

/// Configuration of a [`WindowedFile`].
#[derive(Clone, Copy, Debug)]
pub struct WindowedConfig {
    /// Number of windows (SPARC implementations shipped 7 or 8).
    pub windows: u32,
    /// Registers per window.
    pub window_regs: u8,
    /// Spill/reload machinery; SPARC used software trap handlers.
    pub engine: SpillEngine,
}

impl WindowedConfig {
    /// A SPARC-like default: 8 windows, software trap handlers.
    pub fn sparc_like(window_regs: u8) -> Self {
        WindowedConfig {
            windows: 8,
            window_regs,
            engine: SpillEngine::software(),
        }
    }
}

#[derive(Clone)]
struct Window {
    regs: Box<[Word]>,
    valid: u64,
}

/// One activation of the current chain: resident (`Some` window) or
/// spilled to the backing store (`None`).
struct Slot {
    cid: Cid,
    window: Option<Window>,
}

/// The windowed register file. See module docs.
pub struct WindowedFile {
    cfg: WindowedConfig,
    /// The current thread's call chain, outermost first; at most
    /// `cfg.windows` slots hold a resident window at any time. Spills
    /// always take the deepest resident window, so the resident windows
    /// form a contiguous *suffix* of the chain — the deepest resident is
    /// always at index `chain.len() - resident_count`.
    chain: Vec<Slot>,
    /// Parked chains of other threads, keyed by their innermost CID.
    /// Parked chains are fully spilled (register values live in the
    /// backing store; only the CID order is kept).
    parked: HashMap<Cid, Vec<Cid>>,
    stats: RegFileStats,
    /// Number of chain slots holding a resident window.
    resident_count: usize,
    /// Set valid bits across resident windows (O(1) occupancy sampling).
    valid_count: u32,
}

impl WindowedFile {
    /// Creates an empty file.
    ///
    /// # Panics
    ///
    /// Panics on zero windows or zero-width windows (configuration bugs).
    pub fn new(cfg: WindowedConfig) -> Self {
        assert!(cfg.windows > 0, "need at least one window");
        assert!(
            cfg.window_regs > 0 && cfg.window_regs <= 64,
            "1..=64 registers per window"
        );
        WindowedFile {
            cfg,
            chain: Vec::new(),
            parked: HashMap::new(),
            stats: RegFileStats::default(),
            resident_count: 0,
            valid_count: 0,
        }
    }

    fn fresh_window(&self) -> Window {
        Window {
            regs: vec![0; self.cfg.window_regs as usize].into_boxed_slice(),
            valid: 0,
        }
    }

    /// The configuration this file was built with.
    pub fn config(&self) -> &WindowedConfig {
        &self.cfg
    }

    fn check(&self, addr: RegAddr) -> Result<(), RegFileError> {
        if addr.offset < self.cfg.window_regs {
            Ok(())
        } else {
            Err(RegFileError::BadOffset(addr))
        }
    }

    /// Index of the deepest (outermost) resident window. Resident windows
    /// are a contiguous suffix of the chain (see the field docs), so this
    /// is pure arithmetic, not a scan.
    fn deepest_resident(&self) -> usize {
        debug_assert!(self.resident_count > 0);
        let idx = self.chain.len() - self.resident_count;
        debug_assert!(self.chain[idx].window.is_some());
        idx
    }

    /// Spills slot `idx`'s window (must be resident). Returns cycles.
    fn spill_slot(
        &mut self,
        idx: usize,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        let cid = self.chain[idx].cid;
        let mut moved = 0u32;
        let mut mem_cycles = 0u32;
        {
            // Spill with the window still in place: a store fault mid-spill
            // must leave the activation resident, not silently drop the
            // registers that were never written back.
            let w = self.chain[idx]
                .window
                .as_ref()
                .expect("spilling a resident window");
            for i in 0..self.cfg.window_regs {
                if w.valid & (1 << i) != 0 {
                    mem_cycles += store.spill(cid, i, w.regs[i as usize])?;
                    moved += 1;
                }
            }
        }
        let w = self.chain[idx].window.take().expect("still resident");
        self.resident_count -= 1;
        self.valid_count -= w.valid.count_ones();
        self.stats.regs_spilled += u64::from(moved);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }

    /// Reloads a window's registers from the backing store.
    fn reload_window(
        &mut self,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<(Window, u32), RegFileError> {
        let mut w = self.fresh_window();
        let mut moved = 0u32;
        let mut mem_cycles = 0u32;
        for i in 0..self.cfg.window_regs {
            if store.is_present(cid, i) {
                let (v, cyc) = store.reload(cid, i)?;
                mem_cycles += cyc;
                moved += 1;
                if let Some(v) = v {
                    w.regs[i as usize] = v;
                    w.valid |= 1 << i;
                }
            }
        }
        self.stats.lines_reloaded += 1;
        self.stats.regs_reloaded += u64::from(moved);
        self.stats.live_regs_reloaded += u64::from(moved);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok((w, cycles))
    }

    /// Flushes the current chain's resident windows and parks it.
    fn park_current(&mut self, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        let mut cycles = 0;
        // Resident windows are the suffix [len - resident_count, len).
        let start = self.chain.len() - self.resident_count;
        for idx in start..self.chain.len() {
            cycles += self.spill_slot(idx, store)?;
        }
        if !self.chain.is_empty() {
            let key = self.chain.last().expect("non-empty").cid;
            let cids: Vec<Cid> = self.chain.drain(..).map(|s| s.cid).collect();
            self.parked.insert(key, cids);
        }
        Ok(cycles)
    }
}

impl RegisterFile for WindowedFile {
    fn read(
        &mut self,
        addr: RegAddr,
        _store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.check(addr)?;
        let cur = match self.chain.last() {
            Some(s) if s.cid == addr.cid => s.window.as_ref(),
            _ => None,
        };
        let Some(w) = cur else {
            // Rejected before reaching the file — not a counted access.
            return Err(RegFileError::NotCurrent(addr.cid));
        };
        self.stats.reads += 1;
        if w.valid & (1 << addr.offset) == 0 {
            self.stats.read_misses += 1;
            return Err(RegFileError::ReadUndefined(addr));
        }
        let value = w.regs[addr.offset as usize];
        self.stats.read_hits += 1;
        Ok(Access::hit(value))
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        _store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.check(addr)?;
        let cur = match self.chain.last_mut() {
            Some(s) if s.cid == addr.cid => s.window.as_mut(),
            _ => None,
        };
        let Some(w) = cur else {
            return Err(RegFileError::NotCurrent(addr.cid));
        };
        self.stats.writes += 1;
        if w.valid & (1 << addr.offset) == 0 {
            self.valid_count += 1;
        }
        w.regs[addr.offset as usize] = value;
        w.valid |= 1 << addr.offset;
        self.stats.write_hits += 1;
        Ok(Access::hit(value))
    }

    /// A plain `switch_to` reaches a windowed file on procedure *return*
    /// (the machine popped the dead callee first): retract one window,
    /// reloading it on underflow.
    fn switch_to(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.stats.context_switches += 1;
        match self.chain.last() {
            Some(s) if s.cid == cid && s.window.is_some() => {
                self.stats.switch_hits += 1;
                Ok(0)
            }
            Some(s) if s.cid == cid => {
                // Underflow: the caller's window was spilled earlier.
                let (w, cycles) = self.reload_window(cid, store)?;
                self.resident_count += 1;
                self.valid_count += w.valid.count_ones();
                self.chain.last_mut().expect("just matched").window = Some(w);
                Ok(cycles)
            }
            // Not the chain top at all: the processor is switching
            // threads through the generic entry point; behave sensibly.
            _ => {
                self.stats.context_switches -= 1; // thread_switch recounts
                self.thread_switch(cid, store)
            }
        }
    }

    /// A call advances the window pointer; on overflow the deepest
    /// resident window spills (strict stack order, like SPARC's CWP).
    fn call_push(&mut self, cid: Cid, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        self.stats.context_switches += 1;
        let mut cycles = 0;
        if self.resident_count as u32 >= self.cfg.windows {
            let deepest = self.deepest_resident();
            cycles += self.spill_slot(deepest, store)?;
        }
        let w = self.fresh_window();
        self.resident_count += 1;
        self.chain.push(Slot {
            cid,
            window: Some(w),
        });
        Ok(cycles)
    }

    /// Dispatching another thread flushes the whole resident chain and
    /// reloads the incoming thread's innermost window.
    fn thread_switch(
        &mut self,
        cid: Cid,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        self.stats.context_switches += 1;
        if self
            .chain
            .last()
            .is_some_and(|s| s.cid == cid && s.window.is_some())
        {
            self.stats.switch_hits += 1;
            return Ok(0);
        }
        let mut cycles = self.park_current(store)?;
        let parked_top = self
            .parked
            .get(&cid)
            .map(|cids| *cids.last().expect("parked chains are non-empty"));
        if let Some(top) = parked_top {
            // Known chain: restore its CID order; only the top window is
            // reloaded eagerly — returns underflow lazily. Reload before
            // consuming the parked entry: a store fault must leave the
            // chain parked and the dispatch retryable.
            let (w, cyc) = self.reload_window(top, store)?;
            let cids = self.parked.remove(&cid).expect("just found");
            for c in &cids[..cids.len() - 1] {
                self.chain.push(Slot {
                    cid: *c,
                    window: None,
                });
            }
            cycles += cyc;
            self.resident_count += 1;
            self.valid_count += w.valid.count_ones();
            self.chain.push(Slot {
                cid: top,
                window: Some(w),
            });
        } else {
            // A brand new thread: claim an empty window.
            let w = self.fresh_window();
            self.resident_count += 1;
            self.chain.push(Slot {
                cid,
                window: Some(w),
            });
        }
        Ok(cycles)
    }

    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        if self.chain.last().is_some_and(|s| s.cid == cid) {
            let slot = self.chain.pop().expect("just matched");
            if let Some(w) = slot.window {
                self.resident_count -= 1;
                self.valid_count -= w.valid.count_ones();
            }
        }
        self.parked.remove(&cid);
        store.discard_context(cid);
    }

    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        if let Some(s) = self.chain.last_mut() {
            if s.cid == addr.cid {
                if let Some(w) = s.window.as_mut() {
                    if w.valid & (1 << addr.offset) != 0 {
                        self.valid_count -= 1;
                    }
                    w.valid &= !(1 << addr.offset);
                }
            }
        }
        store.discard_reg(addr.cid, addr.offset);
    }

    fn capacity(&self) -> u32 {
        self.cfg.windows * u32::from(self.cfg.window_regs)
    }

    fn occupancy(&self) -> Occupancy {
        Occupancy {
            valid_regs: self.valid_count,
            resident_contexts: self.resident_count as u32,
        }
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = RegFileStats::default();
    }

    fn describe(&self) -> String {
        format!(
            "Windowed {}x{} ({:?})",
            self.cfg.windows, self.cfg.window_regs, self.cfg.engine
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;

    fn file(windows: u32) -> WindowedFile {
        WindowedFile::new(WindowedConfig {
            windows,
            window_regs: 4,
            engine: SpillEngine::software(),
        })
    }

    #[test]
    fn call_chain_within_windows_is_free() {
        let mut f = file(4);
        let mut s = MapStore::new();
        f.thread_switch(0, &mut s).unwrap();
        for cid in 1..4u16 {
            assert_eq!(f.call_push(cid, &mut s).unwrap(), 0);
            f.write(RegAddr::new(cid, 0), u32::from(cid), &mut s)
                .unwrap();
        }
        assert_eq!(f.stats().regs_spilled, 0);
        assert_eq!(f.occupancy().resident_contexts, 4);
    }

    #[test]
    fn overflow_spills_deepest_and_underflow_reloads() {
        let mut f = file(2);
        let mut s = MapStore::new();
        f.thread_switch(0, &mut s).unwrap();
        f.write(RegAddr::new(0, 1), 100, &mut s).unwrap();
        f.call_push(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 1), 101, &mut s).unwrap();
        // Third activation overflows: window of cid 0 spills.
        let cycles = f.call_push(2, &mut s).unwrap();
        assert!(cycles > 0);
        assert_eq!(f.stats().regs_spilled, 1);
        // Return path: pop 2, caller 1 still resident (free).
        f.free_context(2, &mut s);
        assert_eq!(f.switch_to(1, &mut s).unwrap(), 0);
        assert_eq!(f.read(RegAddr::new(1, 1), &mut s).unwrap().value, 101);
        // Pop 1: caller 0 was spilled → underflow reload.
        f.free_context(1, &mut s);
        let cycles = f.switch_to(0, &mut s).unwrap();
        assert!(cycles > 0, "underflow must reload");
        assert_eq!(f.read(RegAddr::new(0, 1), &mut s).unwrap().value, 100);
    }

    #[test]
    fn thread_switch_flushes_everything() {
        let mut f = file(4);
        let mut s = MapStore::new();
        f.thread_switch(0, &mut s).unwrap();
        f.write(RegAddr::new(0, 0), 1, &mut s).unwrap();
        f.call_push(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 0), 2, &mut s).unwrap();
        // Dispatch another thread: both resident windows spill.
        let cycles = f.thread_switch(10, &mut s).unwrap();
        assert!(cycles > 0);
        assert_eq!(f.stats().regs_spilled, 2);
        f.write(RegAddr::new(10, 0), 3, &mut s).unwrap();
        // Come back: only the top window (cid 1) reloads eagerly.
        let cycles = f.thread_switch(1, &mut s).unwrap();
        assert!(cycles > 0);
        assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 2);
        // Returning into cid 0 underflows and reloads it.
        f.free_context(1, &mut s);
        f.switch_to(0, &mut s).unwrap();
        assert_eq!(f.read(RegAddr::new(0, 0), &mut s).unwrap().value, 1);
    }

    #[test]
    fn access_requires_current_window() {
        let mut f = file(2);
        let mut s = MapStore::new();
        assert!(matches!(
            f.read(RegAddr::new(5, 0), &mut s),
            Err(RegFileError::NotCurrent(5))
        ));
        f.thread_switch(0, &mut s).unwrap();
        assert!(matches!(
            f.write(RegAddr::new(5, 0), 1, &mut s),
            Err(RegFileError::NotCurrent(5))
        ));
    }

    #[test]
    fn read_undefined_detected() {
        let mut f = file(2);
        let mut s = MapStore::new();
        f.thread_switch(0, &mut s).unwrap();
        assert!(matches!(
            f.read(RegAddr::new(0, 3), &mut s),
            Err(RegFileError::ReadUndefined(_))
        ));
    }

    #[test]
    fn describe_names_windows() {
        assert!(file(8).describe().contains("Windowed 8x4"));
    }
}
