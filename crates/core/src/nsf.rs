//! The Named-State Register File.
//!
//! A fully associative register file with very small lines (paper §4):
//!
//! * The unit of associativity is a **line** of `regs_per_line` registers
//!   (1–4 typical); each line carries a CAM tag `<CID, line#>` in the
//!   [`crate::cam::AssocDecoder`] and per-register **valid** and **dirty**
//!   bits.
//! * The **first write** to a register allocates its line
//!   (write-allocate by default); a **read miss** reloads on demand per the
//!   configured [`ReloadPolicy`].
//! * When allocation finds the file full, a **victim line is spilled**
//!   (LRU by default), writing back only dirty registers — clean registers
//!   already have an up-to-date backing copy.
//! * **Context switches cost nothing**: `switch_to` only counts statistics.
//!   "The processor simply issues instructions from the new context."
//! * `free_context` drops a dead activation's lines *without* writeback —
//!   the reason sequential call chains run with almost no register traffic.

use crate::addr::{Cid, RegAddr};
use crate::cam::AssocDecoder;
use crate::policy::{ReloadPolicy, ReplacementPolicy, SpillEngine, WriteMissPolicy};
use crate::replacement::VictimPicker;
use crate::stats::{Occupancy, RegFileStats};
use crate::traits::{Access, BackingStore, RegFileError, RegisterFile};
use crate::Word;

/// Configuration of a [`NamedStateFile`].
#[derive(Clone, Copy, Debug)]
pub struct NsfConfig {
    /// Total register slots in the file (the paper uses 80 for sequential
    /// and 128 for parallel experiments).
    pub total_regs: u32,
    /// Registers per associative line (1, 2 or 4 in the paper's designs;
    /// up to 32 supported for the Figure 13 sweep).
    pub regs_per_line: u8,
    /// Architectural registers per context (offset field width; 32 in the
    /// paper).
    pub ctx_regs: u8,
    /// What a miss transfers.
    pub reload: ReloadPolicy,
    /// How write misses behave.
    pub write_miss: WriteMissPolicy,
    /// Victim selection.
    pub replacement: ReplacementPolicy,
    /// Spill/reload cost model.
    pub engine: SpillEngine,
}

impl NsfConfig {
    /// The paper's headline configuration: single-register lines, LRU,
    /// write-allocate, demand reload of single registers.
    pub fn paper_default(total_regs: u32) -> Self {
        NsfConfig {
            total_regs,
            regs_per_line: 1,
            ctx_regs: 32,
            reload: ReloadPolicy::SingleRegister,
            write_miss: WriteMissPolicy::WriteAllocate,
            replacement: ReplacementPolicy::Lru,
            engine: SpillEngine::hardware(),
        }
    }

    /// A swept point of the Figure 13 design space: the paper default
    /// with `regs_per_line`-register lines. The line width must be
    /// nonzero, divide `total_regs`, and fit inside one 32-register
    /// context — exactly the organizations the CAM decoder can tag.
    pub fn paper_lines(total_regs: u32, regs_per_line: u8) -> Self {
        let mut cfg = NsfConfig::paper_default(total_regs);
        assert!(
            regs_per_line > 0 && regs_per_line <= cfg.ctx_regs,
            "line must fit a context"
        );
        assert_eq!(
            total_regs % u32::from(regs_per_line),
            0,
            "line width must divide the file"
        );
        cfg.regs_per_line = regs_per_line;
        cfg
    }

    /// The proof-of-concept prototype chip's organization (paper Fig. 5):
    /// 32 single-register lines behind a 10-bit CAM, two read ports and
    /// one write port.
    pub fn prototype() -> Self {
        NsfConfig::paper_default(32)
    }

    fn lines(&self) -> usize {
        (self.total_regs / u32::from(self.regs_per_line)) as usize
    }
}

/// Storage of one physical line.
#[derive(Clone, Debug)]
struct Line {
    regs: Box<[Word]>,
    /// Bit i set ⇔ register i of the line holds data.
    valid: u32,
    /// Bit i set ⇔ register i has been written since it was last spilled.
    dirty: u32,
}

impl Line {
    fn new(width: u8) -> Self {
        Line {
            regs: vec![0; width as usize].into_boxed_slice(),
            valid: 0,
            dirty: 0,
        }
    }

    fn clear(&mut self) {
        self.valid = 0;
        self.dirty = 0;
    }
}

/// The Named-State Register File. See the module docs.
///
/// # Examples
///
/// ```
/// use nsf_core::{MapStore, NamedStateFile, NsfConfig, RegAddr, RegisterFile};
///
/// let mut file = NamedStateFile::new(NsfConfig::paper_default(128));
/// let mut backing = MapStore::new();
///
/// // First write allocates <cid 7 : offset 3> in the CAM decoder.
/// file.write(RegAddr::new(7, 3), 42, &mut backing)?;
///
/// // Context switches are free; reads hit associatively.
/// file.switch_to(9, &mut backing)?;
/// file.switch_to(7, &mut backing)?;
/// assert_eq!(file.read(RegAddr::new(7, 3), &mut backing)?.value, 42);
/// assert_eq!(file.stats().read_misses, 0);
/// # Ok::<(), nsf_core::RegFileError>(())
/// ```
pub struct NamedStateFile {
    cfg: NsfConfig,
    decoder: AssocDecoder,
    lines: Vec<Line>,
    picker: VictimPicker,
    stats: RegFileStats,
    /// Running count of set valid bits across all lines, maintained
    /// incrementally so `occupancy()` is O(1) — the machine loop samples
    /// it every few instructions.
    valid_count: u32,
}

impl NamedStateFile {
    /// Creates an empty file.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, line width not
    /// dividing the total, line wider than a context) — configuration
    /// bugs, not runtime conditions.
    pub fn new(cfg: NsfConfig) -> Self {
        assert!(cfg.total_regs > 0, "file must have registers");
        assert!(cfg.regs_per_line > 0, "line width must be positive");
        assert!(
            cfg.total_regs.is_multiple_of(u32::from(cfg.regs_per_line)),
            "line width must divide total registers"
        );
        assert!(
            cfg.regs_per_line <= cfg.ctx_regs,
            "a line cannot exceed a context"
        );
        let n = cfg.lines();
        NamedStateFile {
            cfg,
            decoder: AssocDecoder::new(n),
            lines: vec![Line::new(cfg.regs_per_line); n],
            picker: VictimPicker::new(n, cfg.replacement),
            stats: RegFileStats::default(),
            valid_count: 0,
        }
    }

    /// The configuration this file was built with.
    pub fn config(&self) -> &NsfConfig {
        &self.cfg
    }

    fn check(&self, addr: RegAddr) -> Result<(), RegFileError> {
        if addr.offset < self.cfg.ctx_regs {
            Ok(())
        } else {
            Err(RegFileError::BadOffset(addr))
        }
    }

    /// Spills the victim line's dirty registers and unbinds it.
    /// Returns the cycle cost.
    ///
    /// Only called with the file full (every slot bound), so the picker
    /// chooses among all slots — no candidate list is materialized.
    fn evict_one(&mut self, store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        let victim = self.picker.pick();
        let tag = self.decoder.tag(victim).expect("victim was bound");
        // Write back while the line is still bound: a store fault mid-spill
        // must leave the victim resident and the operation retryable, not
        // push a slot with live valid bits onto the free list.
        let line = &self.lines[victim];
        let mut moved = 0u32;
        let mut mem_cycles = 0u32;
        let mut writeback = line.valid & line.dirty;
        while writeback != 0 {
            let i = writeback.trailing_zeros() as u8;
            writeback &= writeback - 1;
            let offset = tag.line * self.cfg.regs_per_line + i;
            mem_cycles += store.spill(tag.cid, offset, line.regs[i as usize])?;
            moved += 1;
        }
        self.decoder.unbind(victim);
        let line = &mut self.lines[victim];
        self.valid_count -= line.valid.count_ones();
        line.clear();
        self.stats.regs_spilled += u64::from(moved);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }

    /// Finds or allocates the physical slot for `<cid, line>`; spills if
    /// the file is full. Returns `(slot, cycles)`.
    fn allocate_line(
        &mut self,
        cid: Cid,
        line: u8,
        store: &mut dyn BackingStore,
    ) -> Result<(usize, u32), RegFileError> {
        let mut cycles = 0;
        let slot = loop {
            if let Some(free) = self.decoder.take_free() {
                break free;
            }
            cycles += self.evict_one(store)?;
        };
        self.decoder.bind(slot, cid, line);
        self.picker.allocate(slot);
        debug_assert_eq!(self.lines[slot].valid, 0, "allocated line must be empty");
        Ok((slot, cycles))
    }

    /// Transfers registers of `<cid, line>` into physical `slot` per the
    /// reload policy. `demand` is the offset-within-line that triggered the
    /// miss (reloaded unconditionally under every policy). Returns cycles.
    fn reload_line(
        &mut self,
        slot: usize,
        cid: Cid,
        line: u8,
        demand: u8,
        store: &mut dyn BackingStore,
    ) -> Result<u32, RegFileError> {
        let rpl = self.cfg.regs_per_line;
        let base = line * rpl;
        let mut moved = 0u32;
        let mut live = 0u32;
        let mut mem_cycles = 0u32;

        // Registers still missing from the line, as a bitmask (the demand
        // register is always among them: reload_line only runs on a miss).
        let full: u32 = if rpl >= 32 { u32::MAX } else { (1 << rpl) - 1 };
        let missing = full & !self.lines[slot].valid;
        debug_assert_ne!(missing & (1 << demand), 0, "demand register resident");
        let mut fetch = match self.cfg.reload {
            ReloadPolicy::SingleRegister => 1 << demand,
            ReloadPolicy::WholeLine => missing,
            ReloadPolicy::ValidOnly => {
                let mut mask = 1u32 << demand;
                let mut rest = missing & !mask;
                while rest != 0 {
                    let i = rest.trailing_zeros() as u8;
                    rest &= rest - 1;
                    if store.is_present(cid, base + i) {
                        mask |= 1 << i;
                    }
                }
                mask
            }
        };

        while fetch != 0 {
            let i = fetch.trailing_zeros() as u8;
            fetch &= fetch - 1;
            let (value, cyc) = store.reload(cid, base + i)?;
            mem_cycles += cyc;
            moved += 1;
            if let Some(v) = value {
                live += 1;
                let l = &mut self.lines[slot];
                l.regs[i as usize] = v;
                l.valid |= 1 << i;
                l.dirty &= !(1 << i); // freshly loaded ⇒ clean
                self.valid_count += 1;
            }
        }

        self.stats.lines_reloaded += 1;
        self.stats.regs_reloaded += u64::from(moved);
        self.stats.live_regs_reloaded += u64::from(live);
        let cycles = self.cfg.engine.transfer_cost(moved, mem_cycles);
        self.stats.spill_reload_cycles += u64::from(cycles);
        Ok(cycles)
    }
}

impl RegisterFile for NamedStateFile {
    fn read(
        &mut self,
        addr: RegAddr,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.check(addr)?;
        self.stats.reads += 1;
        let rpl = self.cfg.regs_per_line;
        let line = addr.line_index(rpl);
        let within = addr.line_slot(rpl);
        let bit = 1u32 << within;

        // CAM match.
        if let Some(slot) = self.decoder.lookup(addr.cid, line) {
            if self.lines[slot].valid & bit != 0 {
                self.stats.read_hits += 1;
                self.picker.touch(slot);
                return Ok(Access::hit(self.lines[slot].regs[within as usize]));
            }
            // Line resident, register not: partial miss — demand reload.
            self.stats.read_misses += 1;
            let cycles = self.reload_line(slot, addr.cid, line, within, store)?;
            self.picker.touch(slot);
            if self.lines[slot].valid & bit == 0 {
                return Err(RegFileError::ReadUndefined(addr));
            }
            return Ok(Access {
                value: self.lines[slot].regs[within as usize],
                stall_cycles: cycles,
                missed: true,
            });
        }

        // Full miss: allocate, then reload.
        self.stats.read_misses += 1;
        let (slot, alloc_cycles) = self.allocate_line(addr.cid, line, store)?;
        let reload_cycles = self.reload_line(slot, addr.cid, line, within, store)?;
        self.picker.touch(slot);
        if self.lines[slot].valid & bit == 0 {
            if self.lines[slot].valid == 0 {
                // Nothing was transferred; don't leave an empty line bound.
                self.decoder.unbind(slot);
            }
            return Err(RegFileError::ReadUndefined(addr));
        }
        Ok(Access {
            value: self.lines[slot].regs[within as usize],
            stall_cycles: alloc_cycles + reload_cycles,
            missed: true,
        })
    }

    fn write(
        &mut self,
        addr: RegAddr,
        value: Word,
        store: &mut dyn BackingStore,
    ) -> Result<Access, RegFileError> {
        self.check(addr)?;
        self.stats.writes += 1;
        let rpl = self.cfg.regs_per_line;
        let line = addr.line_index(rpl);
        let within = addr.line_slot(rpl);
        let bit = 1u32 << within;

        let (slot, stall) = if let Some(slot) = self.decoder.lookup(addr.cid, line) {
            self.stats.write_hits += 1;
            (slot, 0)
        } else {
            self.stats.write_misses += 1;
            let (slot, mut cycles) = self.allocate_line(addr.cid, line, store)?;
            if self.cfg.write_miss == WriteMissPolicy::FetchOnWrite {
                cycles += self.reload_line(slot, addr.cid, line, within, store)?;
            }
            (slot, cycles)
        };

        let l = &mut self.lines[slot];
        if l.valid & bit == 0 {
            self.valid_count += 1;
        }
        l.regs[within as usize] = value;
        l.valid |= bit;
        l.dirty |= bit;
        self.picker.touch(slot);
        Ok(Access {
            value,
            stall_cycles: stall,
            missed: stall > 0,
        })
    }

    fn switch_to(&mut self, cid: Cid, _store: &mut dyn BackingStore) -> Result<u32, RegFileError> {
        // "Context switching is very fast with the NSF, since no registers
        // must be saved or restored."
        self.stats.context_switches += 1;
        if self.decoder.has_context(cid) {
            self.stats.switch_hits += 1;
        }
        Ok(0)
    }

    fn free_context(&mut self, cid: Cid, store: &mut dyn BackingStore) {
        let NamedStateFile {
            decoder,
            lines,
            valid_count,
            ..
        } = self;
        decoder.unbind_context(cid, |slot| {
            *valid_count -= lines[slot].valid.count_ones();
            lines[slot].clear();
        });
        store.discard_context(cid);
    }

    fn free_reg(&mut self, addr: RegAddr, store: &mut dyn BackingStore) {
        let rpl = self.cfg.regs_per_line;
        let line = addr.line_index(rpl);
        let bit = 1u32 << addr.line_slot(rpl);
        if let Some(slot) = self.decoder.lookup(addr.cid, line) {
            let l = &mut self.lines[slot];
            if l.valid & bit != 0 {
                self.valid_count -= 1;
            }
            l.valid &= !bit;
            l.dirty &= !bit;
            if l.valid == 0 {
                // Whole line dead: release it.
                self.decoder.unbind(slot);
            }
        }
        store.discard_reg(addr.cid, addr.offset);
    }

    fn capacity(&self) -> u32 {
        self.cfg.total_regs
    }

    fn occupancy(&self) -> Occupancy {
        Occupancy {
            valid_regs: self.valid_count,
            resident_contexts: self.decoder.resident_contexts(),
        }
    }

    fn stats(&self) -> &RegFileStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = RegFileStats::default();
    }

    fn describe(&self) -> String {
        format!(
            "NSF {} regs x {}-reg lines ({:?})",
            self.cfg.total_regs, self.cfg.regs_per_line, self.cfg.reload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MapStore;

    fn file(total: u32, rpl: u8) -> NamedStateFile {
        let mut cfg = NsfConfig::paper_default(total);
        cfg.regs_per_line = rpl;
        NamedStateFile::new(cfg)
    }

    #[test]
    fn prototype_config_matches_figure_5() {
        let f = NamedStateFile::new(NsfConfig::prototype());
        assert_eq!(f.capacity(), 32);
        assert_eq!(f.config().regs_per_line, 1);
    }

    #[test]
    fn write_then_read_hits() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        let a = RegAddr::new(1, 0);
        f.write(a, 42, &mut s).unwrap();
        let r = f.read(a, &mut s).unwrap();
        assert_eq!(r.value, 42);
        assert!(!r.missed);
        assert_eq!(f.stats().read_hits, 1);
    }

    #[test]
    fn read_undefined_is_typed_error() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        let err = f.read(RegAddr::new(3, 5), &mut s).unwrap_err();
        assert_eq!(err, RegFileError::ReadUndefined(RegAddr::new(3, 5)));
    }

    #[test]
    fn bad_offset_rejected() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        let err = f.write(RegAddr::new(0, 32), 1, &mut s).unwrap_err();
        assert!(matches!(err, RegFileError::BadOffset(_)));
    }

    #[test]
    fn eviction_spills_and_demand_reload_restores() {
        let mut f = file(4, 1); // 4 single-register lines
        let mut s = MapStore::new();
        for i in 0..4 {
            f.write(RegAddr::new(1, i), u32::from(i) + 100, &mut s)
                .unwrap();
        }
        // Fifth write evicts the LRU line (reg 0 of cid 1).
        f.write(RegAddr::new(2, 0), 999, &mut s).unwrap();
        assert_eq!(f.stats().regs_spilled, 1);
        assert_eq!(s.peek(1, 0), Some(100));
        // Demand reload brings it back.
        let r = f.read(RegAddr::new(1, 0), &mut s).unwrap();
        assert_eq!(r.value, 100);
        assert!(r.missed);
        assert!(r.stall_cycles > 0);
        assert_eq!(f.stats().regs_reloaded, 1);
        assert_eq!(f.stats().live_regs_reloaded, 1);
    }

    #[test]
    fn clean_registers_are_not_respilled() {
        let mut f = file(2, 1);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 5, &mut s).unwrap();
        f.write(RegAddr::new(1, 1), 6, &mut s).unwrap();
        f.write(RegAddr::new(2, 0), 7, &mut s).unwrap(); // evicts <1:0> (dirty → spilled)
        assert_eq!(f.stats().regs_spilled, 1);
        f.read(RegAddr::new(1, 0), &mut s).unwrap(); // reload, now clean; evicts <1:1>
        assert_eq!(f.stats().regs_spilled, 2);
        f.read(RegAddr::new(2, 0), &mut s).unwrap(); // touch <2:0>: clean <1:0> is now LRU
        f.write(RegAddr::new(2, 1), 8, &mut s).unwrap(); // evicts clean <1:0>: no spill
        assert_eq!(
            f.stats().regs_spilled,
            2,
            "clean line must not be written back"
        );
    }

    #[test]
    fn free_context_drops_without_writeback() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 10, &mut s).unwrap();
        f.write(RegAddr::new(1, 1), 11, &mut s).unwrap();
        f.free_context(1, &mut s);
        assert_eq!(f.stats().regs_spilled, 0);
        assert_eq!(f.occupancy().valid_regs, 0);
        assert!(!s.any_present(1));
        // The registers are gone: reading is undefined.
        assert!(matches!(
            f.read(RegAddr::new(1, 0), &mut s),
            Err(RegFileError::ReadUndefined(_))
        ));
    }

    #[test]
    fn free_reg_releases_line_when_empty() {
        let mut f = file(8, 2);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        f.write(RegAddr::new(1, 1), 2, &mut s).unwrap();
        assert_eq!(f.occupancy().valid_regs, 2);
        f.free_reg(RegAddr::new(1, 0), &mut s);
        assert_eq!(f.occupancy().valid_regs, 1);
        assert_eq!(f.occupancy().resident_contexts, 1);
        f.free_reg(RegAddr::new(1, 1), &mut s);
        assert_eq!(f.occupancy().resident_contexts, 0);
    }

    #[test]
    fn multi_register_lines_whole_line_reload() {
        let mut cfg = NsfConfig::paper_default(8);
        cfg.regs_per_line = 4;
        cfg.reload = ReloadPolicy::WholeLine;
        let mut f = NamedStateFile::new(cfg);
        let mut s = MapStore::new();
        // Back three registers of line 0 of context 1.
        for i in 0..3 {
            s.preload(1, i, u32::from(i) * 10);
        }
        let r = f.read(RegAddr::new(1, 0), &mut s).unwrap();
        assert_eq!(r.value, 0);
        // Whole line transferred: 4 regs moved, 3 live.
        assert_eq!(f.stats().regs_reloaded, 4);
        assert_eq!(f.stats().live_regs_reloaded, 3);
        // The other present registers are now resident.
        assert!(!f.read(RegAddr::new(1, 2), &mut s).unwrap().missed);
    }

    #[test]
    fn valid_only_reload_transfers_present_regs() {
        let mut cfg = NsfConfig::paper_default(8);
        cfg.regs_per_line = 4;
        cfg.reload = ReloadPolicy::ValidOnly;
        let mut f = NamedStateFile::new(cfg);
        let mut s = MapStore::new();
        s.preload(1, 0, 7);
        s.preload(1, 2, 9);
        f.read(RegAddr::new(1, 0), &mut s).unwrap();
        assert_eq!(
            f.stats().regs_reloaded,
            2,
            "only the two present registers move"
        );
        assert_eq!(f.stats().live_regs_reloaded, 2);
    }

    #[test]
    fn single_register_reload_transfers_one() {
        let mut cfg = NsfConfig::paper_default(8);
        cfg.regs_per_line = 4;
        cfg.reload = ReloadPolicy::SingleRegister;
        let mut f = NamedStateFile::new(cfg);
        let mut s = MapStore::new();
        s.preload(1, 0, 7);
        s.preload(1, 1, 8);
        f.read(RegAddr::new(1, 0), &mut s).unwrap();
        assert_eq!(f.stats().regs_reloaded, 1);
        // Register 1 is still non-resident.
        let r = f.read(RegAddr::new(1, 1), &mut s).unwrap();
        assert!(r.missed);
        assert_eq!(r.value, 8);
    }

    #[test]
    fn fetch_on_write_reloads_line() {
        let mut cfg = NsfConfig::paper_default(8);
        cfg.regs_per_line = 2;
        cfg.reload = ReloadPolicy::WholeLine;
        cfg.write_miss = WriteMissPolicy::FetchOnWrite;
        let mut f = NamedStateFile::new(cfg);
        let mut s = MapStore::new();
        s.preload(1, 0, 5);
        s.preload(1, 1, 6);
        f.write(RegAddr::new(1, 0), 50, &mut s).unwrap();
        assert_eq!(f.stats().regs_reloaded, 2);
        // Neighbour register was fetched alongside.
        assert_eq!(f.read(RegAddr::new(1, 1), &mut s).unwrap().value, 6);
        // The write overwrote the fetched value.
        assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 50);
    }

    #[test]
    fn write_allocate_does_not_touch_store() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        assert_eq!(s.reloads(), 0);
        assert_eq!(f.stats().regs_reloaded, 0);
    }

    #[test]
    fn switch_is_free_and_counted() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        assert_eq!(f.switch_to(1, &mut s).unwrap(), 0);
        assert_eq!(f.switch_to(2, &mut s).unwrap(), 0);
        assert_eq!(f.stats().context_switches, 2);
        assert_eq!(f.stats().switch_hits, 1);
    }

    #[test]
    fn occupancy_counts_contexts_and_regs() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        f.write(RegAddr::new(1, 1), 1, &mut s).unwrap();
        f.write(RegAddr::new(9, 0), 1, &mut s).unwrap();
        let o = f.occupancy();
        assert_eq!(o.valid_regs, 3);
        assert_eq!(o.resident_contexts, 2);
    }

    #[test]
    fn many_contexts_share_the_file() {
        // More resident contexts than any segmented file could hold:
        // 16 contexts × 2 registers in a 32-line file.
        let mut f = file(32, 1);
        let mut s = MapStore::new();
        for cid in 0..16 {
            f.write(RegAddr::new(cid, 0), u32::from(cid), &mut s)
                .unwrap();
            f.write(RegAddr::new(cid, 1), u32::from(cid) + 1, &mut s)
                .unwrap();
        }
        assert_eq!(f.occupancy().resident_contexts, 16);
        assert_eq!(f.stats().regs_spilled, 0);
        for cid in 0..16 {
            assert_eq!(
                f.read(RegAddr::new(cid, 0), &mut s).unwrap().value,
                u32::from(cid)
            );
        }
    }

    #[test]
    fn context_wide_lines_behave_like_frames() {
        // 32-register lines = one line per context: the NSF degenerates
        // toward a 4-frame segmented file, but still demand-loads.
        let mut cfg = NsfConfig::paper_default(128);
        cfg.regs_per_line = 32;
        cfg.reload = ReloadPolicy::ValidOnly;
        let mut f = NamedStateFile::new(cfg);
        let mut s = MapStore::new();
        for cid in 0..4u16 {
            f.write(RegAddr::new(cid, 0), u32::from(cid), &mut s)
                .unwrap();
        }
        assert_eq!(f.occupancy().resident_contexts, 4);
        // A fifth context evicts a whole line (one register dirty).
        f.write(RegAddr::new(9, 0), 9, &mut s).unwrap();
        assert_eq!(f.stats().regs_spilled, 1);
        assert_eq!(f.occupancy().resident_contexts, 4);
    }

    #[test]
    fn single_line_file_thrashes_but_stays_correct() {
        let mut cfg = NsfConfig::paper_default(1);
        cfg.regs_per_line = 1;
        let mut f = NamedStateFile::new(cfg);
        let mut s = MapStore::new();
        for round in 0..3u32 {
            for off in 0..4u8 {
                let a = RegAddr::new(1, off);
                if round == 0 {
                    f.write(a, u32::from(off) * 7, &mut s).unwrap();
                } else {
                    assert_eq!(f.read(a, &mut s).unwrap().value, u32::from(off) * 7);
                }
            }
        }
        assert!(f.stats().regs_spilled >= 3);
        assert!(f.stats().regs_reloaded >= 8);
    }

    #[test]
    fn boundary_offset_is_valid() {
        let mut f = file(64, 1);
        let mut s = MapStore::new();
        let a = RegAddr::new(1, 31); // last architectural offset
        f.write(a, 9, &mut s).unwrap();
        assert_eq!(f.read(a, &mut s).unwrap().value, 9);
    }

    #[test]
    fn freeing_a_nonresident_context_is_a_noop() {
        let mut f = file(8, 1);
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
        f.free_context(42, &mut s);
        assert_eq!(f.occupancy().valid_regs, 1);
        assert_eq!(f.read(RegAddr::new(1, 0), &mut s).unwrap().value, 1);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_geometry_panics() {
        let mut cfg = NsfConfig::paper_default(10);
        cfg.regs_per_line = 4;
        NamedStateFile::new(cfg);
    }
}
