//! Property tests of the VLSI models: monotonicity and scaling laws that
//! must hold for any geometry, not just the paper's two.

use nsf_vlsi::{AreaModel, Geometry, Ports, Tech, TimingModel};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (5u32..9, 5u32..7).prop_map(|(row_bits, width_bits)| {
        let rows = 1 << row_bits;
        let bits_per_row = 1 << width_bits;
        Geometry {
            rows,
            bits_per_row,
            regs_per_row: bits_per_row / 32,
            tag_bits: 6 + (32u32 / (bits_per_row / 32)).trailing_zeros(),
            addr_bits: row_bits,
        }
    })
}

fn arb_ports() -> impl Strategy<Value = Ports> {
    (1u32..5, 1u32..3).prop_map(|(reads, writes)| Ports { reads, writes })
}

proptest! {
    /// The NSF always costs more area than the segmented file (it adds a
    /// CAM and miss logic on the same data array), but never more than
    /// 2x (the paper's worst case is +54%).
    #[test]
    fn nsf_area_overhead_bounded(geom in arb_geometry(), ports in arb_ports()) {
        let m = AreaModel::new(Tech::cmos_1p2um());
        let o = m.nsf_overhead(geom, ports);
        prop_assert!(o > 0.0, "NSF must cost something: {o}");
        prop_assert!(o < 1.0, "NSF must stay under 2x: {o}");
    }

    /// Area grows monotonically with ports for both organizations.
    #[test]
    fn area_monotone_in_ports(geom in arb_geometry(), reads in 1u32..4) {
        let m = AreaModel::new(Tech::cmos_1p2um());
        let lo = Ports { reads, writes: 1 };
        let hi = Ports { reads: reads + 1, writes: 2 };
        prop_assert!(m.segmented(geom, hi).total_um2() > m.segmented(geom, lo).total_um2());
        prop_assert!(m.nsf(geom, hi).total_um2() > m.nsf(geom, lo).total_um2());
    }

    /// Relative NSF overhead shrinks (or at least never grows) as ports
    /// are added — the paper's §6.2 observation, generalized.
    #[test]
    fn overhead_nonincreasing_in_ports(geom in arb_geometry()) {
        let m = AreaModel::new(Tech::cmos_1p2um());
        let mut prev = f64::INFINITY;
        for total in 2u32..7 {
            let ports = Ports { reads: total - 1, writes: 1 };
            let o = m.nsf_overhead(geom, ports);
            prop_assert!(o <= prev + 1e-9, "overhead grew at {total} ports");
            prev = o;
        }
    }

    /// Access time grows with the array in both dimensions, and the NSF
    /// penalty stays within the paper's "should not affect cycle time"
    /// envelope for every geometry.
    #[test]
    fn timing_monotone_and_bounded(geom in arb_geometry()) {
        let m = TimingModel::new(Tech::cmos_1p2um());
        let taller = Geometry { rows: geom.rows * 2, addr_bits: geom.addr_bits + 1, ..geom };
        prop_assert!(m.segmented(taller).total_ns() > m.segmented(geom).total_ns());
        // Small arrays pay relatively more for the fixed-width CAM tag;
        // the paper's 5-6% applies to its 64-128 row files, so bound the
        // general case a little looser.
        let overhead = m.nsf_overhead(geom);
        prop_assert!((0.0..0.20).contains(&overhead), "{overhead}");
    }

    /// λ-scaling: areas scale with feature² and delays with feature.
    #[test]
    fn technology_scaling_laws(geom in arb_geometry(), feat in 4u32..30) {
        let f = f64::from(feat) / 10.0;
        let t = Tech { feature_um: f };
        let a_ref = AreaModel::new(Tech::cmos_1p2um()).nsf(geom, Ports::three()).total_um2();
        let a = AreaModel::new(t).nsf(geom, Ports::three()).total_um2();
        let expected = a_ref * (f / 1.2) * (f / 1.2);
        prop_assert!((a - expected).abs() / expected < 1e-9);
        let d_ref = TimingModel::new(Tech::cmos_1p2um()).nsf(geom).total_ns();
        let d = TimingModel::new(t).nsf(geom).total_ns();
        prop_assert!((d - d_ref * f / 1.2).abs() < 1e-9);
    }
}
