//! Process technology parameters.

/// A CMOS process, described by its drawn feature size. Layout areas are
/// specified in λ-rules (λ = half the feature size), so area scales with
/// the square of the feature size and delay scales linearly — the standard
//  first-order scaling the paper relies on when it validates the 1.2 µm
/// estimates against a 2 µm prototype.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tech {
    /// Drawn feature size in micrometres.
    pub feature_um: f64,
}

impl Tech {
    /// The 1.2 µm process of Figures 6–8.
    pub fn cmos_1p2um() -> Self {
        Tech { feature_um: 1.2 }
    }

    /// The 2 µm process of the prototype chip (Figure 5).
    pub fn cmos_2um() -> Self {
        Tech { feature_um: 2.0 }
    }

    /// λ in micrometres.
    pub fn lambda_um(&self) -> f64 {
        self.feature_um / 2.0
    }

    /// Converts an area in λ² to µm².
    pub fn lambda2_to_um2(&self, lambda2: f64) -> f64 {
        lambda2 * self.lambda_um() * self.lambda_um()
    }

    /// Delay scale factor relative to the 1.2 µm reference process
    /// (first-order: gate delay ∝ feature size).
    pub fn delay_scale(&self) -> f64 {
        self.feature_um / 1.2
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::cmos_1p2um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_is_half_feature() {
        assert_eq!(Tech::cmos_1p2um().lambda_um(), 0.6);
        assert_eq!(Tech::cmos_2um().lambda_um(), 1.0);
    }

    #[test]
    fn area_scales_quadratically() {
        let a12 = Tech::cmos_1p2um().lambda2_to_um2(100.0);
        let a20 = Tech::cmos_2um().lambda2_to_um2(100.0);
        assert!((a20 / a12 - (2.0f64 / 1.2).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn reference_process_delay_scale_is_one() {
        assert_eq!(Tech::cmos_1p2um().delay_scale(), 1.0);
        assert!(Tech::cmos_2um().delay_scale() > 1.0);
    }
}
