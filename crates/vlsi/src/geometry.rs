//! Register file geometry and port configuration.

/// Port configuration of a register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ports {
    /// Simultaneous read ports.
    pub reads: u32,
    /// Simultaneous write ports.
    pub writes: u32,
}

impl Ports {
    /// The paper's baseline: two reads, one write (Figures 6 and 7, and
    /// the prototype chip).
    pub fn three() -> Self {
        Ports {
            reads: 2,
            writes: 1,
        }
    }

    /// The superscalar configuration of Figure 8: four reads, two writes.
    pub fn six() -> Self {
        Ports {
            reads: 4,
            writes: 2,
        }
    }

    /// Total port count.
    pub fn total(&self) -> u32 {
        self.reads + self.writes
    }
}

/// Physical organization of a register file array.
///
/// The paper compares two geometries holding the same 4 K bits:
/// "128 lines of 32 bits each, and 64 lines of 64 bits each"
/// ([`Geometry::g32x128`], [`Geometry::g64x64`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Number of rows (lines) in the array.
    pub rows: u32,
    /// Bits per row.
    pub bits_per_row: u32,
    /// Architectural registers per row (32-bit registers).
    pub regs_per_row: u32,
    /// Tag width of the associative decoder in the NSF variant: Context ID
    /// bits plus line-index bits (the prototype used a 10-bit decoder for
    /// 64-bit rows; single-register rows need one more bit).
    pub tag_bits: u32,
    /// Address bits of the conventional two-level decoder
    /// (`log2(rows)`).
    pub addr_bits: u32,
}

impl Geometry {
    /// 128 rows × 32 bits: single-register lines.
    pub fn g32x128() -> Self {
        Geometry {
            rows: 128,
            bits_per_row: 32,
            regs_per_row: 1,
            tag_bits: 11,
            addr_bits: 7,
        }
    }

    /// 64 rows × 64 bits: two-register lines.
    pub fn g64x64() -> Self {
        Geometry {
            rows: 64,
            bits_per_row: 64,
            regs_per_row: 2,
            tag_bits: 10,
            addr_bits: 6,
        }
    }

    /// The proof-of-concept prototype chip of the paper's Figure 5:
    /// "a 32 bit by 32 line register array, a 10 bit wide fully-
    /// associative decoder, and logic to handle misses, spills and
    /// reloads", fabricated in 2 µm CMOS with two read ports and one
    /// write port.
    pub fn prototype() -> Self {
        Geometry {
            rows: 32,
            bits_per_row: 32,
            regs_per_row: 1,
            tag_bits: 10,
            addr_bits: 5,
        }
    }

    /// Geometry of an associatively-decoded (NSF-style) file of
    /// `total_regs` 32-bit registers in `regs_per_line`-register lines,
    /// addressed by `<CID : offset>` tags over `ctx_regs`-register
    /// contexts with `cid_bits` of Context ID. Generalizes the paper's
    /// fixed points: `associative(128, 1, 32, 6)` is [`Geometry::g32x128`]
    /// and `associative(128, 2, 32, 6)` is [`Geometry::g64x64`].
    ///
    /// `regs_per_line` must divide both `total_regs` and `ctx_regs`
    /// (lines never straddle contexts).
    pub fn associative(total_regs: u32, regs_per_line: u32, ctx_regs: u32, cid_bits: u32) -> Self {
        assert!(total_regs > 0 && regs_per_line > 0, "empty geometry");
        assert_eq!(
            total_regs % regs_per_line,
            0,
            "line width must divide the file"
        );
        assert_eq!(
            ctx_regs % regs_per_line,
            0,
            "line width must divide a context"
        );
        let rows = total_regs / regs_per_line;
        Geometry {
            rows,
            bits_per_row: 32 * regs_per_line,
            regs_per_row: regs_per_line,
            tag_bits: cid_bits + ceil_log2(ctx_regs / regs_per_line),
            addr_bits: ceil_log2(rows),
        }
    }

    /// Geometry of a conventionally-decoded (segmented / windowed /
    /// single-context) file of `total_regs` 32-bit registers, one per
    /// row. The NSF tag width is still populated (a hypothetical
    /// associative decode of the same array) so one geometry can be
    /// priced under either decoder.
    pub fn indexed(total_regs: u32) -> Self {
        Self::associative(total_regs, 1, total_regs.min(32), 6)
    }

    /// Total data bits in the array.
    pub fn data_bits(&self) -> u32 {
        self.rows * self.bits_per_row
    }

    /// Total 32-bit registers.
    pub fn total_regs(&self) -> u32 {
        self.rows * self.regs_per_row
    }
}

/// Bits needed to index `n` items (`⌈log₂ n⌉`, and 0 for `n <= 1`).
fn ceil_log2(n: u32) -> u32 {
    32 - n.saturating_sub(1).leading_zeros().min(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paper_geometries_hold_128_registers() {
        assert_eq!(Geometry::g32x128().total_regs(), 128);
        assert_eq!(Geometry::g64x64().total_regs(), 128);
        assert_eq!(
            Geometry::g32x128().data_bits(),
            Geometry::g64x64().data_bits()
        );
    }

    #[test]
    fn prototype_matches_figure_5() {
        let p = Geometry::prototype();
        assert_eq!(p.total_regs(), 32);
        assert_eq!(p.tag_bits, 10);
    }

    #[test]
    fn port_totals() {
        assert_eq!(Ports::three().total(), 3);
        assert_eq!(Ports::six().total(), 6);
    }
}
