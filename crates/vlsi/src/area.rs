//! Area model (Figures 7 and 8).
//!
//! Components, per the paper's breakdown ("decoder, word line and valid
//! bit logic, and data array"):
//!
//! * **Data array** — identical for both organizations: a multi-ported
//!   SRAM cell whose width and height each grow linearly with port count,
//!   so cell area grows quadratically ("The area of a multiported register
//!   cell increases as the square of the number of ports").
//! * **Decoder** — conventional: a two-level NAND decoder per row, width
//!   proportional to address bits with a per-port term. NSF: a CAM row per
//!   line, width proportional to tag bits (CID + line index) with a
//!   per-port match term; CAM rows keep their own vertical pitch (banked
//!   against the array), so decoder area grows roughly linearly in ports
//!   while the data array grows quadratically — the NSF's relative
//!   overhead falls from ~54 % at three ports to ~28 % at six.
//! * **Logic** — word-line drive, per-register valid/dirty bits, and the
//!   miss/spill state machine (NSF); frame-pointer logic (segmented).
//!
//! Constants are calibrated to land inside the paper's reported envelopes;
//! the tests below pin them.

use crate::geometry::{Geometry, Ports};
use crate::tech::Tech;

// --- Calibrated layout constants, in λ ---------------------------------

/// Base SRAM cell dimension (single port would be `CELL_BASE + CELL_PORT`).
const CELL_BASE: f64 = 20.0;
/// Added cell width and height per port (a word line + a bit line pair).
const CELL_PORT: f64 = 8.0;
/// Conventional decoder: width per address bit, base term.
const DEC_BIT_BASE: f64 = 4.0;
/// Conventional decoder: width per address bit, per port.
const DEC_BIT_PORT: f64 = 1.0;
/// Conventional decoder: fixed driver width plus per-port term.
const DEC_DRIVER: f64 = 16.0;
const DEC_DRIVER_PORT: f64 = 2.0;
/// CAM decoder: width per tag bit, base term.
const CAM_BIT_BASE: f64 = 50.0;
/// CAM decoder: width per tag bit, per port (extra match/select lines).
const CAM_BIT_PORT: f64 = 4.7;
/// CAM decoder: match-line sense and word-line combine driver.
const CAM_DRIVER: f64 = 40.0;
/// CAM row vertical pitch (banked; does not stretch with cell height).
const CAM_ROW_PITCH: f64 = 44.0;
/// NSF per-row logic width: valid/dirty bits per register + line control.
const NSF_LOGIC_PER_REG: f64 = 8.0;
const NSF_LOGIC_ROW_BASE: f64 = 30.0;
/// NSF fixed miss/spill/reload state machine (λ²).
const NSF_LOGIC_FIXED: f64 = 120_000.0;
/// Segmented per-row word-line logic width.
const SEG_LOGIC_ROW: f64 = 6.0;
/// Segmented fixed frame-pointer logic (λ²).
const SEG_LOGIC_FIXED: f64 = 15_000.0;

/// Area of one organization, broken down as in the paper's stacked bars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaBreakdown {
    /// Address decoder area, µm².
    pub decode_um2: f64,
    /// Word-line / valid-bit / miss-logic area, µm².
    pub logic_um2: f64,
    /// Data array area, µm².
    pub darray_um2: f64,
}

impl AreaBreakdown {
    /// Total area in µm².
    pub fn total_um2(&self) -> f64 {
        self.decode_um2 + self.logic_um2 + self.darray_um2
    }
}

/// The area model for a given technology.
///
/// # Examples
///
/// ```
/// use nsf_vlsi::{AreaModel, Geometry, Ports, Tech};
///
/// let model = AreaModel::new(Tech::cmos_1p2um());
/// let overhead = model.nsf_overhead(Geometry::g32x128(), Ports::three());
/// // Paper: "a 128 row by 32 bit wide NSF is 54% larger".
/// assert!((0.40..=0.65).contains(&overhead));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct AreaModel {
    /// Process the areas are reported in.
    pub tech: Tech,
}

impl AreaModel {
    /// Creates a model for `tech`.
    pub fn new(tech: Tech) -> Self {
        AreaModel { tech }
    }

    fn cell_dim(ports: Ports) -> f64 {
        CELL_BASE + CELL_PORT * f64::from(ports.total())
    }

    fn darray_lambda2(geom: Geometry, ports: Ports) -> f64 {
        let d = Self::cell_dim(ports);
        f64::from(geom.data_bits()) * d * d
    }

    /// Area of a segmented (or conventional) register file.
    pub fn segmented(&self, geom: Geometry, ports: Ports) -> AreaBreakdown {
        let p = f64::from(ports.total());
        let cell_h = Self::cell_dim(ports);
        let dec_width = f64::from(geom.addr_bits) * (DEC_BIT_BASE + DEC_BIT_PORT * p)
            + DEC_DRIVER
            + DEC_DRIVER_PORT * p;
        let decode = f64::from(geom.rows) * dec_width * cell_h;
        let logic = f64::from(geom.rows) * SEG_LOGIC_ROW * cell_h + SEG_LOGIC_FIXED;
        AreaBreakdown {
            decode_um2: self.tech.lambda2_to_um2(decode),
            logic_um2: self.tech.lambda2_to_um2(logic),
            darray_um2: self.tech.lambda2_to_um2(Self::darray_lambda2(geom, ports)),
        }
    }

    /// Area of a Named-State Register File.
    pub fn nsf(&self, geom: Geometry, ports: Ports) -> AreaBreakdown {
        let p = f64::from(ports.total());
        let cell_h = Self::cell_dim(ports);
        let cam_width = f64::from(geom.tag_bits) * (CAM_BIT_BASE + CAM_BIT_PORT * p) + CAM_DRIVER;
        let decode = f64::from(geom.rows) * cam_width * CAM_ROW_PITCH;
        let logic = f64::from(geom.rows)
            * (NSF_LOGIC_PER_REG * f64::from(geom.regs_per_row) + NSF_LOGIC_ROW_BASE)
            * cell_h
            + NSF_LOGIC_FIXED;
        AreaBreakdown {
            decode_um2: self.tech.lambda2_to_um2(decode),
            logic_um2: self.tech.lambda2_to_um2(logic),
            darray_um2: self.tech.lambda2_to_um2(Self::darray_lambda2(geom, ports)),
        }
    }

    /// NSF area overhead relative to the equivalent segmented file
    /// (e.g. `0.54` = 54 % larger).
    pub fn nsf_overhead(&self, geom: Geometry, ports: Ports) -> f64 {
        self.nsf(geom, ports).total_um2() / self.segmented(geom, ports).total_um2() - 1.0
    }

    /// Estimated share of a processor die the NSF adds, assuming the
    /// register file occupies `regfile_share` of the die (paper: "most
    /// register files consume less than 10% of a processor chip area", so
    /// the NSF "should only increase processor area by 5%").
    pub fn processor_overhead(&self, geom: Geometry, ports: Ports, regfile_share: f64) -> f64 {
        self.nsf_overhead(geom, ports) * regfile_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::new(Tech::cmos_1p2um())
    }

    #[test]
    fn three_port_overheads_match_paper_envelope() {
        // Paper: "a 128 row by 32 bit wide NSF is 54% larger", "64 rows of
        // two registers each requires 30% more area".
        let o1 = model().nsf_overhead(Geometry::g32x128(), Ports::three());
        let o2 = model().nsf_overhead(Geometry::g64x64(), Ports::three());
        assert!((0.40..=0.65).contains(&o1), "32x128 3-port overhead {o1}");
        assert!((0.20..=0.40).contains(&o2), "64x64 3-port overhead {o2}");
        assert!(o1 > o2, "wider rows amortize the decoder");
    }

    #[test]
    fn six_port_overheads_match_paper_envelope() {
        // Paper: "only 28% larger" and "only 16% larger" with 2W+4R ports.
        let o1 = model().nsf_overhead(Geometry::g32x128(), Ports::six());
        let o2 = model().nsf_overhead(Geometry::g64x64(), Ports::six());
        assert!((0.17..=0.35).contains(&o1), "32x128 6-port overhead {o1}");
        assert!((0.08..=0.22).contains(&o2), "64x64 6-port overhead {o2}");
    }

    #[test]
    fn overhead_shrinks_with_ports() {
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            let o3 = model().nsf_overhead(geom, Ports::three());
            let o6 = model().nsf_overhead(geom, Ports::six());
            assert!(o6 < o3, "more ports must dilute the decoder: {o3} vs {o6}");
        }
    }

    #[test]
    fn darray_identical_across_organizations() {
        let g = Geometry::g32x128();
        let p = Ports::three();
        assert_eq!(
            model().segmented(g, p).darray_um2,
            model().nsf(g, p).darray_um2,
            "both files store the same bits"
        );
    }

    #[test]
    fn cell_area_quadratic_in_ports() {
        let g = Geometry::g32x128();
        let d3 = model().segmented(g, Ports::three()).darray_um2;
        let d6 = model().segmented(g, Ports::six()).darray_um2;
        let expected = ((CELL_BASE + 6.0 * CELL_PORT) / (CELL_BASE + 3.0 * CELL_PORT)).powi(2);
        assert!((d6 / d3 - expected).abs() < 1e-9);
    }

    #[test]
    fn processor_overhead_is_about_five_percent() {
        // Paper conclusion: "requires only 1% to 5% of a typical
        // processor's chip area".
        let worst = model().processor_overhead(Geometry::g32x128(), Ports::three(), 0.10);
        let best = model().processor_overhead(Geometry::g64x64(), Ports::six(), 0.10);
        assert!(worst <= 0.065, "{worst}");
        assert!(best >= 0.005, "{best}");
    }

    #[test]
    fn absolute_scale_is_plausible_for_1p2um() {
        // Paper Figure 7 shows totals of a few million µm².
        let total = model()
            .segmented(Geometry::g32x128(), Ports::three())
            .total_um2();
        assert!((1.0e6..=8.0e6).contains(&total), "{total}");
    }

    #[test]
    fn prototype_process_is_larger() {
        let a12 = model().nsf(Geometry::g32x128(), Ports::three()).total_um2();
        let a20 = AreaModel::new(Tech::cmos_2um())
            .nsf(Geometry::g32x128(), Ports::three())
            .total_um2();
        assert!(a20 > 2.0 * a12);
    }
}
