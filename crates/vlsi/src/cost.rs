//! VLSI cost vectors: one call from a register-file organization's
//! geometry to the pair of implementation-cost axes the paper reports —
//! silicon area (Figures 7–8) and access time (Figure 6).
//!
//! The area and timing models evaluate a *fixed* set of paper
//! geometries in the figure binaries; the design-space explorer
//! (`nsf-explore`) instead prices **arbitrary** swept geometries, built
//! through [`Geometry::associative`] / [`Geometry::indexed`]. This
//! module packages both models behind one [`CostModel::vector`] entry
//! point so every consumer prices a design the same way, with the same
//! calibrated constants the figure tests pin.

use crate::area::AreaModel;
use crate::geometry::{Geometry, Ports};
use crate::tech::Tech;
use crate::timing::TimingModel;

/// How a register file's decoder addresses its array — the axis that
/// separates the two cost formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayKind {
    /// CAM-decoded, `<CID : offset>`-tagged (the NSF).
    Associative,
    /// Conventionally decoded by row index (segmented, windowed,
    /// single-context files).
    Indexed,
}

/// The two implementation-cost axes of one design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostVector {
    /// Total silicon area, µm² (decode + logic + data array).
    pub area_um2: f64,
    /// Total access time, ns (decode + word select + data read).
    pub access_ns: f64,
}

/// Area and timing models bundled for one technology.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostModel {
    /// The λ-rule area model.
    pub area: AreaModel,
    /// The RC timing model.
    pub timing: TimingModel,
}

impl CostModel {
    /// A cost model in `tech` (both sub-models agree on the process).
    pub fn new(tech: Tech) -> Self {
        CostModel {
            area: AreaModel::new(tech),
            timing: TimingModel::new(tech),
        }
    }

    /// The paper's reporting process, 1.2 µm CMOS.
    pub fn paper() -> Self {
        CostModel::new(Tech::cmos_1p2um())
    }

    /// Prices one geometry under one decoder kind.
    pub fn vector(&self, kind: ArrayKind, geom: Geometry, ports: Ports) -> CostVector {
        match kind {
            ArrayKind::Associative => CostVector {
                area_um2: self.area.nsf(geom, ports).total_um2(),
                access_ns: self.timing.nsf(geom).total_ns(),
            },
            ArrayKind::Indexed => CostVector {
                area_um2: self.area.segmented(geom, ports).total_um2(),
                access_ns: self.timing.segmented(geom).total_ns(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_match_the_underlying_models_on_paper_points() {
        let m = CostModel::paper();
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            let nsf = m.vector(ArrayKind::Associative, geom, Ports::three());
            assert_eq!(nsf.area_um2, m.area.nsf(geom, Ports::three()).total_um2());
            assert_eq!(nsf.access_ns, m.timing.nsf(geom).total_ns());
            let seg = m.vector(ArrayKind::Indexed, geom, Ports::three());
            assert_eq!(
                seg.area_um2,
                m.area.segmented(geom, Ports::three()).total_um2()
            );
            assert_eq!(seg.access_ns, m.timing.segmented(geom).total_ns());
            // Same array, associative decode always costs more on both axes.
            assert!(nsf.area_um2 > seg.area_um2);
            assert!(nsf.access_ns > seg.access_ns);
        }
    }

    #[test]
    fn generalized_geometries_reproduce_the_paper_fixed_points() {
        // The arbitrary-geometry constructors must land exactly on the
        // hand-written paper points, so swept costs share the figures'
        // calibration.
        assert_eq!(Geometry::associative(128, 1, 32, 6), Geometry::g32x128());
        assert_eq!(Geometry::associative(128, 2, 32, 6), Geometry::g64x64());
        assert_eq!(Geometry::associative(32, 1, 32, 5), Geometry::prototype());
    }

    #[test]
    fn indexed_geometry_prices_like_a_segmented_file() {
        let m = CostModel::paper();
        let g = Geometry::indexed(128);
        assert_eq!(g.rows, 128);
        assert_eq!(g.addr_bits, 7);
        let v = m.vector(ArrayKind::Indexed, g, Ports::three());
        let paper = m.vector(ArrayKind::Indexed, Geometry::g32x128(), Ports::three());
        assert_eq!(v.area_um2, paper.area_um2);
        assert_eq!(v.access_ns, paper.access_ns);
    }

    #[test]
    fn cost_grows_with_file_size_and_line_width_amortizes_tags() {
        let m = CostModel::paper();
        let p = Ports::three();
        let small = m.vector(
            ArrayKind::Associative,
            Geometry::associative(64, 1, 32, 6),
            p,
        );
        let large = m.vector(
            ArrayKind::Associative,
            Geometry::associative(256, 1, 32, 6),
            p,
        );
        assert!(large.area_um2 > small.area_um2);
        assert!(large.access_ns > small.access_ns);
        // Wider lines halve the CAM rows: decoder area shrinks.
        let wide = m.vector(
            ArrayKind::Associative,
            Geometry::associative(256, 4, 32, 6),
            p,
        );
        assert!(wide.area_um2 < large.area_um2);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_line_width_is_rejected() {
        let _ = Geometry::associative(80, 3, 32, 6);
    }
}
