//! Access-time model (Figure 6).
//!
//! The paper decomposes register file access into three phases and reports
//! Spice results in a 1.2 µm process:
//!
//! * **Address decode** — a two-level decoder for the segmented file; the
//!   NSF "required slightly more time to decode addresses, since it had to
//!   compare more bits than a two-level decoder".
//! * **Word select** — driving the selected word line; the NSF "took more
//!   time to combine Context ID and Offset address match signals and drive
//!   a word line into the register array".
//! * **Data read** — bit-line discharge and sensing, identical for both
//!   organizations.
//!
//! The model is first-order RC: decode grows with the number of compared
//! bits and with row count (match-line/predecode loading), word select
//! with row width, data read with column height. Constants are calibrated
//! so that "the time required to access the Named-State Register File was
//! only 5% or 6% greater than for a conventional register file".

use crate::geometry::{Geometry, Ports};
use crate::tech::Tech;

// --- Calibrated delay constants (ns at 1.2 µm) --------------------------

const DEC_FIXED: f64 = 0.9;
/// Conventional decode: per address bit (predecode + NAND fan-in).
const DEC_PER_ADDR_BIT: f64 = 0.30;
/// NSF decode: per tag bit (CAM compare is parallel, but the match line
/// carries more devices per bit).
const DEC_PER_TAG_BIT: f64 = 0.20;
/// Conventional decode: word-line select loading per row.
const DEC_PER_ROW_CONV: f64 = 0.006;
/// NSF decode: match-line loading per row.
const DEC_PER_ROW_NSF: f64 = 0.007;
const WS_FIXED: f64 = 0.5;
/// Word-line RC per bit of row width.
const WS_PER_BIT: f64 = 0.02;
/// NSF extra: combining CID and offset match signals before the drive.
const WS_NSF_COMBINE: f64 = 0.15;
const RD_FIXED: f64 = 0.8;
/// Bit-line RC per row of column height.
const RD_PER_ROW: f64 = 0.02;
/// Sense/mux loading per bit of row width.
const RD_PER_BIT: f64 = 0.01;

/// Access time decomposition, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessTime {
    /// Address decode phase.
    pub decode_ns: f64,
    /// Word select phase.
    pub word_select_ns: f64,
    /// Data read phase.
    pub data_read_ns: f64,
}

impl AccessTime {
    /// Total access time in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.decode_ns + self.word_select_ns + self.data_read_ns
    }
}

/// The timing model for a given technology.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingModel {
    /// Process the delays are reported in.
    pub tech: Tech,
}

impl TimingModel {
    /// Creates a model for `tech`.
    pub fn new(tech: Tech) -> Self {
        TimingModel { tech }
    }

    fn scale(&self, t: AccessTime) -> AccessTime {
        let s = self.tech.delay_scale();
        AccessTime {
            decode_ns: t.decode_ns * s,
            word_select_ns: t.word_select_ns * s,
            data_read_ns: t.data_read_ns * s,
        }
    }

    /// Access time of a segmented/conventional file.
    pub fn segmented(&self, geom: Geometry) -> AccessTime {
        self.scale(AccessTime {
            decode_ns: DEC_FIXED
                + DEC_PER_ADDR_BIT * f64::from(geom.addr_bits)
                + DEC_PER_ROW_CONV * f64::from(geom.rows),
            word_select_ns: WS_FIXED + WS_PER_BIT * f64::from(geom.bits_per_row),
            data_read_ns: RD_FIXED
                + RD_PER_ROW * f64::from(geom.rows)
                + RD_PER_BIT * f64::from(geom.bits_per_row),
        })
    }

    /// Access time of a Named-State Register File.
    pub fn nsf(&self, geom: Geometry) -> AccessTime {
        self.scale(AccessTime {
            decode_ns: DEC_FIXED
                + DEC_PER_TAG_BIT * f64::from(geom.tag_bits)
                + DEC_PER_ROW_NSF * f64::from(geom.rows),
            word_select_ns: WS_FIXED + WS_PER_BIT * f64::from(geom.bits_per_row) + WS_NSF_COMBINE,
            data_read_ns: RD_FIXED
                + RD_PER_ROW * f64::from(geom.rows)
                + RD_PER_BIT * f64::from(geom.bits_per_row),
        })
    }

    /// NSF access-time overhead relative to the segmented file
    /// (e.g. `0.05` = 5 % slower).
    pub fn nsf_overhead(&self, geom: Geometry) -> f64 {
        self.nsf(geom).total_ns() / self.segmented(geom).total_ns() - 1.0
    }

    /// Word-line and bit-line loading factor of a `ports`-ported cell
    /// relative to the paper's 3-ported baseline: each extra port adds a
    /// word line (cell height) and a bit-line pair (cell width), so the
    /// wire-RC terms grow linearly with total port count. Decode is
    /// replicated per port and does not stretch.
    fn port_factor(ports: Ports) -> f64 {
        f64::from(ports.total()) / f64::from(Ports::three().total())
    }

    /// Stretches the wire-loaded phases of a (3-port calibrated) access
    /// time by the per-port loading factor.
    fn ported(&self, base: AccessTime, ports: Ports) -> AccessTime {
        let f = Self::port_factor(ports);
        if f == 1.0 {
            // Exactly the calibrated case — return it bit-for-bit rather
            // than round-tripping through the stretch arithmetic.
            return base;
        }
        AccessTime {
            decode_ns: base.decode_ns,
            word_select_ns: WS_FIXED * self.tech.delay_scale()
                + (base.word_select_ns - WS_FIXED * self.tech.delay_scale()) * f,
            data_read_ns: RD_FIXED * self.tech.delay_scale()
                + (base.data_read_ns - RD_FIXED * self.tech.delay_scale()) * f,
        }
    }

    /// Access time of a segmented/conventional file with an explicit
    /// port count. [`Ports::three`] reproduces
    /// [`TimingModel::segmented`] exactly — the calibrated figures are
    /// the 3-ported special case.
    pub fn segmented_ported(&self, geom: Geometry, ports: Ports) -> AccessTime {
        self.ported(self.segmented(geom), ports)
    }

    /// Access time of a Named-State Register File with an explicit port
    /// count. [`Ports::three`] reproduces [`TimingModel::nsf`] exactly.
    pub fn nsf_ported(&self, geom: Geometry, ports: Ports) -> AccessTime {
        self.ported(self.nsf(geom), ports)
    }

    /// NSF access-time overhead relative to an equally-ported segmented
    /// file — the per-ported-access latency penalty the multi-issue
    /// simulator charges a CAM-decoded file (`nsf-sim`'s pipeline
    /// frontend).
    pub fn nsf_ported_overhead(&self, geom: Geometry, ports: Ports) -> f64 {
        self.nsf_ported(geom, ports).total_ns() / self.segmented_ported(geom, ports).total_ns()
            - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::new(Tech::cmos_1p2um())
    }

    #[test]
    fn nsf_overhead_is_about_five_percent() {
        // Paper: "only 5% or 6% greater" for both geometries; allow 3–8 %.
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            let o = model().nsf_overhead(geom);
            assert!((0.03..=0.08).contains(&o), "{geom:?}: {o}");
        }
    }

    #[test]
    fn nsf_pays_in_decode_and_word_select_only() {
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            let seg = model().segmented(geom);
            let nsf = model().nsf(geom);
            assert!(nsf.decode_ns > seg.decode_ns);
            assert!(nsf.word_select_ns > seg.word_select_ns);
            assert_eq!(nsf.data_read_ns, seg.data_read_ns);
        }
    }

    #[test]
    fn totals_in_figure_envelope() {
        // Figure 6 shows totals under 10 ns at 1.2 µm.
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            let t = model().segmented(geom).total_ns();
            assert!((5.0..=10.0).contains(&t), "{geom:?}: {t}");
            let t = model().nsf(geom).total_ns();
            assert!((5.0..=10.0).contains(&t), "{geom:?}: {t}");
        }
    }

    #[test]
    fn wide_short_array_is_faster() {
        // 64x64 has half the rows: shorter bit lines dominate.
        assert!(
            model().segmented(Geometry::g64x64()).total_ns()
                < model().segmented(Geometry::g32x128()).total_ns()
        );
        assert!(
            model().nsf(Geometry::g64x64()).total_ns()
                < model().nsf(Geometry::g32x128()).total_ns()
        );
    }

    #[test]
    fn three_ported_query_reproduces_the_calibrated_figures() {
        let m = model();
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            assert_eq!(m.segmented_ported(geom, Ports::three()), m.segmented(geom));
            assert_eq!(m.nsf_ported(geom, Ports::three()), m.nsf(geom));
            assert_eq!(
                m.nsf_ported_overhead(geom, Ports::three()),
                m.nsf_overhead(geom)
            );
        }
    }

    #[test]
    fn more_ports_cost_time_but_never_flip_the_ranking() {
        let m = model();
        for geom in [Geometry::g32x128(), Geometry::g64x64()] {
            let s3 = m.segmented_ported(geom, Ports::three());
            let s6 = m.segmented_ported(geom, Ports::six());
            assert!(s6.total_ns() > s3.total_ns());
            // Decode is replicated, not stretched.
            assert_eq!(s6.decode_ns, s3.decode_ns);
            let o = m.nsf_ported_overhead(geom, Ports::six());
            assert!(o > 0.0, "{geom:?}: NSF stays slower at 6 ports ({o})");
            assert!(o < 0.15, "{geom:?}: overhead stays a small fraction ({o})");
        }
    }

    #[test]
    fn ported_overhead_scales_arbitrary_port_counts() {
        let m = model();
        let geom = Geometry::g32x128();
        for (reads, writes) in [(2, 1), (3, 2), (4, 2), (6, 3)] {
            let p = Ports { reads, writes };
            let o = m.nsf_ported_overhead(geom, p);
            assert!((0.0..0.15).contains(&o), "{p:?}: {o}");
        }
    }

    #[test]
    fn coarser_process_is_slower() {
        let t12 = model().nsf(Geometry::g32x128()).total_ns();
        let t20 = TimingModel::new(Tech::cmos_2um())
            .nsf(Geometry::g32x128())
            .total_ns();
        assert!(t20 > t12 * 1.5);
    }
}
