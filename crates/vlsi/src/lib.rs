//! # nsf-vlsi — area and access-time models of register files
//!
//! The paper evaluates NSF implementation cost two ways: Spice simulations
//! of access time (Figure 6) and measured layout area in 1.2 µm CMOS
//! (Figures 7 and 8), validated against a 2 µm prototype chip. Neither a
//! Spice deck nor the layouts are available, so this crate substitutes
//! **parametric λ-rule models** calibrated to the paper's reported numbers
//! (see `DESIGN.md` §2):
//!
//! * [`area`] — per-component area (associative/conventional decoder,
//!   valid-bit & miss logic, data array) as a function of geometry, port
//!   count and technology. Multi-ported cells grow quadratically with
//!   ports; decoders grow linearly; miss/spill logic is constant — which
//!   is exactly why the NSF's relative overhead *shrinks* as ports are
//!   added (paper §6.2).
//! * [`timing`] — RC-style access-time decomposition into address decode,
//!   word select and data read. The NSF pays extra in decode (it compares
//!   more bits than a two-level decoder) and in word select (combining
//!   Context ID and offset match signals), totalling ~5 % — "no effect on
//!   the processor's cycle time".
//!
//! The constants are **calibrated**, not derived: they were fit so the
//! model lands inside the paper's reported envelopes, and the crate's tests
//! pin those envelopes so regressions are caught.

pub mod area;
pub mod cost;
pub mod geometry;
pub mod tech;
pub mod timing;

pub use area::{AreaBreakdown, AreaModel};
pub use cost::{ArrayKind, CostModel, CostVector};
pub use geometry::{Geometry, Ports};
pub use tech::Tech;
pub use timing::{AccessTime, TimingModel};

/// Version of the calibrated model constants. Persisted caches of
/// model-derived numbers (the explorer's result memo) fold this into
/// their content keys; bump it whenever the area or timing calibration
/// changes so every stale cost is invalidated at once.
pub const MODEL_VERSION: u32 = 1;
