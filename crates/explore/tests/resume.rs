//! The explorer's crash-recovery contract, end to end:
//!
//! 1. a run interrupted at a checkpoint and resumed produces a
//!    **byte-identical** ledger and front to an uninterrupted run;
//! 2. a ledger with a half-written (truncated) tail record is cut back
//!    to the last intact boundary and completed to the same bytes;
//! 3. shards run independently and merged equal the single-shard run;
//! 4. a ledger from a *different* spec or shard is refused, never
//!    silently continued.

use nsf_explore::{
    merge_ledgers, CacheGeom, ExploreError, ExploreSpec, Explorer, Family, LedgerError,
};
use std::fs;
use std::path::PathBuf;

/// A process-unique scratch directory (no timestamps or RNG — results
/// paths stay deterministic).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nsf-explore-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A 9-point spec small enough that the whole file runs in seconds:
/// six NSF points and three segmented ones over one benchmark.
fn tiny_spec() -> ExploreSpec {
    ExploreSpec {
        families: vec![Family::Nsf, Family::Segmented],
        total_regs: vec![48, 64, 80],
        line_sizes: vec![1, 2],
        contexts: vec![2],
        caches: vec![CacheGeom::sparc2()],
        workloads: vec!["gatesim".into()],
        scale: 0,
    }
}

fn explorer(dir: PathBuf) -> Explorer {
    let mut ex = Explorer::new(tiny_spec(), dir);
    ex.chunk = 4;
    ex.quiet = true;
    ex
}

fn read_artifacts(ex: &Explorer) -> (Vec<u8>, Vec<u8>) {
    (
        fs::read(ex.ledger_path()).expect("ledger exists"),
        fs::read(ex.front_path()).expect("front exists"),
    )
}

#[test]
fn interrupted_and_resumed_run_is_byte_identical() {
    // The reference: one uninterrupted run.
    let straight = explorer(scratch("straight"));
    let outcome = straight.run().expect("straight run");
    assert!(outcome.completed);
    assert_eq!(outcome.shard_points, 9);
    assert_eq!(outcome.evaluated, 9);
    assert_eq!(outcome.checkpoints, 3);
    let (ledger, front) = read_artifacts(&straight);

    // Interrupt after the first checkpoint, then resume to completion.
    let mut stopped = explorer(scratch("resumed"));
    stopped.stop_after = Some(1);
    let partial = stopped.run().expect("interrupted run");
    assert!(!partial.completed);
    assert_eq!(partial.evaluated, 4);
    let mut resumed = stopped.clone();
    resumed.stop_after = None;
    let finished = resumed.run().expect("resumed run");
    assert!(finished.completed);
    assert_eq!(finished.resumed, 4);
    assert_eq!(finished.evaluated, 5);

    assert_eq!(
        read_artifacts(&resumed),
        (ledger, front),
        "artifacts must be byte-identical"
    );
}

#[test]
fn truncated_tail_is_cut_back_and_completed_identically() {
    let reference = explorer(scratch("tail-ref"));
    reference.run().expect("reference run");
    let (ledger, front) = read_artifacts(&reference);

    // Simulate a crash mid-append: the last record loses its final
    // bytes (checksum and part of the payload).
    let wounded = explorer(scratch("tail-cut"));
    fs::create_dir_all(&wounded.out_dir).unwrap();
    fs::write(wounded.ledger_path(), &ledger[..ledger.len() - 7]).unwrap();
    let outcome = wounded.run().expect("recovery run");
    assert!(outcome.completed);
    assert_eq!(outcome.resumed, 8, "eight records survive the torn tail");
    assert_eq!(outcome.evaluated, 1, "only the torn point re-runs");
    assert_eq!(read_artifacts(&wounded), (ledger, front));
}

#[test]
fn merged_shards_equal_the_single_shard_run() {
    let single = explorer(scratch("merge-single"));
    single.run().expect("single run");
    let front = fs::read_to_string(single.front_path()).unwrap();

    let dir = scratch("merge-shards");
    let mut images = Vec::new();
    for i in 0..2 {
        let mut shard = explorer(dir.clone());
        shard.shard_index = i;
        shard.shard_count = 2;
        let outcome = shard.run().expect("shard run");
        assert!(outcome.completed);
        images.push(fs::read(shard.ledger_path()).unwrap());
    }
    // Merge in both orders: the front must not care.
    let (records, merged) = merge_ledgers(&tiny_spec(), &images).expect("merge");
    assert_eq!(records.len(), 9);
    assert_eq!(merged, front);
    images.reverse();
    let (_, merged_rev) = merge_ledgers(&tiny_spec(), &images).expect("reverse merge");
    assert_eq!(merged_rev, front);
}

#[test]
fn memoized_rerun_is_byte_identical_and_skips_simulation() {
    // Reference: a store-less run.
    let bare = explorer(scratch("memo-bare"));
    bare.run().expect("store-less run");
    let (ledger, front) = read_artifacts(&bare);

    // Cold store run: everything simulates, everything memoizes.
    let mut cold = explorer(scratch("memo-cold"));
    cold.store_dir = Some(cold.out_dir.join("store"));
    let first = cold.run().expect("cold store run");
    assert!(first.completed);
    assert_eq!(first.memoized, 0, "nothing to hit on a cold store");
    assert_eq!(read_artifacts(&cold), (ledger.clone(), front.clone()));

    // Warm re-run into a fresh ledger, same store: every point is a
    // memo hit, and the artifacts are still byte-identical.
    let mut warm = cold.clone();
    warm.out_dir = scratch("memo-warm");
    warm.store_dir = cold.store_dir.clone();
    let second = warm.run().expect("warm store run");
    assert!(second.completed);
    assert_eq!(second.evaluated, 9);
    assert_eq!(second.memoized, 9, "every point memo-hits on a warm store");
    assert_eq!(read_artifacts(&warm), (ledger.clone(), front.clone()));

    // A corrupted memo is discarded, not trusted and not fatal: the
    // run re-simulates and still lands on the same bytes.
    let memo_path = cold.store_dir.as_ref().unwrap().join("explore_memo.nsfm");
    let mut bytes = fs::read(&memo_path).unwrap();
    bytes[1] ^= 0xff; // header damage: the whole file is refused
    fs::write(&memo_path, &bytes).unwrap();
    let mut hurt = cold.clone();
    hurt.out_dir = scratch("memo-hurt");
    hurt.store_dir = cold.store_dir.clone();
    let third = hurt.run().expect("corrupt-memo run");
    assert!(third.completed);
    assert_eq!(third.memoized, 0, "a corrupt memo serves nothing");
    assert_eq!(read_artifacts(&hurt), (ledger, front));
    // ...and the discarded file was rebuilt with fresh records.
    let rebuilt = fs::read(&memo_path).unwrap();
    let parsed = nsf_explore::parse_memo(&rebuilt).expect("rebuilt memo parses");
    assert_eq!(parsed.records.len(), 9);
}

#[test]
fn foreign_ledgers_are_refused() {
    let ex = explorer(scratch("foreign"));
    ex.run().expect("seed run");

    // Same directory, different spec: the fingerprint must not match.
    let mut other = ex.clone();
    other.spec.total_regs = vec![48, 64];
    match other.run() {
        Err(ExploreError::Ledger(LedgerError::Mismatch { field, .. })) => {
            assert_eq!(field, "fingerprint")
        }
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }

    // Same spec, different shard coordinates: also refused.
    let mut wrong_shard = ex.clone();
    wrong_shard.shard_count = 3;
    wrong_shard.shard_index = 0;
    // Different shard count names a different ledger file, so point it
    // at the existing one by renaming.
    fs::copy(ex.ledger_path(), wrong_shard.ledger_path()).unwrap();
    match wrong_shard.run() {
        Err(ExploreError::Ledger(LedgerError::Mismatch { field, .. })) => {
            assert_eq!(field, "shard count")
        }
        other => panic!("expected a shard mismatch, got {other:?}"),
    }

    // An incomplete shard set refuses to merge.
    let image = fs::read(ex.ledger_path()).unwrap();
    match merge_ledgers(&tiny_spec(), &[image.clone(), image]) {
        Err(ExploreError::Ledger(LedgerError::Mismatch { .. })) => {}
        other => panic!("expected a merge mismatch, got {other:?}"),
    }
}
