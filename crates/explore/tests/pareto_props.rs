//! Properties of the online Pareto front: the surviving set must not
//! depend on insertion order (shards merge in arbitrary order), and it
//! must equal the brute-force dominance filter (the online prune is an
//! optimization, not a different definition).

use nsf_explore::{ParetoFront, PointCost};
use proptest::collection;
use proptest::prelude::*;

/// Cost vectors on a small integer grid, mapped to floats. The tiny
/// domain forces frequent ties and dominance chains — the cases where
/// an order-dependent bug would hide.
fn arb_cost() -> impl Strategy<Value = PointCost> {
    (0u8..4, 0u8..4, 0u8..4, 0u8..4).prop_map(|(r, u, a, t)| PointCost {
        reloads_per_instr: f64::from(r) * 0.01,
        utilization: f64::from(u) * 0.25,
        area_um2: f64::from(a) * 1.0e5,
        access_ns: f64::from(t) * 1.5,
    })
}

/// The O(n²) reference: a point survives iff no other point dominates
/// it. (Ties survive on both sides — equal vectors never dominate.)
fn brute_force(costs: &[PointCost]) -> Vec<(u64, PointCost)> {
    costs
        .iter()
        .enumerate()
        .filter(|(_, c)| !costs.iter().any(|other| other.dominates(c)))
        .map(|(i, c)| (i as u64, *c))
        .collect()
}

fn front_of(order: impl Iterator<Item = (u64, PointCost)>) -> Vec<(u64, PointCost)> {
    let mut f = ParetoFront::new();
    for (idx, c) in order {
        f.insert(idx, c);
    }
    f.members().into_iter().map(|m| (m.idx, m.cost)).collect()
}

proptest! {
    #[test]
    fn online_front_equals_brute_force(
        costs in collection::vec(arb_cost(), 1..24),
    ) {
        let online = front_of(costs.iter().copied().enumerate().map(|(i, c)| (i as u64, c)));
        prop_assert_eq!(online, brute_force(&costs));
    }

    #[test]
    fn online_front_is_insertion_order_invariant(
        costs in collection::vec(arb_cost(), 1..24),
        rot in any::<u32>(),
    ) {
        let indexed: Vec<(u64, PointCost)> =
            costs.iter().copied().enumerate().map(|(i, c)| (i as u64, c)).collect();
        let mut rotated = indexed.clone();
        rotated.rotate_left(rot as usize % indexed.len());
        // Rotation changes which point arrives first (the one an
        // order-sensitive front would privilege); members() sorts by
        // index, so equality means the *sets* match.
        prop_assert_eq!(front_of(indexed.into_iter()), front_of(rotated.into_iter()));
    }

    #[test]
    fn pruned_plus_front_is_inserted(
        costs in collection::vec(arb_cost(), 0..24),
    ) {
        let mut f = ParetoFront::new();
        for (i, c) in costs.iter().enumerate() {
            f.insert(i as u64, *c);
        }
        prop_assert_eq!(f.pruned() + f.len() as u64, f.inserted());
        prop_assert_eq!(f.inserted(), costs.len() as u64);
    }
}
