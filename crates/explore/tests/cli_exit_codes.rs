//! Exit-code contract of the explorer's CLI: duplicate
//! single-occurrence flags are usage errors (exit 64, usage on stderr),
//! matching the nsf-bench binaries' behaviour.

use std::process::Command;

fn run(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nsf-explore"))
        .args(args)
        .output()
        .expect("spawn nsf-explore");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into(),
    )
}

fn assert_usage_error(args: &[&str]) {
    let (code, stderr) = run(args);
    assert_eq!(
        code,
        Some(64),
        "nsf-explore {args:?}: expected usage-error exit 64, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "nsf-explore {args:?}: no usage line on stderr: {stderr}"
    );
}

#[test]
fn duplicate_flags_exit_64() {
    assert_usage_error(&["--shard", "0/2", "--shard", "1/2"]);
    assert_usage_error(&["--scale", "0", "--scale", "1"]);
    assert_usage_error(&["--lanes", "2", "--lanes", "4"]);
}

#[test]
fn malformed_shard_still_exits_64() {
    assert_usage_error(&["--shard", "2/2"]);
    assert_usage_error(&["--shard", "x"]);
}
