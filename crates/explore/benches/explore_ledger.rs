//! Criterion group `explore_ledger`: the fixed costs of the explorer's
//! persistence layer. `append_1k` is the encode path a checkpoint pays
//! per evaluated point; `replay_1k` is the parse-and-verify path every
//! restart pays per ledger record; `prune_1k` is the online Pareto
//! insert over a deterministic synthetic cost cloud.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_explore::ledger::{encode_header, encode_record, parse};
use nsf_explore::{LedgerHeader, LedgerRecord, ParetoFront, PointCost};

/// A deterministic synthetic record stream (no RNG: results paths stay
/// seedless-randomness-free, and the bench is stable across runs).
fn records(n: u64) -> Vec<LedgerRecord> {
    (0..n)
        .map(|i| {
            let x = (i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
            let y = (i.wrapping_mul(40503) % 1000) as f64 / 1000.0;
            LedgerRecord {
                point_idx: i,
                instructions: 100_000 + i,
                cycles: 150_000 + 3 * i,
                cost: PointCost {
                    reloads_per_instr: 0.3 * x,
                    utilization: 0.2 + 0.6 * y,
                    area_um2: 1.0e6 * (1.0 + x + y),
                    access_ns: 10.0 + 4.0 * x,
                },
            }
        })
        .collect()
}

fn ledger_image(recs: &[LedgerRecord]) -> Vec<u8> {
    let mut bytes = encode_header(&LedgerHeader {
        fingerprint: 0x1234_5678_9abc_def0,
        shard_index: 0,
        shard_count: 1,
        shard_points: recs.len() as u64,
    });
    for r in recs {
        bytes.extend(encode_record(r));
    }
    bytes
}

fn bench_explore_ledger(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_ledger");
    let recs = records(1000);
    g.bench_function("append_1k", |b| b.iter(|| ledger_image(&recs)));
    let image = ledger_image(&recs);
    g.bench_function("replay_1k", |b| {
        b.iter(|| parse(&image).expect("intact ledger"))
    });
    g.bench_function("prune_1k", |b| {
        b.iter(|| {
            let mut front = ParetoFront::new();
            for r in &recs {
                front.insert(r.point_idx, r.cost);
            }
            front.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_explore_ledger);
criterion_main!(benches);
