//! `nsf-explore` — the design-space exploration service.
//!
//! ```text
//! cargo run --release -p nsf-explore -- --scale 0 --shard 0/2
//! ```
//!
//! Axes default to [`ExploreSpec::default_spec`]; every list flag is
//! comma-separated. The run checkpoints to an append-only ledger under
//! the workspace `results/` directory (or `--out DIR`) and can be
//! killed and re-invoked at any time: it resumes after the last intact
//! record. `--merge L1,L2,...` skips execution and merges completed
//! shard ledgers into the combined front instead.

use nsf_bench::{CliArgs, CliError, CliSpec, DEFAULT_LANES};
use nsf_explore::{
    merge_ledgers, CacheGeom, ExploreError, ExploreSpec, Explorer, Family, DEFAULT_CHUNK,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: nsf-explore [--scale N] [--shard I/N] [--out DIR]
                   [--families LIST] [--regs LIST] [--lines LIST]
                   [--contexts LIST] [--caches LIST] [--workloads LIST]
                   [--chunk N] [--stop-after N] [--threads N] [--lanes N]
                   [--store | --no-store] [--quiet] [--merge LEDGER,LEDGER,...]
  lists are comma-separated; families use the engine-spec kinds
  (nsf, segmented, segmented-sw, segmented-valid, windowed, conventional);
  caches are sparc2 or <capacity>x<line>x<ways> in words; workloads are
  gatesim rtlsim zipfile as dtw gamteb paraffins quicksort wavefront,
  or the aliases seq / par / all";

const SPEC: CliSpec = CliSpec {
    value_flags: &[
        "scale",
        "shard",
        "out",
        "families",
        "regs",
        "lines",
        "contexts",
        "caches",
        "workloads",
        "chunk",
        "stop-after",
        "threads",
        "lanes",
        "merge",
    ],
    switches: &["quiet", "store", "no-store"],
    repeatable: &[],
};

fn bad(flag: &str, value: &str) -> CliError {
    CliError::BadValue {
        flag: flag.to_string(),
        value: value.to_string(),
    }
}

/// Parses a comma-separated list flag through `one`, defaulting when
/// the flag is absent.
fn list<T>(
    args: &CliArgs,
    flag: &str,
    default: Vec<T>,
    one: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, CliError> {
    match args.flag(flag) {
        None => Ok(default),
        Some(v) => v
            .split(',')
            .map(|item| one(item.trim()).ok_or_else(|| bad(flag, item)))
            .collect(),
    }
}

/// Expands the workload aliases and deduplicates, preserving order.
fn workload_list(args: &CliArgs) -> Result<Vec<String>, CliError> {
    let names = match args.flag("workloads") {
        None => return Ok(ExploreSpec::default_spec(0).workloads),
        Some(v) => v,
    };
    let mut out: Vec<String> = Vec::new();
    for item in names.split(',') {
        let expanded: &[&str] = match item.trim() {
            "seq" => &["gatesim", "rtlsim", "zipfile"],
            "par" => &["as", "dtw", "gamteb", "paraffins", "quicksort", "wavefront"],
            "all" => &[
                "gatesim",
                "rtlsim",
                "zipfile",
                "as",
                "dtw",
                "gamteb",
                "paraffins",
                "quicksort",
                "wavefront",
            ],
            one => {
                nsf_explore::workload_builder(one).map_err(|_| bad("workloads", one))?;
                if !out.iter().any(|w| w == one) {
                    out.push(one.to_string());
                }
                continue;
            }
        };
        for w in expanded {
            if !out.iter().any(|o| o == w) {
                out.push(w.to_string());
            }
        }
    }
    Ok(out)
}

fn build(args: &CliArgs) -> Result<Explorer, CliError> {
    let scale: u32 = args.parsed_or("scale", 0)?;
    let defaults = ExploreSpec::default_spec(scale);
    let spec = ExploreSpec {
        families: list(args, "families", defaults.families, |s| {
            Family::parse(s).ok()
        })?,
        total_regs: list(args, "regs", defaults.total_regs, |s| s.parse().ok())?,
        line_sizes: list(args, "lines", defaults.line_sizes, |s| s.parse().ok())?,
        contexts: list(args, "contexts", defaults.contexts, |s| s.parse().ok())?,
        caches: list(args, "caches", defaults.caches, |s| {
            CacheGeom::parse(s).ok()
        })?,
        workloads: workload_list(args)?,
        scale,
    };
    spec.validate()
        .map_err(|e| bad("spec", &format!("{}: {}", e.spec, e.reason)))?;

    let (shard_index, shard_count) = match args.flag("shard") {
        None => (0, 1),
        Some(v) => {
            let parsed = v.split_once('/').and_then(|(i, n)| {
                let i: u32 = i.parse().ok()?;
                let n: u32 = n.parse().ok()?;
                (n > 0 && i < n).then_some((i, n))
            });
            parsed.ok_or_else(|| bad("shard", v))?
        }
    };

    let out_dir = match args.flag("out") {
        Some(dir) => PathBuf::from(dir),
        None => nsf_bench::workspace_results_dir(),
    };
    let mut ex = Explorer::new(spec, out_dir);
    ex.shard_index = shard_index;
    ex.shard_count = shard_count;
    ex.threads = args.parsed_or("threads", ex.threads)?;
    ex.lanes = args.parsed_or("lanes", DEFAULT_LANES)?;
    ex.chunk = args.parsed_or("chunk", DEFAULT_CHUNK)?;
    ex.stop_after = match args.flag("stop-after") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| bad("stop-after", v))?),
    };
    ex.quiet = args.switch("quiet");
    if args.switch("store") && args.switch("no-store") {
        return Err(CliError::Conflict {
            a: "store".into(),
            b: "no-store".into(),
        });
    }
    // The persistent store defaults ON and lives inside the output
    // directory, next to the ledger it accelerates.
    ex.store_dir = (!args.switch("no-store")).then(|| ex.out_dir.join("store"));
    Ok(ex)
}

fn run(ex: &Explorer, args: &CliArgs) -> Result<ExitCode, ExploreError> {
    if let Some(ledgers) = args.flag("merge") {
        let images: Result<Vec<Vec<u8>>, std::io::Error> =
            ledgers.split(',').map(std::fs::read).collect();
        let (records, front) = merge_ledgers(&ex.spec, &images?)?;
        let path = ex.out_dir.join("explore_front_merged.txt");
        std::fs::create_dir_all(&ex.out_dir).map_err(ExploreError::from)?;
        std::fs::write(&path, &front).map_err(ExploreError::from)?;
        println!(
            "explore-summary merged={} records={} front_file={}",
            ledgers.split(',').count(),
            records.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let outcome = ex.run()?;
    let secs = outcome.elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        outcome.evaluated as f64 / secs
    } else {
        0.0
    };
    println!(
        "explore-summary shard={}/{} points={} shard_points={} resumed={} evaluated={} \
         memoized={} checkpoints={} pruned={} front={} completed={} elapsed_ms={} \
         configs_per_sec={:.1}",
        ex.shard_index,
        ex.shard_count,
        outcome.total_points,
        outcome.shard_points,
        outcome.resumed,
        outcome.evaluated,
        outcome.memoized,
        outcome.checkpoints,
        outcome.pruned,
        outcome.front_size,
        outcome.completed,
        outcome.elapsed.as_millis(),
        rate,
    );
    Ok(ExitCode::SUCCESS)
}

/// Exit status for a rejected command line (BSD `EX_USAGE`, shared
/// with the other tool binaries).
const EXIT_USAGE: u8 = 64;

fn usage(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    eprintln!("{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match CliArgs::parse(&raw, &SPEC) {
        Ok(a) => a,
        Err(e) => return usage(e),
    };
    let ex = match build(&args) {
        Ok(ex) => ex,
        Err(e) => return usage(e),
    };
    match run(&ex, &args) {
        Ok(code) => code,
        Err(ExploreError::Spec(e)) => usage(e),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
