//! The declarative exploration spec: which axes to cross, and the
//! deterministic enumeration of the resulting design points.
//!
//! A [`ExploreSpec`] names value lists along six axes — engine family,
//! total registers, NSF line size, segmented context count, data-cache
//! geometry and workload mix — and [`ExploreSpec::enumerate`] crosses
//! them into a canonically ordered list of [`Point`]s. Points that no
//! hardware could build (a line that does not divide the file, a frame
//! larger than the backing-store stride) are skipped *during*
//! enumeration, so indices are dense and every shard agrees on them.
//!
//! Each point carries its engine as a string in the shared engine-spec
//! grammar ([`nsf_sim::spec`]) — the same strings `trace_tool` flags
//! and `.nsftrace` headers use — and is materialized by the same
//! [`parse_engine`] parser, so the explorer cannot drift from the rest
//! of the toolchain on what a name means.

use nsf_mem::CacheConfig;
use nsf_sim::{parse_engine, RegFileSpec, SimConfig, SpecError, BACKING_STRIDE_WORDS};
use nsf_workloads::Workload;
use std::fmt;

/// Engine families the explorer can sweep (the spec-grammar kinds,
/// minus the differential-testing oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// The Named-State Register File.
    Nsf,
    /// Segmented file, hardware-assisted spills.
    Segmented,
    /// Segmented file, software trap handlers.
    SegmentedSw,
    /// Segmented file, per-register valid bits.
    SegmentedValid,
    /// SPARC-like 8-window file.
    Windowed,
    /// Conventional single-context file.
    Conventional,
}

impl Family {
    /// All sweepable families, in canonical order.
    pub const ALL: [Family; 6] = [
        Family::Nsf,
        Family::Segmented,
        Family::SegmentedSw,
        Family::SegmentedValid,
        Family::Windowed,
        Family::Conventional,
    ];

    /// The family's engine-spec grammar kind.
    pub fn kind(self) -> &'static str {
        match self {
            Family::Nsf => "nsf",
            Family::Segmented => "segmented",
            Family::SegmentedSw => "segmented-sw",
            Family::SegmentedValid => "segmented-valid",
            Family::Windowed => "windowed",
            Family::Conventional => "conventional",
        }
    }

    /// Parses a grammar kind back into a family.
    pub fn parse(kind: &str) -> Result<Self, SpecError> {
        Family::ALL
            .into_iter()
            .find(|f| f.kind() == kind)
            .ok_or_else(|| SpecError {
                spec: kind.to_string(),
                reason: "unknown engine family",
            })
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}

/// A swept data-cache geometry. Hit and miss latencies stay at the
/// Sparc-2 calibration ([`CacheConfig::sparc2_dcache`]) — the axis
/// varies *geometry*, which is what register spill traffic contends
/// with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total capacity in words.
    pub capacity_words: u32,
    /// Line length in words.
    pub line_words: u32,
    /// Ways per set.
    pub ways: u32,
}

impl CacheGeom {
    /// The paper's measurement cache.
    pub fn sparc2() -> Self {
        let c = CacheConfig::sparc2_dcache();
        CacheGeom {
            capacity_words: c.capacity_words,
            line_words: c.line_words,
            ways: c.ways,
        }
    }

    /// Parses `"sparc2"` or `<capacity>x<line>x<ways>` (words).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        if s == "sparc2" {
            return Ok(CacheGeom::sparc2());
        }
        let err = |reason| SpecError {
            spec: s.to_string(),
            reason,
        };
        let mut it = s.split('x');
        let mut next = |reason| -> Result<u32, SpecError> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(reason))
        };
        let g = CacheGeom {
            capacity_words: next("expected <capacity>x<line>x<ways>")?,
            line_words: next("expected <capacity>x<line>x<ways>")?,
            ways: next("expected <capacity>x<line>x<ways>")?,
        };
        if it.next().is_some() {
            return Err(err("trailing cache fields"));
        }
        if g.capacity_words == 0 || g.line_words == 0 || g.ways == 0 {
            return Err(err("cache fields must be nonzero"));
        }
        if !g.line_words.is_power_of_two() {
            return Err(err("cache line must be a power of two"));
        }
        if !g.capacity_words.is_multiple_of(g.line_words * g.ways) {
            return Err(err("line x ways must divide capacity"));
        }
        Ok(g)
    }

    /// The full cache configuration (Sparc-2 latencies).
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            capacity_words: self.capacity_words,
            line_words: self.line_words,
            ways: self.ways,
            ..CacheConfig::sparc2_dcache()
        }
    }
}

impl fmt::Display for CacheGeom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}",
            self.capacity_words, self.line_words, self.ways
        )
    }
}

/// One nameable workload: `(cli_name, paper_name, parallel, builder)`.
pub type WorkloadEntry = (&'static str, &'static str, bool, fn(u32) -> Workload);

/// The workloads the explorer can name on an axis.
pub const WORKLOADS: [WorkloadEntry; 9] = [
    ("gatesim", "GateSim", false, nsf_workloads::gatesim::build),
    ("rtlsim", "RTLSim", false, nsf_workloads::rtlsim::build),
    ("zipfile", "ZipFile", false, nsf_workloads::zipfile::build),
    ("as", "AS", true, nsf_workloads::as_bench::build),
    ("dtw", "DTW", true, nsf_workloads::dtw::build),
    ("gamteb", "Gamteb", true, nsf_workloads::gamteb::build),
    (
        "paraffins",
        "Paraffins",
        true,
        nsf_workloads::paraffins::build,
    ),
    (
        "quicksort",
        "Quicksort",
        true,
        nsf_workloads::quicksort::build,
    ),
    (
        "wavefront",
        "Wavefront",
        true,
        nsf_workloads::wavefront::build,
    ),
];

fn workload_entry(name: &str) -> Result<&'static WorkloadEntry, SpecError> {
    WORKLOADS
        .iter()
        .find(|(cli, _, _, _)| *cli == name)
        .ok_or_else(|| SpecError {
            spec: name.to_string(),
            reason: "unknown workload",
        })
}

/// Resolves an axis workload name (CLI spelling) to its builder.
pub fn workload_builder(name: &str) -> Result<fn(u32) -> Workload, SpecError> {
    workload_entry(name).map(|(_, _, _, b)| *b)
}

/// Registers one context of `name`'s programs must address: the
/// paper's per-context allocations (20 sequential, 32 parallel). An
/// organization whose frame/window cannot hold a full context cannot
/// run the workload and is skipped during enumeration.
pub fn workload_ctx_regs(name: &str) -> Result<u32, SpecError> {
    workload_entry(name).map(|(_, _, parallel, _)| {
        if *parallel {
            u32::from(nsf_bench::PAR_CTX_REGS)
        } else {
            u32::from(nsf_bench::SEQ_CTX_REGS)
        }
    })
}

/// The declarative cross-product. Every axis is a value list; the
/// enumeration is their cross, filtered to buildable combinations.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreSpec {
    /// Engine families to sweep.
    pub families: Vec<Family>,
    /// Total register counts.
    pub total_regs: Vec<u32>,
    /// NSF registers per line (applies to [`Family::Nsf`] only).
    pub line_sizes: Vec<u8>,
    /// Segmented context (frame) counts (applies to the segmented
    /// families only).
    pub contexts: Vec<u32>,
    /// Data-cache geometries.
    pub caches: Vec<CacheGeom>,
    /// Workload mix, by CLI name (see [`WORKLOADS`]).
    pub workloads: Vec<String>,
    /// Problem size (0 = smoke, 1 = the evaluation size).
    pub scale: u32,
}

impl ExploreSpec {
    /// The default exploration: NSF vs segmented across four file sizes,
    /// three line widths and two context counts, on the two fastest
    /// sequential benchmarks under the paper's cache.
    pub fn default_spec(scale: u32) -> Self {
        ExploreSpec {
            families: vec![Family::Nsf, Family::Segmented],
            total_regs: vec![48, 64, 80, 128],
            line_sizes: vec![1, 2, 4],
            contexts: vec![2, 4],
            caches: vec![CacheGeom::sparc2()],
            workloads: vec!["gatesim".into(), "zipfile".into()],
            scale,
        }
    }

    /// A stable 64-bit fingerprint of the spec, stored in ledger headers
    /// so a resumed run cannot silently continue someone else's sweep.
    pub fn fingerprint(&self) -> u64 {
        crate::ledger::fnv64(self.canonical().as_bytes())
    }

    /// The canonical one-line rendering the fingerprint hashes.
    pub fn canonical(&self) -> String {
        let join = |parts: Vec<String>| parts.join(",");
        format!(
            "families={};regs={};lines={};contexts={};caches={};workloads={};scale={}",
            join(self.families.iter().map(|f| f.to_string()).collect()),
            join(self.total_regs.iter().map(|v| v.to_string()).collect()),
            join(self.line_sizes.iter().map(|v| v.to_string()).collect()),
            join(self.contexts.iter().map(|v| v.to_string()).collect()),
            join(self.caches.iter().map(|c| c.to_string()).collect()),
            join(self.workloads.clone()),
            self.scale,
        )
    }

    /// Validates the axes: every workload must resolve and no axis may
    /// be empty.
    pub fn validate(&self) -> Result<(), SpecError> {
        let axis = |name: &'static str, empty: bool| {
            if empty {
                Err(SpecError {
                    spec: name.to_string(),
                    reason: "axis is empty",
                })
            } else {
                Ok(())
            }
        };
        axis("families", self.families.is_empty())?;
        axis("regs", self.total_regs.is_empty())?;
        axis("lines", self.line_sizes.is_empty())?;
        axis("contexts", self.contexts.is_empty())?;
        axis("caches", self.caches.is_empty())?;
        axis("workloads", self.workloads.is_empty())?;
        for w in &self.workloads {
            workload_builder(w)?;
        }
        Ok(())
    }

    /// Enumerates the cross-product in canonical order — workload-major,
    /// then cache, then family, then size, innermost the family's own
    /// axis — and assigns dense indices. The order is load-bearing
    /// twice: shard partitions are defined over these indices, and all
    /// engine points of one (workload, cache) pair are consecutive so
    /// the sweep runner's frontend cache captures each frontend once.
    pub fn enumerate(&self) -> Vec<Point> {
        let mut points = Vec::new();
        for (wl, name) in self.workloads.iter().enumerate() {
            // An unknown workload enumerates nothing; `validate`
            // reports it as a typed error before any run.
            let ctx_regs = workload_ctx_regs(name).unwrap_or(u32::MAX);
            for &cache in &self.caches {
                for &family in &self.families {
                    for &regs in &self.total_regs {
                        self.engines(family, regs, ctx_regs, |engine| {
                            points.push(Point {
                                idx: points.len() as u64,
                                workload: wl,
                                workload_name: name.clone(),
                                engine,
                                cache,
                            });
                        });
                    }
                }
            }
        }
        points
    }

    /// Emits the engine-spec strings of one (family, size) cell,
    /// skipping unbuildable combinations deterministically. `ctx_regs`
    /// is the workload's per-context register requirement: a frame,
    /// window or single-context file smaller than one context cannot
    /// run the program at all.
    fn engines(&self, family: Family, regs: u32, ctx_regs: u32, mut emit: impl FnMut(String)) {
        let stride = BACKING_STRIDE_WORDS;
        match family {
            Family::Nsf => {
                for &line in &self.line_sizes {
                    // A line must divide both the file and a 32-register
                    // context (the CAM tags `<CID : line#>`).
                    let l = u32::from(line);
                    if l > 0 && regs.is_multiple_of(l) && 32u32.is_multiple_of(l) {
                        emit(format!("nsf:{regs}x{line}"));
                    }
                }
            }
            Family::Segmented | Family::SegmentedSw | Family::SegmentedValid => {
                for &frames in &self.contexts {
                    // Frames partition the file evenly, hold at least
                    // one full context, and one frame's spill must fit
                    // the backing-store stride.
                    if frames == 0 || !regs.is_multiple_of(frames) {
                        continue;
                    }
                    let frame_regs = regs / frames;
                    if frame_regs < ctx_regs || frame_regs > stride {
                        continue;
                    }
                    emit(format!("{}:{frames}x{frame_regs}", family.kind()));
                }
            }
            Family::Windowed => {
                // Eight fixed windows, each holding a full context; a
                // window's flush must fit the backing-store stride.
                let window = regs / 8;
                if regs.is_multiple_of(8) && window >= ctx_regs && window <= stride {
                    emit(format!("windowed:{window}"));
                }
            }
            Family::Conventional => {
                // One context lives in the file; the whole file spills
                // on a switch.
                if regs >= ctx_regs && regs <= stride {
                    emit(format!("conventional:{regs}"));
                }
            }
        }
    }
}

/// One enumerated design point.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Dense index in the canonical full enumeration.
    pub idx: u64,
    /// Index into [`ExploreSpec::workloads`].
    pub workload: usize,
    /// The workload's CLI name (for rendering and grouping).
    pub workload_name: String,
    /// Engine in the shared spec grammar (`nsf:80x1`, ...).
    pub engine: String,
    /// Swept data-cache geometry.
    pub cache: CacheGeom,
}

impl Point {
    /// The engine as a buildable [`RegFileSpec`] (through the shared
    /// grammar parser — the explorer has no private reading of a name).
    pub fn regfile(&self) -> Result<RegFileSpec, SpecError> {
        parse_engine(&self.engine)
    }

    /// The full simulator configuration of this point.
    pub fn sim_config(&self) -> Result<SimConfig, SpecError> {
        let mut cfg = SimConfig::with_regfile(self.regfile()?);
        cfg.mem.dcache = self.cache.cache_config();
        Ok(cfg)
    }
}

/// The shard a point belongs to under round-robin partitioning.
pub fn shard_of(idx: u64, shard_count: u32) -> u32 {
    (idx % u64::from(shard_count.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_enumerates_densely_and_deterministically() {
        let spec = ExploreSpec::default_spec(0);
        spec.validate().unwrap();
        let pts = spec.enumerate();
        assert_eq!(pts, spec.enumerate(), "enumeration must be stable");
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.idx, i as u64, "indices must be dense");
            p.sim_config().unwrap_or_else(|e| panic!("{e}"));
        }
        // 2 workloads x 1 cache x (4 regs x 3 lines NSF + 6 segmented
        // — 48/4 and 64/4 frames leave less than one 20-reg context).
        assert_eq!(pts.len(), 2 * (12 + 6));
    }

    #[test]
    fn engine_points_of_a_cell_are_consecutive() {
        let spec = ExploreSpec::default_spec(0);
        let pts = spec.enumerate();
        // Workload/cache only changes at cell boundaries: once a new
        // pair starts, the previous one never reappears.
        let mut seen = Vec::new();
        for p in &pts {
            let cell = (p.workload, p.cache);
            if seen.last() != Some(&cell) {
                assert!(!seen.contains(&cell), "cell split: {cell:?}");
                seen.push(cell);
            }
        }
    }

    #[test]
    fn unbuildable_combinations_are_skipped() {
        let spec = ExploreSpec {
            families: vec![Family::Nsf, Family::Conventional, Family::Windowed],
            total_regs: vec![64, 160],
            line_sizes: vec![1, 3, 16],
            contexts: vec![1],
            caches: vec![CacheGeom::sparc2()],
            workloads: vec!["gatesim".into()],
            scale: 0,
        };
        let engines: Vec<String> = spec.enumerate().into_iter().map(|p| p.engine).collect();
        // Line 3 divides neither file nor context; conventional:160
        // exceeds the 64-word backing stride; windowed 64/8 = 8 is
        // smaller than GateSim's 20-register sequential context.
        assert_eq!(
            engines,
            [
                "nsf:64x1",
                "nsf:64x16",
                "nsf:160x1",
                "nsf:160x16",
                "conventional:64",
                "windowed:20"
            ]
            .map(String::from)
        );
        assert!(!engines.contains(&"windowed:8".to_string()));
    }

    #[test]
    fn shards_partition_the_enumeration() {
        let pts = ExploreSpec::default_spec(0).enumerate();
        let mut counts = [0usize; 3];
        for p in &pts {
            counts[shard_of(p.idx, 3) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), pts.len());
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn cache_geometry_grammar_round_trips() {
        assert_eq!(CacheGeom::parse("sparc2").unwrap(), CacheGeom::sparc2());
        let g = CacheGeom::parse("4096x4x2").unwrap();
        assert_eq!(g.to_string(), "4096x4x2");
        assert_eq!(
            CacheGeom::parse(&CacheGeom::sparc2().to_string()).unwrap(),
            CacheGeom::sparc2()
        );
        for bad in [
            "",
            "4096",
            "4096x4",
            "4096x3x2",
            "0x4x2",
            "100x4x2",
            "4096x4x2x1",
        ] {
            assert!(CacheGeom::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn fingerprint_tracks_every_axis() {
        let base = ExploreSpec::default_spec(0);
        let fp = base.fingerprint();
        let mut other = base.clone();
        other.scale = 1;
        assert_ne!(fp, other.fingerprint());
        let mut other = base.clone();
        other.total_regs.push(256);
        assert_ne!(fp, other.fingerprint());
        assert_eq!(fp, base.clone().fingerprint());
    }
}
