//! # nsf-explore — resumable design-space exploration with online
//! # Pareto pruning
//!
//! The paper's figures sweep one axis at a time (file size in Fig. 12,
//! line size in Fig. 13) with everything else pinned. This crate walks
//! the *cross-product* — engine family × total registers × line size ×
//! context count × data-cache geometry × workload mix — and reports
//! which organizations survive four-way Pareto dominance over
//! {reloads/instruction, register utilization, `nsf-vlsi` silicon
//! area, `nsf-vlsi` access time}: the traffic-vs-implementation
//! trade-off of paper §6–§7 as one queryable surface.
//!
//! The exploration is built to run long and die often:
//!
//! - **Declarative spec** ([`ExploreSpec`]) — value lists per axis,
//!   crossed into a canonically ordered, densely indexed point list.
//!   Engines are named in the shared spec grammar ([`nsf_sim::spec`])
//!   and materialized by its parser.
//! - **Deterministic shards** ([`Explorer::shard_index`]) — points are
//!   partitioned round-robin by index, so `--shard i/N` runs anywhere
//!   and [`merge_ledgers`] reassembles the exact single-run result.
//! - **Checkpointed ledger** ([`ledger`]) — every evaluated point is
//!   appended as a checksummed varint record (the `.nsftrace` encoding
//!   style); on restart the explorer replays the ledger, truncates a
//!   half-written tail, and continues after the last intact record. An
//!   interrupted-then-resumed run produces a **byte-identical** ledger
//!   and front to an uninterrupted one (pinned by `tests/resume.rs`).
//! - **Online pruning** ([`pareto`]) — fronts are maintained per
//!   workload and are insertion-order-invariant, so shard merge order
//!   cannot leak into results.
//!
//! Execution rides [`nsf_bench::Sweep::run_cached`]: points are
//! enumerated workload-major so each (workload, cache) cell's engine
//! points share one frontend event-stream capture.

pub mod cost;
pub mod driver;
pub mod ledger;
pub mod memo;
pub mod pareto;
pub mod spec;

pub use cost::{array_of, implementation_cost, point_cost, SWEEP_CID_BITS};
pub use driver::{
    build_fronts, merge_ledgers, render_front, ExploreError, ExploreOutcome, Explorer,
    DEFAULT_CHUNK,
};
pub use ledger::{LedgerError, LedgerHeader, LedgerRecord, ParsedLedger};
pub use memo::{
    memo_key, parse_memo, MemoCorrupt, MemoRecord, ParsedMemo, MEMO_MAGIC, MEMO_VERSION,
};
pub use pareto::{CostPoint, ParetoFront, PointCost};
pub use spec::{shard_of, workload_builder, CacheGeom, ExploreSpec, Family, Point, WORKLOADS};
