//! Persistent result memoization for the explorer: one checksummed
//! record per *evaluated* point, keyed by content rather than by
//! position, so a later run — any shard, any spec that happens to
//! enumerate the same point — skips the simulation entirely.
//!
//! The key is [`memo_key`]\(frontend fingerprint, engine spec, VLSI
//! model version\): the frontend fingerprint
//! ([`nsf_trace::stream_fingerprint`]) covers the workload content and
//! every frontend-visible configuration field, the engine string is the
//! canonical spec-grammar name of the register file, and
//! [`nsf_vlsi::MODEL_VERSION`] invalidates every memoized cost when the
//! calibrated silicon models are retuned. Two points with equal keys
//! are the same simulation by construction, so their
//! instructions/cycles/[`PointCost`] are interchangeable.
//!
//! Layout (the `.nsftrace` encoding style, mirroring [`crate::ledger`]):
//!
//! ```text
//! header := magic "NSFM" | version u8 | fnv64(preceding bytes)
//! record := tag 0x01 | key | instructions | cycles
//!           | reloads/instr bits | utilization bits | area bits
//!           | access bits | fnv64(preceding record bytes)
//! ```
//!
//! Integer fields are varints; `f64` fields are varints of their
//! IEEE-754 bit patterns, so a ledger record synthesized from a memo
//! hit is **byte-identical** to the one the live evaluation would have
//! appended — the property that lets a store-warm explorer run produce
//! the same ledger and front files as a cold one. The memo file is
//! advisory: a torn tail is truncated at the last intact record, and a
//! damaged header discards the file (the explorer just re-simulates).

use crate::ledger::fnv64;
use crate::pareto::PointCost;
use nsf_trace::{VarReader, VarWriter};

/// Leading magic of a memo file.
pub const MEMO_MAGIC: [u8; 4] = *b"NSFM";
/// Current memo format version.
pub const MEMO_VERSION: u8 = 1;
/// Tag of a memoized-point record.
const RECORD_TAG: u8 = 0x01;

/// One memoized evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoRecord {
    /// [`memo_key`] of the point.
    pub key: u64,
    /// Instructions the run retired.
    pub instructions: u64,
    /// Cycles the run took.
    pub cycles: u64,
    /// The four Pareto axes.
    pub cost: PointCost,
}

/// The content key of one evaluated point: frontend stream fingerprint
/// × engine spec string × VLSI model version. Everything that can
/// change the record's value is folded in; nothing positional (point
/// index, shard, spec ordering) is.
pub fn memo_key(frontend_fp: u64, engine: &str, model_version: u32) -> u64 {
    let mut bytes = Vec::with_capacity(12 + engine.len());
    bytes.extend_from_slice(&frontend_fp.to_le_bytes());
    bytes.extend_from_slice(&model_version.to_le_bytes());
    bytes.extend_from_slice(engine.as_bytes());
    fnv64(&bytes)
}

fn with_checksum(body: Vec<u8>) -> Vec<u8> {
    let mut tail = VarWriter::new();
    tail.put_varint(fnv64(&body));
    let mut out = body;
    out.extend(tail.into_bytes());
    out
}

/// Encodes the header block.
pub fn encode_memo_header() -> Vec<u8> {
    let mut w = VarWriter::new();
    for b in MEMO_MAGIC {
        w.put_u8(b);
    }
    w.put_u8(MEMO_VERSION);
    with_checksum(w.into_bytes())
}

/// Encodes one record.
pub fn encode_memo_record(r: &MemoRecord) -> Vec<u8> {
    let mut w = VarWriter::new();
    w.put_u8(RECORD_TAG);
    w.put_varint(r.key);
    w.put_varint(r.instructions);
    w.put_varint(r.cycles);
    w.put_varint(r.cost.reloads_per_instr.to_bits());
    w.put_varint(r.cost.utilization.to_bits());
    w.put_varint(r.cost.area_um2.to_bits());
    w.put_varint(r.cost.access_ns.to_bits());
    with_checksum(w.into_bytes())
}

/// A parsed memo file: the valid prefix.
#[derive(Debug)]
pub struct ParsedMemo {
    /// Every intact record, in append order (later duplicates of a key
    /// supersede earlier ones when folded into a map).
    pub records: Vec<MemoRecord>,
    /// Byte length of the valid prefix; bytes past it are a torn tail
    /// from an interrupted append and must be truncated before
    /// appending resumes.
    pub valid_len: usize,
}

/// Why a memo file could not be used at all. Unlike the ledger this is
/// never fatal to a run — the caller discards the file and
/// re-simulates — but the rejection is typed, never a panic.
#[derive(Debug)]
pub struct MemoCorrupt(pub &'static str);

impl std::fmt::Display for MemoCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt memo: {}", self.0)
    }
}

impl std::error::Error for MemoCorrupt {}

/// Parses a memo image. The header must be intact; a damaged or
/// half-written record tail stops the parse at the last clean boundary.
pub fn parse_memo(bytes: &[u8]) -> Result<ParsedMemo, MemoCorrupt> {
    let mut r = VarReader::new(bytes);
    let bad = MemoCorrupt;
    for expect in MEMO_MAGIC {
        if r.get_u8().map_err(|_| bad("missing magic"))? != expect {
            return Err(bad("bad magic"));
        }
    }
    if r.get_u8().map_err(|_| bad("missing version"))? != MEMO_VERSION {
        return Err(bad("unsupported version"));
    }
    let body_end = r.pos();
    let stored = r.get_varint().map_err(|_| bad("missing header checksum"))?;
    if stored != fnv64(&bytes[..body_end]) {
        return Err(bad("header checksum mismatch"));
    }

    let mut records = Vec::new();
    let mut valid_len = r.pos();
    loop {
        // One record, atomically: any failure rolls back to the last
        // intact boundary.
        let start = valid_len;
        let mut read = || -> Option<MemoRecord> {
            if r.get_u8().ok()? != RECORD_TAG {
                return None;
            }
            let key = r.get_varint().ok()?;
            let instructions = r.get_varint().ok()?;
            let cycles = r.get_varint().ok()?;
            let cost = PointCost {
                reloads_per_instr: f64::from_bits(r.get_varint().ok()?),
                utilization: f64::from_bits(r.get_varint().ok()?),
                area_um2: f64::from_bits(r.get_varint().ok()?),
                access_ns: f64::from_bits(r.get_varint().ok()?),
            };
            let body_end = r.pos();
            let stored = r.get_varint().ok()?;
            if stored != fnv64(&bytes[start..body_end]) {
                return None;
            }
            Some(MemoRecord {
                key,
                instructions,
                cycles,
                cost,
            })
        };
        match read() {
            Some(rec) => {
                records.push(rec);
                valid_len = r.pos();
            }
            None => break,
        }
        if r.done() {
            break;
        }
    }
    Ok(ParsedMemo { records, valid_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> MemoRecord {
        MemoRecord {
            key: memo_key(0x1234_5678_9abc_def0 ^ i, "nsf:80x1", 1),
            instructions: 1000 + i,
            cycles: 2000 + i,
            cost: PointCost {
                reloads_per_instr: 0.125 * i as f64,
                utilization: 0.5,
                area_um2: 1.5e6 + i as f64,
                access_ns: 12.25,
            },
        }
    }

    fn image(records: u64) -> Vec<u8> {
        let mut bytes = encode_memo_header();
        for i in 0..records {
            bytes.extend(encode_memo_record(&record(i)));
        }
        bytes
    }

    #[test]
    fn roundtrip_is_exact() {
        let bytes = image(5);
        let parsed = parse_memo(&bytes).unwrap();
        assert_eq!(parsed.records, (0..5).map(record).collect::<Vec<_>>());
        assert_eq!(parsed.valid_len, bytes.len());
    }

    #[test]
    fn torn_tail_rolls_back_to_a_record_boundary() {
        let full = image(3);
        let two = image(2);
        for cut in two.len() + 1..full.len() {
            let parsed = parse_memo(&full[..cut]).unwrap();
            assert_eq!(parsed.records.len(), 2, "cut at {cut}");
            assert_eq!(parsed.valid_len, two.len());
        }
    }

    #[test]
    fn bitflip_in_a_record_stops_the_parse_there() {
        let mut bytes = image(3);
        let one = image(1).len();
        bytes[one + 2] ^= 0x40;
        let parsed = parse_memo(&bytes).unwrap();
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.valid_len, one);
    }

    #[test]
    fn header_damage_is_typed_and_fatal_to_the_file() {
        let mut bytes = image(1);
        bytes[1] ^= 0xff;
        assert!(parse_memo(&bytes).is_err());
        assert!(parse_memo(&[]).is_err());
        assert!(parse_memo(&image(0)[..3]).is_err());
        // A ledger file is not a memo file.
        let foreign = crate::ledger::encode_header(&crate::ledger::LedgerHeader {
            fingerprint: 1,
            shard_index: 0,
            shard_count: 1,
            shard_points: 0,
        });
        assert!(parse_memo(&foreign).is_err());
    }

    #[test]
    fn key_separates_every_component() {
        let base = memo_key(7, "nsf:80x1", 1);
        assert_ne!(base, memo_key(8, "nsf:80x1", 1), "frontend fingerprint");
        assert_ne!(base, memo_key(7, "nsf:80x2", 1), "engine spec");
        assert_ne!(base, memo_key(7, "nsf:80x1", 2), "model version");
        assert_eq!(base, memo_key(7, "nsf:80x1", 1), "deterministic");
    }
}
