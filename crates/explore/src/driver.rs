//! The exploration driver: shard the enumeration, execute it in
//! checkpointed chunks through the sweep runner's frontend cache,
//! persist every evaluated point to the ledger, and derive the Pareto
//! fronts from the ledger alone.
//!
//! The resume invariant the integration tests pin: **a run interrupted
//! at any checkpoint and resumed produces a byte-identical ledger and
//! front file to an uninterrupted run.** The driver earns that by
//! construction — records are appended strictly in shard point order,
//! resume replays the ledger and continues after the last intact
//! record (truncating a half-written tail first), and the front is
//! always recomputed from the full ledger, never from in-memory state
//! that an interruption could have lost.

use crate::cost::point_cost;
use crate::ledger::{
    encode_header, encode_record, parse, LedgerError, LedgerHeader, LedgerRecord, ParsedLedger,
};
use crate::memo::{encode_memo_header, encode_memo_record, memo_key, parse_memo, MemoRecord};
use crate::pareto::ParetoFront;
use crate::spec::{shard_of, workload_builder, ExploreSpec, Point};
use nsf_bench::Sweep;
use nsf_sim::SpecError;
use nsf_trace::{stream_fingerprint, StreamStore};
use nsf_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Default points per checkpoint chunk: wide enough that a chunk's
/// frontend groups clear the sweep runner's capture threshold
/// ([`Sweep::MIN_CAPTURE_GROUP`]), small enough that an interrupted
/// run loses little work.
pub const DEFAULT_CHUNK: usize = 64;

/// A failure of one exploration run.
#[derive(Debug)]
pub enum ExploreError {
    /// The spec (or an engine string it enumerated) is malformed.
    Spec(SpecError),
    /// The ledger could not be read, written or trusted.
    Ledger(LedgerError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Spec(e) => e.fmt(f),
            ExploreError::Ledger(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SpecError> for ExploreError {
    fn from(e: SpecError) -> Self {
        ExploreError::Spec(e)
    }
}

impl From<LedgerError> for ExploreError {
    fn from(e: LedgerError) -> Self {
        ExploreError::Ledger(e)
    }
}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        ExploreError::Ledger(LedgerError::Io(e))
    }
}

/// A configured exploration: one spec, one shard, one output directory.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// What to explore.
    pub spec: ExploreSpec,
    /// This run's shard (0-based).
    pub shard_index: u32,
    /// Total shards the enumeration is partitioned into.
    pub shard_count: u32,
    /// Where the ledger and front land.
    pub out_dir: PathBuf,
    /// Sweep worker threads.
    pub threads: usize,
    /// Lane-batch width for the sweep runner.
    pub lanes: usize,
    /// Points per checkpoint chunk.
    pub chunk: usize,
    /// Stop (successfully) after this many checkpoints — deterministic
    /// interruption for the resume tests and the CI smoke job.
    pub stop_after: Option<u64>,
    /// Suppress progress commentary on stderr.
    pub quiet: bool,
    /// Persistent content-addressed store directory: frontend event
    /// streams ([`StreamStore`], shared with the sweep harness) plus
    /// the per-point result memo (`explore_memo.nsfm`). `None` runs
    /// store-less — every point simulates live.
    pub store_dir: Option<PathBuf>,
}

/// What one [`Explorer::run`] did.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreOutcome {
    /// Points in the full enumeration.
    pub total_points: u64,
    /// Points assigned to this shard.
    pub shard_points: u64,
    /// Points found already evaluated in the ledger.
    pub resumed: u64,
    /// Points newly evaluated by this invocation.
    pub evaluated: u64,
    /// Of [`ExploreOutcome::evaluated`], points served from the result
    /// memo without simulating.
    pub memoized: u64,
    /// Checkpoints written by this invocation.
    pub checkpoints: u64,
    /// Points offered to the fronts and pruned as dominated.
    pub pruned: u64,
    /// Total surviving front members across workloads.
    pub front_size: u64,
    /// `false` when [`Explorer::stop_after`] ended the run early.
    pub completed: bool,
    /// Where the ledger lives.
    pub ledger_path: PathBuf,
    /// Where the front rendering lives.
    pub front_path: PathBuf,
    /// Wall time of this invocation (excluded from all artifacts).
    pub elapsed: Duration,
}

impl Explorer {
    /// An explorer with default execution parameters: single shard,
    /// all cores, the runner's default lane width.
    pub fn new(spec: ExploreSpec, out_dir: PathBuf) -> Self {
        Explorer {
            spec,
            shard_index: 0,
            shard_count: 1,
            out_dir,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            lanes: nsf_bench::DEFAULT_LANES,
            chunk: DEFAULT_CHUNK,
            stop_after: None,
            quiet: false,
            store_dir: None,
        }
    }

    /// This shard's ledger file.
    pub fn ledger_path(&self) -> PathBuf {
        self.out_dir.join(format!(
            "explore_shard{}of{}.nsfx",
            self.shard_index, self.shard_count
        ))
    }

    /// This shard's rendered Pareto front.
    pub fn front_path(&self) -> PathBuf {
        self.out_dir.join(format!(
            "explore_front_shard{}of{}.txt",
            self.shard_index, self.shard_count
        ))
    }

    /// The header every ledger of this exploration must carry.
    fn header(&self, shard_points: u64) -> LedgerHeader {
        LedgerHeader {
            fingerprint: self.spec.fingerprint(),
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            shard_points,
        }
    }

    /// Opens (or creates) the ledger, validates it against this run,
    /// truncates any interrupted tail, and returns the intact records.
    fn open_ledger(&self, shard_pts: &[Point]) -> Result<Vec<LedgerRecord>, ExploreError> {
        let path = self.ledger_path();
        let expected = self.header(shard_pts.len() as u64);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&path, encode_header(&expected))?;
                return Ok(Vec::new());
            }
            Err(e) => return Err(e.into()),
        };
        let ParsedLedger {
            header,
            records,
            valid_len,
        } = parse(&bytes)?;
        let check = |field, expected: u64, found: u64| {
            if expected == found {
                Ok(())
            } else {
                Err(LedgerError::Mismatch {
                    field,
                    expected,
                    found,
                })
            }
        };
        check("fingerprint", expected.fingerprint, header.fingerprint)?;
        check(
            "shard index",
            expected.shard_index.into(),
            header.shard_index.into(),
        )?;
        check(
            "shard count",
            expected.shard_count.into(),
            header.shard_count.into(),
        )?;
        check("shard points", expected.shard_points, header.shard_points)?;
        if records.len() > shard_pts.len() {
            return Err(LedgerError::Mismatch {
                field: "record count",
                expected: shard_pts.len() as u64,
                found: records.len() as u64,
            }
            .into());
        }
        for (i, rec) in records.iter().enumerate() {
            if rec.point_idx != shard_pts[i].idx {
                return Err(LedgerError::OutOfSequence {
                    record: i as u64,
                    expected: shard_pts[i].idx,
                    found: rec.point_idx,
                }
                .into());
            }
        }
        if valid_len < bytes.len() {
            // A crash mid-append left a partial record; cut back to the
            // last intact boundary so appending resumes cleanly.
            let mut f = fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.flush()?;
        }
        Ok(records)
    }

    /// Runs (or resumes) the exploration.
    pub fn run(&self) -> Result<ExploreOutcome, ExploreError> {
        let t0 = Instant::now();
        self.spec.validate()?;
        assert!(
            self.shard_count > 0 && self.shard_index < self.shard_count,
            "shard {}/{} out of range",
            self.shard_index,
            self.shard_count
        );
        let points = self.spec.enumerate();
        let shard_pts: Vec<Point> = points
            .iter()
            .filter(|p| shard_of(p.idx, self.shard_count) == self.shard_index)
            .cloned()
            .collect();
        fs::create_dir_all(&self.out_dir)?;
        let resumed = self.open_ledger(&shard_pts)?.len();
        let mut ctx = match &self.store_dir {
            None => None,
            Some(dir) => Some(StoreCtx::open(dir)?),
        };

        let mut ledger = fs::OpenOptions::new()
            .append(true)
            .open(self.ledger_path())?;
        let mut evaluated = 0u64;
        let mut memoized = 0u64;
        let mut checkpoints = 0u64;
        let mut completed = true;
        for chunk in shard_pts[resumed..].chunks(self.chunk.max(1)) {
            let (records, hits) = self.run_chunk(chunk, ctx.as_mut())?;
            let mut bytes = Vec::new();
            for rec in &records {
                bytes.extend(encode_record(rec));
            }
            ledger.write_all(&bytes)?;
            ledger.flush()?;
            evaluated += chunk.len() as u64;
            memoized += hits;
            checkpoints += 1;
            if !self.quiet {
                eprintln!(
                    "nsf-explore: checkpoint {checkpoints}: {} / {} shard points",
                    resumed as u64 + evaluated,
                    shard_pts.len()
                );
            }
            if self.stop_after.is_some_and(|n| checkpoints >= n) {
                completed = resumed as u64 + evaluated >= shard_pts.len() as u64;
                break;
            }
        }
        drop(ledger);

        // The fronts come from the ledger, not from this invocation's
        // in-memory results: a resumed run and a straight-through run
        // read identical bytes, so they render identical fronts.
        let bytes = fs::read(self.ledger_path())?;
        let records = parse(&bytes)?.records;
        let fronts = build_fronts(&points, &records);
        fs::write(
            self.front_path(),
            render_front(&self.spec, &points, &records),
        )?;

        let (mut pruned, mut front_size) = (0u64, 0u64);
        for f in fronts.values() {
            pruned += f.pruned();
            front_size += f.len() as u64;
        }
        Ok(ExploreOutcome {
            total_points: points.len() as u64,
            shard_points: shard_pts.len() as u64,
            resumed: resumed as u64,
            evaluated,
            memoized,
            checkpoints,
            pruned,
            front_size,
            completed,
            ledger_path: self.ledger_path(),
            front_path: self.front_path(),
            elapsed: t0.elapsed(),
        })
    }

    /// Evaluates one chunk: memo hits synthesize their ledger records
    /// directly; the rest run through the sweep runner's frontend cache
    /// (stream-store-backed when a store is open) and are appended to
    /// the memo for every later chunk, shard, or run. Returns the
    /// records in chunk order plus the memo-hit count. With `ctx:
    /// None` every point simulates live, exactly as before.
    fn run_chunk(
        &self,
        chunk: &[Point],
        mut ctx: Option<&mut StoreCtx>,
    ) -> Result<(Vec<LedgerRecord>, u64), ExploreError> {
        // Workloads memoised per chunk (built once, shared by index);
        // kept out of the sweep until we know which points must run,
        // because fingerprinting needs the workload content.
        let mut built: Vec<(usize, Workload)> = Vec::new();
        let mut slot_of: HashMap<usize, usize> = HashMap::new();
        for p in chunk {
            if let std::collections::hash_map::Entry::Vacant(e) = slot_of.entry(p.workload) {
                let name = &self.spec.workloads[p.workload];
                e.insert(built.len());
                built.push((p.workload, workload_builder(name)?(self.spec.scale)));
            }
        }

        // Content keys, and the hit/miss split. A point whose frontend
        // cannot be fingerprinted (or with no store open) simply never
        // memoizes.
        let mut records: Vec<Option<LedgerRecord>> = vec![None; chunk.len()];
        let mut keys: Vec<Option<u64>> = vec![None; chunk.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, p) in chunk.iter().enumerate() {
            if let Some(c) = ctx.as_deref_mut() {
                let w = &built[slot_of[&p.workload]].1;
                keys[i] = stream_fingerprint(w, &p.sim_config()?)
                    .map(|fp| memo_key(fp, &p.engine, nsf_vlsi::MODEL_VERSION));
                if let Some(m) = keys[i].and_then(|k| c.memo.get(&k)) {
                    records[i] = Some(LedgerRecord {
                        point_idx: p.idx,
                        instructions: m.instructions,
                        cycles: m.cycles,
                        cost: m.cost,
                    });
                    continue;
                }
            }
            misses.push(i);
        }
        let hits = (chunk.len() - misses.len()) as u64;

        // Simulate the misses in one sweep (chunk order preserved).
        let mut sweep = Sweep::new();
        let mut workloads: Vec<Option<Workload>> =
            built.into_iter().map(|(_, w)| Some(w)).collect();
        let mut sweep_idx: HashMap<usize, usize> = HashMap::new();
        for &i in &misses {
            let p = &chunk[i];
            let slot = slot_of[&p.workload];
            let wl = match sweep_idx.get(&p.workload) {
                Some(&wl) => wl,
                None => {
                    let wl = sweep.workload(workloads[slot].take().expect("workload built once"));
                    sweep_idx.insert(p.workload, wl);
                    wl
                }
            };
            sweep.point(wl, p.sim_config()?);
        }
        let store = ctx.as_deref().map(|c| &c.store);
        let reports = sweep.run_stored(self.threads, self.lanes, store);

        let mut memo_bytes = Vec::new();
        for (&i, report) in misses.iter().zip(&reports) {
            let p = &chunk[i];
            let rec = LedgerRecord {
                point_idx: p.idx,
                instructions: report.instructions,
                cycles: report.cycles,
                cost: point_cost(&p.regfile()?, report),
            };
            records[i] = Some(rec);
            if let (Some(c), Some(k)) = (ctx.as_deref_mut(), keys[i]) {
                let m = MemoRecord {
                    key: k,
                    instructions: rec.instructions,
                    cycles: rec.cycles,
                    cost: rec.cost,
                };
                memo_bytes.extend(encode_memo_record(&m));
                c.memo.insert(k, m);
            }
        }
        if let Some(c) = ctx {
            if !memo_bytes.is_empty() {
                c.file.write_all(&memo_bytes)?;
                c.file.flush()?;
            }
        }
        let records = records
            .into_iter()
            .map(|r| r.expect("every chunk point resolved"))
            .collect();
        Ok((records, hits))
    }
}

/// An open persistent store: the shared frontend [`StreamStore`] plus
/// the explorer's result memo (loaded map + append handle).
struct StoreCtx {
    store: StreamStore,
    memo: HashMap<u64, MemoRecord>,
    file: fs::File,
}

impl StoreCtx {
    /// The memo file inside a store directory.
    fn memo_path(dir: &Path) -> PathBuf {
        dir.join("explore_memo.nsfm")
    }

    /// Opens (or creates) the store directory and loads the memo. The
    /// memo is advisory, so damage is never fatal: a torn tail is
    /// truncated at the last intact record, and a corrupt or foreign
    /// header discards the file and starts a fresh one — the run just
    /// re-simulates what was lost.
    fn open(dir: &Path) -> Result<StoreCtx, ExploreError> {
        fs::create_dir_all(dir)?;
        let path = Self::memo_path(dir);
        let mut memo = HashMap::new();
        match fs::read(&path) {
            Ok(bytes) => match parse_memo(&bytes) {
                Ok(parsed) => {
                    if parsed.valid_len < bytes.len() {
                        let f = fs::OpenOptions::new().write(true).open(&path)?;
                        f.set_len(parsed.valid_len as u64)?;
                    }
                    for r in parsed.records {
                        memo.insert(r.key, r);
                    }
                }
                Err(_) => fs::write(&path, encode_memo_header())?,
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&path, encode_memo_header())?;
            }
            Err(e) => return Err(e.into()),
        }
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        Ok(StoreCtx {
            store: StreamStore::open(dir.to_path_buf()),
            memo,
            file,
        })
    }
}

/// Folds records into one Pareto front per workload (keyed by workload
/// index in the spec).
pub fn build_fronts(
    points: &[Point],
    records: &[LedgerRecord],
) -> std::collections::BTreeMap<usize, ParetoFront> {
    let mut fronts = std::collections::BTreeMap::new();
    for rec in records {
        let p = &points[rec.point_idx as usize];
        fronts
            .entry(p.workload)
            .or_insert_with(ParetoFront::new)
            .insert(rec.point_idx, rec.cost);
    }
    fronts
}

/// Renders the canonical front file. Depends only on the *set* of
/// records (insertion order cannot matter — the front is
/// order-invariant and members are sorted by index), so merged shards
/// and a single-shard run render byte-identical files.
pub fn render_front(spec: &ExploreSpec, points: &[Point], records: &[LedgerRecord]) -> String {
    use std::fmt::Write as _;
    let fronts = build_fronts(points, records);
    let mut out = String::new();
    writeln!(out, "nsf-explore pareto front v1").unwrap();
    writeln!(out, "spec {}", spec.canonical()).unwrap();
    writeln!(out, "fingerprint {:016x}", spec.fingerprint()).unwrap();
    writeln!(out, "records {}", records.len()).unwrap();
    for (wl, front) in &fronts {
        let name = spec.workloads[*wl].as_str();
        writeln!(
            out,
            "workload {name}: front {} of {}",
            front.len(),
            front.inserted()
        )
        .unwrap();
        for m in front.members() {
            let p = &points[m.idx as usize];
            writeln!(
                out,
                "  {} {} cache={} reloads/instr={:.6} util={:.6} area_um2={:.1} access_ns={:.3}",
                m.idx,
                p.engine,
                p.cache,
                m.cost.reloads_per_instr,
                m.cost.utilization,
                m.cost.area_um2,
                m.cost.access_ns,
            )
            .unwrap();
        }
    }
    out
}

/// Merges completed shard ledgers into the full record set and renders
/// the combined front. Every shard of the exploration must be present
/// exactly once, complete, and fingerprint-matched to `spec`.
pub fn merge_ledgers(
    spec: &ExploreSpec,
    ledgers: &[Vec<u8>],
) -> Result<(Vec<LedgerRecord>, String), ExploreError> {
    spec.validate()?;
    let points = spec.enumerate();
    let fp = spec.fingerprint();
    let count = ledgers.len() as u32;
    let mut seen = vec![false; ledgers.len()];
    let mut all: Vec<LedgerRecord> = Vec::new();
    for bytes in ledgers {
        let parsed = parse(bytes)?;
        let h = parsed.header;
        let bad = |field, expected, found| {
            Err(ExploreError::Ledger(LedgerError::Mismatch {
                field,
                expected,
                found,
            }))
        };
        if h.fingerprint != fp {
            return bad("fingerprint", fp, h.fingerprint);
        }
        if h.shard_count != count {
            return bad("shard count", count.into(), h.shard_count.into());
        }
        if h.shard_index >= count || seen[h.shard_index as usize] {
            return bad("shard index", count.into(), h.shard_index.into());
        }
        seen[h.shard_index as usize] = true;
        if (parsed.records.len() as u64) < h.shard_points {
            return bad("shard points", h.shard_points, parsed.records.len() as u64);
        }
        all.extend(parsed.records);
    }
    all.sort_by_key(|r| r.point_idx);
    if all.len() != points.len() {
        return Err(ExploreError::Ledger(LedgerError::Mismatch {
            field: "merged records",
            expected: points.len() as u64,
            found: all.len() as u64,
        }));
    }
    let rendered = render_front(spec, &points, &all);
    Ok((all, rendered))
}
