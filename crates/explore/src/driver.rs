//! The exploration driver: shard the enumeration, execute it in
//! checkpointed chunks through the sweep runner's frontend cache,
//! persist every evaluated point to the ledger, and derive the Pareto
//! fronts from the ledger alone.
//!
//! The resume invariant the integration tests pin: **a run interrupted
//! at any checkpoint and resumed produces a byte-identical ledger and
//! front file to an uninterrupted run.** The driver earns that by
//! construction — records are appended strictly in shard point order,
//! resume replays the ledger and continues after the last intact
//! record (truncating a half-written tail first), and the front is
//! always recomputed from the full ledger, never from in-memory state
//! that an interruption could have lost.

use crate::cost::point_cost;
use crate::ledger::{
    encode_header, encode_record, parse, LedgerError, LedgerHeader, LedgerRecord, ParsedLedger,
};
use crate::pareto::ParetoFront;
use crate::spec::{shard_of, workload_builder, ExploreSpec, Point};
use nsf_bench::Sweep;
use nsf_sim::SpecError;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Default points per checkpoint chunk: wide enough that a chunk's
/// frontend groups clear the sweep runner's capture threshold
/// ([`Sweep::MIN_CAPTURE_GROUP`]), small enough that an interrupted
/// run loses little work.
pub const DEFAULT_CHUNK: usize = 64;

/// A failure of one exploration run.
#[derive(Debug)]
pub enum ExploreError {
    /// The spec (or an engine string it enumerated) is malformed.
    Spec(SpecError),
    /// The ledger could not be read, written or trusted.
    Ledger(LedgerError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Spec(e) => e.fmt(f),
            ExploreError::Ledger(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SpecError> for ExploreError {
    fn from(e: SpecError) -> Self {
        ExploreError::Spec(e)
    }
}

impl From<LedgerError> for ExploreError {
    fn from(e: LedgerError) -> Self {
        ExploreError::Ledger(e)
    }
}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        ExploreError::Ledger(LedgerError::Io(e))
    }
}

/// A configured exploration: one spec, one shard, one output directory.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// What to explore.
    pub spec: ExploreSpec,
    /// This run's shard (0-based).
    pub shard_index: u32,
    /// Total shards the enumeration is partitioned into.
    pub shard_count: u32,
    /// Where the ledger and front land.
    pub out_dir: PathBuf,
    /// Sweep worker threads.
    pub threads: usize,
    /// Lane-batch width for the sweep runner.
    pub lanes: usize,
    /// Points per checkpoint chunk.
    pub chunk: usize,
    /// Stop (successfully) after this many checkpoints — deterministic
    /// interruption for the resume tests and the CI smoke job.
    pub stop_after: Option<u64>,
    /// Suppress progress commentary on stderr.
    pub quiet: bool,
}

/// What one [`Explorer::run`] did.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreOutcome {
    /// Points in the full enumeration.
    pub total_points: u64,
    /// Points assigned to this shard.
    pub shard_points: u64,
    /// Points found already evaluated in the ledger.
    pub resumed: u64,
    /// Points newly evaluated by this invocation.
    pub evaluated: u64,
    /// Checkpoints written by this invocation.
    pub checkpoints: u64,
    /// Points offered to the fronts and pruned as dominated.
    pub pruned: u64,
    /// Total surviving front members across workloads.
    pub front_size: u64,
    /// `false` when [`Explorer::stop_after`] ended the run early.
    pub completed: bool,
    /// Where the ledger lives.
    pub ledger_path: PathBuf,
    /// Where the front rendering lives.
    pub front_path: PathBuf,
    /// Wall time of this invocation (excluded from all artifacts).
    pub elapsed: Duration,
}

impl Explorer {
    /// An explorer with default execution parameters: single shard,
    /// all cores, the runner's default lane width.
    pub fn new(spec: ExploreSpec, out_dir: PathBuf) -> Self {
        Explorer {
            spec,
            shard_index: 0,
            shard_count: 1,
            out_dir,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            lanes: nsf_bench::DEFAULT_LANES,
            chunk: DEFAULT_CHUNK,
            stop_after: None,
            quiet: false,
        }
    }

    /// This shard's ledger file.
    pub fn ledger_path(&self) -> PathBuf {
        self.out_dir.join(format!(
            "explore_shard{}of{}.nsfx",
            self.shard_index, self.shard_count
        ))
    }

    /// This shard's rendered Pareto front.
    pub fn front_path(&self) -> PathBuf {
        self.out_dir.join(format!(
            "explore_front_shard{}of{}.txt",
            self.shard_index, self.shard_count
        ))
    }

    /// The header every ledger of this exploration must carry.
    fn header(&self, shard_points: u64) -> LedgerHeader {
        LedgerHeader {
            fingerprint: self.spec.fingerprint(),
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            shard_points,
        }
    }

    /// Opens (or creates) the ledger, validates it against this run,
    /// truncates any interrupted tail, and returns the intact records.
    fn open_ledger(&self, shard_pts: &[Point]) -> Result<Vec<LedgerRecord>, ExploreError> {
        let path = self.ledger_path();
        let expected = self.header(shard_pts.len() as u64);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&path, encode_header(&expected))?;
                return Ok(Vec::new());
            }
            Err(e) => return Err(e.into()),
        };
        let ParsedLedger {
            header,
            records,
            valid_len,
        } = parse(&bytes)?;
        let check = |field, expected: u64, found: u64| {
            if expected == found {
                Ok(())
            } else {
                Err(LedgerError::Mismatch {
                    field,
                    expected,
                    found,
                })
            }
        };
        check("fingerprint", expected.fingerprint, header.fingerprint)?;
        check(
            "shard index",
            expected.shard_index.into(),
            header.shard_index.into(),
        )?;
        check(
            "shard count",
            expected.shard_count.into(),
            header.shard_count.into(),
        )?;
        check("shard points", expected.shard_points, header.shard_points)?;
        if records.len() > shard_pts.len() {
            return Err(LedgerError::Mismatch {
                field: "record count",
                expected: shard_pts.len() as u64,
                found: records.len() as u64,
            }
            .into());
        }
        for (i, rec) in records.iter().enumerate() {
            if rec.point_idx != shard_pts[i].idx {
                return Err(LedgerError::OutOfSequence {
                    record: i as u64,
                    expected: shard_pts[i].idx,
                    found: rec.point_idx,
                }
                .into());
            }
        }
        if valid_len < bytes.len() {
            // A crash mid-append left a partial record; cut back to the
            // last intact boundary so appending resumes cleanly.
            let mut f = fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.flush()?;
        }
        Ok(records)
    }

    /// Runs (or resumes) the exploration.
    pub fn run(&self) -> Result<ExploreOutcome, ExploreError> {
        let t0 = Instant::now();
        self.spec.validate()?;
        assert!(
            self.shard_count > 0 && self.shard_index < self.shard_count,
            "shard {}/{} out of range",
            self.shard_index,
            self.shard_count
        );
        let points = self.spec.enumerate();
        let shard_pts: Vec<Point> = points
            .iter()
            .filter(|p| shard_of(p.idx, self.shard_count) == self.shard_index)
            .cloned()
            .collect();
        fs::create_dir_all(&self.out_dir)?;
        let resumed = self.open_ledger(&shard_pts)?.len();

        let mut ledger = fs::OpenOptions::new()
            .append(true)
            .open(self.ledger_path())?;
        let mut evaluated = 0u64;
        let mut checkpoints = 0u64;
        let mut completed = true;
        for chunk in shard_pts[resumed..].chunks(self.chunk.max(1)) {
            let reports = self.run_chunk(chunk)?;
            let mut bytes = Vec::new();
            for (p, report) in chunk.iter().zip(&reports) {
                bytes.extend(encode_record(&LedgerRecord {
                    point_idx: p.idx,
                    instructions: report.instructions,
                    cycles: report.cycles,
                    cost: point_cost(&p.regfile()?, report),
                }));
            }
            ledger.write_all(&bytes)?;
            ledger.flush()?;
            evaluated += chunk.len() as u64;
            checkpoints += 1;
            if !self.quiet {
                eprintln!(
                    "nsf-explore: checkpoint {checkpoints}: {} / {} shard points",
                    resumed as u64 + evaluated,
                    shard_pts.len()
                );
            }
            if self.stop_after.is_some_and(|n| checkpoints >= n) {
                completed = resumed as u64 + evaluated >= shard_pts.len() as u64;
                break;
            }
        }
        drop(ledger);

        // The fronts come from the ledger, not from this invocation's
        // in-memory results: a resumed run and a straight-through run
        // read identical bytes, so they render identical fronts.
        let bytes = fs::read(self.ledger_path())?;
        let records = parse(&bytes)?.records;
        let fronts = build_fronts(&points, &records);
        fs::write(
            self.front_path(),
            render_front(&self.spec, &points, &records),
        )?;

        let (mut pruned, mut front_size) = (0u64, 0u64);
        for f in fronts.values() {
            pruned += f.pruned();
            front_size += f.len() as u64;
        }
        Ok(ExploreOutcome {
            total_points: points.len() as u64,
            shard_points: shard_pts.len() as u64,
            resumed: resumed as u64,
            evaluated,
            checkpoints,
            pruned,
            front_size,
            completed,
            ledger_path: self.ledger_path(),
            front_path: self.front_path(),
            elapsed: t0.elapsed(),
        })
    }

    /// Executes one chunk through the sweep runner's frontend cache.
    fn run_chunk(&self, chunk: &[Point]) -> Result<Vec<nsf_sim::RunReport>, ExploreError> {
        let mut sweep = Sweep::new();
        // Workloads memoised per chunk (built once, shared by index).
        let mut built: HashMap<usize, usize> = HashMap::new();
        for p in chunk {
            let wl = match built.get(&p.workload) {
                Some(&wl) => wl,
                None => {
                    let name = &self.spec.workloads[p.workload];
                    let wl = sweep.workload(workload_builder(name)?(self.spec.scale));
                    built.insert(p.workload, wl);
                    wl
                }
            };
            sweep.point(wl, p.sim_config()?);
        }
        Ok(sweep.run_cached(self.threads, self.lanes))
    }
}

/// Folds records into one Pareto front per workload (keyed by workload
/// index in the spec).
pub fn build_fronts(
    points: &[Point],
    records: &[LedgerRecord],
) -> std::collections::BTreeMap<usize, ParetoFront> {
    let mut fronts = std::collections::BTreeMap::new();
    for rec in records {
        let p = &points[rec.point_idx as usize];
        fronts
            .entry(p.workload)
            .or_insert_with(ParetoFront::new)
            .insert(rec.point_idx, rec.cost);
    }
    fronts
}

/// Renders the canonical front file. Depends only on the *set* of
/// records (insertion order cannot matter — the front is
/// order-invariant and members are sorted by index), so merged shards
/// and a single-shard run render byte-identical files.
pub fn render_front(spec: &ExploreSpec, points: &[Point], records: &[LedgerRecord]) -> String {
    use std::fmt::Write as _;
    let fronts = build_fronts(points, records);
    let mut out = String::new();
    writeln!(out, "nsf-explore pareto front v1").unwrap();
    writeln!(out, "spec {}", spec.canonical()).unwrap();
    writeln!(out, "fingerprint {:016x}", spec.fingerprint()).unwrap();
    writeln!(out, "records {}", records.len()).unwrap();
    for (wl, front) in &fronts {
        let name = spec.workloads[*wl].as_str();
        writeln!(
            out,
            "workload {name}: front {} of {}",
            front.len(),
            front.inserted()
        )
        .unwrap();
        for m in front.members() {
            let p = &points[m.idx as usize];
            writeln!(
                out,
                "  {} {} cache={} reloads/instr={:.6} util={:.6} area_um2={:.1} access_ns={:.3}",
                m.idx,
                p.engine,
                p.cache,
                m.cost.reloads_per_instr,
                m.cost.utilization,
                m.cost.area_um2,
                m.cost.access_ns,
            )
            .unwrap();
        }
    }
    out
}

/// Merges completed shard ledgers into the full record set and renders
/// the combined front. Every shard of the exploration must be present
/// exactly once, complete, and fingerprint-matched to `spec`.
pub fn merge_ledgers(
    spec: &ExploreSpec,
    ledgers: &[Vec<u8>],
) -> Result<(Vec<LedgerRecord>, String), ExploreError> {
    spec.validate()?;
    let points = spec.enumerate();
    let fp = spec.fingerprint();
    let count = ledgers.len() as u32;
    let mut seen = vec![false; ledgers.len()];
    let mut all: Vec<LedgerRecord> = Vec::new();
    for bytes in ledgers {
        let parsed = parse(bytes)?;
        let h = parsed.header;
        let bad = |field, expected, found| {
            Err(ExploreError::Ledger(LedgerError::Mismatch {
                field,
                expected,
                found,
            }))
        };
        if h.fingerprint != fp {
            return bad("fingerprint", fp, h.fingerprint);
        }
        if h.shard_count != count {
            return bad("shard count", count.into(), h.shard_count.into());
        }
        if h.shard_index >= count || seen[h.shard_index as usize] {
            return bad("shard index", count.into(), h.shard_index.into());
        }
        seen[h.shard_index as usize] = true;
        if (parsed.records.len() as u64) < h.shard_points {
            return bad("shard points", h.shard_points, parsed.records.len() as u64);
        }
        all.extend(parsed.records);
    }
    all.sort_by_key(|r| r.point_idx);
    if all.len() != points.len() {
        return Err(ExploreError::Ledger(LedgerError::Mismatch {
            field: "merged records",
            expected: points.len() as u64,
            found: all.len() as u64,
        }));
    }
    let rendered = render_front(spec, &points, &all);
    Ok((all, rendered))
}
