//! Online Pareto pruning over the four exploration cost axes.
//!
//! Every evaluated point becomes a [`CostPoint`]; the front keeps only
//! points no other point dominates. Domination is the usual weak order:
//! `a` dominates `b` when `a` is no worse on every axis and strictly
//! better on at least one. Utilization is a benefit, so it enters the
//! comparison negated; the other three axes are costs.
//!
//! The front is **insertion-order-invariant**: feeding the same point
//! set in any order yields the same surviving set (ties — identical
//! cost vectors — are all kept, so no order-dependent winner exists).
//! A property test in `tests/pareto_props.rs` pins this against a
//! brute-force dominance filter.

/// The measured + modeled costs of one design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointCost {
    /// Registers reloaded per instruction (simulated; minimize).
    pub reloads_per_instr: f64,
    /// Mean fraction of the file holding active data (simulated;
    /// maximize).
    pub utilization: f64,
    /// Silicon area of the file, µm² (`nsf-vlsi`; minimize).
    pub area_um2: f64,
    /// Access time, ns (`nsf-vlsi`; minimize).
    pub access_ns: f64,
}

impl PointCost {
    /// The cost vector as uniform minimize-axes.
    fn axes(&self) -> [f64; 4] {
        [
            self.reloads_per_instr,
            -self.utilization,
            self.area_um2,
            self.access_ns,
        ]
    }

    /// `true` when `self` dominates `other`: no worse everywhere,
    /// strictly better somewhere.
    pub fn dominates(&self, other: &PointCost) -> bool {
        let (a, b) = (self.axes(), other.axes());
        let mut strictly = false;
        for i in 0..a.len() {
            if a[i] > b[i] {
                return false;
            }
            strictly |= a[i] < b[i];
        }
        strictly
    }
}

/// One front member.
#[derive(Clone, Debug, PartialEq)]
pub struct CostPoint {
    /// The point's index in the canonical enumeration.
    pub idx: u64,
    /// Its cost vector.
    pub cost: PointCost,
}

/// An online Pareto front: insert points as they are measured, keep
/// only the non-dominated ones.
#[derive(Clone, Debug, Default)]
pub struct ParetoFront {
    members: Vec<CostPoint>,
    inserted: u64,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Offers a point. Returns `true` if it joined the front (it may
    /// still be evicted by a later point).
    pub fn insert(&mut self, idx: u64, cost: PointCost) -> bool {
        self.inserted += 1;
        if self.members.iter().any(|m| m.cost.dominates(&cost)) {
            return false;
        }
        self.members.retain(|m| !cost.dominates(&m.cost));
        self.members.push(CostPoint { idx, cost });
        true
    }

    /// The surviving members, sorted by enumeration index (a canonical
    /// order for rendering, independent of insertion order).
    pub fn members(&self) -> Vec<CostPoint> {
        let mut out = self.members.clone();
        out.sort_by_key(|m| m.idx);
        out
    }

    /// Number of surviving members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when nothing has survived (or been offered).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Points offered so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Points offered that are *not* currently on the front — rejected
    /// at insert or evicted later. The explorer's "prune rate" is this
    /// over [`ParetoFront::inserted`].
    pub fn pruned(&self) -> u64 {
        self.inserted - self.members.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(r: f64, u: f64, a: f64, t: f64) -> PointCost {
        PointCost {
            reloads_per_instr: r,
            utilization: u,
            area_um2: a,
            access_ns: t,
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let base = cost(1.0, 0.5, 100.0, 10.0);
        assert!(!base.dominates(&base), "equal vectors don't dominate");
        assert!(cost(0.9, 0.5, 100.0, 10.0).dominates(&base));
        assert!(
            cost(1.0, 0.6, 100.0, 10.0).dominates(&base),
            "higher utilization is better"
        );
        assert!(
            !cost(0.9, 0.4, 100.0, 10.0).dominates(&base),
            "trade-offs don't dominate"
        );
    }

    #[test]
    fn front_prunes_and_evicts() {
        let mut f = ParetoFront::new();
        assert!(f.insert(0, cost(1.0, 0.5, 100.0, 10.0)));
        // Dominated on arrival: rejected.
        assert!(!f.insert(1, cost(1.0, 0.5, 120.0, 10.0)));
        // Incomparable: kept.
        assert!(f.insert(2, cost(0.5, 0.4, 100.0, 10.0)));
        // Dominates point 0: evicts it.
        assert!(f.insert(3, cost(0.9, 0.6, 90.0, 9.0)));
        let idxs: Vec<u64> = f.members().iter().map(|m| m.idx).collect();
        assert_eq!(idxs, [2, 3]);
        assert_eq!(f.inserted(), 4);
        assert_eq!(f.pruned(), 2);
    }

    #[test]
    fn ties_are_all_kept() {
        let mut f = ParetoFront::new();
        let c = cost(1.0, 0.5, 100.0, 10.0);
        assert!(f.insert(0, c));
        assert!(f.insert(1, c));
        assert_eq!(f.len(), 2);
    }
}
