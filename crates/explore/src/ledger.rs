//! The append-only results ledger: every evaluated point becomes one
//! checksummed record, in the `.nsftrace` encoding style (LEB128
//! varints via [`nsf_trace::VarWriter`] / [`nsf_trace::VarReader`],
//! FNV-1a-64 checksums).
//!
//! Layout:
//!
//! ```text
//! header  := magic "NSFX" | version u8 | fingerprint | shard_index
//!            | shard_count | shard_points | fnv64(preceding bytes)
//! record  := tag 0x01 | point_idx | instructions | cycles
//!            | reloads/instr bits | utilization bits | area bits
//!            | access bits | fnv64(preceding record bytes)
//! ```
//!
//! All integer fields are varints; `f64` fields are varints of their
//! IEEE-754 bit patterns, so a replayed value is *bit-identical* to the
//! appended one — the property the resume test's byte-equality rides
//! on. Records are appended strictly in shard point order, which makes
//! the valid prefix of a ledger self-describing: parsing stops at the
//! first corrupt or truncated record (a crash mid-append) and reports
//! the clean byte length, and the explorer resumes from there. A bad
//! *header* is not recoverable and is a hard error, as is a header
//! whose fingerprint or shard coordinates disagree with the run being
//! resumed.

use crate::pareto::PointCost;
use nsf_trace::{VarReader, VarWriter};
use std::fmt;

/// Leading magic of a ledger file.
pub const MAGIC: [u8; 4] = *b"NSFX";
/// Current format version.
pub const VERSION: u8 = 1;
/// Tag of an evaluated-point record.
const RECORD_TAG: u8 = 0x01;

/// FNV-1a 64-bit, the checksum of the `.nsftrace` family of formats.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The identity block at the head of a ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerHeader {
    /// [`crate::ExploreSpec::fingerprint`] of the spec being explored.
    pub fingerprint: u64,
    /// Which shard this ledger holds.
    pub shard_index: u32,
    /// Out of how many shards.
    pub shard_count: u32,
    /// Points assigned to this shard (records at completion).
    pub shard_points: u64,
}

/// One evaluated point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LedgerRecord {
    /// Index in the canonical full enumeration.
    pub point_idx: u64,
    /// Instructions the run retired.
    pub instructions: u64,
    /// Cycles the run took.
    pub cycles: u64,
    /// The four Pareto axes.
    pub cost: PointCost,
}

/// Why a ledger could not be used.
#[derive(Debug)]
pub enum LedgerError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The header is unreadable — nothing can be salvaged.
    Corrupt(&'static str),
    /// The header identifies a different run than the one resuming.
    Mismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// What the resuming run expected.
        expected: u64,
        /// What the ledger holds.
        found: u64,
    },
    /// Records are present but out of order w.r.t. the shard's point
    /// list — the ledger belongs to a different enumeration.
    OutOfSequence {
        /// Record position in the ledger.
        record: u64,
        /// The point index expected there.
        expected: u64,
        /// The point index found.
        found: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger i/o: {e}"),
            LedgerError::Corrupt(what) => write!(f, "corrupt ledger: {what}"),
            LedgerError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "ledger {field} mismatch: expected {expected:#x}, found {found:#x}"
            ),
            LedgerError::OutOfSequence {
                record,
                expected,
                found,
            } => write!(
                f,
                "ledger record {record} out of sequence: expected point {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e)
    }
}

fn with_checksum(body: Vec<u8>) -> Vec<u8> {
    let mut tail = VarWriter::new();
    tail.put_varint(fnv64(&body));
    let mut out = body;
    out.extend(tail.into_bytes());
    out
}

/// Encodes the header block.
pub fn encode_header(h: &LedgerHeader) -> Vec<u8> {
    let mut w = VarWriter::new();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u8(VERSION);
    w.put_varint(h.fingerprint);
    w.put_varint(u64::from(h.shard_index));
    w.put_varint(u64::from(h.shard_count));
    w.put_varint(h.shard_points);
    with_checksum(w.into_bytes())
}

/// Encodes one record.
pub fn encode_record(r: &LedgerRecord) -> Vec<u8> {
    let mut w = VarWriter::new();
    w.put_u8(RECORD_TAG);
    w.put_varint(r.point_idx);
    w.put_varint(r.instructions);
    w.put_varint(r.cycles);
    w.put_varint(r.cost.reloads_per_instr.to_bits());
    w.put_varint(r.cost.utilization.to_bits());
    w.put_varint(r.cost.area_um2.to_bits());
    w.put_varint(r.cost.access_ns.to_bits());
    with_checksum(w.into_bytes())
}

/// A parsed ledger: the valid prefix of a file.
#[derive(Debug)]
pub struct ParsedLedger {
    /// The identity header.
    pub header: LedgerHeader,
    /// Every intact record, in append order.
    pub records: Vec<LedgerRecord>,
    /// Byte length of the valid prefix. Anything past this is a
    /// partial or corrupt tail from an interrupted append and must be
    /// truncated before appending resumes.
    pub valid_len: usize,
}

impl ParsedLedger {
    /// `true` when the file carried bytes past the last intact record.
    pub fn truncated_tail(&self, file_len: usize) -> bool {
        self.valid_len < file_len
    }
}

/// Parses a ledger image. The header must be intact; a damaged or
/// half-written record tail is not an error — parsing stops and
/// [`ParsedLedger::valid_len`] marks the clean prefix.
pub fn parse(bytes: &[u8]) -> Result<ParsedLedger, LedgerError> {
    let mut r = VarReader::new(bytes);
    let bad = |what| LedgerError::Corrupt(what);
    for expect in MAGIC {
        if r.get_u8().map_err(|_| bad("missing magic"))? != expect {
            return Err(bad("bad magic"));
        }
    }
    if r.get_u8().map_err(|_| bad("missing version"))? != VERSION {
        return Err(bad("unsupported version"));
    }
    let mut field = || r.get_varint().map_err(|_| bad("short header"));
    let fingerprint = field()?;
    let shard_index = field()?;
    let shard_count = field()?;
    let shard_points = field()?;
    let body_end = r.pos();
    let stored = r.get_varint().map_err(|_| bad("missing header checksum"))?;
    if stored != fnv64(&bytes[..body_end]) {
        return Err(bad("header checksum mismatch"));
    }
    let header = LedgerHeader {
        fingerprint,
        shard_index: u32::try_from(shard_index).map_err(|_| bad("shard index overflow"))?,
        shard_count: u32::try_from(shard_count).map_err(|_| bad("shard count overflow"))?,
        shard_points,
    };

    let mut records = Vec::new();
    let mut valid_len = r.pos();
    loop {
        // One record, atomically: any failure rolls back to the last
        // intact boundary.
        let start = valid_len;
        let mut read = || -> Option<LedgerRecord> {
            if r.get_u8().ok()? != RECORD_TAG {
                return None;
            }
            let point_idx = r.get_varint().ok()?;
            let instructions = r.get_varint().ok()?;
            let cycles = r.get_varint().ok()?;
            let cost = PointCost {
                reloads_per_instr: f64::from_bits(r.get_varint().ok()?),
                utilization: f64::from_bits(r.get_varint().ok()?),
                area_um2: f64::from_bits(r.get_varint().ok()?),
                access_ns: f64::from_bits(r.get_varint().ok()?),
            };
            let body_end = r.pos();
            let stored = r.get_varint().ok()?;
            if stored != fnv64(&bytes[start..body_end]) {
                return None;
            }
            Some(LedgerRecord {
                point_idx,
                instructions,
                cycles,
                cost,
            })
        };
        match read() {
            Some(rec) => {
                records.push(rec);
                valid_len = r.pos();
            }
            None => break,
        }
        if r.done() {
            break;
        }
    }
    Ok(ParsedLedger {
        header,
        records,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> LedgerHeader {
        LedgerHeader {
            fingerprint: 0xdead_beef_cafe_f00d,
            shard_index: 1,
            shard_count: 4,
            shard_points: 7,
        }
    }

    fn record(i: u64) -> LedgerRecord {
        LedgerRecord {
            point_idx: i,
            instructions: 1000 + i,
            cycles: 2000 + i,
            cost: PointCost {
                reloads_per_instr: 0.125 * i as f64,
                utilization: 0.5,
                area_um2: 1.5e6 + i as f64,
                access_ns: 12.25,
            },
        }
    }

    fn image(records: u64) -> Vec<u8> {
        let mut bytes = encode_header(&header());
        for i in 0..records {
            bytes.extend(encode_record(&record(i)));
        }
        bytes
    }

    #[test]
    fn roundtrip_is_exact() {
        let bytes = image(7);
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.header, header());
        assert_eq!(parsed.records, (0..7).map(record).collect::<Vec<_>>());
        assert_eq!(parsed.valid_len, bytes.len());
        assert!(!parsed.truncated_tail(bytes.len()));
    }

    #[test]
    fn truncated_tail_rolls_back_to_a_record_boundary() {
        let full = image(3);
        let two = image(2);
        // Chop the third record anywhere: the first two must survive.
        for cut in two.len() + 1..full.len() {
            let parsed = parse(&full[..cut]).unwrap();
            assert_eq!(parsed.records.len(), 2, "cut at {cut}");
            assert_eq!(parsed.valid_len, two.len());
            assert!(parsed.truncated_tail(cut));
        }
    }

    #[test]
    fn bitflip_in_a_record_stops_the_parse_there() {
        let mut bytes = image(3);
        let one = image(1).len();
        bytes[one + 2] ^= 0x40;
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.valid_len, one);
    }

    #[test]
    fn header_damage_is_fatal() {
        let mut bytes = image(1);
        bytes[1] ^= 0xff;
        assert!(matches!(parse(&bytes), Err(LedgerError::Corrupt(_))));
        assert!(matches!(parse(&[]), Err(LedgerError::Corrupt(_))));
        let short = &image(0)[..4];
        assert!(matches!(parse(short), Err(LedgerError::Corrupt(_))));
    }

    #[test]
    fn float_bits_survive_exactly() {
        let mut odd = record(0);
        odd.cost.utilization = f64::from_bits(0x7ff8_0000_0000_0001); // a NaN payload
        odd.cost.reloads_per_instr = -0.0;
        let mut bytes = encode_header(&header());
        bytes.extend(encode_record(&odd));
        let parsed = parse(&bytes).unwrap();
        assert_eq!(
            parsed.records[0].cost.utilization.to_bits(),
            odd.cost.utilization.to_bits()
        );
        assert_eq!(
            parsed.records[0].cost.reloads_per_instr.to_bits(),
            (-0.0f64).to_bits()
        );
    }
}
