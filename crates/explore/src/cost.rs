//! Extracting a [`PointCost`] from one evaluated point: the two
//! simulated axes come from the run's [`RunReport`], the two
//! implementation axes from the calibrated `nsf-vlsi` models via the
//! organization's physical geometry.

use crate::pareto::PointCost;
use nsf_sim::{RegFileSpec, RunReport};
use nsf_vlsi::{ArrayKind, CostModel, CostVector, Geometry, Ports};

/// Context ID width assumed for swept NSF decoders — the paper's 64-
/// context tag (6 bits), which together with a 32-register context
/// reproduces the published 11-bit (x1 lines) and 10-bit (x2 lines)
/// tags.
pub const SWEEP_CID_BITS: u32 = 6;

/// The physical array behind an organization: decoder kind and
/// geometry. The oracle has no implementation — it returns `None`.
pub fn array_of(spec: &RegFileSpec) -> Option<(ArrayKind, Geometry)> {
    match *spec {
        RegFileSpec::Nsf(cfg) => Some((
            ArrayKind::Associative,
            Geometry::associative(
                cfg.total_regs,
                u32::from(cfg.regs_per_line),
                u32::from(cfg.ctx_regs),
                SWEEP_CID_BITS,
            ),
        )),
        RegFileSpec::Segmented(cfg) => Some((
            ArrayKind::Indexed,
            Geometry::indexed(cfg.frames * u32::from(cfg.frame_regs)),
        )),
        RegFileSpec::Conventional { regs, .. } => {
            Some((ArrayKind::Indexed, Geometry::indexed(u32::from(regs))))
        }
        RegFileSpec::Windowed(cfg) => Some((
            ArrayKind::Indexed,
            Geometry::indexed(cfg.windows * u32::from(cfg.window_regs)),
        )),
        RegFileSpec::Oracle => None,
    }
}

/// The implementation cost of an organization under the paper's
/// process and baseline port count.
///
/// # Panics
///
/// On [`RegFileSpec::Oracle`], which has no implementation (the
/// explorer never enumerates it).
pub fn implementation_cost(spec: &RegFileSpec) -> CostVector {
    let (kind, geom) = array_of(spec).expect("the oracle has no implementation cost");
    CostModel::paper().vector(kind, geom, Ports::three())
}

/// The full four-axis cost of one evaluated point.
pub fn point_cost(spec: &RegFileSpec, report: &RunReport) -> PointCost {
    let hw = implementation_cost(spec);
    PointCost {
        reloads_per_instr: report.reloads_per_instr(),
        utilization: report.utilization(),
        area_um2: hw.area_um2,
        access_ns: hw.access_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_sim::parse_engine;

    #[test]
    fn paper_reference_points_get_paper_geometries() {
        let (kind, geom) = array_of(&parse_engine("nsf:128x1").unwrap()).unwrap();
        assert_eq!(kind, ArrayKind::Associative);
        assert_eq!(geom, Geometry::g32x128());
        let (kind, geom) = array_of(&parse_engine("nsf:128x2").unwrap()).unwrap();
        assert_eq!(kind, ArrayKind::Associative);
        assert_eq!(geom, Geometry::g64x64());
    }

    #[test]
    fn indexed_families_price_by_total_registers() {
        for (spec, total) in [
            ("segmented:4x32", 128),
            ("conventional:32", 32),
            ("windowed:16", 128),
        ] {
            let (kind, geom) = array_of(&parse_engine(spec).unwrap()).unwrap();
            assert_eq!(kind, ArrayKind::Indexed, "{spec}");
            assert_eq!(geom.total_regs(), total, "{spec}");
        }
    }

    #[test]
    fn oracle_has_no_array() {
        assert!(array_of(&RegFileSpec::Oracle).is_none());
    }

    #[test]
    fn nsf_costs_more_than_a_segmented_file_of_equal_capacity() {
        let nsf = implementation_cost(&parse_engine("nsf:128x1").unwrap());
        let seg = implementation_cost(&parse_engine("segmented:4x32").unwrap());
        assert!(nsf.area_um2 > seg.area_um2);
        assert!(nsf.access_ns > seg.access_ns);
    }
}
