//! Replays every checked-in reproduction under `tests/repros/`.
//!
//! Each `.nsftrace` there is a shrunk operation stream (plus fault
//! plan) that diverged from the oracle before an engine bug was fixed:
//! the NSF returning stale values — and once overshooting its own
//! capacity — after mid-spill faults, and the segmented, windowed and
//! conventional files drifting their read counters on undefined reads.
//! Replaying them through `check_family` must stay clean forever; a
//! regression flips the exact divergence the file was captured from.

use nsf_check::run::check_family;
use nsf_check::Repro;
use std::path::PathBuf;

fn corpus() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "nsftrace"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_checked_in_repro_replays_clean() {
    let files = corpus();
    assert!(
        files.len() >= 8,
        "repro corpus shrank to {} files — deletions should be deliberate",
        files.len()
    );
    for path in files {
        let repro = Repro::read_file(&path).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            !repro.ops.is_empty(),
            "{}: empty repro stream",
            path.display()
        );
        if let Err(d) = check_family(repro.family, &repro.ops, repro.plan) {
            panic!("{} regressed: {d}", path.display());
        }
    }
}

#[test]
fn corpus_covers_every_fixed_engine_family() {
    use nsf_check::Family;
    let families: Vec<Family> = corpus()
        .iter()
        .map(|p| Repro::read_file(p).unwrap_or_else(|e| panic!("{e}")).family)
        .collect();
    for family in [
        Family::Nsf,
        Family::Segmented,
        Family::SegmentedSw,
        Family::Windowed,
        Family::Conventional,
    ] {
        assert!(families.contains(&family), "no repro pins family {family}");
    }
}
