//! The engine *lanes* the checker drives: every register-file
//! organization, grouped into families so fuzzing budgets and CI smoke
//! steps can be sliced per family.
//!
//! Lane configurations are deliberately small (16-register contexts, a
//! handful of frames or lines) so a ~150-op stream creates real capacity
//! pressure — evictions, frame replacement and window overflow are the
//! code paths differential testing exists for. Specs are the
//! [`nsf_trace::parse_engine`] strings, so a lane name in a divergence
//! report is directly replayable from the command line.

use nsf_core::{EngineDispatch, RegFileStats};
use nsf_trace::parse_engine;

/// An engine family under test. Families partition the lane list; the
/// oracle is not a family — every family is checked against it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// The Named-State Register File at several line widths.
    Nsf,
    /// Segmented files: hardware engine, frame counts, valid-only policy.
    Segmented,
    /// The software-trap spill engine, twinned with its hardware
    /// counterpart: identical traffic, different cycle costs.
    SegmentedSw,
    /// The SPARC-style windowed file.
    Windowed,
    /// The conventional single-context file, twinned with the
    /// one-frame segmented file it is defined to be.
    Conventional,
}

impl Family {
    /// Every family, in a stable order.
    pub const ALL: [Family; 5] = [
        Family::Nsf,
        Family::Segmented,
        Family::SegmentedSw,
        Family::Windowed,
        Family::Conventional,
    ];

    /// Stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Nsf => "nsf",
            Family::Segmented => "segmented",
            Family::SegmentedSw => "segmented-sw",
            Family::Windowed => "windowed",
            Family::Conventional => "conventional",
        }
    }

    /// Parses a command-line family name.
    pub fn from_name(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Engine specs this family runs in lockstep. All lanes accept
    /// 16-register contexts (the generator's offset width).
    pub fn lanes(self) -> &'static [&'static str] {
        match self {
            // 16 single-register lines (heavy eviction), then wider lines
            // exercising whole-line reload and partial-line validity.
            Family::Nsf => &["nsf:16", "nsf:32x2", "nsf:48x4"],
            // Frame replacement at two capacities, plus valid-only
            // transfers which move a different register subset.
            Family::Segmented => &["segmented:2x16", "segmented:4x16", "segmented-valid:3x16"],
            Family::SegmentedSw => &["segmented-sw:2x16", "segmented:2x16"],
            // Eight windows of 16; call chains deeper than eight overflow.
            Family::Windowed => &["windowed:16"],
            Family::Conventional => &["conventional:16", "segmented:1x16"],
        }
    }

    /// A lane pair whose *traffic counts* must match exactly: the
    /// organizations differ only in cycle accounting. The twin check
    /// catches stat drift that value comparison cannot see.
    pub fn twins(self) -> Option<(&'static str, &'static str)> {
        match self {
            Family::SegmentedSw => Some(("segmented-sw:2x16", "segmented:2x16")),
            Family::Conventional => Some(("conventional:16", "segmented:1x16")),
            _ => None,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the engine behind a lane spec.
///
/// # Panics
///
/// Panics on an unparseable spec — lane lists are compile-time constants,
/// so that is a checker bug, not an input error.
pub fn build_lane(spec: &str) -> EngineDispatch {
    parse_engine(spec)
        .unwrap_or_else(|e| panic!("lane spec must parse: {e}"))
        .build()
}

/// The traffic counters two twin lanes must agree on — every
/// [`RegFileStats`] field except `spill_reload_cycles`, which is the one
/// axis twins legitimately differ in. (`port_conflict_cycles` is charged
/// by the pipeline frontend, never by an engine, so twins trivially
/// agree on 0 — keeping it here pins that contract.)
pub fn traffic_counts(s: &RegFileStats) -> [(&'static str, u64); 14] {
    [
        ("reads", s.reads),
        ("writes", s.writes),
        ("read_hits", s.read_hits),
        ("read_misses", s.read_misses),
        ("write_hits", s.write_hits),
        ("write_misses", s.write_misses),
        ("lines_reloaded", s.lines_reloaded),
        ("regs_reloaded", s.regs_reloaded),
        ("live_regs_reloaded", s.live_regs_reloaded),
        ("regs_spilled", s.regs_spilled),
        ("regs_dribbled", s.regs_dribbled),
        ("context_switches", s.context_switches),
        ("switch_hits", s.switch_hits),
        ("port_conflict_cycles", s.port_conflict_cycles),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_core::RegisterFile;

    #[test]
    fn every_lane_spec_builds() {
        for family in Family::ALL {
            for spec in family.lanes() {
                let engine = build_lane(spec);
                assert!(!engine.describe().is_empty(), "{spec}");
                assert!(engine.capacity() >= 16, "{spec} narrower than streams");
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::from_name(family.name()), Some(family));
        }
        assert_eq!(Family::from_name("orace"), None);
    }

    #[test]
    fn twins_are_listed_lanes() {
        for family in Family::ALL {
            if let Some((a, b)) = family.twins() {
                assert!(family.lanes().contains(&a));
                assert!(family.lanes().contains(&b));
            }
        }
    }
}
