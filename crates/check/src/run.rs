//! The lockstep differential runner.
//!
//! Every lane of a family executes the same operation stream against a
//! [`FaultyStore`] armed with one deterministic [`FaultPlan`], and each
//! per-op outcome is compared against the architectural oracle
//! ([`nsf_core::OracleFile`] over an unfaulted [`MapStore`]). Outcomes
//! are *architectural*: read values and typed error kinds. Stall cycles,
//! hit/miss flags and transfer counts differ between organizations by
//! design and are never compared across lanes — except for *twin* lanes
//! ([`Family::twins`]), which must agree on every traffic counter.
//!
//! When a lane's backing store injects a fault, the checker demands the
//! contract the engines advertise: the error surfaces as
//! [`RegFileError::Store`], statistics invariants still hold at the
//! fault point, and — because one-shot plans heal — retrying the same
//! operation succeeds and produces the oracle's outcome. Faults may
//! therefore fire anywhere in a stream without ever excusing a wrong
//! value.
//!
//! Generated streams end drained (the generator frees every context),
//! so a run over one finishes by asserting zero occupancy and an empty
//! backing store: leaked frames, lines or backing pages show up as
//! `Residue`. Shrunk repros may end mid-program; for those the residue
//! checks cover exactly the contexts the stream freed.

use crate::lanes::{build_lane, traffic_counts, Family};
use crate::stream::{generate, SplitMix64, StreamConfig};
use nsf_core::{
    BackingStore, Cid, EngineDispatch, FaultPlan, FaultyStore, LaneOp, LaneStep, MapStore,
    OracleFile, RegFileError, RegFileStats, RegisterFile, Word,
};
use nsf_trace::RegEvent;
use std::fmt;

/// The architectural outcome of one operation — everything lanes must
/// agree on, nothing they may legitimately differ in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A read returned this value.
    Value(Word),
    /// A non-read operation completed.
    Done,
    /// `ReadUndefined`: the register was never written (or was freed).
    Undefined,
    /// `BadOffset`: the offset exceeds the context size.
    BadOffset,
    /// `NotCurrent`: the context is not the running one.
    NotCurrent,
    /// `Store`: the backing store faulted mid-operation.
    StoreFault,
}

fn err_outcome(e: &RegFileError) -> Outcome {
    match e {
        RegFileError::ReadUndefined(_) => Outcome::Undefined,
        RegFileError::BadOffset(_) => Outcome::BadOffset,
        RegFileError::NotCurrent(_) => Outcome::NotCurrent,
        RegFileError::Store(_) => Outcome::StoreFault,
    }
}

/// Applies one event to a file, reducing the result to its
/// architectural [`Outcome`].
pub fn apply(file: &mut dyn RegisterFile, ev: &RegEvent, store: &mut dyn BackingStore) -> Outcome {
    let reduce = |r: Result<u32, RegFileError>| match r {
        Ok(_) => Outcome::Done,
        Err(e) => err_outcome(&e),
    };
    match *ev {
        RegEvent::Read { addr } => match file.read(addr, store) {
            Ok(a) => Outcome::Value(a.value),
            Err(e) => err_outcome(&e),
        },
        RegEvent::Write { addr, value } => match file.write(addr, value, store) {
            Ok(_) => Outcome::Done,
            Err(e) => err_outcome(&e),
        },
        RegEvent::SwitchTo { cid } => reduce(file.switch_to(cid, store)),
        RegEvent::CallPush { cid } => reduce(file.call_push(cid, store)),
        RegEvent::ThreadSwitch { cid } => reduce(file.thread_switch(cid, store)),
        RegEvent::FreeContext { cid } => {
            file.free_context(cid, store);
            Outcome::Done
        }
        RegEvent::FreeReg { addr } => {
            file.free_reg(addr, store);
            Outcome::Done
        }
        // Streams never carry memory traffic (the validator rejects it).
        RegEvent::MemRead { .. } | RegEvent::MemWrite { .. } => Outcome::Done,
    }
}

/// How a lane disagreed with the oracle or violated a contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A per-op architectural outcome differs from the oracle's.
    Outcome,
    /// A `RegFileStats` invariant broke, or occupancy exceeded capacity.
    Invariant,
    /// An injected fault was mishandled: invariants broke at the fault
    /// point, or the retry of a healed one-shot fault did not recover.
    FaultRecovery,
    /// The drained stream left occupancy or backing-store residue.
    Residue,
    /// Twin lanes disagreed on a traffic counter.
    TwinStats,
}

/// One lane's disagreement, pinned to the operation that exposed it.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The lane's engine spec (or both specs, for twin mismatches).
    pub lane: String,
    /// Index into the stream; `None` for end-of-run checks.
    pub op_index: Option<usize>,
    /// The contract that broke.
    pub kind: DivergenceKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?}", self.lane, self.kind)?;
        if let Some(i) = self.op_index {
            write!(f, " at op {i}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Every context a stream introduces (for backing-residue checks).
pub fn cids_of(ops: &[RegEvent]) -> Vec<Cid> {
    let mut cids: Vec<Cid> = ops.iter().filter_map(RegEvent::cid).collect();
    cids.sort_unstable();
    cids.dedup();
    cids
}

/// Runs the oracle over `ops`, producing the expected outcome per op.
///
/// # Panics
///
/// Panics if the oracle itself reports a store fault — its store is
/// unfaulted, so that would be a checker bug.
pub fn oracle_outcomes(ops: &[RegEvent]) -> Vec<Outcome> {
    let mut oracle = OracleFile::new();
    let mut store = MapStore::new();
    ops.iter()
        .map(|ev| {
            let out = apply(&mut oracle, ev, &mut store);
            assert_ne!(out, Outcome::StoreFault, "oracle store cannot fault");
            out
        })
        .collect()
}

/// What one lane reported after a clean (divergence-free) run.
#[derive(Clone, Debug)]
pub struct LaneReport {
    /// The lane's engine spec.
    pub spec: String,
    /// Final statistics.
    pub stats: RegFileStats,
    /// Injected faults the lane absorbed (surfaced + recovered).
    pub faults_absorbed: u64,
}

fn invariant_or_capacity_violation(file: &dyn RegisterFile) -> Option<String> {
    if let Some(v) = file.stats().invariant_violation() {
        return Some(v);
    }
    let occ = file.occupancy();
    (occ.valid_regs > file.capacity()).then(|| {
        format!(
            "occupancy {} exceeds capacity {}",
            occ.valid_regs,
            file.capacity()
        )
    })
}

/// Runs one lane over `ops` with `plan` armed on its backing store,
/// comparing each outcome against `expected` (from [`oracle_outcomes`]).
pub fn check_lane(
    spec: &str,
    ops: &[RegEvent],
    expected: &[Outcome],
    plan: FaultPlan,
) -> Result<LaneReport, Divergence> {
    let diverge = |op_index, kind, detail| {
        Err(Divergence {
            lane: spec.to_string(),
            op_index,
            kind,
            detail,
        })
    };
    let mut file = build_lane(spec);
    let mut store = FaultyStore::with_plan(MapStore::new(), plan);
    let mut faults_absorbed = 0u64;

    for (i, ev) in ops.iter().enumerate() {
        let mut got = apply(&mut file, ev, &mut store);
        if got == Outcome::StoreFault {
            faults_absorbed += 1;
            // Contract 1: the fault left the counters coherent.
            if let Some(v) = invariant_or_capacity_violation(&file) {
                return diverge(
                    Some(i),
                    DivergenceKind::FaultRecovery,
                    format!("after injected fault on `{ev}`: {v}"),
                );
            }
            // Contract 2: one-shot plans heal, so the retry must not see
            // the store fail again...
            got = apply(&mut file, ev, &mut store);
            if got == Outcome::StoreFault {
                return diverge(
                    Some(i),
                    DivergenceKind::FaultRecovery,
                    format!("retry of `{ev}` hit a store fault after the plan healed"),
                );
            }
            // ...and the retried outcome falls through to the ordinary
            // oracle comparison: recovery must not have lost state.
        }
        if got != expected[i] {
            return diverge(
                Some(i),
                DivergenceKind::Outcome,
                format!("`{ev}`: lane {got:?}, oracle {:?}", expected[i]),
            );
        }
        if let Some(v) = invariant_or_capacity_violation(&file) {
            return diverge(
                Some(i),
                DivergenceKind::Invariant,
                format!("after `{ev}`: {v}"),
            );
        }
    }

    if let Some(d) = residue_divergence(spec, &file, store.inner(), ops) {
        return Err(d);
    }

    Ok(LaneReport {
        spec: spec.to_string(),
        stats: *file.stats(),
        faults_absorbed,
    })
}

/// End-of-run residue check shared by the per-lane and lane-stepped
/// runners. Freed contexts must leave nothing behind. Generated streams
/// end fully drained, so the whole file must be empty; shrunk repros may
/// legitimately end mid-program, so the checks scale to what the stream
/// actually freed.
fn residue_divergence(
    spec: &str,
    file: &dyn RegisterFile,
    store: &MapStore,
    ops: &[RegEvent],
) -> Option<Divergence> {
    let diverge = |kind, detail| {
        Some(Divergence {
            lane: spec.to_string(),
            op_index: None,
            kind,
            detail,
        })
    };
    let freed: Vec<Cid> = ops
        .iter()
        .filter_map(|ev| match *ev {
            RegEvent::FreeContext { cid } => Some(cid),
            _ => None,
        })
        .collect();
    let introduced = cids_of(ops);
    if introduced.iter().all(|cid| freed.contains(cid)) {
        let occ = file.occupancy();
        if occ.valid_regs != 0 || occ.resident_contexts != 0 {
            return diverge(
                DivergenceKind::Residue,
                format!(
                    "drained stream left {} regs / {} contexts resident",
                    occ.valid_regs, occ.resident_contexts
                ),
            );
        }
    }
    for cid in freed {
        if store.any_present(cid) {
            return diverge(
                DivergenceKind::Residue,
                format!("backing store still holds data for freed context {cid}"),
            );
        }
    }
    None
}

/// Checks every lane of `family` over `ops` under `plan`, including the
/// family's twin-stats comparison. Returns the per-lane reports of a
/// clean run, or the first divergence.
pub fn check_family(
    family: Family,
    ops: &[RegEvent],
    plan: FaultPlan,
) -> Result<Vec<LaneReport>, Divergence> {
    let expected = oracle_outcomes(ops);
    let reports: Vec<LaneReport> = family
        .lanes()
        .iter()
        .map(|spec| check_lane(spec, ops, &expected, plan))
        .collect::<Result<_, _>>()?;

    twin_divergence(family, &reports)?;
    Ok(reports)
}

/// The family's twin-stats comparison (shared by both runners).
fn twin_divergence(family: Family, reports: &[LaneReport]) -> Result<(), Divergence> {
    if let Some((a, b)) = family.twins() {
        let find = |spec| {
            &reports
                .iter()
                .find(|r| r.spec == spec)
                .expect("twins are listed lanes")
                .stats
        };
        let (sa, sb) = (find(a), find(b));
        for ((name, va), (_, vb)) in traffic_counts(sa).into_iter().zip(traffic_counts(sb)) {
            if va != vb {
                return Err(Divergence {
                    lane: format!("{a} vs {b}"),
                    op_index: None,
                    kind: DivergenceKind::TwinStats,
                    detail: format!("{name}: {va} != {vb}"),
                });
            }
        }
    }
    Ok(())
}

/// Translates a stream event into the shared [`LaneOp`] form; `None`
/// for memory traffic (which register-file streams never carry).
fn lane_op(ev: &RegEvent) -> Option<LaneOp> {
    Some(match *ev {
        RegEvent::Read { addr } => LaneOp::Read(addr),
        RegEvent::Write { addr, value } => LaneOp::Write(addr, value),
        RegEvent::SwitchTo { cid } => LaneOp::SwitchTo(cid),
        RegEvent::CallPush { cid } => LaneOp::CallPush(cid),
        RegEvent::ThreadSwitch { cid } => LaneOp::ThreadSwitch(cid),
        RegEvent::FreeContext { cid } => LaneOp::FreeContext(cid),
        RegEvent::FreeReg { addr } => LaneOp::FreeReg(addr),
        RegEvent::MemRead { .. } | RegEvent::MemWrite { .. } => return None,
    })
}

fn reduce_step(r: Result<LaneStep, RegFileError>) -> Outcome {
    match r {
        Ok(LaneStep { value: Some(v), .. }) => Outcome::Value(v),
        Ok(_) => Outcome::Done,
        Err(e) => err_outcome(&e),
    }
}

/// The lane-stepped differential runner: every lane of `family` advances
/// through the stream **in lockstep** via [`EngineDispatch::step_lanes`]
/// — the exact entry point the simulator's batched executor uses — with
/// each op's outcome compared against the oracle per lane. Anything
/// `check_family` would catch, this catches too; in addition, a bug that
/// lets one lane's state bleed into another through the shared stepping
/// path (aliased stores, misrouted results, order dependence) shows up
/// here and *cannot* show up in the independent per-lane runner.
///
/// The fault-retry protocol is identical to [`check_lane`]'s: an
/// injected fault must surface as `Store`, leave invariants intact, and
/// succeed (with the oracle's outcome) when the op is retried on that
/// lane alone.
pub fn check_family_stepped(
    family: Family,
    ops: &[RegEvent],
    plan: FaultPlan,
) -> Result<Vec<LaneReport>, Divergence> {
    let expected = oracle_outcomes(ops);
    let specs = family.lanes();
    let mut engines: Vec<EngineDispatch> = specs.iter().map(|s| build_lane(s)).collect();
    let mut stores: Vec<FaultyStore<MapStore>> = specs
        .iter()
        .map(|_| FaultyStore::with_plan(MapStore::new(), plan))
        .collect();
    let mut faults_absorbed = vec![0u64; specs.len()];

    for (i, ev) in ops.iter().enumerate() {
        let Some(op) = lane_op(ev) else { continue };
        let mut outcomes = vec![Outcome::Done; specs.len()];
        EngineDispatch::step_lanes(&mut engines, &mut stores, op, |l, r| {
            outcomes[l] = reduce_step(r);
        });
        for (l, spec) in specs.iter().enumerate() {
            let diverge = |kind, detail| {
                Err(Divergence {
                    lane: spec.to_string(),
                    op_index: Some(i),
                    kind,
                    detail,
                })
            };
            let mut got = outcomes[l];
            if got == Outcome::StoreFault {
                faults_absorbed[l] += 1;
                if let Some(v) = invariant_or_capacity_violation(&engines[l]) {
                    return diverge(
                        DivergenceKind::FaultRecovery,
                        format!("after injected fault on `{ev}`: {v}"),
                    );
                }
                got = reduce_step(engines[l].apply_op(op, &mut stores[l]));
                if got == Outcome::StoreFault {
                    return diverge(
                        DivergenceKind::FaultRecovery,
                        format!("retry of `{ev}` hit a store fault after the plan healed"),
                    );
                }
            }
            if got != expected[i] {
                return diverge(
                    DivergenceKind::Outcome,
                    format!("`{ev}`: lane {got:?}, oracle {:?}", expected[i]),
                );
            }
            if let Some(v) = invariant_or_capacity_violation(&engines[l]) {
                return diverge(DivergenceKind::Invariant, format!("after `{ev}`: {v}"));
            }
        }
    }

    let reports: Vec<LaneReport> = specs
        .iter()
        .enumerate()
        .map(|(l, spec)| {
            if let Some(d) = residue_divergence(spec, &engines[l], stores[l].inner(), ops) {
                return Err(d);
            }
            Ok(LaneReport {
                spec: spec.to_string(),
                stats: *engines[l].stats(),
                faults_absorbed: faults_absorbed[l],
            })
        })
        .collect::<Result<_, _>>()?;
    twin_divergence(family, &reports)?;
    Ok(reports)
}

/// Derives the deterministic fault plan for a fuzz seed: ~40% of seeds
/// run fault-free; the rest arm one *one-shot* fault (the retry protocol
/// relies on healing, so the persistent [`FaultPlan::AfterOps`] is never
/// drawn). The draw uses a domain-separated stream so it cannot alias
/// the op-generator's.
pub fn fault_plan_for_seed(seed: u64) -> FaultPlan {
    let mut rng = SplitMix64::new(seed ^ 0xFA01_7FA0_17FA_017F);
    match rng.below(5) {
        0 | 1 => FaultPlan::Never,
        2 => FaultPlan::NthSpill(1 + rng.below(20)),
        3 => FaultPlan::NthReload(1 + rng.below(20)),
        _ => FaultPlan::NthForContext(rng.below(8) as Cid, 1 + rng.below(6)),
    }
}

/// One fuzz iteration: generate the stream and fault plan for `seed`,
/// then run the family. Returns the stream and plan alongside the
/// verdict so callers can shrink or export a repro.
pub fn check_seed(
    family: Family,
    cfg: &StreamConfig,
    seed: u64,
) -> (
    Vec<RegEvent>,
    FaultPlan,
    Result<Vec<LaneReport>, Divergence>,
) {
    let ops = generate(cfg, seed);
    let plan = fault_plan_for_seed(seed);
    let verdict = check_family(family, &ops, plan);
    (ops, plan, verdict)
}

/// One fuzz iteration through the lane-stepped runner: same stream and
/// fault plan as [`check_seed`], verdict from [`check_family_stepped`].
pub fn check_seed_stepped(
    family: Family,
    cfg: &StreamConfig,
    seed: u64,
) -> (
    Vec<RegEvent>,
    FaultPlan,
    Result<Vec<LaneReport>, Divergence>,
) {
    let ops = generate(cfg, seed);
    let plan = fault_plan_for_seed(seed);
    let verdict = check_family_stepped(family, &ops, plan);
    (ops, plan, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_core::RegAddr;

    #[test]
    fn oracle_outcomes_expose_values_and_undefined_reads() {
        use RegEvent::*;
        let ops = [
            ThreadSwitch { cid: 0 },
            Write {
                addr: RegAddr::new(0, 3),
                value: 77,
            },
            Read {
                addr: RegAddr::new(0, 3),
            },
            Read {
                addr: RegAddr::new(0, 4),
            },
            FreeReg {
                addr: RegAddr::new(0, 3),
            },
            Read {
                addr: RegAddr::new(0, 3),
            },
            FreeContext { cid: 0 },
        ];
        assert_eq!(
            oracle_outcomes(&ops),
            [
                Outcome::Done,
                Outcome::Done,
                Outcome::Value(77),
                Outcome::Undefined,
                Outcome::Done,
                Outcome::Undefined,
                Outcome::Done,
            ]
        );
    }

    #[test]
    fn every_family_passes_a_fault_free_seed() {
        let cfg = StreamConfig::default();
        for family in Family::ALL {
            let ops = generate(&cfg, 7);
            let reports = check_family(family, &ops, FaultPlan::Never)
                .unwrap_or_else(|d| panic!("{family}: {d}"));
            assert_eq!(reports.len(), family.lanes().len());
            assert!(reports.iter().all(|r| r.faults_absorbed == 0));
        }
    }

    #[test]
    fn faulted_seeds_are_absorbed_not_diverged() {
        let cfg = StreamConfig::default();
        // A spill fault and a reload fault must each fire — and be
        // recovered from — in every family within a few seeds. (Which
        // seed first spills differs per family: spill pressure depends
        // on the organization.)
        for plan in [FaultPlan::NthSpill(1), FaultPlan::NthReload(1)] {
            for family in Family::ALL {
                let absorbed = (0..10).any(|seed| {
                    let ops = generate(&cfg, seed);
                    let reports = check_family(family, &ops, plan)
                        .unwrap_or_else(|d| panic!("{family} seed {seed}: {d}"));
                    reports.iter().any(|r| r.faults_absorbed > 0)
                });
                assert!(absorbed, "{family}: no lane absorbed {plan:?} in 10 seeds");
            }
        }
    }

    #[test]
    fn fault_plans_are_deterministic_and_one_shot_only() {
        for seed in 0..200 {
            let a = fault_plan_for_seed(seed);
            assert_eq!(a, fault_plan_for_seed(seed));
            assert!(
                !matches!(a, FaultPlan::AfterOps(_)),
                "persistent plans break the retry protocol"
            );
        }
        // Both fault-free and faulted draws occur.
        let plans: Vec<FaultPlan> = (0..50).map(fault_plan_for_seed).collect();
        assert!(plans.contains(&FaultPlan::Never));
        assert!(plans.iter().any(|p| *p != FaultPlan::Never));
    }

    #[test]
    fn a_wrong_value_is_reported_as_an_outcome_divergence() {
        use RegEvent::*;
        // The oracle sees the write; a lane checked against outcomes for
        // a *different* stream must diverge. (Drive check_lane directly
        // with mismatched expectations to exercise the reporting path.)
        let ops = [
            ThreadSwitch { cid: 0 },
            Write {
                addr: RegAddr::new(0, 0),
                value: 5,
            },
            Read {
                addr: RegAddr::new(0, 0),
            },
            FreeContext { cid: 0 },
        ];
        let mut expected = oracle_outcomes(&ops);
        expected[2] = Outcome::Value(6);
        let d = check_lane("nsf:16", &ops, &expected, FaultPlan::Never).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::Outcome);
        assert_eq!(d.op_index, Some(2));
        assert!(d.to_string().contains("nsf:16"), "{d}");
    }

    #[test]
    fn stepped_runner_matches_per_lane_runner() {
        // Lockstep stepping through `EngineDispatch::step_lanes` must
        // leave every lane exactly where N independent runs would:
        // identical stats, identical absorbed-fault counts, over both
        // fault-free and faulted seeds.
        let cfg = StreamConfig::default();
        for family in Family::ALL {
            for seed in 0..6 {
                let (_, _, serial) = check_seed(family, &cfg, seed);
                let (_, _, stepped) = check_seed_stepped(family, &cfg, seed);
                let serial = serial.unwrap_or_else(|d| panic!("{family} seed {seed}: {d}"));
                let stepped = stepped.unwrap_or_else(|d| panic!("{family} seed {seed}: {d}"));
                assert_eq!(serial.len(), stepped.len());
                for (a, b) in serial.iter().zip(&stepped) {
                    assert_eq!(a.spec, b.spec);
                    assert_eq!(a.stats, b.stats, "{family} seed {seed} lane {}", a.spec);
                    assert_eq!(a.faults_absorbed, b.faults_absorbed, "{family} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn stepped_runner_absorbs_injected_faults() {
        let cfg = StreamConfig::default();
        for family in Family::ALL {
            let absorbed = (0..10).any(|seed| {
                let ops = generate(&cfg, seed);
                let reports = check_family_stepped(family, &ops, FaultPlan::NthSpill(1))
                    .unwrap_or_else(|d| panic!("{family} seed {seed}: {d}"));
                reports.iter().any(|r| r.faults_absorbed > 0)
            });
            assert!(absorbed, "{family}: stepped mode never absorbed a fault");
        }
    }

    #[test]
    fn check_seed_ties_stream_plan_and_verdict_together() {
        let cfg = StreamConfig::default();
        let (ops, plan, verdict) = check_seed(Family::Segmented, &cfg, 3);
        assert_eq!(ops, generate(&cfg, 3));
        assert_eq!(plan, fault_plan_for_seed(3));
        verdict.unwrap_or_else(|d| panic!("{d}"));
    }
}
