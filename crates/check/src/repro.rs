//! Checked-in reproduction files.
//!
//! A shrunk divergent stream is exported as an ordinary `.nsftrace`
//! file, so the existing tooling (`trace_tool info`, the replay engine)
//! can open it. The checker-specific context rides in the header:
//!
//! * `meta.workload` is `check:<family>` — which lane set to replay;
//! * `meta.engine` encodes the armed [`FaultPlan`] (`none`,
//!   `nth-spill:N`, `nth-reload:N`, `ctx:CID:N`);
//! * each event's `cycle` is its op index (cycles are informational in
//!   the trace format, and a checker stream has no clock).
//!
//! Replay re-runs [`crate::run::check_family`] on the decoded stream: a
//! repro "passes" when the family no longer diverges, which is exactly
//! the regression contract `crates/check/tests` pins.

use crate::lanes::Family;
use nsf_core::FaultPlan;
use nsf_trace::{RegEvent, TimedEvent, Trace, TraceMeta};
use std::path::Path;

/// Encodes a fault plan into the compact header string.
pub fn encode_plan(plan: FaultPlan) -> String {
    match plan {
        FaultPlan::Never => "none".to_string(),
        FaultPlan::NthSpill(n) => format!("nth-spill:{n}"),
        FaultPlan::NthReload(n) => format!("nth-reload:{n}"),
        FaultPlan::NthForContext(cid, n) => format!("ctx:{cid}:{n}"),
        // Persistent plans are never used by the checker (the retry
        // protocol requires healing); refuse to encode one silently.
        FaultPlan::AfterOps(_) => panic!("AfterOps plans are not repro-encodable"),
    }
}

/// Decodes [`encode_plan`]'s output.
pub fn decode_plan(s: &str) -> Option<FaultPlan> {
    if s == "none" {
        return Some(FaultPlan::Never);
    }
    if let Some(n) = s.strip_prefix("nth-spill:") {
        return n.parse().ok().map(FaultPlan::NthSpill);
    }
    if let Some(n) = s.strip_prefix("nth-reload:") {
        return n.parse().ok().map(FaultPlan::NthReload);
    }
    if let Some(rest) = s.strip_prefix("ctx:") {
        let (cid, n) = rest.split_once(':')?;
        return Some(FaultPlan::NthForContext(cid.parse().ok()?, n.parse().ok()?));
    }
    None
}

/// A decoded reproduction: the family to check and the stream + plan
/// that exposed the divergence.
#[derive(Debug)]
pub struct Repro {
    /// Which lane set diverged.
    pub family: Family,
    /// The armed fault plan.
    pub plan: FaultPlan,
    /// The (usually shrunk) operation stream.
    pub ops: Vec<RegEvent>,
}

impl Repro {
    /// Packs the repro into a `.nsftrace` image.
    pub fn to_trace(&self) -> Trace {
        let switches = self
            .ops
            .iter()
            .filter(|e| matches!(e.kind(), "switch" | "call_push" | "thread_switch"))
            .count() as u64;
        Trace {
            meta: TraceMeta {
                workload: format!("check:{}", self.family),
                engine: encode_plan(self.plan),
                scale: 0,
                instructions: self.ops.len() as u64,
                cycles: 0,
                context_switches: switches,
            },
            events: self
                .ops
                .iter()
                .enumerate()
                .map(|(i, &event)| TimedEvent {
                    cycle: i as u64,
                    event,
                })
                .collect(),
        }
    }

    /// Unpacks a trace written by [`Repro::to_trace`]. `None` when the
    /// header is not a checker repro (wrong workload tag or plan spec).
    pub fn from_trace(trace: &Trace) -> Option<Repro> {
        let family = Family::from_name(trace.meta.workload.strip_prefix("check:")?)?;
        let plan = decode_plan(&trace.meta.engine)?;
        Some(Repro {
            family,
            plan,
            ops: trace.events.iter().map(|e| e.event).collect(),
        })
    }

    /// Writes the repro to `path` as a `.nsftrace` file.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), String> {
        self.to_trace()
            .write_file(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))
    }

    /// Reads a repro back from `path`.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Repro, String> {
        let path = path.as_ref();
        let trace = Trace::read_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Repro::from_trace(&trace).ok_or_else(|| {
            format!(
                "{}: not a checker repro (workload/engine header)",
                path.display()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{generate, StreamConfig};

    #[test]
    fn plans_round_trip_through_the_header_encoding() {
        for plan in [
            FaultPlan::Never,
            FaultPlan::NthSpill(3),
            FaultPlan::NthReload(17),
            FaultPlan::NthForContext(5, 2),
        ] {
            assert_eq!(decode_plan(&encode_plan(plan)), Some(plan), "{plan:?}");
        }
        assert_eq!(decode_plan("nth-spill:x"), None);
        assert_eq!(decode_plan("ctx:1"), None);
        assert_eq!(decode_plan(""), None);
    }

    #[test]
    fn repros_round_trip_through_nsftrace_bytes() {
        let ops = generate(&StreamConfig::default(), 9);
        let repro = Repro {
            family: Family::Windowed,
            plan: FaultPlan::NthReload(4),
            ops: ops.clone(),
        };
        let bytes = repro.to_trace().to_bytes();
        let back = Repro::from_trace(&Trace::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(back.family, Family::Windowed);
        assert_eq!(back.plan, FaultPlan::NthReload(4));
        assert_eq!(back.ops, ops);
    }

    #[test]
    fn foreign_traces_are_rejected() {
        let trace = Trace {
            meta: TraceMeta {
                workload: "GateSim".into(),
                engine: "nsf:80".into(),
                scale: 1,
                instructions: 0,
                cycles: 0,
                context_switches: 0,
            },
            events: Vec::new(),
        };
        assert!(Repro::from_trace(&trace).is_none());
    }
}
