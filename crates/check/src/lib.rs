//! Cross-engine differential checking with deterministic fault
//! injection.
//!
//! Every register-file organization in this reproduction implements the
//! same [`nsf_core::RegisterFile`] contract, and the paper's comparisons
//! are only meaningful if they all *mean the same thing* by it. This
//! crate checks that mechanically:
//!
//! 1. [`stream`] generates seeded operation streams — multi-thread call
//!    chains, capacity pressure, undefined reads, explicit deallocation —
//!    that are legal for every organization at once, plus the validator
//!    the shrinker uses to keep reductions legal.
//! 2. [`lanes`] names the engine configurations under test, grouped into
//!    families, including *twin* pairs that must match traffic counters
//!    exactly.
//! 3. [`run`] executes the lanes in lockstep against the architectural
//!    oracle, under a seeded [`nsf_core::FaultPlan`], demanding value
//!    agreement, statistics invariants, fault recovery, and a clean
//!    drain.
//! 4. [`shrink`] reduces a divergent stream to a minimal disciplined
//!    repro, and [`repro`] round-trips it through `.nsftrace` so it can
//!    be checked in as a regression test and replayed by `check_tool`.
//!
//! Everything is a pure function of the seed: fuzzing here is
//! deterministic replay, and none of it ever enters a results path (see
//! EXPERIMENTS.md).

pub mod lanes;
pub mod repro;
pub mod run;
pub mod shrink;
pub mod stream;

pub use lanes::{build_lane, Family};
pub use repro::Repro;
pub use run::{
    check_family, check_family_stepped, check_lane, check_seed, check_seed_stepped,
    fault_plan_for_seed, oracle_outcomes, Divergence, DivergenceKind, LaneReport, Outcome,
};
pub use shrink::shrink;
pub use stream::{generate, is_valid_stream, SplitMix64, StreamConfig};
