//! Seeded operation-stream generation over the full
//! [`nsf_core::RegisterFile`] surface, plus the *discipline validator*
//! that decides whether an arbitrary event list is a program every
//! organization can legally execute.
//!
//! The generator models a program the way the simulator does: a set of
//! threads, each a stack of context IDs (a call chain). One stream must
//! be valid for every engine family at once, so it obeys the strictest
//! discipline any of them imposes:
//!
//! * accesses name only the *current* context (segmented files reject
//!   anything else with `NotCurrent`; windowed files only expose the
//!   chain top);
//! * after a `FreeContext` of the top, the parent must be re-entered
//!   with an explicit `SwitchTo` before it is accessed (its window may
//!   have been spilled — the switch performs the underflow reload);
//! * context IDs are fresh on every `CallPush`/new-thread dispatch and
//!   never reused, matching the simulator's monotonic activation IDs.
//!
//! Streams are pure functions of `(StreamConfig, seed)`; no wall-clock
//! or process state enters generation.

use nsf_core::{Cid, RegAddr};
use nsf_trace::RegEvent;
use std::collections::HashMap;

/// xorshift*-style deterministic generator (SplitMix64). Self-contained
/// so the checker's streams cannot drift with a library's algorithm.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Shape of a generated stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Register-file operations to emit (the drain suffix is extra).
    pub ops: usize,
    /// Offsets are drawn from `[0, width)`; must not exceed the
    /// narrowest lane's per-context register count.
    pub width: u8,
    /// Maximum concurrently live threads.
    pub max_threads: usize,
    /// Maximum call depth per thread.
    pub max_depth: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            ops: 160,
            width: 16,
            max_threads: 4,
            // Deeper than the windowed file's eight windows, so call
            // chains overflow and underflow within one stream.
            max_depth: 10,
        }
    }
}

/// Program-shape tracker shared by the generator and the validator: the
/// thread stacks, the current thread, and whether the current top has
/// been entered with a switch since it last changed.
#[derive(Clone, Debug, Default)]
struct Shape {
    /// Live threads, each a non-empty stack of context IDs.
    threads: Vec<Vec<Cid>>,
    /// Index of the running thread, if any.
    current: Option<usize>,
    /// The current top is entered (accessible without a switch).
    armed: bool,
    /// Every cid ever introduced (they are never reused).
    seen: Vec<Cid>,
}

impl Shape {
    fn top(&self) -> Option<Cid> {
        self.current
            .and_then(|t| self.threads.get(t))
            .and_then(|s| s.last().copied())
    }

    /// Applies one event, returning `false` if it violates discipline.
    fn step(&mut self, ev: &RegEvent) -> bool {
        match *ev {
            RegEvent::Read { addr } | RegEvent::Write { addr, .. } | RegEvent::FreeReg { addr } => {
                self.armed && self.top() == Some(addr.cid)
            }
            RegEvent::SwitchTo { cid } => {
                // Re-entering the current thread's top (redundant switch
                // or post-return re-entry); not a cross-thread jump.
                if self.top() == Some(cid) {
                    self.armed = true;
                    true
                } else {
                    false
                }
            }
            RegEvent::CallPush { cid } => {
                if self.seen.contains(&cid) {
                    return false; // cids are never reused
                }
                self.seen.push(cid);
                match self.current {
                    Some(t) => self.threads[t].push(cid),
                    // A call with no running thread starts one.
                    None => {
                        self.threads.push(vec![cid]);
                        self.current = Some(self.threads.len() - 1);
                    }
                }
                self.armed = true;
                true
            }
            RegEvent::ThreadSwitch { cid } => {
                if let Some(t) = self.threads.iter().position(|s| s.last() == Some(&cid)) {
                    self.current = Some(t);
                    self.armed = true;
                    true
                } else if self.seen.contains(&cid) {
                    false // neither a thread top nor fresh
                } else {
                    self.seen.push(cid);
                    self.threads.push(vec![cid]);
                    self.current = Some(self.threads.len() - 1);
                    self.armed = true;
                    true
                }
            }
            RegEvent::FreeContext { cid } => {
                // Only the top of the running thread may be freed (the
                // return path); the parent needs a SwitchTo before use.
                let Some(t) = self.current else { return false };
                if self.threads[t].last() != Some(&cid) {
                    return false;
                }
                self.threads[t].pop();
                if self.threads[t].is_empty() {
                    self.threads.remove(t);
                    self.current = None;
                }
                self.armed = false;
                true
            }
            RegEvent::MemRead { .. } | RegEvent::MemWrite { .. } => false,
        }
    }
}

/// `true` iff `ops` is a legal program for every engine family (see the
/// module docs for the discipline). Used by the shrinker to reject
/// deletion candidates that would turn an engine bug into a mere
/// discipline violation.
pub fn is_valid_stream(ops: &[RegEvent]) -> bool {
    let mut shape = Shape::default();
    ops.iter().all(|ev| shape.step(ev))
}

/// Generates a deterministic operation stream from `seed`. The stream
/// ends with a full drain: every live context is freed (innermost
/// first, switching threads as needed), so a checker can assert that
/// occupancy and backing state return to zero.
pub fn generate(cfg: &StreamConfig, seed: u64) -> Vec<RegEvent> {
    let mut rng = SplitMix64::new(seed);
    let mut shape = Shape::default();
    let mut next_cid: Cid = 0;
    // Offsets known written (and not freed) per live context, for
    // read biasing: mostly-defined reads exercise value transport,
    // occasional undefined reads exercise the error path.
    let mut defined: HashMap<Cid, Vec<u8>> = HashMap::new();
    let mut out = Vec::with_capacity(cfg.ops + 16);

    let emit = |shape: &mut Shape, out: &mut Vec<RegEvent>, ev: RegEvent| {
        let ok = shape.step(&ev);
        debug_assert!(ok, "generator emitted an illegal event: {ev}");
        out.push(ev);
    };

    while out.len() < cfg.ops {
        let Some(top) = shape.top().filter(|_| shape.armed) else {
            // No runnable context: dispatch an existing thread or start
            // a fresh one.
            if !shape.threads.is_empty() && rng.below(2) == 0 {
                let t = rng.below(shape.threads.len() as u64) as usize;
                let cid = *shape.threads[t].last().expect("threads are non-empty");
                emit(&mut shape, &mut out, RegEvent::ThreadSwitch { cid });
            } else {
                let cid = next_cid;
                next_cid += 1;
                emit(&mut shape, &mut out, RegEvent::ThreadSwitch { cid });
            }
            continue;
        };

        let depth = shape.threads[shape.current.expect("armed implies current")].len();
        match rng.below(100) {
            // Write: the workhorse (allocation pressure on the NSF).
            0..=34 => {
                let offset = rng.below(u64::from(cfg.width)) as u8;
                let value = rng.next_u64() as u32;
                emit(
                    &mut shape,
                    &mut out,
                    RegEvent::Write {
                        addr: RegAddr::new(top, offset),
                        value,
                    },
                );
                let d = defined.entry(top).or_default();
                if !d.contains(&offset) {
                    d.push(offset);
                }
            }
            // Read, biased toward defined offsets.
            35..=54 => {
                let d = defined.get(&top);
                let offset = match d {
                    Some(d) if !d.is_empty() && rng.below(10) < 8 => {
                        d[rng.below(d.len() as u64) as usize]
                    }
                    _ => rng.below(u64::from(cfg.width)) as u8,
                };
                emit(
                    &mut shape,
                    &mut out,
                    RegEvent::Read {
                        addr: RegAddr::new(top, offset),
                    },
                );
            }
            // Procedure call: fresh context on this thread.
            55..=64 if depth < cfg.max_depth => {
                let cid = next_cid;
                next_cid += 1;
                emit(&mut shape, &mut out, RegEvent::CallPush { cid });
            }
            // Return: free the top, re-enter the parent.
            65..=74 if depth > 1 => {
                emit(&mut shape, &mut out, RegEvent::FreeContext { cid: top });
                defined.remove(&top);
                let parent = shape.top().expect("depth > 1 leaves a parent");
                emit(&mut shape, &mut out, RegEvent::SwitchTo { cid: parent });
            }
            // Thread death: free the only frame; the next iteration
            // dispatches another thread.
            65..=74 => {
                emit(&mut shape, &mut out, RegEvent::FreeContext { cid: top });
                defined.remove(&top);
            }
            // Dispatch a different thread.
            75..=82 if shape.threads.len() > 1 => {
                let t = rng.below(shape.threads.len() as u64) as usize;
                let cid = *shape.threads[t].last().expect("threads are non-empty");
                emit(&mut shape, &mut out, RegEvent::ThreadSwitch { cid });
            }
            // Spawn a new thread.
            75..=89 if shape.threads.len() < cfg.max_threads => {
                let cid = next_cid;
                next_cid += 1;
                emit(&mut shape, &mut out, RegEvent::ThreadSwitch { cid });
            }
            // Explicit register deallocation hint (paper §4.2).
            90..=94 => {
                let d = defined.get_mut(&top);
                let offset = match d {
                    Some(d) if !d.is_empty() => {
                        let i = rng.below(d.len() as u64) as usize;
                        d.swap_remove(i)
                    }
                    _ => rng.below(u64::from(cfg.width)) as u8,
                };
                emit(
                    &mut shape,
                    &mut out,
                    RegEvent::FreeReg {
                        addr: RegAddr::new(top, offset),
                    },
                );
            }
            // Redundant switch to the current top (switch-hit paths).
            _ => {
                emit(&mut shape, &mut out, RegEvent::SwitchTo { cid: top });
            }
        }
    }

    // Drain: free every live context so the checker can assert the file
    // and the backing store end empty.
    while let Some(t) = shape
        .current
        .or_else(|| (!shape.threads.is_empty()).then_some(0))
    {
        let cid = *shape.threads[t].last().expect("threads are non-empty");
        if shape.current != Some(t) || !shape.armed {
            emit(&mut shape, &mut out, RegEvent::ThreadSwitch { cid });
        }
        let top = shape.top().expect("just dispatched");
        emit(&mut shape, &mut out, RegEvent::FreeContext { cid: top });
        if shape.current.is_some() {
            let parent = shape.top().expect("current survives a non-final pop");
            emit(&mut shape, &mut out, RegEvent::SwitchTo { cid: parent });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_streams_are_valid_and_deterministic() {
        let cfg = StreamConfig::default();
        for seed in 0..50 {
            let a = generate(&cfg, seed);
            let b = generate(&cfg, seed);
            assert_eq!(a, b, "seed {seed} must be deterministic");
            assert!(is_valid_stream(&a), "seed {seed} produced invalid stream");
            assert!(a.len() >= cfg.ops);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = StreamConfig::default();
        assert_ne!(generate(&cfg, 1), generate(&cfg, 2));
    }

    #[test]
    fn streams_end_fully_drained() {
        let cfg = StreamConfig::default();
        for seed in 0..20 {
            let ops = generate(&cfg, seed);
            let mut live: Vec<Cid> = Vec::new();
            for ev in &ops {
                match *ev {
                    RegEvent::CallPush { cid } => live.push(cid),
                    RegEvent::ThreadSwitch { cid } if !live.contains(&cid) => live.push(cid),
                    RegEvent::FreeContext { cid } => live.retain(|&c| c != cid),
                    _ => {}
                }
            }
            assert!(live.is_empty(), "seed {seed} left contexts live: {live:?}");
        }
    }

    #[test]
    fn validator_rejects_indiscipline() {
        use RegEvent::*;
        // Access before any switch.
        assert!(!is_valid_stream(&[Read {
            addr: RegAddr::new(0, 0)
        }]));
        // Access to a non-current context.
        assert!(!is_valid_stream(&[
            ThreadSwitch { cid: 0 },
            Write {
                addr: RegAddr::new(1, 0),
                value: 9
            },
        ]));
        // Access after a return without re-entering the parent.
        assert!(!is_valid_stream(&[
            ThreadSwitch { cid: 0 },
            CallPush { cid: 1 },
            FreeContext { cid: 1 },
            Read {
                addr: RegAddr::new(0, 0)
            },
        ]));
        // Cid reuse.
        assert!(!is_valid_stream(&[
            ThreadSwitch { cid: 0 },
            FreeContext { cid: 0 },
            ThreadSwitch { cid: 0 },
        ]));
        // Freeing a non-top context.
        assert!(!is_valid_stream(&[
            ThreadSwitch { cid: 0 },
            CallPush { cid: 1 },
            FreeContext { cid: 0 },
        ]));
        // The legal version of the return sequence passes.
        assert!(is_valid_stream(&[
            ThreadSwitch { cid: 0 },
            CallPush { cid: 1 },
            FreeContext { cid: 1 },
            SwitchTo { cid: 0 },
            Read {
                addr: RegAddr::new(0, 0)
            },
        ]));
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the first outputs so a silent algorithm change (which
        // would re-map every seed to a different stream) is caught.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        let mut r = SplitMix64::new(42);
        assert_eq!(r.next_u64(), 0xbdd7_3226_2feb_6e95);
    }
}
