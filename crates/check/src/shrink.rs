//! Delta-debugging reduction of divergent streams.
//!
//! A fuzz-found divergence typically sits at the end of 150+ operations,
//! most of which are noise. [`shrink`] is a ddmin-style chunk remover:
//! it repeatedly deletes spans of the stream, keeping a deletion only
//! when the remainder is still a *disciplined* program
//! ([`crate::stream::is_valid_stream`]) that still reproduces the
//! failure. The validity filter is what makes shrinking sound — deleting
//! a `switch` can turn any stream into one every engine rejects with
//! `NotCurrent`, which would "reproduce" a divergence that has nothing
//! to do with the original bug. The caller's predicate should likewise
//! pin the failure (same lane, same kind), not accept any divergence.

use crate::stream::is_valid_stream;
use nsf_trace::RegEvent;

/// Minimizes `ops` under `reproduces`, which must hold for `ops` itself.
/// Runs the predicate O(n log n)-ish times; streams here are hundreds of
/// events, so exhaustive single-event passes are affordable.
pub fn shrink(ops: &[RegEvent], mut reproduces: impl FnMut(&[RegEvent]) -> bool) -> Vec<RegEvent> {
    let mut cur = ops.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && is_valid_stream(&candidate) && reproduces(&candidate) {
                cur = candidate;
                progressed = true;
                // The next chunk slid into `start`; do not advance.
            } else {
                start = end;
            }
        }
        if progressed {
            continue; // retry the same granularity on the smaller stream
        }
        if chunk == 1 {
            return cur;
        }
        chunk = (chunk / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_core::RegAddr;
    use RegEvent::*;

    /// A predicate sensitive to one write surviving: the shape a real
    /// engine-bug predicate ("this lane still returns the wrong value")
    /// takes.
    fn contains_magic(ops: &[RegEvent]) -> bool {
        ops.iter().any(|e| {
            matches!(
                e,
                Write {
                    value: 0xdead_beef,
                    ..
                }
            )
        })
    }

    #[test]
    fn shrinks_to_the_essential_core() {
        let mut ops = vec![ThreadSwitch { cid: 0 }];
        for i in 0..40 {
            ops.push(Write {
                addr: RegAddr::new(0, (i % 8) as u8),
                value: i,
            });
        }
        ops.push(Write {
            addr: RegAddr::new(0, 9),
            value: 0xdead_beef,
        });
        for i in 0..40 {
            ops.push(Read {
                addr: RegAddr::new(0, (i % 8) as u8),
            });
        }
        assert!(is_valid_stream(&ops));
        let small = shrink(&ops, contains_magic);
        // The 82-op stream reduces to the magic write alone... almost:
        // the write needs its enabling switch to stay disciplined.
        assert!(small.len() <= 2, "still {} ops: {small:?}", small.len());
        assert!(contains_magic(&small));
        assert!(is_valid_stream(&small));
    }

    #[test]
    fn never_returns_an_undisciplined_stream() {
        let ops = vec![
            ThreadSwitch { cid: 0 },
            CallPush { cid: 1 },
            Write {
                addr: RegAddr::new(1, 0),
                value: 0xdead_beef,
            },
            FreeContext { cid: 1 },
            SwitchTo { cid: 0 },
            FreeContext { cid: 0 },
        ];
        let small = shrink(&ops, contains_magic);
        // The write cannot survive without `CallPush { 1 }` before it.
        assert!(is_valid_stream(&small));
        assert!(small.contains(&CallPush { cid: 1 }));
    }

    #[test]
    fn irreducible_streams_come_back_unchanged() {
        let ops = vec![
            ThreadSwitch { cid: 0 },
            Write {
                addr: RegAddr::new(0, 0),
                value: 0xdead_beef,
            },
        ];
        assert_eq!(shrink(&ops, contains_magic), ops);
    }
}
