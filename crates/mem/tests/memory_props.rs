//! Differential property tests of [`MainMemory`]'s flat two-level page
//! table against the original hashed implementation.
//!
//! The production memory replaced a `HashMap<page, Box<[Word]>>` with a
//! dense directory plus a last-page cache; this file keeps the hashed
//! form alive as a reference model and drives random operation streams
//! through both, demanding word-for-word equality and identical
//! `reads()` / `writes()` / `resident_pages()` accounting.

use nsf_mem::{Addr, MainMemory, Word};
use proptest::prelude::*;
use std::collections::HashMap;

/// Page geometry mirrored from `nsf_mem::memory` (private constants).
/// `resident_pages()` equality only holds if both models page the
/// address space identically, so a drift here fails the tests loudly.
const PAGE_WORDS: usize = 1 << PAGE_SHIFT;
const PAGE_SHIFT: u32 = 16;

/// The pre-flattening `MainMemory`: a hashed page map with per-word
/// block transfers, preserved as the reference model.
#[derive(Default)]
struct HashedMemory {
    pages: HashMap<u32, Box<[Word]>>,
    reads: u64,
    writes: u64,
}

impl HashedMemory {
    fn read(&mut self, addr: Addr) -> Word {
        self.reads += 1;
        self.peek(addr)
    }

    fn peek(&self, addr: Addr) -> Word {
        let page = addr >> PAGE_SHIFT;
        let off = (addr as usize) & (PAGE_WORDS - 1);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    fn write(&mut self, addr: Addr, value: Word) {
        self.writes += 1;
        let page = addr >> PAGE_SHIFT;
        let off = (addr as usize) & (PAGE_WORDS - 1);
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0; PAGE_WORDS].into_boxed_slice())[off] = value;
    }

    fn write_block(&mut self, addr: Addr, values: &[Word]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(addr.wrapping_add(i as Addr), v);
        }
    }

    fn read_block(&mut self, addr: Addr, len: usize) -> Vec<Word> {
        (0..len)
            .map(|i| self.read(addr.wrapping_add(i as Addr)))
            .collect()
    }

    fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// One memory operation; block lengths stay small so streams exercise
/// page-boundary chunking without dominating the run time.
#[derive(Clone, Debug)]
enum Op {
    Read(Addr),
    Peek(Addr),
    Write(Addr, Word),
    WriteBlock(Addr, Vec<Word>),
    ReadBlock(Addr, usize),
    ReadInto(Addr, usize),
}

/// Addresses cluster around page boundaries in a few regions (including
/// the simulator's backing arena) so streams revisit pages, straddle
/// page edges, and still hit the sparse far corners; capped below
/// `u32::MAX` so block transfers never wrap the address space.
fn arb_addr() -> impl Strategy<Value = Addr> {
    let near = |base: Addr| (0u32..2 * PAGE_WORDS as u32).prop_map(move |d| base + d);
    prop_oneof![
        near(0),
        near((PAGE_WORDS - 8) as Addr),
        near(0x4000_0000),
        0u32..0xFFFF_0000,
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_addr().prop_map(Op::Read),
        arb_addr().prop_map(Op::Peek),
        (arb_addr(), any::<Word>()).prop_map(|(a, v)| Op::Write(a, v)),
        (arb_addr(), proptest::collection::vec(any::<Word>(), 0..96))
            .prop_map(|(a, v)| Op::WriteBlock(a, v)),
        (arb_addr(), 0usize..96).prop_map(|(a, n)| Op::ReadBlock(a, n)),
        (arb_addr(), 0usize..96).prop_map(|(a, n)| Op::ReadInto(a, n)),
    ]
}

proptest! {
    /// Every operation returns identical words from both models, and
    /// the access counters and resident-page counts never diverge.
    #[test]
    fn flat_matches_hashed(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut flat = MainMemory::new();
        let mut hashed = HashedMemory::default();
        for op in &ops {
            match *op {
                Op::Read(a) => prop_assert_eq!(flat.read(a), hashed.read(a)),
                Op::Peek(a) => prop_assert_eq!(flat.peek(a), hashed.peek(a)),
                Op::Write(a, v) => {
                    flat.write(a, v);
                    hashed.write(a, v);
                }
                Op::WriteBlock(a, ref v) => {
                    flat.write_block(a, v);
                    hashed.write_block(a, v);
                }
                Op::ReadBlock(a, n) => {
                    prop_assert_eq!(flat.read_block(a, n), hashed.read_block(a, n));
                }
                Op::ReadInto(a, n) => {
                    let mut buf = vec![0xA5A5_A5A5; n];
                    flat.read_into(a, &mut buf);
                    prop_assert_eq!(buf, hashed.read_block(a, n));
                }
            }
            prop_assert_eq!(flat.reads(), hashed.reads);
            prop_assert_eq!(flat.writes(), hashed.writes);
            prop_assert_eq!(flat.resident_pages(), hashed.resident_pages());
        }
    }

    /// `read_into` counts one read per word, like the loop it replaced.
    #[test]
    fn read_into_counts_per_word(addr in arb_addr(), len in 0usize..200) {
        let mut m = MainMemory::new();
        let mut buf = vec![0; len];
        m.read_into(addr, &mut buf);
        prop_assert_eq!(m.reads(), len as u64);
        prop_assert_eq!(m.resident_pages(), 0, "reads must not map pages");
    }
}
