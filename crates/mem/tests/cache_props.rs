//! Property tests of the data-cache timing model.

use nsf_mem::{Cache, CacheConfig};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        capacity_words: 64,
        line_words: 4,
        ways: 2,
        hit_cycles: 1,
        miss_penalty: 10,
    })
}

fn arb_accesses() -> impl Strategy<Value = Vec<(u32, bool)>> {
    proptest::collection::vec((0u32..256, any::<bool>()), 1..300)
}

proptest! {
    /// hits + misses always equals accesses; writebacks never exceed
    /// misses (only an evicted fill can be dirty).
    #[test]
    fn stats_invariants(ops in arb_accesses()) {
        let mut c = small_cache();
        for (addr, write) in ops {
            c.access(addr, write);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.writebacks <= s.misses);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
    }

    /// Immediately re-accessing the same address always hits at the hit
    /// latency (temporal locality is never punished).
    #[test]
    fn back_to_back_hits(ops in arb_accesses()) {
        let mut c = small_cache();
        for (addr, write) in ops {
            c.access(addr, write);
            prop_assert_eq!(c.access(addr, false), 1, "address {}", addr);
        }
    }

    /// Latencies only take the three architecturally possible values:
    /// hit, miss-fill, miss-fill + writeback.
    #[test]
    fn latency_values_are_structural(ops in arb_accesses()) {
        let mut c = small_cache();
        for (addr, write) in ops {
            let cycles = c.access(addr, write);
            prop_assert!(
                cycles == 1 || cycles == 11 || cycles == 21,
                "unexpected latency {cycles}"
            );
        }
    }

    /// A working set no larger than one set's associativity never
    /// conflicts: after the first touch, everything hits forever.
    #[test]
    fn within_associativity_no_thrash(rounds in 1usize..10) {
        let mut c = small_cache();
        // Two lines in the same set (set count = 8): line addrs 0 and 8.
        let a = 0u32;
        let b = 8 * 4;
        c.access(a, false);
        c.access(b, false);
        for _ in 0..rounds {
            prop_assert_eq!(c.access(a, false), 1);
            prop_assert_eq!(c.access(b, false), 1);
        }
    }

    /// The model is deterministic: same access string, same stats.
    #[test]
    fn deterministic(ops in arb_accesses()) {
        let run = |ops: &[(u32, bool)]| {
            let mut c = small_cache();
            let cycles: Vec<u32> = ops.iter().map(|&(a, w)| c.access(a, w)).collect();
            (cycles, c.stats())
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
