//! Set-associative data-cache timing model.
//!
//! The cache is a *timing* model: it tracks tags, valid/dirty bits and LRU
//! state, and reports how many cycles each access costs, but the data
//! itself lives in [`crate::MainMemory`]. On a uniprocessor this split is
//! exact — there is no observer that could see stale data — and it keeps
//! the functional simulator simple (the paper's own register-file simulator
//! made the same separation between traffic counting and data movement).

use crate::Addr;

/// Configuration of a [`Cache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in words.
    pub capacity_words: u32,
    /// Line length in words (power of two).
    pub line_words: u32,
    /// Associativity (ways per set); `1` = direct mapped.
    pub ways: u32,
    /// Latency of a hit, in cycles.
    pub hit_cycles: u32,
    /// Additional penalty of a miss (line fill from memory), in cycles.
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// A cache typical of the Sparc-2-class machines the paper measured
    /// against: 64 KB, 16-byte (4-word) lines, direct... in fact
    /// 4-way for robustness, 1-cycle hits, 20-cycle miss penalty.
    pub fn sparc2_dcache() -> Self {
        CacheConfig {
            capacity_words: 16 * 1024,
            line_words: 4,
            ways: 4,
            hit_cycles: 1,
            miss_penalty: 20,
        }
    }

    fn sets(&self) -> u32 {
        (self.capacity_words / self.line_words / self.ways).max(1)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::sparc2_dcache()
    }
}

/// Access statistics kept by a [`Cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back to memory on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Default)]
struct Way {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Monotone timestamp of last touch, for LRU.
    stamp: u64,
}

/// The cache proper. See the module docs for the functional/timing split.
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Way>, // sets() * ways entries, set-major
    // Geometry, precomputed at construction so `access` indexes with
    // shifts and masks only (line_words and the set count are asserted
    // powers of two, making these exact equivalents of the divisions).
    line_shift: u32,
    set_mask: u32,
    set_shift: u32,
    ways: usize,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` or the derived set count is not a power of
    /// two, or if any parameter is zero — configuration bugs, not runtime
    /// conditions.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(cfg.ways >= 1, "ways must be >= 1");
        assert!(
            cfg.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        let entries = (cfg.sets() * cfg.ways) as usize;
        Cache {
            sets: vec![Way::default(); entries],
            line_shift: cfg.line_words.trailing_zeros(),
            set_mask: cfg.sets() - 1,
            set_shift: cfg.sets().trailing_zeros(),
            ways: cfg.ways as usize,
            cfg,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (but not cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Performs an access at `addr` and returns its latency in cycles.
    ///
    /// `write` selects a store; the policy is write-back, write-allocate,
    /// so stores miss and fill exactly like loads.
    pub fn access(&mut self, addr: Addr, write: bool) -> u32 {
        self.clock += 1;
        self.stats.accesses += 1;

        let line_addr = addr >> self.line_shift;
        let set = line_addr & self.set_mask;
        let tag = line_addr >> self.set_shift;
        let base = set as usize * self.ways;
        let ways = &mut self.sets[base..base + self.ways];

        // Hit?
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.stamp = self.clock;
            w.dirty |= write;
            self.stats.hits += 1;
            return self.cfg.hit_cycles;
        }

        // Miss: choose the LRU way (invalid ways first).
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.stamp + 1 } else { 0 })
            .expect("ways >= 1");
        let mut cycles = self.cfg.hit_cycles + self.cfg.miss_penalty;
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            // Write-back costs another memory transaction.
            cycles += self.cfg.miss_penalty;
        }
        *victim = Way {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        cycles
    }

    /// Invalidates the whole cache (e.g. between experiment runs).
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            *w = Way::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 16 words, 2-word lines, 2-way: 4 sets.
        Cache::new(CacheConfig {
            capacity_words: 16,
            line_words: 2,
            ways: 2,
            hit_cycles: 1,
            miss_penalty: 10,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0, false), 11);
        assert_eq!(c.access(1, false), 1); // same line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addrs 0, 4, 8 with 4 sets).
        c.access(0, false); // miss, way A
        c.access(8, false); // miss, way B
        c.access(0, false); // hit, refreshes line 0
        c.access(16, false); // miss, evicts line 8 (LRU)
        assert_eq!(c.access(0, false), 1, "line 0 must still be resident");
        assert_eq!(c.access(8, false), 11, "line 8 was evicted");
    }

    #[test]
    fn dirty_eviction_costs_writeback() {
        let mut c = tiny();
        c.access(0, true); // miss, dirty
        c.access(8, false); // miss, clean
        c.access(16, false); // miss, evicts LRU = line 0 (dirty) → writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn writeback_penalty_charged() {
        let mut c = tiny();
        c.access(0, true);
        c.access(8, true);
        // Evicting a dirty line costs hit + 2 * miss_penalty.
        let cycles = c.access(16, false);
        assert_eq!(cycles, 21);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0, false);
        c.flush();
        assert_eq!(c.access(0, false), 11);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        Cache::new(CacheConfig {
            capacity_words: 16,
            line_words: 3,
            ways: 1,
            hit_cycles: 1,
            miss_penalty: 1,
        });
    }
}
